//! End-to-end fault-detection behavior through complete BIST units (not
//! just the march runner): the theory table of which algorithm class
//! catches which fault mechanism, exercised through all architectures.

use mbist::core::{
    hardwired::HardwiredBist, microcode::MicrocodeBist, progfsm::ProgFsmBist,
};
use mbist::march::{library, MarchTest};
use mbist::mem::{CellId, FaultKind, MemGeometry, MemoryArray};

fn detected_by_unit(test: &MarchTest, g: &MemGeometry, fault: FaultKind) -> bool {
    let mut unit = MicrocodeBist::for_test(test, g).expect("microcode expresses all");
    let mut mem = MemoryArray::with_fault(*g, fault).expect("fault fits");
    !unit.run(&mut mem).passed()
}

#[test]
fn march_c_catches_the_classical_static_faults() {
    let g = MemGeometry::bit_oriented(16);
    let cell = CellId::bit_oriented(9);
    let other = CellId::bit_oriented(4);
    let faults = [
        FaultKind::StuckAt { cell, value: true },
        FaultKind::StuckAt { cell, value: false },
        FaultKind::Transition { cell, rising: true },
        FaultKind::Transition { cell, rising: false },
        FaultKind::CouplingInversion { aggressor: other, victim: cell, rising: true },
        FaultKind::CouplingInversion { aggressor: cell, victim: other, rising: false },
        FaultKind::CouplingIdempotent {
            aggressor: other,
            victim: cell,
            rising: true,
            forced: false,
        },
        FaultKind::CouplingState {
            aggressor: other,
            victim: cell,
            when: true,
            forced: false,
        },
        FaultKind::AddressMap { from: 3, to: 11 },
        FaultKind::AddressMulti { addr: 5, extra: 12, wired_and: true },
    ];
    for fault in faults {
        assert!(
            detected_by_unit(&library::march_c(), &g, fault),
            "march C must detect {fault}"
        );
    }
}

#[test]
fn fault_class_hierarchy_separates_algorithm_variants() {
    let g = MemGeometry::bit_oriented(16);
    let drf = FaultKind::Retention {
        cell: CellId::bit_oriented(2),
        decays_to: true,
        retention_ns: 50_000.0,
    };
    let puf = FaultKind::PullOpen {
        cell: CellId::bit_oriented(2),
        good_reads: 2,
        decays_to: false,
    };
    // March C: neither. C+: retention only. C++: both.
    assert!(!detected_by_unit(&library::march_c(), &g, drf));
    assert!(!detected_by_unit(&library::march_c(), &g, puf));
    assert!(detected_by_unit(&library::march_c_plus(), &g, drf));
    assert!(!detected_by_unit(&library::march_c_plus(), &g, puf));
    assert!(detected_by_unit(&library::march_c_plus_plus(), &g, drf));
    assert!(detected_by_unit(&library::march_c_plus_plus(), &g, puf));
}

#[test]
fn all_architectures_return_identical_verdicts_and_logs() {
    let g = MemGeometry::bit_oriented(12);
    let test = library::march_c();
    let faults = [
        FaultKind::StuckAt { cell: CellId::bit_oriented(3), value: true },
        FaultKind::Transition { cell: CellId::bit_oriented(11), rising: true },
        FaultKind::AddressMap { from: 1, to: 6 },
        FaultKind::CouplingInversion {
            aggressor: CellId::bit_oriented(2),
            victim: CellId::bit_oriented(3),
            rising: false,
        },
    ];
    for fault in faults {
        let mut micro = MicrocodeBist::for_test(&test, &g).unwrap();
        let mut fsm = ProgFsmBist::for_test(&test, &g).unwrap();
        let mut hard = HardwiredBist::for_test(&test, &g);

        let rm = micro.run(&mut MemoryArray::with_fault(g, fault).unwrap());
        let rf = fsm.run(&mut MemoryArray::with_fault(g, fault).unwrap());
        let rh = hard.run(&mut MemoryArray::with_fault(g, fault).unwrap());

        let logs: Vec<Vec<_>> = [&rm, &rf, &rh]
            .iter()
            .map(|r| r.fail_log.miscompares().copied().collect())
            .collect();
        assert_eq!(logs[0], logs[1], "{fault}: microcode vs progfsm logs differ");
        assert_eq!(logs[1], logs[2], "{fault}: progfsm vs hardwired logs differ");
        assert!(!rm.passed(), "{fault} undetected");
    }
}

#[test]
fn word_oriented_backgrounds_catch_intra_word_state_coupling() {
    // State coupling between two bits of the same word: while the
    // aggressor bit holds 1, the victim bit reads 1. Under the solid
    // background both bits always carry the same expected value, so the
    // fault is invisible; the checkerboard background separates them —
    // the reason both programmable architectures loop the whole algorithm
    // over data backgrounds.
    let g = MemGeometry::word_oriented(8, 4);
    let fault = FaultKind::CouplingState {
        aggressor: CellId::new(3, 0),
        victim: CellId::new(3, 1),
        when: true,
        forced: true,
    };

    // Full background set (the architecture default): detected.
    assert!(
        detected_by_unit(&library::march_c(), &g, fault),
        "checkerboard background must separate adjacent bits"
    );

    // Solid background only: missed.
    use mbist::march::{expand_with, run_steps, ExpandOptions};
    let mut mem = MemoryArray::with_fault(g, fault).unwrap();
    let solid_only = expand_with(&library::march_c(), &g, &ExpandOptions::minimal(&g));
    assert!(
        run_steps(&mut mem, &solid_only).passed(),
        "the solid background alone cannot expose the intra-word fault"
    );
}

#[test]
fn intra_word_write_coupling_is_masked_by_the_victims_own_driver() {
    // A march write drives every bit of the word, so a coupling victim in
    // the same word never satisfies the hold-sensitization condition —
    // write-triggered intra-word CFs are a documented march blind spot
    // (they need read-disturb style sequences beyond march tests).
    let g = MemGeometry::word_oriented(8, 4);
    let fault = FaultKind::CouplingInversion {
        aggressor: CellId::new(3, 0),
        victim: CellId::new(3, 1),
        rising: true,
    };
    assert!(!detected_by_unit(&library::march_c(), &g, fault));
    // The same fault across words is caught as usual.
    let across = FaultKind::CouplingInversion {
        aggressor: CellId::new(3, 0),
        victim: CellId::new(4, 1),
        rising: true,
    };
    assert!(detected_by_unit(&library::march_c(), &g, across));
}

#[test]
fn multiport_test_covers_each_port() {
    let g = MemGeometry::new(8, 1, 2);
    let test = library::march_c();
    let mut unit = MicrocodeBist::for_test(&test, &g).unwrap();
    let mut mem = MemoryArray::new(g);
    let report = unit.run(&mut mem);
    // whole algorithm repeated per port
    assert_eq!(report.bus_cycles, 10 * 8 * 2);
    assert!(report.passed());
}

#[test]
fn no_false_alarms_on_random_initial_content() {
    let g = MemGeometry::word_oriented(16, 8);
    for test in library::all() {
        let mut unit = MicrocodeBist::for_test(&test, &g).unwrap();
        for seed in [1u64, 42, 0xFFFF_FFFF] {
            let mut mem = MemoryArray::new(g);
            mem.randomize(seed);
            let report = unit.run(&mut mem);
            assert!(
                report.passed(),
                "{} false-alarmed on fault-free memory (seed {seed})",
                test.name()
            );
        }
    }
}
