//! Property-based tests over the whole stack: randomly generated march
//! algorithms, memory organizations, programs and operation sequences.

use proptest::prelude::*;

use mbist::core::{
    hardwired::HardwiredBist,
    microcode::{self, MicrocodeBist},
    progfsm::ProgFsmBist,
};
use mbist::logic::{minimize, Spec, TruthTable};
use mbist::march::{expand, AddressOrder, MarchElement, MarchOp, MarchTest};
use mbist::mem::{MemGeometry, MemoryArray, PortId};
use mbist::rtl::Bits;

fn arb_op() -> impl Strategy<Value = MarchOp> {
    prop_oneof![
        Just(MarchOp::Write(false)),
        Just(MarchOp::Write(true)),
        Just(MarchOp::Read(false)),
        Just(MarchOp::Read(true)),
    ]
}

fn arb_order() -> impl Strategy<Value = AddressOrder> {
    prop_oneof![Just(AddressOrder::Up), Just(AddressOrder::Down), Just(AddressOrder::Any),]
}

/// A well-formed march test: an initialization element followed by
/// elements whose first op reads the state the previous element left —
/// enough structure to never false-alarm, which we exploit in the
/// fault-free property. For stream equivalence the read values would not
/// even need to be consistent.
fn arb_march_test() -> impl Strategy<Value = MarchTest> {
    let init_value = any::<bool>();
    let body =
        prop::collection::vec((arb_order(), prop::collection::vec(arb_op(), 1..5)), 1..5);
    (init_value, body).prop_map(|(init, body)| {
        let mut items =
            vec![MarchElement::new(AddressOrder::Any, vec![MarchOp::Write(init)]).into()];
        let mut state = init;
        for (order, ops) in body {
            // Repair the ops so every read expects the tracked state and
            // writes update it.
            let mut repaired = Vec::with_capacity(ops.len());
            for op in ops {
                match op {
                    MarchOp::Read(_) => repaired.push(MarchOp::Read(state)),
                    MarchOp::Write(d) => {
                        repaired.push(MarchOp::Write(d));
                        state = d;
                    }
                }
            }
            items.push(MarchElement::new(order, repaired).into());
        }
        MarchTest::new("prop-test", items)
    })
}

fn arb_geometry() -> impl Strategy<Value = MemGeometry> {
    (1u64..12, 1u8..6, 1u8..3).prop_map(|(w, b, p)| MemGeometry::new(w, b, p))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn microcode_stream_matches_reference(test in arb_march_test(), g in arb_geometry()) {
        let mut unit = MicrocodeBist::for_test(&test, &g).expect("always expressible");
        prop_assert_eq!(unit.emit_steps(), expand(&test, &g));
    }

    #[test]
    fn hardwired_stream_matches_reference(test in arb_march_test(), g in arb_geometry()) {
        let mut unit = HardwiredBist::for_test(&test, &g);
        prop_assert_eq!(unit.emit_steps(), expand(&test, &g));
    }

    #[test]
    fn progfsm_stream_matches_reference_when_expressible(
        test in arb_march_test(),
        g in arb_geometry(),
    ) {
        if let Ok(mut unit) = ProgFsmBist::for_test(&test, &g) {
            prop_assert_eq!(unit.emit_steps(), expand(&test, &g));
        }
    }

    #[test]
    fn compiled_programs_roundtrip_through_the_assembler(test in arb_march_test()) {
        let program = microcode::compile(&test).expect("compiles");
        let text = microcode::to_source(&program);
        let back = microcode::assemble(&text).expect("reassembles");
        prop_assert_eq!(back, program);
    }

    #[test]
    fn fault_free_units_never_false_alarm(
        test in arb_march_test(),
        g in arb_geometry(),
        seed in any::<u64>(),
    ) {
        let mut unit = MicrocodeBist::for_test(&test, &g).expect("compiles");
        let mut mem = MemoryArray::new(g);
        mem.randomize(seed);
        prop_assert!(unit.run(&mut mem).passed());
    }

    #[test]
    fn notation_roundtrips(test in arb_march_test()) {
        let text: Vec<String> = test.items().iter().map(ToString::to_string).collect();
        let reparsed = MarchTest::parse(test.name(), &text.join("; ")).expect("parses");
        prop_assert_eq!(reparsed.items(), test.items());
    }

    #[test]
    fn bits_slice_concat_roundtrip(value in any::<u64>(), split in 1u8..63) {
        let b = Bits::new(64, value);
        let hi = b.slice(split, 64 - split);
        let lo = b.slice(0, split);
        prop_assert_eq!(hi.concat(lo), b);
    }

    #[test]
    fn minimizer_preserves_function(bits in prop::collection::vec(any::<bool>(), 256)) {
        // an arbitrary 8-input function
        let tt = TruthTable::from_fn(8, |m| {
            if bits[m as usize] { Spec::On } else { Spec::Off }
        });
        let cover = minimize(&tt).expect("8 inputs supported");
        prop_assert!(tt.is_implemented_by(&cover));
    }

    #[test]
    fn memory_matches_golden_model_when_fault_free(
        ops in prop::collection::vec((any::<u64>(), any::<u64>(), any::<bool>()), 1..200),
        words in 1u64..32,
        width in 1u8..9,
    ) {
        let g = MemGeometry::word_oriented(words, width);
        let mut mem = MemoryArray::new(g);
        let mut golden = vec![0u64; words as usize];
        let p = PortId(0);
        for (addr, data, is_write) in ops {
            let addr = addr % words;
            let data = Bits::new(width, data);
            if is_write {
                mem.write(p, addr, data);
                golden[addr as usize] = data.value();
            } else {
                prop_assert_eq!(mem.read(p, addr).value(), golden[addr as usize]);
            }
        }
    }

    #[test]
    fn repair_allocation_is_sound(
        cells in prop::collection::btree_set((0u64..32, 0u8..8), 0..20),
        spare_rows in 0u32..4,
        spare_cols in 0u32..4,
    ) {
        use mbist::core::repair::{allocate_repair, Redundancy};
        use mbist::core::FailLog;
        use mbist::mem::Miscompare;

        let g = MemGeometry::word_oriented(32, 8);
        let mut log = FailLog::new();
        for &(word, bit) in &cells {
            log.record(0, Miscompare {
                port: PortId(0),
                addr: word,
                expected: Bits::zero(8),
                observed: Bits::zero(8).with_bit(bit, true),
            });
        }
        let bitmap = log.bitmap(g);
        let solution = allocate_repair(
            &bitmap,
            Redundancy { spare_rows, spare_cols },
        );
        // Soundness: spares within budget; every cell either covered or
        // listed uncovered; repaired ⇔ nothing uncovered.
        prop_assert!(solution.row_repairs.len() <= spare_rows as usize);
        prop_assert!(solution.col_repairs.len() <= spare_cols as usize);
        for cell in bitmap.cells().keys() {
            let covered = solution.covers(*cell);
            let listed = solution.uncovered.contains(cell);
            prop_assert!(covered != listed, "cell {cell} covered={covered} listed={listed}");
        }
        // Feasibility sanity: with enough spare rows for every failing
        // word, the allocation must fully repair.
        let distinct_words: std::collections::BTreeSet<u64> =
            bitmap.cells().keys().map(|c| c.word).collect();
        if distinct_words.len() <= spare_rows as usize {
            prop_assert!(solution.is_repaired());
        }
    }

    #[test]
    fn symmetric_compression_never_changes_semantics(g in arb_geometry()) {
        // The library's symmetric algorithms compile with Repeat; force an
        // unrolled compile by renaming trick is not exposed, so instead
        // verify Repeat-based and hardwired (always unrolled) streams agree.
        for test in mbist::march::library::all() {
            let mut micro = MicrocodeBist::for_test(&test, &g).expect("compiles");
            let mut hard = HardwiredBist::for_test(&test, &g);
            prop_assert_eq!(micro.emit_steps(), hard.emit_steps());
        }
    }
}
