//! End-to-end built-in self-repair flow: BIST session → fail log →
//! failure bitmap → redundancy allocation, plus NPSF coverage
//! expectations (the fault class march tests famously do not cover).

use mbist::core::microcode::MicrocodeBist;
use mbist::core::repair::{allocate_repair, Redundancy};
use mbist::march::{evaluate_coverage, library, CoverageOptions};
use mbist::mem::{CellId, FaultClass, FaultKind, MemGeometry, MemoryArray};

#[test]
fn bist_to_repair_pipeline_fixes_a_column_defect() {
    let g = MemGeometry::word_oriented(64, 8);
    let mut mem = MemoryArray::new(g);
    // A bit-line defect: bit 5 stuck in many words.
    for w in [2u64, 9, 17, 33, 40, 58] {
        mem.inject(FaultKind::StuckAt { cell: CellId::new(w, 5), value: true }).unwrap();
    }
    let mut unit = MicrocodeBist::for_test(&library::march_c(), &g).unwrap();
    let report = unit.run(&mut mem);
    assert!(!report.passed());

    let bitmap = report.fail_log.bitmap(g);
    let solution = allocate_repair(&bitmap, Redundancy { spare_rows: 2, spare_cols: 1 });
    assert!(solution.is_repaired());
    assert_eq!(solution.col_repairs, vec![5], "one spare column fixes the bit line");
    assert!(solution.row_repairs.is_empty());
}

#[test]
fn bist_to_repair_pipeline_reports_unrepairable_dies() {
    let g = MemGeometry::word_oriented(32, 8);
    let mut mem = MemoryArray::new(g);
    // Scattered single-cell defects beyond the spare budget.
    for (w, b) in [(1u64, 0u8), (7, 3), (15, 6), (29, 2)] {
        mem.inject(FaultKind::StuckAt { cell: CellId::new(w, b), value: false }).unwrap();
        mem.poke(w, mbist::rtl::Bits::zero(8)); // ensure defined state
    }
    let mut unit = MicrocodeBist::for_test(&library::march_c(), &g).unwrap();
    let report = unit.run(&mut mem);
    let bitmap = report.fail_log.bitmap(g);
    assert_eq!(bitmap.failing_cell_count(), 4);
    let solution = allocate_repair(&bitmap, Redundancy { spare_rows: 1, spare_cols: 1 });
    assert!(!solution.is_repaired());
    assert_eq!(solution.uncovered.len(), 2);
}

#[test]
fn repaired_memory_passes_retest() {
    // Model the repair by moving the injected faults off the replaced
    // column: after allocation, re-test a memory whose faulty column is
    // bypassed (fault removed) and expect a pass.
    let g = MemGeometry::word_oriented(32, 4);
    let faulty_col = 2u8;
    let mut mem = MemoryArray::new(g);
    for w in 0..8u64 {
        mem.inject(FaultKind::StuckAt {
            cell: CellId::new(w * 4, faulty_col),
            value: true,
        })
        .unwrap();
    }
    let mut unit = MicrocodeBist::for_test(&library::march_c(), &g).unwrap();
    let report = unit.run(&mut mem);
    let solution = allocate_repair(
        &report.fail_log.bitmap(g),
        Redundancy { spare_rows: 0, spare_cols: 1 },
    );
    assert!(solution.is_repaired());
    assert_eq!(solution.col_repairs, vec![faulty_col]);

    // "Blow the fuses": the spare column replaces the defective one.
    let mut repaired = MemoryArray::new(g);
    let retest = unit.run(&mut repaired);
    assert!(retest.passed());
}

#[test]
fn march_tests_cover_npsf_only_partially() {
    let g = MemGeometry::bit_oriented(64);
    let opts = CoverageOptions {
        classes: vec![FaultClass::NpsfStatic, FaultClass::NpsfActive],
        max_faults_per_class: Some(128),
        ..CoverageOptions::default()
    };
    let report = evaluate_coverage(&library::march_c(), &g, &opts);
    for row in &report.rows {
        assert!(row.detected > 0, "{} should catch something", row.class);
        assert!(
            row.ratio() < 0.6,
            "{} at {:.0}% — march tests must NOT fully cover NPSF",
            row.class,
            row.ratio() * 100.0
        );
    }
    // The heavier March G does better but still not full — the classical
    // motivation for dedicated NPSF tests.
    let g_report = evaluate_coverage(&library::march_g(), &g, &opts);
    let c_total: usize = report.rows.iter().map(|r| r.detected).sum();
    let g_total: usize = g_report.rows.iter().map(|r| r.detected).sum();
    assert!(g_total >= c_total);
    assert!(g_report.rows.iter().all(|r| !r.is_complete()));
}
