//! Integration tests of the area model against the paper's reported
//! relationships (the numeric columns of the original tables did not
//! survive; the relationships in §3's prose did — see EXPERIMENTS.md).

use mbist::area::{
    design_points, hardwired_design, microcode_design, observations, progfsm_design,
    storage_cell_sweep, table1, table2, table3, SupportLevel, Technology,
};
use mbist::core::Flexibility;
use mbist::march::library;
use mbist::rtl::{CellStyle, Primitive};

#[test]
fn table1_flexibility_ordering_matches_paper() {
    let points = design_points(&Technology::cmos5s(), SupportLevel::BitOriented);
    assert_eq!(points[0].flexibility, Flexibility::High);
    assert_eq!(points[1].flexibility, Flexibility::Medium);
    for p in &points[2..] {
        assert_eq!(p.flexibility, Flexibility::Low);
    }
}

#[test]
fn programmable_controllers_cost_more_than_any_hardwired_baseline() {
    let points = design_points(&Technology::cmos5s(), SupportLevel::BitOriented);
    let min_programmable = points[0].area.ge.min(points[1].area.ge);
    for p in &points[2..] {
        assert!(
            p.area.ge < min_programmable,
            "{} ({:.0} GE) should undercut programmable ({:.0} GE)",
            p.name,
            p.area.ge,
            min_programmable
        );
    }
}

#[test]
fn paper_observation_1_scan_only_redesign_cuts_controller_by_about_60_percent() {
    let obs = observations(&Technology::cmos5s());
    assert!(
        (0.45..=0.70).contains(&obs.scan_only_reduction),
        "got {:.0}%",
        obs.scan_only_reduction * 100.0
    );
}

#[test]
fn paper_observation_2_microcode_beats_progfsm_with_more_flexibility() {
    let obs = observations(&Technology::cmos5s());
    assert!(obs.microcode_vs_progfsm < 1.0, "ratio {:.2}", obs.microcode_vs_progfsm);
}

#[test]
fn paper_observation_3_enhanced_fault_models_grow_the_hardwired_unit() {
    let tech = Technology::cmos5s();
    let level = SupportLevel::BitOriented;
    let seq = [library::march_c(), library::march_c_plus(), library::march_c_plus_plus()];
    let mut last = 0.0;
    for t in &seq {
        let ge = hardwired_design(&tech, t, level).area.ge;
        assert!(ge > last, "{} ({ge:.0} GE) must exceed {last:.0}", t.name());
        last = ge;
    }
    let a_seq = [library::march_a(), library::march_a_plus(), library::march_a_plus_plus()];
    let mut last = 0.0;
    for t in &a_seq {
        let ge = hardwired_design(&tech, t, level).area.ge;
        assert!(ge > last, "{} must grow", t.name());
        last = ge;
    }
}

#[test]
fn paper_observation_4_programmable_gap_narrows_with_enhancement() {
    let obs = observations(&Technology::cmos5s());
    assert!((0.0..1.0).contains(&obs.gap_narrowing), "factor {:.2}", obs.gap_narrowing);
}

#[test]
fn table2_grows_from_table1_for_every_row() {
    let tech = Technology::cmos5s();
    let t1 = table1(&tech);
    let t2 = table2(&tech);
    for row in &t1.rows {
        let name = &row[0];
        let base: f64 = t1.cell(name, "Int. Area (GE)").unwrap().parse().unwrap();
        let word: f64 = t2.cell(name, "Word Int.A. (GE)").unwrap().parse().unwrap();
        let multi: f64 = t2.cell(name, "Multiport Int.A. (GE)").unwrap().parse().unwrap();
        assert!(base < word, "{name}");
        assert!(word < multi, "{name}");
    }
}

#[test]
fn table3_is_consistent_with_its_inputs() {
    let tech = Technology::cmos5s();
    let t3 = table3(&tech);
    for (row, level) in t3.rows.iter().zip(SupportLevel::ALL) {
        let adj: f64 = row[1].parse().unwrap();
        let expected = microcode_design(&tech, CellStyle::ScanOnly, level).area.ge;
        assert!((adj - expected).abs() < 1.0, "{level:?}: {adj} vs {expected}");
    }
}

#[test]
fn storage_dominance_claim_holds() {
    // "Any reduction in the area of the storage units ... has the largest
    // effect": the storage unit must be the single largest contributor of
    // the unadjusted microcode controller.
    let tech = Technology::cmos5s();
    let full = microcode_design(&tech, CellStyle::FullScan, SupportLevel::BitOriented);
    let storage_ge = full.area.of(Primitive::ScanDff);
    assert!(
        storage_ge > full.area.ge / 2.0,
        "storage {storage_ge:.0} GE of {:.0} GE total",
        full.area.ge
    );
    // And the sweep is monotone.
    let pts = storage_cell_sweep(&tech, 1.0, 8.0, 5);
    assert!(pts.windows(2).all(|w| w[0].controller_ge < w[1].controller_ge));
}

#[test]
fn shape_conclusions_are_robust_to_technology_perturbation() {
    // The paper's qualitative conclusions shouldn't hinge on exact cell
    // weights: perturb the flip-flop and scan-cell weights ±15% and
    // re-check the two headline orderings.
    let base = Technology::cmos5s();
    for (dff_scale, cell_scale) in [(0.85, 1.15), (1.15, 0.85), (1.1, 1.1), (0.9, 0.9)] {
        let t = base
            .with_weight(Primitive::Dff, 5.67 * dff_scale)
            .with_weight(Primitive::ScanDff, 7.33 * dff_scale)
            .with_weight(Primitive::ScanOnlyCell, 1.67 * cell_scale);
        let obs = observations(&t);
        assert!(
            obs.scan_only_reduction > 0.35,
            "reduction collapsed at {dff_scale}/{cell_scale}: {:.2}",
            obs.scan_only_reduction
        );
        assert!(obs.enhancement_growth > 1.0);
        let adj = microcode_design(&t, CellStyle::ScanOnly, SupportLevel::BitOriented);
        let fsm = progfsm_design(&t, SupportLevel::BitOriented);
        let hw = hardwired_design(&t, &library::march_c(), SupportLevel::BitOriented);
        assert!(hw.area.ge < adj.area.ge.min(fsm.area.ge));
    }
}
