//! Integration tests for the field-programmability flows: scan loading,
//! the assembler path, transparent in-field testing and diagnostics.

use mbist::core::microcode::{
    assemble, compile, disassemble, MicrocodeConfig, MicrocodeController,
};
use mbist::core::{BistDatapath, BistUnit, FailSignature};
use mbist::march::{expand, library, run_transparent, standard_backgrounds};
use mbist::mem::{CellId, FaultKind, MemGeometry, MemoryArray, PortId};
use mbist::rtl::CellStyle;

#[test]
fn scan_load_cost_is_capacity_times_width() {
    let config = MicrocodeConfig {
        capacity: 24,
        cell_style: CellStyle::ScanOnly,
        ..MicrocodeConfig::default()
    };
    let program = compile(&library::march_c()).unwrap();
    let ctrl = MicrocodeController::new("march-c", &program, config).unwrap();
    assert_eq!(ctrl.scan_cycles(), 24 * 10, "one full-chain scan load");
}

#[test]
fn one_controller_runs_the_entire_algorithm_library_sequentially() {
    let g = MemGeometry::bit_oriented(16);
    let config = MicrocodeConfig { capacity: 64, ..MicrocodeConfig::default() };
    // An empty program is legal: the controller is simply done immediately.
    let mut controller = MicrocodeController::new("idle", &[], config).unwrap();
    for test in library::all() {
        let program = compile(&test).unwrap();
        controller.load_program(test.name(), &program).unwrap();
        let dp = BistDatapath::new(g, standard_backgrounds(1));
        let mut unit = BistUnit::new(controller.clone(), dp);
        assert_eq!(unit.emit_steps(), expand(&test, &g), "{}", test.name());
    }
}

#[test]
fn assembler_source_is_a_complete_program_interchange_format() {
    // compile → disassemble → hand-edit (add a second verification sweep)
    // → reassemble → run.
    let g = MemGeometry::bit_oriented(8);
    let base = compile(&library::mats_plus()).unwrap();
    let mut source = mbist::core::microcode::to_source(&base);
    // Insert an extra read-verify element before the final two loop
    // instructions.
    let lines: Vec<&str> = source.trim().lines().collect();
    let (body, tail) = lines.split_at(lines.len() - 2);
    source = format!("{}\nr0 inc loop\n{}\n", body.join("\n"), tail.join("\n"));
    let patched = assemble(&source).unwrap();
    assert_eq!(patched.len(), base.len() + 1);

    let config = MicrocodeConfig { capacity: 16, ..MicrocodeConfig::default() };
    let ctrl = MicrocodeController::new("mats+r", &patched, config).unwrap();
    let dp = BistDatapath::new(g, standard_backgrounds(1));
    let mut unit = BistUnit::new(ctrl, dp);
    let mut mem = MemoryArray::new(g);
    let report = unit.run(&mut mem);
    assert!(report.passed());
    assert_eq!(report.bus_cycles, (5 + 1) * 8, "extra r0 sweep executed");
    // the disassembly of the patched program still mentions the new sweep
    assert!(disassemble(&patched).contains("r0 inc loop"));
}

#[test]
fn transparent_in_field_test_detects_and_preserves() {
    let g = MemGeometry::word_oriented(32, 8);
    // Healthy in-field memory with live content.
    let mut mem = MemoryArray::new(g);
    mem.randomize(99);
    let before: Vec<u64> = (0..32).map(|a| mem.peek(a).value()).collect();
    let out = run_transparent(&mut mem, &library::march_c(), PortId(0));
    assert!(out.report.passed());
    assert!(out.content_preserved);
    for (a, v) in before.iter().enumerate() {
        assert_eq!(mem.peek(a as u64).value(), *v);
    }

    // Same flow on a corrupted part.
    let mut sick = MemoryArray::with_fault(
        g,
        FaultKind::StuckAt { cell: CellId::new(17, 5), value: true },
    )
    .unwrap();
    sick.randomize(99);
    let out = run_transparent(&mut sick, &library::march_c(), PortId(0));
    assert!(!out.report.passed());
    assert!(out.report.miscompares.iter().all(|m| m.addr == 17));
}

#[test]
fn diagnosis_pipeline_classifies_spatial_signatures() {
    let g = MemGeometry::word_oriented(32, 8);
    // Column defect: same bit stuck across several words.
    let mut mem = MemoryArray::new(g);
    for w in [3u64, 9, 21, 30] {
        mem.inject(FaultKind::StuckAt { cell: CellId::new(w, 6), value: true }).unwrap();
    }
    let mut unit =
        mbist::core::microcode::MicrocodeBist::for_test(&library::march_c(), &g).unwrap();
    let report = unit.run(&mut mem);
    assert!(!report.passed());
    let bitmap = report.fail_log.bitmap(g);
    assert_eq!(bitmap.signature(), FailSignature::SingleColumn);
    assert_eq!(bitmap.failing_cell_count(), 4);
    assert!(bitmap.cells().keys().all(|c| c.bit == 6));
}
