//! The workspace's central property, tested across crates: for every
//! algorithm in the library and every memory organization, the microcode
//! controller, the programmable FSM controller (when the algorithm is
//! expressible) and the hardwired controller emit *exactly* the operation
//! stream of the reference march expansion.

use mbist::core::{
    hardwired::HardwiredBist, microcode::MicrocodeBist, progfsm::ProgFsmBist, CoreError,
};
use mbist::march::{expand, library};
use mbist::mem::MemGeometry;

fn geometries() -> Vec<MemGeometry> {
    vec![
        MemGeometry::bit_oriented(1),
        MemGeometry::bit_oriented(2),
        MemGeometry::bit_oriented(7),
        MemGeometry::bit_oriented(16),
        MemGeometry::word_oriented(5, 3),
        MemGeometry::word_oriented(8, 8),
        MemGeometry::new(4, 4, 2),
        MemGeometry::new(3, 1, 3),
    ]
}

#[test]
fn microcode_equals_reference_everywhere() {
    for test in library::all() {
        for g in geometries() {
            let mut unit = MicrocodeBist::for_test(&test, &g)
                .unwrap_or_else(|e| panic!("{} on {g}: {e}", test.name()));
            assert_eq!(
                unit.emit_steps(),
                expand(&test, &g),
                "microcode mismatch: {} on {g}",
                test.name()
            );
        }
    }
}

#[test]
fn progfsm_equals_reference_or_is_explicitly_inexpressible() {
    for test in library::all() {
        for g in geometries() {
            match ProgFsmBist::for_test(&test, &g) {
                Ok(mut unit) => assert_eq!(
                    unit.emit_steps(),
                    expand(&test, &g),
                    "progfsm mismatch: {} on {g}",
                    test.name()
                ),
                Err(CoreError::NotExpressible { architecture, .. }) => {
                    assert_eq!(architecture, "programmable-fsm");
                    assert!(
                        ["march-b", "march-c++", "march-a++", "march-ss", "march-g"]
                            .contains(&test.name()),
                        "{} should be expressible",
                        test.name()
                    );
                }
                Err(other) => panic!("{}: {other}", test.name()),
            }
        }
    }
}

#[test]
fn hardwired_equals_reference_everywhere() {
    for test in library::all() {
        for g in geometries() {
            let mut unit = HardwiredBist::for_test(&test, &g);
            assert_eq!(
                unit.emit_steps(),
                expand(&test, &g),
                "hardwired mismatch: {} on {g}",
                test.name()
            );
        }
    }
}

#[test]
fn architectures_agree_with_each_other_cycle_for_cycle() {
    // Transitivity is implied by the reference checks above, but assert the
    // pairwise form once directly on a non-trivial configuration.
    let g = MemGeometry::new(6, 4, 2);
    let test = library::march_a_plus();
    let micro = MicrocodeBist::for_test(&test, &g).unwrap().emit_steps();
    let fsm = ProgFsmBist::for_test(&test, &g).unwrap().emit_steps();
    let hard = HardwiredBist::for_test(&test, &g).emit_steps();
    assert_eq!(micro, fsm);
    assert_eq!(fsm, hard);
}

#[test]
fn custom_parsed_algorithm_runs_identically_on_microcode_and_hardwired() {
    // A hand-written diagnostic algorithm outside the library.
    let test = mbist::march::MarchTest::parse(
        "diag-ping-pong",
        "m(w0); u(r0,w1,r1,w0); d(r0,w1); u(r1,w0,r0); m(r0)",
    )
    .unwrap();
    let g = MemGeometry::word_oriented(9, 2);
    let reference = expand(&test, &g);
    assert_eq!(MicrocodeBist::for_test(&test, &g).unwrap().emit_steps(), reference);
    assert_eq!(HardwiredBist::for_test(&test, &g).emit_steps(), reference);
}
