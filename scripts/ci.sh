#!/usr/bin/env sh
# Offline CI gate for the workspace: everything here runs with zero
# registry access (external dev-dependencies are vendored API-subset shims
# under vendor/).
set -eu

cd "$(dirname "$0")/.."

echo "==> formatting"
cargo fmt --all --check

echo "==> build (release)"
cargo build --release --workspace

echo "==> tier-1 tests (default features)"
cargo test -q
cargo test -q --workspace

echo "==> property suites (vendored proptest shim)"
: "${PROPTEST_CASES:=32}"
export PROPTEST_CASES
cargo test -q --features proptest
cargo test -q -p mbist-mem -p mbist-rtl -p mbist-logic -p mbist-core -p mbist-march \
    --features proptest

echo "==> parallel fault-simulation determinism regression"
cargo test -q -p mbist-march --test parallel_determinism

echo "==> cross-engine equivalence (full vs sliced vs packed)"
cargo test -q -p mbist-march --test engine_corpus
cargo test -q -p mbist-march --test sliced_equivalence --features proptest

echo "==> clippy (deny warnings)"
cargo clippy --workspace --no-default-features -- -D warnings
cargo clippy --workspace --all-features --all-targets -- -D warnings

echo "==> coverage-engine perf smoke (std-only harness)"
perf_out=$(cargo run --release -p mbist-bench --bin perf -- \
    --quick --out /tmp/BENCH_coverage_ci.json)
echo "$perf_out"
# every (test, geometry) pair must report cross-mode (incl. sliced vs
# full) agreement on the detection count, with all eight modes (so the
# packed engine is part of the agreement, not just the timed table)
[ "$(echo "$perf_out" | grep -c "agreement OK (8 modes")" -eq 2 ] || {
    echo "perf smoke missing eight-mode agreement lines"; exit 1; }
echo "$perf_out" | grep -q "batchable subset: packed_vs_sliced_batchable" || {
    echo "perf smoke missing the packed batchable-subset ratio"; exit 1; }
# the per-class routing breakdown must account for every sampled fault
echo "$perf_out" | grep -q ": routing OK (" || {
    echo "perf smoke missing the routing-breakdown accounting line"; exit 1; }
# whole-run speedup floor: the packed engine under the fan-out must beat
# the sliced engine under the same fan-out by at least 2x on the quick
# configuration (the ratio the summary line reports)
packed_ratio=$(echo "$perf_out" \
    | sed -n 's/.*packed_parallel_vs_sliced_parallel \([0-9.]*\)x.*/\1/p')
[ -n "$packed_ratio" ] || {
    echo "perf smoke missing packed_parallel_vs_sliced_parallel"; exit 1; }
awk -v r="$packed_ratio" 'BEGIN { exit (r >= 2.0) ? 0 : 1 }' || {
    echo "packed_parallel whole-run speedup $packed_ratio below 2.0x floor"
    exit 1; }

echo "==> packed-engine perf smoke (sliced vs packed head-to-head)"
packed_out=$(cargo run --release -p mbist-bench --bin perf -- \
    --quick --modes sliced,packed --out /tmp/BENCH_packed_ci.json)
echo "$packed_out"
[ "$(echo "$packed_out" | grep -c "agreement OK (2 modes")" -eq 2 ] || {
    echo "packed smoke missing sliced/packed agreement lines"; exit 1; }
echo "$packed_out" | grep -q "batchable subset: packed_vs_sliced_batchable" || {
    echo "packed smoke missing the batchable-subset comparison"; exit 1; }

echo "==> search-synthesis smoke (fixed seed: converges, no longer than march-c)"
synth_out=$(cargo run --release -p mbist-bench --bin synthsearch -- \
    --quick --out /tmp/BENCH_synth_ci.json)
echo "$synth_out"
# both strategies must converge at 100% with a test no longer than the
# handwritten march-c on the same sampled universe
[ "$(echo "$synth_out" | grep -c "^search OK:")" -eq 2 ] || {
    echo "search smoke missing per-strategy OK lines"; exit 1; }
# the batched oracle must beat the serial legacy path head-to-head on the
# same candidates by at least 4x even on the quick configuration
batched_ratio=$(echo "$synth_out" \
    | sed -n 's/.*batched_vs_serial \([0-9.]*\)x.*/\1/p')
[ -n "$batched_ratio" ] || {
    echo "search smoke missing the batched_vs_serial line"; exit 1; }
awk -v r="$batched_ratio" 'BEGIN { exit (r >= 4.0) ? 0 : 1 }' || {
    echo "batched_vs_serial speedup $batched_ratio below 4.0x floor"; exit 1; }
# determinism: the same fixed seed must reproduce the identical result
# (test, coverage, evaluation count) on a re-run; the nested "timing"
# objects are the only legitimately nondeterministic content, so strip
# them wholesale before comparing
strip_timing='s/"timing": \{[^}]*\}/"timing": null/g'
cargo run -q --release -p mbist-bench --bin synthsearch -- \
    --quick --out /tmp/BENCH_synth_ci2.json > /dev/null
sed -E "$strip_timing" /tmp/BENCH_synth_ci.json > /tmp/BENCH_synth_ci.stable
sed -E "$strip_timing" /tmp/BENCH_synth_ci2.json > /tmp/BENCH_synth_ci2.stable
diff /tmp/BENCH_synth_ci.stable /tmp/BENCH_synth_ci2.stable > /dev/null || {
    echo "search re-run with the same seed diverged"; exit 1; }
# ...and the CLI front-end honors the same determinism across --jobs
# (batched speculation joins in candidate order) and across engines
# (packed fast paths and the sliced reference count identically)
cli_a=$(cargo run -q --release -p mbist-cli -- synth-search \
    --universe saf,tf,cfid --words 32 --budget 300 --seed 9 --jobs 1)
cli_b=$(cargo run -q --release -p mbist-cli -- synth-search \
    --universe saf,tf,cfid --words 32 --budget 300 --seed 9 --jobs 3)
[ "$cli_a" = "$cli_b" ] || {
    echo "synth-search output differs across --jobs"; exit 1; }
cli_sliced=$(cargo run -q --release -p mbist-cli -- synth-search \
    --universe saf,tf,cfid --words 32 --budget 300 --seed 9 --engine sliced)
[ "$cli_a" = "$cli_sliced" ] || {
    echo "synth-search output differs between packed and sliced engines"; exit 1; }
echo "$cli_a" | grep -q "converged" || {
    echo "synth-search smoke did not converge"; exit 1; }

echo "==> fault-injection smoke (one SEU per architecture: detect + recover)"
for arch in microcode progfsm; do
    out=$(cargo run -q --release -p mbist-cli -- \
        inject-upset march-c --words 16 --arch "$arch" --bit 5)
    echo "$out" | grep -q "(detected)" || {
        echo "SEU not detected on $arch"; exit 1; }
    echo "$out" | grep -q "1 reload(s)" || {
        echo "SEU not recovered on $arch"; exit 1; }
    echo "$out" | grep -q "PASS" || {
        echo "post-recovery session failed on $arch"; exit 1; }
done
# the watchdog abort must map to its dedicated exit code
if cargo run -q --release -p mbist-cli -- \
    run march-c --words 16 --cycle-budget 10 2>/dev/null; then
    echo "starved cycle budget did not abort"; exit 1
else
    [ $? -eq 4 ] || { echo "watchdog abort must exit 4"; exit 1; }
fi

echo "==> robustness sweep smoke (std-only harness)"
cargo run --release -p mbist-bench --bin robustness -- --quick --out /tmp/BENCH_robustness_ci.json

echo "==> service smoke (daemon on an ephemeral port + loadgen burst)"
svc_log=/tmp/mbist_service_ci.log
cargo run -q --release -p mbist-cli -- serve --addr 127.0.0.1:0 --workers 2 \
    > "$svc_log" 2>&1 &
svc_pid=$!
i=0
until grep -q "listening on" "$svc_log"; do
    i=$((i + 1))
    [ "$i" -lt 100 ] || { echo "daemon never came up"; cat "$svc_log"; exit 1; }
    sleep 0.1
done
addr=$(sed -n 's/^mbist-service listening on \([0-9.:]*\) .*/\1/p' "$svc_log")
svc_out=$(cargo run -q --release -p mbist-bench --bin loadgen -- \
    --quick --addr "$addr" --shutdown --out /tmp/BENCH_service_ci.json)
echo "$svc_out"
# the daemon's responses must be byte-identical to the offline CLI
[ "$(echo "$svc_out" | grep -c "agreement OK")" -eq 3 ] || {
    echo "service smoke missing agreement lines"; exit 1; }
wait "$svc_pid" || { echo "daemon exited non-zero"; cat "$svc_log"; exit 1; }
# the protocol shutdown must drain the queue and flush the summary
grep -q "drained" "$svc_log" || {
    echo "daemon did not report a clean drain"; cat "$svc_log"; exit 1; }

echo "==> sharded service smoke (router + 2 shards, both protocols)"
shard_log=/tmp/mbist_sharded_ci.log
cargo run -q --release -p mbist-cli -- serve --addr 127.0.0.1:0 --shards 2 --workers 1 \
    > "$shard_log" 2>&1 &
shard_pid=$!
i=0
until grep -q "listening on" "$shard_log"; do
    i=$((i + 1))
    [ "$i" -lt 100 ] || { echo "sharded fleet never came up"; cat "$shard_log"; exit 1; }
    sleep 0.1
done
shard_addr=$(sed -n 's/^mbist-service listening on \([0-9.:]*\) .*/\1/p' "$shard_log")
# line-JSON pass first (no shutdown: the binary pass reuses the fleet)...
shard_json_out=$(cargo run -q --release -p mbist-bench --bin loadgen -- \
    --quick --addr "$shard_addr" --out /tmp/BENCH_sharded_json_ci.json)
echo "$shard_json_out"
[ "$(echo "$shard_json_out" | grep -c "agreement OK")" -eq 3 ] || {
    echo "sharded smoke (json) missing agreement lines"; exit 1; }
# ...then the binary protocol over the same router, which drains the fleet
shard_bin_out=$(cargo run -q --release -p mbist-bench --bin loadgen -- \
    --quick --addr "$shard_addr" --protocol binary --shutdown \
    --out /tmp/BENCH_sharded_binary_ci.json)
echo "$shard_bin_out"
[ "$(echo "$shard_bin_out" | grep -c "agreement OK")" -eq 3 ] || {
    echo "sharded smoke (binary) missing agreement lines"; exit 1; }
wait "$shard_pid" || { echo "sharded fleet exited non-zero"; cat "$shard_log"; exit 1; }
grep -q "drained" "$shard_log" || {
    echo "sharded fleet did not report a clean drain"; cat "$shard_log"; exit 1; }
grep -q "^router: forwarded" "$shard_log" || {
    echo "sharded fleet missing the router summary"; cat "$shard_log"; exit 1; }

echo "==> chaos smoke (fault-injecting daemon + resilient loadgen)"
chaos_log=/tmp/mbist_chaos_ci.log
cargo run -q --release -p mbist-cli -- serve --addr 127.0.0.1:0 --workers 2 \
    --chaos seed=7,panic=0.05,delay=0.05,drop=0.02 > "$chaos_log" 2>&1 &
chaos_pid=$!
i=0
until grep -q "listening on" "$chaos_log"; do
    i=$((i + 1))
    [ "$i" -lt 100 ] || { echo "chaos daemon never came up"; cat "$chaos_log"; exit 1; }
    sleep 0.1
done
grep -q "chaos injection armed" "$chaos_log" || {
    echo "chaos daemon did not arm injection"; cat "$chaos_log"; exit 1; }
chaos_addr=$(sed -n 's/^mbist-service listening on \([0-9.:]*\) .*/\1/p' "$chaos_log")
chaos_out=$(cargo run -q --release -p mbist-bench --bin loadgen -- \
    --quick --chaos --addr "$chaos_addr" --shutdown --out /tmp/BENCH_chaos_ci.json)
echo "$chaos_out"
# under injected faults the retrying client must still see >= 0.99
# availability...
chaos_avail=$(echo "$chaos_out" | sed -n 's/.*availability \([0-9.]*\),.*/\1/p' | head -1)
[ -n "$chaos_avail" ] || { echo "chaos smoke missing availability"; exit 1; }
awk -v a="$chaos_avail" 'BEGIN { exit (a >= 0.99) ? 0 : 1 }' || {
    echo "chaos availability $chaos_avail below the 0.99 floor"; exit 1; }
# ...and zero lost responses: every accepted request got exactly one
# terminal outcome
echo "$chaos_out" | grep -q "lost 0," || {
    echo "chaos smoke lost responses"; exit 1; }
wait "$chaos_pid" || { echo "chaos daemon exited non-zero"; cat "$chaos_log"; exit 1; }
grep -q "drained" "$chaos_log" || {
    echo "chaos daemon did not report a clean drain"; cat "$chaos_log"; exit 1; }

echo "CI OK"
