#!/usr/bin/env sh
# Offline CI gate for the workspace: everything here runs with zero
# registry access (external dev-dependencies are vendored API-subset shims
# under vendor/).
set -eu

cd "$(dirname "$0")/.."

echo "==> build (release)"
cargo build --release --workspace

echo "==> tier-1 tests (default features)"
cargo test -q
cargo test -q --workspace

echo "==> property suites (vendored proptest shim)"
: "${PROPTEST_CASES:=32}"
export PROPTEST_CASES
cargo test -q --features proptest
cargo test -q -p mbist-mem -p mbist-rtl -p mbist-logic --features proptest

echo "==> parallel fault-simulation determinism regression"
cargo test -q -p mbist-march --test parallel_determinism

echo "==> clippy (deny warnings)"
cargo clippy --workspace --no-default-features -- -D warnings
cargo clippy --workspace --all-features --all-targets -- -D warnings

echo "==> coverage-engine perf smoke (std-only harness)"
cargo run --release -p mbist-bench --bin perf -- --quick --out /tmp/BENCH_coverage_ci.json

echo "CI OK"
