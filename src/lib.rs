//! # mbist — programmable memory built-in self-test
//!
//! A workspace-level facade re-exporting the MBIST crates, reproducing
//! *On Programmable Memory Built-In Self Test Architectures*
//! (Zarrineh & Upadhyaya, DATE 1999):
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`rtl`]   | `mbist-rtl`   | bit vectors, counters, scan chains, structures, VCD |
//! | [`logic`] | `mbist-logic` | two-level minimization, gate estimation |
//! | [`mem`]   | `mbist-mem`   | fault-injectable memory simulator |
//! | [`march`] | `mbist-march` | march algorithms, expansion, coverage |
//! | [`core`]  | `mbist-core`  | the three BIST controller architectures |
//! | [`area`]  | `mbist-area`  | technology model, synthesis, Tables 1-3 |
//! | [`hdl`]   | `mbist-hdl`   | Verilog emission and structural linting |
//!
//! # Examples
//!
//! Compile March C for the microcode architecture and test a faulty
//! memory:
//!
//! ```
//! use mbist::core::microcode::MicrocodeBist;
//! use mbist::march::library;
//! use mbist::mem::{CellId, FaultKind, MemGeometry, MemoryArray};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let geometry = MemGeometry::bit_oriented(256);
//! let mut unit = MicrocodeBist::for_test(&library::march_c(), &geometry)?;
//! let mut mem = MemoryArray::with_fault(
//!     geometry,
//!     FaultKind::Transition { cell: CellId::bit_oriented(100), rising: true },
//! )?;
//! let report = unit.run(&mut mem);
//! assert!(!report.passed());
//! assert_eq!(report.fail_log.miscompares().next().unwrap().addr, 100);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mbist_area as area;
pub use mbist_core as core;
pub use mbist_hdl as hdl;
pub use mbist_logic as logic;
pub use mbist_march as march;
pub use mbist_mem as mem;
pub use mbist_rtl as rtl;
