//! Field update: change the test algorithm of a deployed BIST controller
//! with zero hardware change.
//!
//! A product engineer discovers escapes caused by a fault mechanism the
//! production algorithm misses. With a hardwired controller this is a
//! silicon re-spin; with the paper's programmable architectures it is a
//! text file: parse the new march notation, compile, scan-load.
//!
//! Run with `cargo run --example field_update`.

use mbist::core::microcode::{self, MicrocodeConfig, MicrocodeController};
use mbist::core::{BistDatapath, BistUnit};
use mbist::march::{library, standard_backgrounds, MarchTest};
use mbist::mem::{CellId, FaultKind, MemGeometry, MemoryArray};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let geometry = MemGeometry::bit_oriented(512);

    // The deployed design: a microcode controller with a 32-instruction
    // store, shipped running March C.
    let config = MicrocodeConfig { capacity: 32, ..MicrocodeConfig::default() };
    let march_c = library::march_c();
    let mut controller =
        MicrocodeController::new(march_c.name(), &microcode::compile(&march_c)?, config)?;
    println!(
        "shipped program: {} ({} instructions, {} scan clocks to load)",
        march_c,
        controller.program().len(),
        controller.scan_cycles()
    );

    // An escape shows up: a cell with a disconnected pull-up passes March C
    // (its first read after a write is still good) but fails in the field.
    let pull_open = FaultKind::PullOpen {
        cell: CellId::bit_oriented(137),
        good_reads: 2,
        decays_to: false,
    };
    let mut escape = MemoryArray::with_fault(geometry, pull_open)?;
    let dp = BistDatapath::new(geometry, standard_backgrounds(1));
    let mut unit = BistUnit::new(controller.clone(), dp);
    let report = unit.run(&mut escape);
    println!("March C on the escape part: passed = {} (the escape!)", report.passed());

    // The fix arrives as march notation in a field-update bulletin — the
    // triple-read transform that excites disconnected pull-ups.
    let bulletin = "m(w0); \
                    u(r0,r0,r0,w1); u(r1,r1,r1,w0); \
                    d(r0,r0,r0,w1); d(r1,r1,r1,w0); \
                    m(r0,r0,r0)";
    let updated = MarchTest::parse("march-c-triple", bulletin)?;
    let program = microcode::compile(&updated)?;
    let scan_clocks = controller.load_program(updated.name(), &program)?;
    println!(
        "\nfield update `{}` loaded: {} instructions, one scan load of {} clocks",
        updated.name(),
        program.len(),
        scan_clocks
    );

    // Same silicon, new algorithm: the escape is now caught.
    let mut escape = MemoryArray::with_fault(geometry, pull_open)?;
    let dp = BistDatapath::new(geometry, standard_backgrounds(1));
    let mut unit = BistUnit::new(controller, dp);
    let report = unit.run(&mut escape);
    println!(
        "updated algorithm on the escape part: passed = {}, {} miscompares at addr {:#x}",
        report.passed(),
        report.fail_log.len(),
        report.fail_log.miscompares().next().map_or(0, |m| m.addr)
    );
    assert!(!report.passed(), "the update must catch the escape");

    // The same update is NOT expressible on the programmable FSM-based
    // architecture — its elements are outside the SM0..SM7 menu. This is
    // the paper's flexibility ordering, live:
    match mbist::core::progfsm::compile(&updated) {
        Err(e) => println!("\nprogrammable-FSM architecture rejects it: {e}"),
        Ok(_) => unreachable!("triple reads are outside the component menu"),
    }
    Ok(())
}
