//! Quickstart: build a microcode-based memory BIST unit, run March C
//! against a fault-injected embedded SRAM, and inspect the results.
//!
//! Run with `cargo run --example quickstart`.

use mbist::core::microcode::{self, MicrocodeBist};
use mbist::core::BistController;
use mbist::march::library;
use mbist::mem::{CellId, FaultKind, MemGeometry, MemoryArray};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 1K×1 bit-oriented, single-port embedded SRAM — the paper's Table 1
    // configuration.
    let geometry = MemGeometry::bit_oriented(1024);

    // Compile March C to microcode. The compiler spots the algorithm's
    // symmetric structure and folds the second half behind a single
    // `repeat` instruction: 9 instructions for a 10n algorithm.
    let test = library::march_c();
    let program = microcode::compile(&test)?;
    println!("{} compiled to {} microinstructions:", test, program.len());
    print!("{}", microcode::disassemble(&program));

    // Build the full BIST unit (controller + address/data generators +
    // comparator) and run it against a fault-free memory first.
    let mut unit = MicrocodeBist::for_test(&test, &geometry)?;
    let mut good = MemoryArray::new(geometry);
    let report = unit.run(&mut good);
    println!(
        "\nfault-free run: {} cycles for {} memory operations ({} overhead), passed = {}",
        report.cycles,
        report.bus_cycles,
        report.overhead_cycles(),
        report.passed()
    );

    // Now inject a rising-transition fault and run again.
    let mut bad = MemoryArray::with_fault(
        geometry,
        FaultKind::Transition { cell: CellId::bit_oriented(321), rising: true },
    )?;
    let report = unit.run(&mut bad);
    println!(
        "faulty run: {} miscompares, first at {}",
        report.fail_log.len(),
        report.fail_log.miscompares().next().expect("march C detects TFs")
    );

    // The same hardware runs a completely different algorithm after a
    // single scan load — that is the architecture's whole point.
    println!(
        "\ncontroller flexibility: {} (architecture `{}`)",
        unit.controller().flexibility(),
        unit.controller().architecture()
    );
    Ok(())
}
