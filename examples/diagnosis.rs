//! Diagnosis: use the programmable BIST as a lab instrument — capture a
//! fail log, fold it into a bitmap, classify the spatial signature, and
//! dump a waveform of the failing session.
//!
//! Run with `cargo run --example diagnosis` (writes `diagnosis.vcd`).

use std::fs::File;
use std::io::BufWriter;

use mbist::core::microcode::MicrocodeBist;
use mbist::core::repair::{allocate_repair, Redundancy};
use mbist::march::library;
use mbist::mem::{CellId, FaultKind, MemGeometry, MemoryArray};
use mbist::rtl::{vcd, Trace};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A word-oriented part back from the field: 64×8.
    let geometry = MemGeometry::word_oriented(64, 8);

    // The defect: a word-line-local short — modeled as idempotent coupling
    // between two bits of word 0x21 plus a stuck-at in the same word.
    let mut mem = MemoryArray::new(geometry);
    mem.inject(FaultKind::StuckAt { cell: CellId::new(0x21, 3), value: true })?;
    mem.inject(FaultKind::CouplingIdempotent {
        aggressor: CellId::new(0x21, 5),
        victim: CellId::new(0x21, 6),
        rising: true,
        forced: true,
    })?;

    // Run March C with full tracing.
    let mut unit = MicrocodeBist::for_test(&library::march_c(), &geometry)?;
    let mut trace = Trace::new();
    let report = unit.run_traced(&mut mem, &mut trace);

    println!(
        "session: {} cycles, {} miscompares logged",
        report.cycles,
        report.fail_log.len()
    );
    for (cycle, m) in report.fail_log.entries().iter().take(5) {
        println!("  cycle {cycle:>6}: {m}  syndrome {}", m.syndrome());
    }
    if report.fail_log.len() > 5 {
        println!("  … {} more", report.fail_log.len() - 5);
    }

    // Fold the log into a failure bitmap and classify it.
    let bitmap = report.fail_log.bitmap(geometry);
    println!("\nfailure bitmap ({} failing cells):", bitmap.failing_cell_count());
    print!("{bitmap}");
    println!("signature: {:?}", bitmap.signature());

    // Redundancy allocation: can the on-macro spares fix this part?
    let solution = allocate_repair(&bitmap, Redundancy { spare_rows: 1, spare_cols: 1 });
    if solution.is_repaired() {
        println!(
            "\nrepairable: spare rows -> {:x?}, spare columns -> {:?}",
            solution.row_repairs, solution.col_repairs
        );
    } else {
        println!("\nNOT repairable: {} cells uncovered", solution.uncovered.len());
    }

    // Dump the traced session for a waveform viewer.
    let file = File::create("diagnosis.vcd")?;
    vcd::write(BufWriter::new(file), "mbist", &trace)?;
    println!("\nwaveform written to diagnosis.vcd (open with GTKWave)");
    Ok(())
}
