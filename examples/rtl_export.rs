//! RTL export: generate a synthesizable Verilog BIST implementation from
//! the verified Rust models — the hand-off point from architecture
//! exploration to an ASIC flow.
//!
//! Writes `rtl_out/` containing the microcode controller, the datapath,
//! the top-level unit, a hardwired comparison controller and a
//! self-checking testbench. Run with `cargo run --example rtl_export`.

use std::fs;
use std::path::Path;

use mbist::core::hardwired::HardwiredCaps;
use mbist::core::microcode::compile;
use mbist::hdl::{
    assert_clean, emit_datapath, emit_hardwired, emit_microcode, emit_progfsm,
    emit_testbench, emit_top,
};
use mbist::march::library;
use mbist::mem::MemGeometry;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out = Path::new("rtl_out");
    fs::create_dir_all(out)?;

    let geometry = MemGeometry::word_oriented(1024, 8);
    let z = 20; // the paper-scale design point: holds the C/A family

    // The programmable unit: controller + datapath + top.
    let ctrl = emit_microcode(z, "mbist_microcode_ctrl");
    assert_clean(&ctrl);
    fs::write(out.join("mbist_microcode_ctrl.v"), ctrl.emit())?;

    let dp = emit_datapath(&geometry, "mbist_datapath");
    assert_clean(&dp);
    fs::write(out.join("mbist_datapath.v"), dp.emit())?;

    let top = emit_top(&geometry, "mbist_top");
    assert_clean(&top);
    fs::write(out.join("mbist_top.v"), top.emit())?;

    // The programmable FSM controller for comparison.
    let pf = emit_progfsm(12, "mbist_progfsm_ctrl");
    assert_clean(&pf);
    fs::write(out.join("mbist_progfsm_ctrl.v"), pf.emit())?;

    // A hardwired March C controller for area/behavior comparison.
    let hw = emit_hardwired(
        &library::march_c(),
        HardwiredCaps { background_loop: true, port_loop: false },
        "march_c_hardwired",
    );
    assert_clean(&hw);
    fs::write(out.join("march_c_hardwired.v"), hw.emit())?;

    // Self-checking testbench with the March C image pre-compiled.
    let tb = emit_testbench(&library::march_c(), &geometry, z, "mbist_top")?;
    fs::write(out.join("tb_march_c.v"), tb)?;

    let program = compile(&library::march_c())?;
    println!("wrote rtl_out/:");
    for f in [
        "mbist_microcode_ctrl.v",
        "mbist_datapath.v",
        "mbist_top.v",
        "mbist_progfsm_ctrl.v",
        "march_c_hardwired.v",
        "tb_march_c.v",
    ] {
        let len = fs::metadata(out.join(f))?.len();
        println!("  {f:<26} {len:>6} bytes");
    }
    println!(
        "\nprogram image: {} instructions ({} scan bits for Z={z}); simulate with\n  iverilog -o tb rtl_out/*.v && vvp tb   (expect MBIST_PASS)",
        program.len(),
        z * 10
    );
    Ok(())
}
