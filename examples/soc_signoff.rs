//! SoC sign-off: pick a BIST architecture for a chip with many embedded
//! memories — the design-space exploration the paper's Tables 1-3 feed.
//!
//! For each memory on the SoC the flow (1) checks which architectures can
//! express the required algorithm, (2) verifies the generated operation
//! stream against the reference expansion, (3) measures test time, and
//! (4) totals controller silicon for the three candidate strategies.
//!
//! Run with `cargo run --example soc_signoff`.

use mbist::area::{
    hardwired_design, microcode_design, progfsm_design, SupportLevel, Technology,
};
use mbist::core::{
    hardwired::HardwiredBist, microcode::MicrocodeBist, progfsm::ProgFsmBist,
};
use mbist::march::{expand, library, MarchTest};
use mbist::mem::{MemGeometry, MemoryArray};
use mbist::rtl::CellStyle;

struct SocMemory {
    name: &'static str,
    geometry: MemGeometry,
    algorithm: MarchTest,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let memories = [
        SocMemory {
            name: "cpu-dcache-tag",
            geometry: MemGeometry::word_oriented(256, 8),
            algorithm: library::march_c(),
        },
        SocMemory {
            name: "dsp-coeff-ram",
            geometry: MemGeometry::new(512, 16, 2), // dual-port
            algorithm: library::march_a(),
        },
        SocMemory {
            name: "retention-buffer",
            geometry: MemGeometry::word_oriented(128, 4),
            algorithm: library::march_c_plus(),
        },
        SocMemory {
            name: "io-fifo",
            geometry: MemGeometry::bit_oriented(64),
            algorithm: library::march_b(), // linked-fault screen
        },
    ];

    println!(
        "{:<18} {:<10} {:<10} {:>10} {:>9} {:>9}",
        "memory", "geometry", "algorithm", "ops", "microcode", "prog-fsm"
    );
    for m in &memories {
        let reference = expand(&m.algorithm, &m.geometry);
        let ops = reference.iter().filter(|s| s.as_bus().is_some()).count();

        // Microcode path: always expressible; verify stream equivalence.
        let micro = MicrocodeBist::for_test(&m.algorithm, &m.geometry).map(|mut u| {
            assert_eq!(u.emit_steps(), reference, "{} stream mismatch", m.name);
            let mut mem = MemoryArray::new(m.geometry);
            u.run(&mut mem).cycles
        });

        // Programmable FSM path: may be inexpressible.
        let fsm = ProgFsmBist::for_test(&m.algorithm, &m.geometry).map(|mut u| {
            assert_eq!(u.emit_steps(), reference, "{} stream mismatch", m.name);
            let mut mem = MemoryArray::new(m.geometry);
            u.run(&mut mem).cycles
        });

        println!(
            "{:<18} {:<10} {:<10} {:>10} {:>9} {:>9}",
            m.name,
            m.geometry.to_string(),
            m.algorithm.name(),
            ops,
            micro.map_or("-".into(), |c| c.to_string()),
            fsm.map_or("n/a".into(), |c| c.to_string()),
        );

        // Hardwired always works; sanity-run it too.
        let mut hw = HardwiredBist::for_test(&m.algorithm, &m.geometry);
        assert_eq!(hw.emit_steps(), reference);
    }

    // Silicon totals for three strategies across the whole SoC.
    let tech = Technology::cmos5s();
    let n = memories.len() as f64;
    let micro_total =
        microcode_design(&tech, CellStyle::ScanOnly, SupportLevel::Multiport).area.um2 * n;
    let fsm_total = progfsm_design(&tech, SupportLevel::Multiport).area.um2 * n;
    let hw_total: f64 = memories
        .iter()
        .map(|m| hardwired_design(&tech, &m.algorithm, SupportLevel::Multiport).area.um2)
        .sum();

    println!("\ncontroller silicon for {} memories:", memories.len());
    println!("  one adjusted microcode controller per memory: {micro_total:>9.0} um^2 (every algorithm, field-updatable)");
    println!("  one programmable FSM controller per memory:   {fsm_total:>9.0} um^2 (march-b / ++ variants NOT expressible)");
    println!("  one hardwired controller per memory:          {hw_total:>9.0} um^2 (no flexibility: any change is a re-spin)");
    Ok(())
}
