//! Retention screening: the manufacturing-flow scenario from the paper's
//! motivation — the *same* programmable BIST hardware runs a fast
//! production algorithm at wafer sort and a slow data-retention screen at
//! final test, where a hardwired controller would need two designs.
//!
//! Run with `cargo run --example retention_screen`.

use mbist::core::microcode::MicrocodeBist;
use mbist::march::library;
use mbist::mem::{CellId, FaultKind, MemGeometry, MemoryArray};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Keep the array small enough that a pause-free March C sweep revisits
    // every cell well inside the retention time (on a 2K array the sweeps
    // themselves would exceed 50 µs and even plain March C would catch the
    // leak — the simulator models that, too).
    let geometry = MemGeometry::bit_oriented(512);

    // A weak cell: holds data fine under activity, leaks to 1 after ~50 µs
    // without refresh.
    let weak_cell = FaultKind::Retention {
        cell: CellId::bit_oriented(300),
        decays_to: true,
        retention_ns: 50_000.0,
    };

    // Wafer sort: March C (10n), no pauses — fast, catches hard defects.
    let sort_test = library::march_c();
    let mut unit = MicrocodeBist::for_test(&sort_test, &geometry)?;
    let mut die = MemoryArray::with_fault(geometry, weak_cell)?;
    let sort = unit.run(&mut die);
    println!(
        "wafer sort ({}): {} cycles, {:.1} us test time, passed = {}",
        sort_test.name(),
        sort.cycles,
        (sort.cycles as f64 * 10.0 + sort.pause_ns) / 1000.0,
        sort.passed()
    );
    assert!(sort.passed(), "the weak cell sails through wafer sort");

    // Final test: re-program the same controller with March C+ — the
    // retention variant with two 100 µs pauses.
    let final_test = library::march_c_plus();
    let mut unit = MicrocodeBist::for_test(&final_test, &geometry)?;
    let mut die = MemoryArray::with_fault(geometry, weak_cell)?;
    let ft = unit.run(&mut die);
    println!(
        "final test ({}): {} cycles + {:.0} us pause, passed = {}",
        final_test.name(),
        ft.cycles,
        ft.pause_ns / 1000.0,
        ft.passed()
    );
    assert!(!ft.passed(), "the retention screen must catch the weak cell");
    println!(
        "weak cell caught at addr {:#x} — same BIST hardware, different program",
        ft.fail_log.miscompares().next().expect("failure logged").addr
    );

    // Cost of the stronger screen, quantified:
    let sort_ns = sort.cycles as f64 * 10.0 + sort.pause_ns;
    let ft_ns = ft.cycles as f64 * 10.0 + ft.pause_ns;
    println!(
        "\nscreen cost: {:.1}x test time ({:.1} us → {:.1} us)",
        ft_ns / sort_ns,
        sort_ns / 1000.0,
        ft_ns / 1000.0
    );
    Ok(())
}
