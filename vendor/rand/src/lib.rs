//! Offline stand-in for the [`rand`](https://docs.rs/rand) crate.
//!
//! The build environment for this workspace has no registry access, so the
//! real `rand` cannot be resolved. Nothing in the workspace currently calls
//! into `rand` (the `mem` crate ships its own std-only generators in
//! `mbist_mem::rng`), but the dependency edge is kept resolvable so future
//! randomized helpers can opt in without touching manifests. This shim
//! provides a deterministic xorshift64* generator behind a tiny `Rng`
//! trait — it is **not** cryptographically secure.

/// Minimal random-value interface.
pub trait Rng {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Uniform in `[0, n)`; returns 0 when `n == 0`. Uses modulo reduction
    /// (slightly biased for huge `n`, fine for test workloads).
    fn gen_range_u64(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// A random boolean.
    fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// Small, fast, deterministic xorshift64* generator.
#[derive(Debug, Clone)]
pub struct SmallRng(u64);

impl SmallRng {
    /// Seeded generator; a zero seed is remapped to a fixed constant.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        Self(if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed })
    }
}

impl Rng for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_nonzero() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut z = SmallRng::seed_from_u64(0);
        assert_ne!(z.next_u64(), 0);
    }

    #[test]
    fn range_respects_bound() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..100 {
            assert!(r.gen_range_u64(7) < 7);
        }
        assert_eq!(r.gen_range_u64(0), 0);
    }
}
