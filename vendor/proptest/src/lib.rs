//! Offline stand-in for the [`proptest`](https://docs.rs/proptest) crate.
//!
//! The build environment for this workspace has no registry access, so the
//! real `proptest` cannot be resolved. This vendored crate implements the
//! API subset the workspace's property tests use — `Strategy` + `prop_map`,
//! `any`, `Just`, `prop_oneof!`, `prop::collection::{vec, btree_set}`,
//! `proptest!`, `prop_assert!`/`prop_assert_eq!` and
//! `ProptestConfig::with_cases` — on top of a deterministic xorshift RNG.
//!
//! Differences from the real crate, by design:
//! - **No shrinking.** A failure reports the test name, case index and seed;
//!   rerunning is fully deterministic (the seed is derived from the test
//!   name), so the failing case is always reproducible.
//! - **Case count** defaults to 64 and can be overridden globally with the
//!   `PROPTEST_CASES` environment variable (like the real crate), which also
//!   overrides explicit `with_cases` configs so CI can dial cost up or down.

pub mod test_runner {
    /// Configuration for a `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases to generate per property.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    impl Config {
        /// A config running `cases` cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }

        fn effective_cases(&self) -> u32 {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(self.cases)
        }
    }

    /// A failed property case (produced by the `prop_assert*` macros).
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Wrap a failure message.
        #[must_use]
        pub fn fail(message: impl Into<String>) -> Self {
            Self(message.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic xorshift64* generator feeding the strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Seeded generator; a zero seed is remapped to a fixed constant.
        #[must_use]
        pub fn new(seed: u64) -> Self {
            Self(if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed })
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform in `[0, n)`; returns 0 when `n == 0`. Modulo bias is
        /// acceptable for test-case generation.
        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                0
            } else {
                self.next_u64() % n
            }
        }
    }

    /// Drives the cases of one property.
    #[derive(Debug)]
    pub struct TestRunner {
        config: Config,
    }

    impl TestRunner {
        /// Runner with the given configuration.
        #[must_use]
        pub fn new(config: Config) -> Self {
            Self { config }
        }

        /// Generate and run every case of a property, panicking (so the
        /// libtest harness records a failure) on the first failing case.
        pub fn run_cases<S, F>(&mut self, name: &str, strategy: &S, test: F)
        where
            S: crate::strategy::Strategy + ?Sized,
            F: Fn(S::Value) -> Result<(), TestCaseError>,
        {
            // FNV-1a over the test name: stable, deterministic seeds.
            let mut seed = 0xCBF2_9CE4_8422_2325u64;
            for b in name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let cases = self.config.effective_cases();
            let mut rng = TestRng::new(seed);
            for case in 0..cases {
                let input = strategy.generate(&mut rng);
                if let Err(e) = test(input) {
                    panic!("property `{name}` failed at case {case}/{cases} (seed {seed:#x}): {e}");
                }
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of a given type.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, map: f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.generate(rng))
        }
    }

    /// Uniform choice between alternative strategies (see `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// A union over the given non-empty list of alternatives.
        #[must_use]
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    macro_rules! uint_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end as u64 - self.start as u64;
                    self.start + rng.below(span) as $t
                }
            }

            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as u64 - start as u64).wrapping_add(1);
                    if span == 0 {
                        // Full-domain u64 range: any value is in range.
                        rng.next_u64() as $t
                    } else {
                        start + rng.below(span) as $t
                    }
                }
            }
        )*};
    }

    uint_range_strategies!(u8, u16, u32, u64, usize);

    impl Strategy for ::std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategies {
        ($(($($s:ident $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A 0);
        (A 0, B 1);
        (A 0, B 1, C 2);
        (A 0, B 1, C 2, D 3);
        (A 0, B 1, C 2, D 3, E 4);
        (A 0, B 1, C 2, D 3, E 4, F 5);
    }
}

pub mod arbitrary {
    use std::marker::PhantomData;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary {
        /// Generate an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! uint_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    uint_arbitrary!(u8, u16, u32, u64, usize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.next_f64()
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Strategy producing arbitrary values of `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use std::collections::BTreeSet;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An (inclusive) size bound for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.min + rng.below((self.max - self.min + 1) as u64) as usize
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            Self { min: r.start, max: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            Self { min: *r.start(), max: *r.end() }
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// The strategy returned by [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            // Best-effort sizing: duplicates may land below the target,
            // which stays within the requested (inclusive-min 0) bound for
            // the workloads this shim serves.
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            for _ in 0..target * 4 {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }

    /// A `BTreeSet` of `element` values with size aimed at `size`.
    pub fn btree_set<S: Strategy>(
        element: S,
        size: impl Into<SizeRange>,
    ) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]`-able function running `body` over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner = $crate::test_runner::TestRunner::new($cfg);
                runner.run_cases(
                    stringify!($name),
                    &($($strategy,)*),
                    |($($arg,)*)| {
                        { $body }
                        ::core::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}

/// Uniform choice between alternative strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($item:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($item)),+])
    };
}

/// Assert a condition inside a property, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert two expressions are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {
        $crate::prop_assert_eq!(
            $lhs,
            $rhs,
            concat!("assertion failed: `", stringify!($lhs), " == ", stringify!($rhs), "`")
        )
    };
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {
        if !(($lhs) == ($rhs)) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert two expressions are unequal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {
        $crate::prop_assert_ne!(
            $lhs,
            $rhs,
            concat!("assertion failed: `", stringify!($lhs), " != ", stringify!($rhs), "`")
        )
    };
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {
        if (($lhs) == ($rhs)) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::new(7);
        for _ in 0..500 {
            let v = (3u8..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (1u8..=64).generate(&mut rng);
            assert!((1..=64).contains(&w));
            let f = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = prop::collection::vec((any::<u64>(), 0u8..5), 1..20);
        let mut a = crate::test_runner::TestRng::new(42);
        let mut b = crate::test_runner::TestRng::new(42);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn harness_runs_and_asserts(x in 0u64..100, flip in any::<bool>()) {
            prop_assert!(x < 100);
            if flip {
                return Ok(());
            }
            prop_assert_eq!(x, x, "x must equal itself: {}", x);
        }

        #[test]
        fn oneof_and_just_cover_alternatives(v in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(v == 1 || v == 2);
        }
    }
}
