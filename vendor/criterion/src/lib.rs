//! Offline stand-in for the [`criterion`](https://docs.rs/criterion) crate.
//!
//! The build environment for this workspace has no registry access, so the
//! real `criterion` cannot be resolved. This vendored crate implements the
//! benchmark-group API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`/`sample_size`/`bench_function`/`finish`, `Bencher::iter`
//! and the `criterion_group!`/`criterion_main!` macros — as a plain
//! wall-clock timing harness with min/median/max reporting.
//!
//! It takes real measurements (monotonic `Instant`, auto-calibrated
//! iterations per sample), but does none of criterion's statistics, HTML
//! reports or regression tracking.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup { _criterion: self, name: name.into(), sample_size }
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Measure one benchmark function.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { sample_size: self.sample_size, samples_ns: Vec::new() };
        f(&mut bencher);
        let mut s = bencher.samples_ns;
        s.sort_by(|a, b| a.total_cmp(b));
        let (min, med, max) = if s.is_empty() {
            (0.0, 0.0, 0.0)
        } else {
            (s[0], s[s.len() / 2], s[s.len() - 1])
        };
        let label = format!("{}/{}", self.name, id);
        println!(
            "{label:<48} time: [{} {} {}]",
            format_ns(min),
            format_ns(med),
            format_ns(max),
        );
        self
    }

    /// Finish the group (prints a trailing separator).
    pub fn finish(self) {
        println!();
    }
}

/// Passed to each benchmark closure; runs and times the workload.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Time `f`, recording `sample_size` samples of its per-iteration cost.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Calibrate: grow the per-sample iteration count until one sample
        // takes at least ~2 ms (or a single iteration is already slower).
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed().as_nanos();
            if elapsed >= 2_000_000 || iters >= 1 << 20 {
                break;
            }
            iters = if elapsed == 0 { iters * 16 } else { (iters * 2).max(iters + 1) };
        }
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let ns = start.elapsed().as_nanos() as f64 / iters as f64;
            self.samples_ns.push(ns);
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

/// Declare a group-runner function executing each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(2);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.finish();
    }

    criterion_group!(benches, trivial_bench);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn formats_scale() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(1.2e4).ends_with("µs"));
        assert!(format_ns(3.4e6).ends_with("ms"));
        assert!(format_ns(5.0e9).ends_with('s'));
    }
}
