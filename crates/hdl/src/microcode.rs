//! Verilog emission for the microcode-based controller (paper Fig. 1).
//!
//! The generated module is parameterized in Rust (capacity `Z`) and
//! contains the same architectural registers as the model: the Z×10 scan
//! chain storage, the `log2(Z)+1`-bit instruction counter, the branch
//! register and the 4-bit reference register. The program is loaded at
//! runtime through `scan_en`/`scan_in`, exactly like the model's
//! [`StorageUnit`](mbist_core::microcode::StorageUnit).

use crate::module::{Module, NetKind, PortDir};

/// Control outputs of the generated controller, in port order.
pub const CTRL_OUTPUTS: [&str; 12] = [
    "read_en",
    "write_en",
    "data_invert",
    "compare_invert",
    "order_down",
    "addr_inc",
    "addr_reset",
    "bg_inc",
    "bg_reset",
    "port_inc",
    "pause_req",
    "done",
];

fn clog2(n: u64) -> u32 {
    (u64::BITS - (n.max(1) - 1).leading_zeros()).max(1)
}

/// Emits the microcode controller with a storage capacity of `z`
/// instructions.
///
/// # Panics
///
/// Panics if `z < 2`.
#[must_use]
pub fn emit_microcode(z: usize, module_name: &str) -> Module {
    assert!(z >= 2, "storage must hold at least two instructions");
    let z = z as u64;
    let chain_bits = (z * 10) as u32;
    let pcw = clog2(z) + 1; // extra MSB marks exhaustion (paper: test end)
    let brw = clog2(z);

    let mut m = Module::new(module_name);
    m.port(PortDir::Input, 1, "clk");
    m.port(PortDir::Input, 1, "rst_n");
    m.port(PortDir::Input, 1, "scan_en");
    m.port(PortDir::Input, 1, "scan_in");
    m.port(PortDir::Output, 1, "scan_out");
    m.port(PortDir::Input, 1, "last_address");
    m.port(PortDir::Input, 1, "last_background");
    m.port(PortDir::Input, 1, "last_port");
    for name in CTRL_OUTPUTS {
        m.port(PortDir::Output, 1, name);
    }

    m.localparam("Z", format!("{pcw}'d{z}"));
    for (name, code) in [
        ("FLOW_NEXT", 0u8),
        ("FLOW_LOOPELEM", 1),
        ("FLOW_REPEAT", 2),
        ("FLOW_LOOPBG", 3),
        ("FLOW_LOOPPORT", 4),
        ("FLOW_HOLD", 5),
        ("FLOW_SAVE", 6),
        ("FLOW_TERM", 7),
    ] {
        m.localparam(name, format!("3'd{code}"));
    }

    m.net(NetKind::Reg, chain_bits, "chain");
    m.net(NetKind::Reg, pcw, "pc");
    m.net(NetKind::Reg, brw, "branch_reg");
    m.net(NetKind::Reg, 1, "repeat_bit");
    m.net(NetKind::Reg, 1, "aux_order");
    m.net(NetKind::Reg, 1, "aux_data");
    m.net(NetKind::Reg, 1, "aux_cmp");
    m.net(NetKind::Reg, 1, "done_r");
    m.net(NetKind::Wire, 10, "inst");
    m.net(NetKind::Wire, 3, "flow");
    m.net(NetKind::Wire, 1, "active");

    m.comment("instruction selector: Z x 10 : 10 (paper Fig. 1)");
    m.assign("inst", "chain[pc*10 +: 10]");
    m.assign("flow", "inst[2:0]");
    m.assign("active", "!done_r && !scan_en && (pc < Z)");
    m.assign("scan_out", format!("chain[{}]", chain_bits - 1));

    m.comment("control outputs (reference-register XOR on the polarities)");
    m.assign("read_en", "active & inst[3]");
    m.assign("write_en", "active & inst[4]");
    m.assign("data_invert", "inst[7] ^ aux_data");
    m.assign("compare_invert", "inst[5] ^ aux_cmp");
    m.assign("order_down", "inst[8] ^ aux_order");
    m.assign(
        "addr_inc",
        "active & inst[9] & ((flow == FLOW_NEXT) | ((flow == FLOW_LOOPELEM) & !last_address))",
    );
    m.assign("addr_reset", "active & (flow == FLOW_LOOPELEM) & last_address");
    m.assign("bg_inc", "active & (flow == FLOW_LOOPBG) & !last_background");
    m.assign("bg_reset", "active & (flow == FLOW_LOOPBG) & last_background");
    m.assign("port_inc", "active & (flow == FLOW_LOOPPORT) & !last_port");
    m.assign("pause_req", "active & (flow == FLOW_HOLD)");
    m.assign(
        "done",
        "done_r | (active & ((flow == FLOW_TERM) | ((flow == FLOW_LOOPPORT) & last_port)))",
    );

    let flow_case = vec![
        "if (!rst_n) begin".to_string(),
        format!("    pc <= {pcw}'d0;"),
        format!("    branch_reg <= {brw}'d0;"),
        "    repeat_bit <= 1'b0;".to_string(),
        "    aux_order <= 1'b0;".to_string(),
        "    aux_data <= 1'b0;".to_string(),
        "    aux_cmp <= 1'b0;".to_string(),
        "    done_r <= 1'b0;".to_string(),
        "end else if (scan_en) begin".to_string(),
        format!("    chain <= {{chain[{}:0], scan_in}};", chain_bits - 2),
        format!("    pc <= {pcw}'d0;"),
        "end else if (!done_r) begin".to_string(),
        "    if (pc >= Z) done_r <= 1'b1;".to_string(),
        "    else case (flow)".to_string(),
        format!("        FLOW_NEXT: pc <= pc + {pcw}'d1;"),
        "        FLOW_LOOPELEM:".to_string(),
        "            if (last_address) begin".to_string(),
        format!("                pc <= pc + {pcw}'d1;"),
        format!("                branch_reg <= pc[{}:0] + {brw}'d1;", brw - 1),
        "            end else begin".to_string(),
        "                pc <= {1'b0, branch_reg};".to_string(),
        "            end".to_string(),
        "        FLOW_REPEAT:".to_string(),
        "            if (repeat_bit) begin".to_string(),
        "                repeat_bit <= 1'b0;".to_string(),
        "                aux_order <= 1'b0;".to_string(),
        "                aux_data <= 1'b0;".to_string(),
        "                aux_cmp <= 1'b0;".to_string(),
        format!("                pc <= pc + {pcw}'d1;"),
        format!("                branch_reg <= pc[{}:0] + {brw}'d1;", brw - 1),
        "            end else begin".to_string(),
        "                repeat_bit <= 1'b1;".to_string(),
        "                aux_order <= inst[8];".to_string(),
        "                aux_data <= inst[7];".to_string(),
        "                aux_cmp <= inst[5];".to_string(),
        format!("                pc <= {pcw}'d1;"),
        format!("                branch_reg <= {brw}'d1;"),
        "            end".to_string(),
        "        FLOW_LOOPBG:".to_string(),
        "            if (last_background) begin".to_string(),
        format!("                pc <= pc + {pcw}'d1;"),
        format!("                branch_reg <= pc[{}:0] + {brw}'d1;", brw - 1),
        "            end else begin".to_string(),
        format!("                pc <= {pcw}'d0;"),
        format!("                branch_reg <= {brw}'d0;"),
        "            end".to_string(),
        "        FLOW_LOOPPORT:".to_string(),
        "            if (last_port) done_r <= 1'b1;".to_string(),
        "            else begin".to_string(),
        format!("                pc <= {pcw}'d0;"),
        format!("                branch_reg <= {brw}'d0;"),
        "            end".to_string(),
        "        FLOW_HOLD: begin".to_string(),
        format!("            pc <= pc + {pcw}'d1;"),
        format!("            branch_reg <= pc[{}:0] + {brw}'d1;", brw - 1),
        "        end".to_string(),
        "        FLOW_SAVE: begin".to_string(),
        format!("            pc <= pc + {pcw}'d1;"),
        format!("            branch_reg <= pc[{}:0] + {brw}'d1;", brw - 1),
        "        end".to_string(),
        "        default: done_r <= 1'b1;".to_string(),
        "    endcase".to_string(),
        "end".to_string(),
    ];
    m.always("clk", Some("rst_n".into()), flow_case);
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::assert_clean;

    #[test]
    fn generated_controller_lints_clean() {
        for z in [2usize, 9, 16, 20, 32] {
            let m = emit_microcode(z, "mbist_microcode_ctrl");
            assert_clean(&m);
        }
    }

    #[test]
    fn module_contains_the_architectural_registers() {
        let m = emit_microcode(20, "ctrl");
        let text = m.emit();
        assert!(text.contains("reg  [199:0] chain;"));
        assert!(text.contains("reg  [ 5:0] pc;"));
        assert!(text.contains("reg  [ 4:0] branch_reg;"));
        assert!(text.contains("repeat_bit"));
        assert!(text.contains("chain[pc*10 +: 10]"));
    }

    #[test]
    fn scan_path_is_present() {
        let text = emit_microcode(8, "ctrl").emit();
        assert!(text.contains("scan_in"));
        assert!(text.contains("scan_out"));
        assert!(text.contains("chain <= {chain[78:0], scan_in};"));
    }

    #[test]
    fn exhaustion_guard_uses_the_extra_counter_bit() {
        let text = emit_microcode(16, "ctrl").emit();
        // Z=16 needs clog2=4, pc is 5 bits
        assert!(text.contains("localparam Z = 5'd16;"));
        assert!(text.contains("if (pc >= Z) done_r <= 1'b1;"));
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn degenerate_capacity_panics() {
        let _ = emit_microcode(1, "ctrl");
    }
}
