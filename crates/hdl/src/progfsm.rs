//! Verilog emission for the programmable FSM-based controller
//! (paper Fig. 3-4).
//!
//! The upper controller is a Z×8 shift-loadable circular buffer; the lower
//! controller is the 7-state FSM. The per-component operation tables
//! (which op of SM0…SM7 is a read, its relative data, the component
//! length) are derived from the *same* [`SmComponent`] definitions the
//! cycle-accurate model uses, minimized by the two-level synthesizer and
//! emitted as assign networks — so the RTL decode logic provably encodes
//! Eq. 2.

use mbist_core::progfsm::SmComponent;
use mbist_logic::{minimize, Spec, TruthTable};

use crate::expr::cover_to_verilog;
use crate::module::{Module, NetKind, PortDir};

fn clog2(n: u64) -> u32 {
    (u64::BITS - (n.max(1) - 1).leading_zeros()).max(1)
}

/// Minimizes a 3-input (mode) predicate into a Verilog expression over
/// `inst[2:0]`.
fn mode_expr<F: Fn(SmComponent) -> Spec>(f: F) -> String {
    let tt = TruthTable::from_fn(3, |m| f(SmComponent::from_mode(m as u8)));
    let cover = minimize(&tt).expect("3 inputs");
    cover_to_verilog(&cover, &["inst[0]", "inst[1]", "inst[2]"])
}

/// Emits the programmable FSM controller with a `z`-instruction circular
/// buffer.
///
/// # Panics
///
/// Panics if `z < 2`.
#[must_use]
pub fn emit_progfsm(z: usize, module_name: &str) -> Module {
    assert!(z >= 2, "buffer must hold at least two instructions");
    let zb = z as u64;
    let buf_bits = (zb * 8) as u32;
    let iw = clog2(zb);

    let mut m = Module::new(module_name);
    m.port(PortDir::Input, 1, "clk");
    m.port(PortDir::Input, 1, "rst_n");
    m.port(PortDir::Input, 1, "load_en");
    m.port(PortDir::Input, 8, "load_instr");
    m.port(PortDir::Input, 1, "last_address");
    m.port(PortDir::Input, 1, "last_background");
    m.port(PortDir::Input, 1, "last_port");
    for name in crate::microcode::CTRL_OUTPUTS {
        m.port(PortDir::Output, 1, name);
    }

    m.localparam("Z", format!("{iw}'d{z}"));
    for (name, v) in
        [("ST_IDLE", 0u8), ("ST_RESET", 1), ("ST_RW0", 2), ("ST_RW3", 5), ("ST_DONE", 6)]
    {
        m.localparam(name, format!("3'd{v}"));
    }

    m.net(NetKind::Reg, buf_bits, "buffer");
    m.net(NetKind::Reg, iw, "idx");
    m.net(NetKind::Reg, iw.max(1) + 1, "len");
    m.net(NetKind::Reg, 3, "state");
    m.net(NetKind::Reg, 1, "done_r");
    m.net(NetKind::Wire, 8, "inst");
    m.net(NetKind::Wire, 1, "fetching");
    m.net(NetKind::Wire, 1, "special");
    m.net(NetKind::Wire, 1, "in_rw");
    m.net(NetKind::Wire, 2, "k");
    m.net(NetKind::Wire, 4, "op_read");
    m.net(NetKind::Wire, 4, "op_rel");
    m.net(NetKind::Wire, 2, "last_k");
    m.net(NetKind::Wire, 1, "cur_read");
    m.net(NetKind::Wire, 1, "cur_rel");
    m.net(NetKind::Wire, 1, "at_last_op");
    m.net(NetKind::Wire, iw, "next_idx");

    m.comment("upper controller: circular parameter buffer (Fig. 4b)");
    m.assign("inst", "buffer[idx*8 +: 8]");
    m.assign("fetching", "(state == ST_IDLE) & !done_r & (len != 0)");
    m.assign("special", "inst[3]");
    m.assign(
        "next_idx",
        format!("(idx + {iw}'d1 >= len[{}:0]) ? {iw}'d0 : idx + {iw}'d1", iw - 1),
    );

    m.comment("component operation tables minimized from Eq. 2 (SM0..SM7)");
    for kk in 0..4usize {
        m.assign(
            format!("op_read[{kk}]"),
            mode_expr(|sm| {
                let ops = sm.ops(false);
                match ops.get(kk) {
                    Some(op) => op.is_read().into(),
                    None => Spec::Dc,
                }
            }),
        );
        m.assign(
            format!("op_rel[{kk}]"),
            mode_expr(|sm| {
                let ops = sm.ops(false);
                match ops.get(kk) {
                    Some(op) => op.data().into(),
                    None => Spec::Dc,
                }
            }),
        );
    }
    for bit in 0..2u8 {
        m.assign(
            format!("last_k[{bit}]"),
            mode_expr(|sm| {
                let last = (sm.ops(false).len() - 1) as u8;
                ((last >> bit) & 1 == 1).into()
            }),
        );
    }

    m.comment("lower controller: the 7-state parameter-driven FSM (Fig. 4a)");
    m.assign("in_rw", "(state >= ST_RW0) & (state <= ST_RW3)");
    m.assign("k", "state[1:0] - 2'd2");
    m.assign(
        "cur_read",
        "(k == 2'd0) ? op_read[0] : (k == 2'd1) ? op_read[1] : (k == 2'd2) ? op_read[2] : op_read[3]",
    );
    m.assign(
        "cur_rel",
        "(k == 2'd0) ? op_rel[0] : (k == 2'd1) ? op_rel[1] : (k == 2'd2) ? op_rel[2] : op_rel[3]",
    );
    m.assign("at_last_op", "k == last_k");

    m.comment("control outputs");
    m.assign("read_en", "in_rw & cur_read");
    m.assign("write_en", "in_rw & !cur_read");
    m.assign("data_invert", "cur_rel ^ inst[5]");
    m.assign("compare_invert", "cur_rel ^ inst[5] ^ inst[4]");
    m.assign("order_down", "inst[6]");
    m.assign("addr_inc", "in_rw & at_last_op & !last_address");
    m.assign("addr_reset", "state == ST_RESET");
    m.assign("bg_inc", "fetching & special & (inst[2:0] == 3'd0) & !last_background");
    m.assign("bg_reset", "fetching & special & (inst[2:0] == 3'd0) & last_background");
    m.assign("port_inc", "fetching & special & (inst[2:0] == 3'd1) & !last_port");
    m.assign("pause_req", "fetching & !special & inst[7]");
    m.assign(
        "done",
        "done_r | (fetching & special & (((inst[2:0] == 3'd1) & last_port) | (inst[2:0] == 3'd7)))",
    );

    m.always(
        "clk",
        Some("rst_n".into()),
        vec![
            "if (!rst_n) begin".into(),
            format!("    idx <= {iw}'d0;"),
            format!("    len <= {}'d0;", iw + 1),
            "    state <= ST_IDLE;".into(),
            "    done_r <= 1'b0;".into(),
            "end else if (load_en) begin".into(),
            format!("    buffer <= {{buffer[{}:0], load_instr}};", buf_bits - 9),
            format!("    if (len < {{1'b0, Z}}) len <= len + {}'d1;", iw + 1),
            format!("    idx <= {iw}'d0;"),
            "    state <= ST_IDLE;".into(),
            "    done_r <= 1'b0;".into(),
            "end else if (!done_r) begin".into(),
            "    case (state)".into(),
            "        ST_IDLE:".into(),
            "            if (fetching) begin".into(),
            "                if (special) begin".into(),
            "                    if ((inst[2:0] == 3'd0) & last_background) idx <= next_idx;".into(),
            format!("                    else if (inst[2:0] == 3'd0) idx <= {iw}'d0;"),
            "                    else if ((inst[2:0] == 3'd1) & !last_port)".into(),
            format!("                        idx <= {iw}'d0;"),
            "                    else done_r <= 1'b1;".into(),
            "                end else state <= ST_RESET;".into(),
            "            end else done_r <= 1'b1;".into(),
            "        ST_RESET: state <= ST_RW0;".into(),
            "        ST_DONE: begin".into(),
            "            state <= ST_IDLE;".into(),
            "            idx <= next_idx;".into(),
            "        end".into(),
            "        default:".into(),
            "            if (at_last_op) begin".into(),
            "                if (last_address) state <= ST_DONE;".into(),
            "                else state <= ST_RW0;".into(),
            "            end else state <= state + 3'd1;".into(),
            "    endcase".into(),
            "end".into(),
        ],
    );
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::assert_clean;

    #[test]
    fn generated_controller_lints_clean() {
        for z in [2usize, 8, 12, 16] {
            let m = emit_progfsm(z, "mbist_progfsm_ctrl");
            assert_clean(&m);
        }
    }

    #[test]
    fn buffer_and_fsm_are_present() {
        let text = emit_progfsm(12, "ctrl").emit();
        assert!(text.contains("reg  [95:0] buffer;"));
        assert!(text.contains("localparam ST_DONE = 3'd6;"));
        assert!(text.contains("buffer[idx*8 +: 8]"));
        assert!(text.contains("ST_RESET: state <= ST_RW0;"));
    }

    #[test]
    fn op_tables_encode_the_components() {
        // SM0 = (w d): op_read[0] must be false for mode 0, true for
        // every other mode (all other components start with a read).
        let text = emit_progfsm(8, "ctrl").emit();
        let line = text
            .lines()
            .find(|l| l.contains("assign op_read[0]"))
            .expect("op_read[0] emitted");
        // f(mode) = mode != 0 → minimized to inst[0] | inst[1] | inst[2]
        assert!(
            line.contains("inst[0]")
                && line.contains("inst[1]")
                && line.contains("inst[2]"),
            "{line}"
        );
    }

    #[test]
    fn mode_expr_matches_component_definitions() {
        // Evaluate the truth tables directly rather than the emitted text.
        for sm in SmComponent::ALL {
            let ops = sm.ops(false);
            let last = ops.len() - 1;
            for bit in 0..2 {
                let want = (last >> bit) & 1 == 1;
                let tt = TruthTable::from_fn(3, |m| {
                    let c = SmComponent::from_mode(m as u8);
                    (((c.ops(false).len() - 1) >> bit) & 1 == 1).into()
                });
                assert_eq!(tt.spec(u64::from(sm.mode())) == Spec::On, want);
            }
        }
    }
}
