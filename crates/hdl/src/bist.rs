//! Verilog emission for the shared BIST datapath and the top-level unit.

use mbist_march::standard_backgrounds;
use mbist_mem::MemGeometry;

use crate::module::{Module, NetKind, PortDir};

fn clog2(n: u64) -> u32 {
    (u64::BITS - (n.max(1) - 1).leading_zeros()).max(1)
}

/// Emits the shared datapath (address generator, background generator,
/// port counter, last-X status) for a memory geometry.
#[must_use]
pub fn emit_datapath(geometry: &MemGeometry, module_name: &str) -> Module {
    let aw = u32::from(geometry.addr_bits());
    let w = u32::from(geometry.width());
    let backgrounds = standard_backgrounds(geometry.width());
    let bgw = clog2(backgrounds.len() as u64);
    let pw = clog2(u64::from(geometry.ports()));
    let last = geometry.last_addr();

    let mut m = Module::new(module_name);
    m.port(PortDir::Input, 1, "clk");
    m.port(PortDir::Input, 1, "rst_n");
    m.port(PortDir::Input, 1, "order_down");
    m.port(PortDir::Input, 1, "access");
    m.port(PortDir::Input, 1, "addr_inc");
    m.port(PortDir::Input, 1, "addr_reset");
    m.port(PortDir::Input, 1, "bg_inc");
    m.port(PortDir::Input, 1, "bg_reset");
    m.port(PortDir::Input, 1, "port_inc");
    m.port(PortDir::Output, aw, "addr");
    m.port(PortDir::Output, w, "bg_word");
    m.port(PortDir::Output, pw, "port_sel");
    m.port(PortDir::Output, 1, "last_address");
    m.port(PortDir::Output, 1, "last_background");
    m.port(PortDir::Output, 1, "last_port");

    m.localparam("LAST_ADDR", format!("{aw}'d{last}"));
    m.localparam("LAST_BG", format!("{bgw}'d{}", backgrounds.len() - 1));
    m.localparam("LAST_PORT", format!("{pw}'d{}", geometry.ports() - 1));

    m.net(NetKind::Reg, aw, "addr_q");
    m.net(NetKind::Reg, 1, "pending_reset");
    m.net(NetKind::Reg, bgw, "bg_idx");
    m.net(NetKind::Reg, pw, "port_q");
    m.net(NetKind::Wire, aw, "start_addr");

    m.comment("pending reset materializes at the next access, per direction");
    m.assign("start_addr", format!("order_down ? LAST_ADDR : {aw}'d0"));
    m.assign("addr", "pending_reset ? start_addr : addr_q");
    m.assign(
        "last_address",
        if geometry.words() == 1 {
            "1'b1".to_string()
        } else {
            format!(
                "pending_reset ? 1'b0 : (order_down ? (addr_q == {aw}'d0) : (addr_q == LAST_ADDR))"
            )
        },
    );
    m.assign("last_background", "bg_idx == LAST_BG");
    m.assign("last_port", "port_q == LAST_PORT");
    m.assign("port_sel", "port_q");

    // Background pattern decode.
    let mut bg_expr = format!("{w}'d{}", backgrounds[0].value());
    for (i, bg) in backgrounds.iter().enumerate().skip(1).rev() {
        bg_expr = format!("(bg_idx == {bgw}'d{i}) ? {w}'d{} : ({bg_expr})", bg.value());
    }
    m.assign("bg_word", bg_expr);

    m.always(
        "clk",
        Some("rst_n".into()),
        vec![
            "if (!rst_n) begin".into(),
            format!("    addr_q <= {aw}'d0;"),
            "    pending_reset <= 1'b1;".into(),
            format!("    bg_idx <= {bgw}'d0;"),
            format!("    port_q <= {pw}'d0;"),
            "end else begin".into(),
            "    if (access) begin".into(),
            "        if (pending_reset) begin".into(),
            "            pending_reset <= 1'b0;".into(),
            format!(
                "            addr_q <= addr_inc ? (order_down ? start_addr - {aw}'d1 : start_addr + {aw}'d1) : start_addr;"
            ),
            "        end else if (addr_inc) begin".into(),
            format!(
                "            addr_q <= order_down ? addr_q - {aw}'d1 : addr_q + {aw}'d1;"
            ),
            "        end".into(),
            "    end".into(),
            "    if (addr_reset) pending_reset <= 1'b1;".into(),
            format!("    if (bg_reset) bg_idx <= {bgw}'d0;"),
            "    else if (bg_inc && bg_idx != LAST_BG) bg_idx <= bg_idx + 1'b1;".into(),
            format!("    if (port_inc && port_q != LAST_PORT) port_q <= port_q + {pw}'d1;"),
            "end".into(),
        ],
    );
    m
}

/// Emits the top-level BIST unit: microcode controller + datapath +
/// comparator, with a synchronous single-port-at-a-time memory interface.
#[must_use]
pub fn emit_top(geometry: &MemGeometry, module_name: &str) -> Module {
    let aw = u32::from(geometry.addr_bits());
    let w = u32::from(geometry.width());
    let pw = clog2(u64::from(geometry.ports()));

    let mut m = Module::new(module_name);
    m.port(PortDir::Input, 1, "clk");
    m.port(PortDir::Input, 1, "rst_n");
    m.port(PortDir::Input, 1, "scan_en");
    m.port(PortDir::Input, 1, "scan_in");
    m.port(PortDir::Output, 1, "scan_out");
    m.port(PortDir::Output, aw, "mem_addr");
    m.port(PortDir::Output, w, "mem_wdata");
    m.port(PortDir::Output, 1, "mem_we");
    m.port(PortDir::Output, 1, "mem_re");
    m.port(PortDir::Output, pw, "mem_port");
    m.port(PortDir::Input, w, "mem_rdata");
    m.port(PortDir::Output, 1, "fail");
    m.port(PortDir::Output, 1, "failed_sticky");
    m.port(PortDir::Output, 1, "pause_req");
    m.port(PortDir::Output, 1, "test_done");

    for sig in [
        "read_en",
        "write_en",
        "data_invert",
        "compare_invert",
        "order_down",
        "addr_inc",
        "addr_reset",
        "bg_inc",
        "bg_reset",
        "port_inc",
        "last_address",
        "last_background",
        "last_port",
        "access",
    ] {
        m.net(NetKind::Wire, 1, sig);
    }
    m.net(NetKind::Wire, w, "bg_word");
    m.net(NetKind::Wire, w, "expected");
    m.net(NetKind::Reg, 1, "failed_q");

    m.instance(
        "mbist_microcode_ctrl",
        "u_ctrl",
        vec![
            ("clk".into(), "clk".into()),
            ("rst_n".into(), "rst_n".into()),
            ("scan_en".into(), "scan_en".into()),
            ("scan_in".into(), "scan_in".into()),
            ("scan_out".into(), "scan_out".into()),
            ("last_address".into(), "last_address".into()),
            ("last_background".into(), "last_background".into()),
            ("last_port".into(), "last_port".into()),
            ("read_en".into(), "read_en".into()),
            ("write_en".into(), "write_en".into()),
            ("data_invert".into(), "data_invert".into()),
            ("compare_invert".into(), "compare_invert".into()),
            ("order_down".into(), "order_down".into()),
            ("addr_inc".into(), "addr_inc".into()),
            ("addr_reset".into(), "addr_reset".into()),
            ("bg_inc".into(), "bg_inc".into()),
            ("bg_reset".into(), "bg_reset".into()),
            ("port_inc".into(), "port_inc".into()),
            ("pause_req".into(), "pause_req".into()),
            ("done".into(), "test_done".into()),
        ],
    );
    m.instance(
        "mbist_datapath",
        "u_dp",
        vec![
            ("clk".into(), "clk".into()),
            ("rst_n".into(), "rst_n".into()),
            ("order_down".into(), "order_down".into()),
            ("access".into(), "access".into()),
            ("addr_inc".into(), "addr_inc".into()),
            ("addr_reset".into(), "addr_reset".into()),
            ("bg_inc".into(), "bg_inc".into()),
            ("bg_reset".into(), "bg_reset".into()),
            ("port_inc".into(), "port_inc".into()),
            ("addr".into(), "mem_addr".into()),
            ("bg_word".into(), "bg_word".into()),
            ("port_sel".into(), "mem_port".into()),
            ("last_address".into(), "last_address".into()),
            ("last_background".into(), "last_background".into()),
            ("last_port".into(), "last_port".into()),
        ],
    );

    let invert_mask = |sig: &str| {
        if w == 1 {
            format!("bg_word ^ {sig}")
        } else {
            format!("bg_word ^ {{{w}{{{sig}}}}}")
        }
    };
    m.assign("access", "read_en | write_en");
    m.assign("mem_we", "write_en");
    m.assign("mem_re", "read_en");
    m.assign("mem_wdata", invert_mask("data_invert"));
    m.assign("expected", invert_mask("compare_invert"));
    m.assign("fail", "read_en & (mem_rdata != expected)");
    m.assign("failed_sticky", "failed_q");
    m.always(
        "clk",
        Some("rst_n".into()),
        vec![
            "if (!rst_n) failed_q <= 1'b0;".into(),
            "else if (fail) failed_q <= 1'b1;".into(),
        ],
    );
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::assert_clean;

    #[test]
    fn datapath_lints_clean_for_varied_geometries() {
        for g in [
            MemGeometry::bit_oriented(16),
            MemGeometry::bit_oriented(1),
            MemGeometry::word_oriented(64, 8),
            MemGeometry::new(32, 4, 2),
        ] {
            let m = emit_datapath(&g, "mbist_datapath");
            assert_clean(&m);
        }
    }

    #[test]
    fn datapath_encodes_backgrounds() {
        let m = emit_datapath(&MemGeometry::word_oriented(16, 4), "dp");
        let text = m.emit();
        assert!(text.contains("4'd10"), "checkerboard background 1010 present");
        assert!(text.contains("4'd12"), "double stripe 1100 present");
    }

    #[test]
    fn top_lints_clean_and_wires_everything() {
        let g = MemGeometry::word_oriented(64, 8);
        let m = emit_top(&g, "mbist_top");
        assert_clean(&m);
        let text = m.emit();
        assert!(text.contains("mbist_microcode_ctrl u_ctrl"));
        assert!(text.contains("mbist_datapath u_dp"));
        assert!(text.contains(".done(test_done)"));
        assert!(text.contains("bg_word ^ {8{data_invert}}"));
    }

    #[test]
    fn bit_oriented_top_avoids_replication() {
        let g = MemGeometry::bit_oriented(8);
        let text = emit_top(&g, "t").emit();
        assert!(text.contains("bg_word ^ data_invert"));
    }

    #[test]
    fn single_word_memory_has_constant_last_address() {
        let m = emit_datapath(&MemGeometry::bit_oriented(1), "dp");
        assert!(m.emit().contains("assign last_address = 1'b1;"));
    }
}
