//! Self-checking testbench generation.
//!
//! [`emit_testbench`] produces a complete Verilog testbench: it
//! instantiates the generated top-level BIST unit, models a behavioral
//! memory, scan-loads the compiled program image bit-by-bit and waits for
//! `test_done`, reporting `MBIST_PASS` / `MBIST_FAIL`. The environment
//! here has no simulator, so the image-generation path is verified against
//! the cycle-accurate model instead ([`program_scan_image`] must load the
//! exact bits the Rust [`StorageUnit`](mbist_core::microcode::StorageUnit)
//! holds), and the emitted text is checked structurally.

use mbist_core::microcode::{compile, Microinstruction};
use mbist_core::CoreError;
use mbist_march::MarchTest;
use mbist_mem::MemGeometry;

/// Builds the scan-in bit sequence that loads `program` into a
/// `z`-instruction storage chain (first element of the returned vector is
/// the first bit presented on `scan_in`).
///
/// The chain shifts toward the MSB, so the first bit shifted in ends up at
/// the highest chain index: instruction `z-1` bit 9.
///
/// # Errors
///
/// Returns [`CoreError::ProgramTooLarge`] if the program exceeds `z`.
pub fn program_scan_image(
    program: &[Microinstruction],
    z: usize,
) -> Result<Vec<bool>, CoreError> {
    if program.len() > z {
        return Err(CoreError::ProgramTooLarge { required: program.len(), capacity: z });
    }
    let mut image = Vec::with_capacity(z * 10);
    for i in (0..z).rev() {
        let word = program.get(i).copied().unwrap_or_else(Microinstruction::nop).encode();
        for b in (0..10).rev() {
            image.push(word.bit(b));
        }
    }
    Ok(image)
}

/// Emits a self-checking testbench running `test` on a behavioral memory
/// of `geometry` through a `z`-instruction microcode BIST unit.
///
/// # Errors
///
/// Propagates compilation errors and capacity overflows.
pub fn emit_testbench(
    test: &MarchTest,
    geometry: &MemGeometry,
    z: usize,
    top_module: &str,
) -> Result<String, CoreError> {
    use std::fmt::Write;
    let program = compile(test)?;
    let image = program_scan_image(&program, z)?;
    let aw = geometry.addr_bits();
    let w = geometry.width();
    let pw = if geometry.ports() > 1 {
        (u8::BITS - (geometry.ports() - 1).leading_zeros()).max(1)
    } else {
        1
    };

    let mut s = String::new();
    let _ = writeln!(s, "// Auto-generated self-checking MBIST testbench");
    let _ = writeln!(s, "// algorithm: {test}");
    let _ = writeln!(s, "`timescale 1ns/1ps");
    let _ = writeln!(s, "module tb;");
    let _ = writeln!(s, "    reg clk = 1'b0;");
    let _ = writeln!(s, "    reg rst_n = 1'b0;");
    let _ = writeln!(s, "    reg scan_en = 1'b0;");
    let _ = writeln!(s, "    reg scan_in = 1'b0;");
    let _ = writeln!(s, "    wire scan_out;");
    let _ = writeln!(s, "    wire [{}:0] mem_addr;", aw - 1);
    let _ = writeln!(s, "    wire [{}:0] mem_wdata;", w - 1);
    let _ =
        writeln!(s, "    wire mem_we, mem_re, fail, failed_sticky, pause_req, test_done;");
    let _ = writeln!(s, "    wire [{}:0] mem_port;", pw - 1);
    let _ = writeln!(s, "    reg [{}:0] mem_rdata;", w - 1);
    let _ = writeln!(s);
    let _ = writeln!(s, "    // behavioral memory under test");
    let _ = writeln!(s, "    reg [{}:0] mem_model [0:{}];", w - 1, geometry.words() - 1);
    let _ = writeln!(s, "    always @(posedge clk) begin");
    let _ = writeln!(s, "        if (mem_we) mem_model[mem_addr] <= mem_wdata;");
    let _ = writeln!(s, "        if (mem_re) mem_rdata <= mem_model[mem_addr];");
    let _ = writeln!(s, "    end");
    let _ = writeln!(s);
    let _ = writeln!(s, "    {top_module} dut (");
    let _ = writeln!(s, "        .clk(clk), .rst_n(rst_n),");
    let _ =
        writeln!(s, "        .scan_en(scan_en), .scan_in(scan_in), .scan_out(scan_out),");
    let _ = writeln!(s, "        .mem_addr(mem_addr), .mem_wdata(mem_wdata),");
    let _ = writeln!(s, "        .mem_we(mem_we), .mem_re(mem_re), .mem_port(mem_port),");
    let _ = writeln!(s, "        .mem_rdata(mem_rdata),");
    let _ = writeln!(s, "        .fail(fail), .failed_sticky(failed_sticky),");
    let _ = writeln!(s, "        .pause_req(pause_req), .test_done(test_done)");
    let _ = writeln!(s, "    );");
    let _ = writeln!(s);
    let _ = writeln!(s, "    always #5 clk = ~clk;");
    let _ = writeln!(s);
    let _ = writeln!(
        s,
        "    // program image: {} instructions in a Z={z} store",
        program.len()
    );
    let _ = writeln!(s, "    localparam SCAN_BITS = {};", image.len());
    let mut bits = String::with_capacity(image.len());
    for b in &image {
        bits.push(if *b { '1' } else { '0' });
    }
    let _ = writeln!(s, "    reg [SCAN_BITS-1:0] image = {}'b{};", image.len(), bits);
    let _ = writeln!(s);
    let _ = writeln!(s, "    integer i;");
    let _ = writeln!(s, "    initial begin");
    let _ = writeln!(s, "        repeat (4) @(negedge clk);");
    let _ = writeln!(s, "        rst_n = 1'b1;");
    let _ = writeln!(s, "        scan_en = 1'b1;");
    let _ = writeln!(s, "        for (i = SCAN_BITS - 1; i >= 0; i = i - 1) begin");
    let _ = writeln!(s, "            scan_in = image[i];");
    let _ = writeln!(s, "            @(negedge clk);");
    let _ = writeln!(s, "        end");
    let _ = writeln!(s, "        scan_en = 1'b0;");
    let _ = writeln!(s, "        wait (test_done);");
    let _ = writeln!(s, "        @(negedge clk);");
    let _ = writeln!(s, "        if (failed_sticky) $display(\"MBIST_FAIL\");");
    let _ = writeln!(s, "        else $display(\"MBIST_PASS\");");
    let _ = writeln!(s, "        $finish;");
    let _ = writeln!(s, "    end");
    let _ = writeln!(s, "endmodule");
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbist_core::microcode::StorageUnit;
    use mbist_march::library;
    use mbist_rtl::CellStyle;

    #[test]
    fn scan_image_matches_the_cycle_accurate_storage_unit() {
        // Loading the image into the model's scan chain in emission order
        // must reconstruct the program exactly.
        let program = compile(&library::march_c()).unwrap();
        let z = 16;
        let image = program_scan_image(&program, z).unwrap();
        assert_eq!(image.len(), z * 10);

        let mut storage = StorageUnit::new(z, CellStyle::ScanOnly);
        // The Verilog chain shifts toward the MSB; the model's ScanChain
        // pushes cell 0 deeper each shift — same topology, so feeding the
        // image front-to-back must produce the same stored program.
        storage.load(&program).unwrap();
        let expected = storage.program().unwrap();

        let mut rebuilt = StorageUnit::new(z, CellStyle::ScanOnly);
        // Feed raw bits through a fresh chain using the public load of a
        // dummy then compare images via instruction decode: reconstruct by
        // decoding the image layout directly.
        let mut by_hand = Vec::new();
        for i in 0..z {
            // instruction i occupies image positions for chain index
            // i*10+b; image[k] lands at chain[len-1-k].
            let mut word = 0u64;
            for b in 0..10 {
                let chain_index = i * 10 + b;
                let k = image.len() - 1 - chain_index;
                if image[k] {
                    word |= 1 << b;
                }
            }
            by_hand.push(Microinstruction::decode(mbist_rtl::Bits::new(10, word)).unwrap());
        }
        while by_hand.last() == Some(&Microinstruction::nop()) {
            by_hand.pop();
        }
        assert_eq!(by_hand, expected);
        let _ = rebuilt.load(&program);
    }

    #[test]
    fn image_rejects_oversized_programs() {
        let program = compile(&library::march_c_plus_plus()).unwrap();
        assert!(program_scan_image(&program, 8).is_err());
    }

    #[test]
    fn testbench_contains_the_essentials() {
        let g = MemGeometry::word_oriented(32, 8);
        let tb = emit_testbench(&library::march_c(), &g, 16, "mbist_top").unwrap();
        assert!(tb.contains("module tb;"));
        assert!(tb.contains("mbist_top dut ("));
        assert!(tb.contains("reg [7:0] mem_model [0:31];"));
        assert!(tb.contains("localparam SCAN_BITS = 160;"));
        assert!(tb.contains("MBIST_PASS"));
        assert!(tb.contains("$finish;"));
        assert!(tb.trim_end().ends_with("endmodule"));
    }

    #[test]
    fn testbench_image_is_binary_of_the_right_length() {
        let g = MemGeometry::bit_oriented(8);
        let tb = emit_testbench(&library::mats_plus(), &g, 8, "top").unwrap();
        let line = tb.lines().find(|l| l.contains("reg [SCAN_BITS-1:0] image")).unwrap();
        let bits: &str = line.split("'b").nth(1).unwrap().trim_end_matches(';');
        assert_eq!(bits.len(), 80);
        assert!(bits.chars().all(|c| c == '0' || c == '1'));
    }
}
