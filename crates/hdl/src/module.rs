//! A small structured builder for Verilog-2001 modules.
//!
//! Expressions and statement bodies are carried as strings (this is an
//! emitter, not a full IR), but ports, nets and hierarchy are structured —
//! which is what lets [`crate::lint`] verify that every identifier used in
//! a generated module is declared.

use std::fmt;

/// Direction of a module port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortDir {
    /// `input`
    Input,
    /// `output` (driven by `assign`)
    Output,
    /// `output reg` (driven procedurally)
    OutputReg,
}

/// A module port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Port {
    /// Direction.
    pub dir: PortDir,
    /// Width in bits (1 = scalar).
    pub width: u32,
    /// Port name.
    pub name: String,
}

/// Kind of an internal net declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetKind {
    /// `wire`
    Wire,
    /// `reg`
    Reg,
}

/// An internal net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Net {
    /// Wire or reg.
    pub kind: NetKind,
    /// Width in bits.
    pub width: u32,
    /// Optional unpacked array depth (memory).
    pub depth: Option<u64>,
    /// Net name.
    pub name: String,
}

/// A localparam constant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalParam {
    /// Name (conventionally SCREAMING_SNAKE).
    pub name: String,
    /// Value expression.
    pub value: String,
}

/// One module item in emission order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Item {
    /// `assign <lhs> = <rhs>;`
    Assign {
        /// Left-hand side (a declared net or output).
        lhs: String,
        /// Right-hand expression.
        rhs: String,
    },
    /// `always @(posedge <clock> [or negedge <arst_n>]) begin … end`
    Always {
        /// Clock signal name.
        clock: String,
        /// Optional active-low async reset signal.
        reset_n: Option<String>,
        /// Statement lines (without trailing newline), already indented
        /// relative to the block.
        body: Vec<String>,
    },
    /// A `// comment` line.
    Comment(String),
    /// A module instantiation with named port connections.
    Instance {
        /// Module being instantiated.
        module: String,
        /// Instance name.
        instance: String,
        /// `(port, signal)` connection pairs.
        connections: Vec<(String, String)>,
    },
}

/// A Verilog-2001 module under construction.
///
/// # Examples
///
/// ```
/// use mbist_hdl::{Module, NetKind, PortDir};
///
/// let mut m = Module::new("blinker");
/// m.port(PortDir::Input, 1, "clk");
/// m.port(PortDir::Output, 1, "led");
/// m.net(NetKind::Reg, 1, "state");
/// m.always("clk", None, vec!["state <= ~state;".into()]);
/// m.assign("led", "state");
/// let text = m.emit();
/// assert!(text.contains("module blinker"));
/// assert!(text.contains("endmodule"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Module {
    name: String,
    ports: Vec<Port>,
    params: Vec<LocalParam>,
    nets: Vec<Net>,
    items: Vec<Item>,
}

impl Module {
    /// Creates an empty module.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ports: Vec::new(),
            params: Vec::new(),
            nets: Vec::new(),
            items: Vec::new(),
        }
    }

    /// The module name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declares a port.
    pub fn port(&mut self, dir: PortDir, width: u32, name: impl Into<String>) {
        self.ports.push(Port { dir, width, name: name.into() });
    }

    /// Declares an internal net.
    pub fn net(&mut self, kind: NetKind, width: u32, name: impl Into<String>) {
        self.nets.push(Net { kind, width, depth: None, name: name.into() });
    }

    /// Declares an unpacked array (memory) reg.
    pub fn memory(&mut self, width: u32, depth: u64, name: impl Into<String>) {
        self.nets.push(Net {
            kind: NetKind::Reg,
            width,
            depth: Some(depth),
            name: name.into(),
        });
    }

    /// Declares a localparam.
    pub fn localparam(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.params.push(LocalParam { name: name.into(), value: value.into() });
    }

    /// Adds a continuous assignment.
    pub fn assign(&mut self, lhs: impl Into<String>, rhs: impl Into<String>) {
        self.items.push(Item::Assign { lhs: lhs.into(), rhs: rhs.into() });
    }

    /// Adds a clocked always block.
    pub fn always(
        &mut self,
        clock: impl Into<String>,
        reset_n: Option<String>,
        body: Vec<String>,
    ) {
        self.items.push(Item::Always { clock: clock.into(), reset_n, body });
    }

    /// Adds a comment line.
    pub fn comment(&mut self, text: impl Into<String>) {
        self.items.push(Item::Comment(text.into()));
    }

    /// Adds a module instantiation with named connections.
    pub fn instance(
        &mut self,
        module: impl Into<String>,
        instance: impl Into<String>,
        connections: Vec<(String, String)>,
    ) {
        self.items.push(Item::Instance {
            module: module.into(),
            instance: instance.into(),
            connections,
        });
    }

    /// The declared ports.
    #[must_use]
    pub fn ports(&self) -> &[Port] {
        &self.ports
    }

    /// The declared nets.
    #[must_use]
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// The declared localparams.
    #[must_use]
    pub fn params(&self) -> &[LocalParam] {
        &self.params
    }

    /// The body items.
    #[must_use]
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// Renders the module as Verilog-2001 source.
    #[must_use]
    pub fn emit(&self) -> String {
        use fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "module {} (", self.name);
        for (i, p) in self.ports.iter().enumerate() {
            let dir = match p.dir {
                PortDir::Input => "input ",
                PortDir::Output => "output",
                PortDir::OutputReg => "output reg",
            };
            let range = range_of(p.width);
            let comma = if i + 1 < self.ports.len() { "," } else { "" };
            let _ = writeln!(s, "    {dir} {range}{}{comma}", p.name);
        }
        let _ = writeln!(s, ");");
        for lp in &self.params {
            let _ = writeln!(s, "    localparam {} = {};", lp.name, lp.value);
        }
        for n in &self.nets {
            let kind = match n.kind {
                NetKind::Wire => "wire",
                NetKind::Reg => "reg ",
            };
            let range = range_of(n.width);
            match n.depth {
                Some(d) => {
                    let _ = writeln!(s, "    {kind} {range}{} [0:{}];", n.name, d - 1);
                }
                None => {
                    let _ = writeln!(s, "    {kind} {range}{};", n.name);
                }
            }
        }
        let _ = writeln!(s);
        for item in &self.items {
            match item {
                Item::Comment(c) => {
                    let _ = writeln!(s, "    // {c}");
                }
                Item::Assign { lhs, rhs } => {
                    let _ = writeln!(s, "    assign {lhs} = {rhs};");
                }
                Item::Always { clock, reset_n, body } => {
                    match reset_n {
                        Some(r) => {
                            let _ = writeln!(
                                s,
                                "    always @(posedge {clock} or negedge {r}) begin"
                            );
                        }
                        None => {
                            let _ = writeln!(s, "    always @(posedge {clock}) begin");
                        }
                    }
                    for line in body {
                        let _ = writeln!(s, "        {line}");
                    }
                    let _ = writeln!(s, "    end");
                }
                Item::Instance { module, instance, connections } => {
                    let _ = writeln!(s, "    {module} {instance} (");
                    for (i, (port, signal)) in connections.iter().enumerate() {
                        let comma = if i + 1 < connections.len() { "," } else { "" };
                        let _ = writeln!(s, "        .{port}({signal}){comma}");
                    }
                    let _ = writeln!(s, "    );");
                }
            }
        }
        let _ = writeln!(s, "endmodule");
        s
    }
}

fn range_of(width: u32) -> String {
    if width <= 1 {
        "       ".to_string()
    } else {
        format!("[{:>2}:0] ", width - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Module {
        let mut m = Module::new("ctr");
        m.port(PortDir::Input, 1, "clk");
        m.port(PortDir::Input, 1, "rst_n");
        m.port(PortDir::Output, 4, "count");
        m.net(NetKind::Reg, 4, "q");
        m.localparam("MAX", "4'd15");
        m.always(
            "clk",
            Some("rst_n".into()),
            vec!["if (!rst_n) q <= 4'd0;".into(), "else q <= q + 4'd1;".into()],
        );
        m.assign("count", "q");
        m
    }

    #[test]
    fn emits_header_ports_and_footer() {
        let text = sample().emit();
        assert!(text.starts_with("module ctr (\n"));
        assert!(text.contains("input         clk,"));
        assert!(text.contains("output [ 3:0] count"));
        assert!(text.trim_end().ends_with("endmodule"));
    }

    #[test]
    fn emits_reset_always_block() {
        let text = sample().emit();
        assert!(text.contains("always @(posedge clk or negedge rst_n) begin"));
        assert!(text.contains("if (!rst_n) q <= 4'd0;"));
    }

    #[test]
    fn emits_localparams_and_memories() {
        let mut m = sample();
        m.memory(10, 32, "storage");
        let text = m.emit();
        assert!(text.contains("localparam MAX = 4'd15;"));
        assert!(text.contains("reg  [ 9:0] storage [0:31];"));
    }

    #[test]
    fn last_port_has_no_comma() {
        let text = sample().emit();
        let port_lines: Vec<&str> =
            text.lines().take_while(|l| !l.starts_with(");")).collect();
        assert!(port_lines.last().unwrap().trim_end().ends_with("count"));
    }
}
