//! A structural linter for generated modules.
//!
//! Generated RTL cannot be simulated in this environment, so the test
//! suite leans on static checks instead: every identifier referenced in a
//! module body must be declared, `assign` targets must be nets that may be
//! continuously driven, and declarations must be unique. This catches the
//! realistic emitter bugs (typoed signal names, missing declarations,
//! reg/wire confusion) that a simulator would otherwise find first.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::module::{Item, Module, NetKind, PortDir};

/// A problem found in a generated module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LintIssue {
    /// An identifier is referenced but never declared.
    Undeclared {
        /// The identifier.
        name: String,
        /// Where it was seen.
        context: String,
    },
    /// A name is declared more than once.
    Duplicate {
        /// The identifier.
        name: String,
    },
    /// An `assign` drives a `reg` or an `output reg`.
    AssignToReg {
        /// The driven net.
        name: String,
    },
    /// A declared net is never referenced in the body.
    Unused {
        /// The identifier.
        name: String,
    },
}

impl fmt::Display for LintIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintIssue::Undeclared { name, context } => {
                write!(f, "undeclared identifier `{name}` in {context}")
            }
            LintIssue::Duplicate { name } => write!(f, "duplicate declaration `{name}`"),
            LintIssue::AssignToReg { name } => {
                write!(f, "continuous assignment drives reg `{name}`")
            }
            LintIssue::Unused { name } => write!(f, "declared but unused net `{name}`"),
        }
    }
}

const KEYWORDS: &[&str] = &[
    "always",
    "assign",
    "begin",
    "case",
    "casez",
    "default",
    "else",
    "end",
    "endcase",
    "endmodule",
    "for",
    "if",
    "initial",
    "input",
    "localparam",
    "module",
    "negedge",
    "or",
    "output",
    "posedge",
    "reg",
    "wire",
    "integer",
    "forever",
    "while",
    "repeat",
];

/// Lints a module, returning all issues found (empty = clean).
#[must_use]
pub fn lint(module: &Module) -> Vec<LintIssue> {
    let mut issues = Vec::new();

    // Declaration table: name -> is_procedural (reg / output reg).
    let mut declared: BTreeMap<String, bool> = BTreeMap::new();
    let mut declare = |name: &str, is_reg: bool, issues: &mut Vec<LintIssue>| {
        if declared.insert(name.to_string(), is_reg).is_some() {
            issues.push(LintIssue::Duplicate { name: name.to_string() });
        }
    };
    for p in module.ports() {
        declare(&p.name, p.dir == PortDir::OutputReg, &mut issues);
    }
    for n in module.nets() {
        declare(&n.name, n.kind == NetKind::Reg, &mut issues);
    }
    for lp in module.params() {
        declare(&lp.name, false, &mut issues);
    }
    let declared = declared;

    let mut used: BTreeSet<String> = BTreeSet::new();
    let check = |text: &str,
                 context: &str,
                 used: &mut BTreeSet<String>,
                 issues: &mut Vec<LintIssue>| {
        for ident in identifiers(text) {
            used.insert(ident.clone());
            if !declared.contains_key(&ident) {
                issues.push(LintIssue::Undeclared { name: ident, context: context.into() });
            }
        }
    };

    for item in module.items() {
        match item {
            Item::Comment(_) => {}
            Item::Assign { lhs, rhs } => {
                let ctx = format!("assign {lhs} = …");
                check(lhs, &ctx, &mut used, &mut issues);
                check(rhs, &ctx, &mut used, &mut issues);
                if let Some(base) = identifiers(lhs).first() {
                    if declared.get(base) == Some(&true) {
                        issues.push(LintIssue::AssignToReg { name: base.clone() });
                    }
                }
            }
            Item::Always { clock, reset_n, body } => {
                check(clock, "always sensitivity", &mut used, &mut issues);
                if let Some(r) = reset_n {
                    check(r, "always sensitivity", &mut used, &mut issues);
                }
                for line in body {
                    check(line, "always body", &mut used, &mut issues);
                }
            }
            Item::Instance { connections, .. } => {
                for (_, signal) in connections {
                    check(signal, "instance connection", &mut used, &mut issues);
                }
            }
        }
    }

    // Unused nets (ports are part of the interface contract and exempt;
    // localparams may document constants).
    for n in module.nets() {
        if !used.contains(&n.name) {
            issues.push(LintIssue::Unused { name: n.name.clone() });
        }
    }
    issues
}

/// Panics with a readable report if the module has lint issues.
///
/// # Panics
///
/// Panics when [`lint`] reports anything.
pub fn assert_clean(module: &Module) {
    let issues = lint(module);
    assert!(
        issues.is_empty(),
        "module `{}` has {} lint issues:\n{}",
        module.name(),
        issues.len(),
        issues.iter().map(|i| format!("  - {i}")).collect::<Vec<_>>().join("\n")
    );
}

/// Extracts Verilog identifiers from a code fragment, skipping keywords,
/// number literals (`4'd15`, `10`), system tasks (`$display`) and string
/// literals.
#[must_use]
pub fn identifiers(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '"' {
            // string literal
            i += 1;
            while i < bytes.len() && bytes[i] as char != '"' {
                i += 1;
            }
            i += 1;
        } else if c == '/' && i + 1 < bytes.len() && bytes[i + 1] as char == '/' {
            break; // line comment
        } else if c == '$' {
            // system task: consume
            i += 1;
            while i < bytes.len() && is_ident_char(bytes[i] as char) {
                i += 1;
            }
        } else if c.is_ascii_digit() {
            // number literal, possibly based: 4'd15, 10'b0101_1010
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            if i < bytes.len() && bytes[i] as char == '\'' {
                i += 1; // base marker
                if i < bytes.len() {
                    i += 1; // base char
                }
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] as char == '_')
                {
                    i += 1;
                }
            }
        } else if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() && is_ident_char(bytes[i] as char) {
                i += 1;
            }
            let word = &text[start..i];
            if !KEYWORDS.contains(&word) {
                out.push(word.to_string());
            }
        } else {
            i += 1;
        }
    }
    out
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '$'
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{Module, NetKind, PortDir};

    fn clean_module() -> Module {
        let mut m = Module::new("ok");
        m.port(PortDir::Input, 1, "clk");
        m.port(PortDir::Input, 1, "rst_n");
        m.port(PortDir::Output, 4, "q");
        m.net(NetKind::Reg, 4, "count");
        m.localparam("MAX", "4'd9");
        m.always(
            "clk",
            Some("rst_n".into()),
            vec![
                "if (!rst_n) count <= 4'd0;".into(),
                "else if (count == MAX) count <= 4'd0;".into(),
                "else count <= count + 4'd1;".into(),
            ],
        );
        m.assign("q", "count");
        m
    }

    #[test]
    fn clean_module_has_no_issues() {
        assert_eq!(lint(&clean_module()), vec![]);
        assert_clean(&clean_module());
    }

    #[test]
    fn undeclared_identifier_is_reported() {
        let mut m = clean_module();
        m.assign("q", "cout"); // typo of count
        let issues = lint(&m);
        assert!(issues
            .iter()
            .any(|i| matches!(i, LintIssue::Undeclared { name, .. } if name == "cout")));
    }

    #[test]
    fn duplicate_declaration_is_reported() {
        let mut m = clean_module();
        m.net(NetKind::Wire, 1, "count");
        assert!(lint(&m)
            .iter()
            .any(|i| matches!(i, LintIssue::Duplicate { name } if name == "count")));
    }

    #[test]
    fn assign_to_reg_is_reported() {
        let mut m = clean_module();
        m.assign("count", "4'd1");
        assert!(lint(&m).iter().any(|i| matches!(i, LintIssue::AssignToReg { .. })));
    }

    #[test]
    fn unused_net_is_reported() {
        let mut m = clean_module();
        m.net(NetKind::Wire, 1, "orphan");
        assert!(lint(&m)
            .iter()
            .any(|i| matches!(i, LintIssue::Unused { name } if name == "orphan")));
    }

    #[test]
    fn identifier_scanner_skips_literals_and_tasks() {
        let ids = identifiers("a <= 4'd15 + _b2[3] ^ $signed(c); // d");
        assert_eq!(ids, vec!["a", "_b2", "c"]);
        let ids = identifiers("x <= {2'b01, y[7:0]};");
        assert_eq!(ids, vec!["x", "y"]);
        let ids = identifiers("$display(\"value %d\", v);");
        assert_eq!(ids, vec!["v"]);
    }

    #[test]
    fn instance_connections_are_checked() {
        let mut m = clean_module();
        m.instance(
            "child",
            "u0",
            vec![("clk".into(), "clk".into()), ("d".into(), "nope".into())],
        );
        assert!(lint(&m)
            .iter()
            .any(|i| matches!(i, LintIssue::Undeclared { name, .. } if name == "nope")));
    }
}
