//! Rendering minimized covers as Verilog boolean expressions.

use mbist_logic::Cover;

/// Renders a sum-of-products cover as a Verilog expression over the given
/// input signal names (`inputs[i]` names cover input bit `i`).
///
/// # Panics
///
/// Panics if `inputs.len()` differs from the cover's input count.
///
/// # Examples
///
/// ```
/// use mbist_hdl::cover_to_verilog;
/// use mbist_logic::{Cover, Cube};
///
/// let f = Cover::from_cubes(3, vec![
///     Cube::parse("-11").unwrap(),
///     Cube::parse("0--").unwrap(),
/// ]);
/// let v = cover_to_verilog(&f, &["a", "b", "c"]);
/// assert_eq!(v, "(a & b) | (~c)");
/// ```
#[must_use]
pub fn cover_to_verilog(cover: &Cover, inputs: &[&str]) -> String {
    assert_eq!(
        inputs.len(),
        usize::from(cover.inputs()),
        "input name count must match cover inputs"
    );
    if cover.is_empty() {
        return "1'b0".to_string();
    }
    let terms: Vec<String> = cover
        .cubes()
        .iter()
        .map(|cube| {
            let literals: Vec<String> = (0..cube.inputs())
                .filter_map(|i| {
                    cube.literal(i).map(|pos| {
                        if pos {
                            inputs[usize::from(i)].to_string()
                        } else {
                            format!("~{}", inputs[usize::from(i)])
                        }
                    })
                })
                .collect();
            if literals.is_empty() {
                "1'b1".to_string()
            } else {
                format!("({})", literals.join(" & "))
            }
        })
        .collect();
    terms.join(" | ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbist_logic::{minimize, Cube, TruthTable};

    #[test]
    fn empty_cover_is_constant_zero() {
        assert_eq!(cover_to_verilog(&Cover::new(2), &["a", "b"]), "1'b0");
    }

    #[test]
    fn tautology_is_constant_one() {
        let f = Cover::from_cubes(2, vec![Cube::universe(2)]);
        assert_eq!(cover_to_verilog(&f, &["a", "b"]), "1'b1");
    }

    #[test]
    fn expression_evaluates_like_the_cover() {
        // Evaluate the emitted expression with a tiny interpreter and
        // compare against the cover on all minterms.
        let tt = TruthTable::from_fn(4, |m| (m % 5 == 1 || m > 11).into());
        let f = minimize(&tt).unwrap();
        let names = ["i0", "i1", "i2", "i3"];
        let expr = cover_to_verilog(&f, &names);
        for m in 0..16u64 {
            let got = eval(&expr, &names, m);
            assert_eq!(got, f.evaluate(m), "mismatch at minterm {m} in `{expr}`");
        }
    }

    /// Minimal evaluator for the emitted `(a & ~b) | (c)` subset.
    fn eval(expr: &str, names: &[&str; 4], minterm: u64) -> bool {
        if expr == "1'b0" {
            return false;
        }
        expr.split('|').any(|term| {
            let term = term.trim().trim_start_matches('(').trim_end_matches(')');
            if term == "1'b1" {
                return true;
            }
            term.split('&').all(|lit| {
                let lit = lit.trim();
                let (neg, name) = match lit.strip_prefix('~') {
                    Some(rest) => (true, rest),
                    None => (false, lit),
                };
                let idx = names.iter().position(|n| *n == name).expect("known input");
                let value = (minterm >> idx) & 1 == 1;
                value != neg
            })
        })
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn wrong_name_count_panics() {
        let _ = cover_to_verilog(&Cover::new(3), &["a"]);
    }
}
