//! Verilog emission for hardwired march controllers.
//!
//! The flow mirrors a 1990s ASIC methodology: the behavioral
//! [`HardwiredFsm`] exports its transition table, the two-level minimizer
//! produces covers for every next-state and output bit, and this module
//! renders those covers as a flat `assign` network around a state
//! register — a synthesized netlist in readable form.

use mbist_area::synthesize;
use mbist_core::hardwired::{HardwiredCaps, HardwiredFsm, OUTPUT_NAMES};
use mbist_march::MarchTest;

use crate::expr::cover_to_verilog;
use crate::module::{Module, NetKind, PortDir};

/// Emits a hardwired controller module for `test`.
///
/// Ports: `clk`, `rst_n`, the status inputs implied by `caps`
/// (`last_address`, optionally `last_background` / `last_port`) and the
/// twelve control outputs of [`OUTPUT_NAMES`].
#[must_use]
pub fn emit_hardwired(test: &MarchTest, caps: HardwiredCaps, module_name: &str) -> Module {
    let fsm = HardwiredFsm::new(test, caps);
    let synth = synthesize(&fsm);
    let state_bits = synth.state_bits;

    let mut m = Module::new(module_name);
    m.port(PortDir::Input, 1, "clk");
    m.port(PortDir::Input, 1, "rst_n");
    m.port(PortDir::Input, 1, "last_address");
    if caps.background_loop {
        m.port(PortDir::Input, 1, "last_background");
    }
    if caps.port_loop {
        m.port(PortDir::Input, 1, "last_port");
    }
    for name in OUTPUT_NAMES {
        m.port(PortDir::Output, 1, name);
    }
    m.net(NetKind::Reg, state_bits, "state");
    m.net(NetKind::Wire, state_bits, "state_next");
    m.localparam("RESET_STATE", format!("{state_bits}'d1"));

    // Cover input names: state bits then status inputs, matching the
    // synthesis minterm layout.
    let mut owned_names: Vec<String> =
        (0..state_bits).map(|i| format!("state[{i}]")).collect();
    owned_names.push("last_address".to_string());
    if caps.background_loop {
        owned_names.push("last_background".to_string());
    }
    if caps.port_loop {
        owned_names.push("last_port".to_string());
    }
    let names: Vec<&str> = owned_names.iter().map(String::as_str).collect();

    m.comment(format!(
        "synthesized from {}: {} states, {} product terms",
        test.name(),
        fsm.state_count(),
        synth.product_terms
    ));
    for (bit, cover) in synth.covers.iter().take(state_bits as usize).enumerate() {
        m.assign(format!("state_next[{bit}]"), cover_to_verilog(cover, &names));
    }
    for (k, name) in OUTPUT_NAMES.iter().enumerate() {
        let cover = &synth.covers[state_bits as usize + k];
        m.assign(*name, cover_to_verilog(cover, &names));
    }
    m.always(
        "clk",
        Some("rst_n".into()),
        vec![
            "if (!rst_n) state <= RESET_STATE;".into(),
            "else state <= state_next;".into(),
        ],
    );
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::assert_clean;
    use mbist_march::library;

    #[test]
    fn march_c_controller_lints_clean() {
        let m =
            emit_hardwired(&library::march_c(), HardwiredCaps::default(), "march_c_ctrl");
        assert_clean(&m);
        let text = m.emit();
        assert!(text.contains("module march_c_ctrl"));
        assert!(text.contains("state_next"));
        assert!(text.contains("read_en"));
        assert!(text.contains("endmodule"));
    }

    #[test]
    fn caps_add_status_ports() {
        let plain = emit_hardwired(&library::march_c(), HardwiredCaps::default(), "a");
        assert!(!plain.emit().contains("last_background"));
        let full = emit_hardwired(
            &library::march_c(),
            HardwiredCaps { background_loop: true, port_loop: true },
            "b",
        );
        assert_clean(&full);
        let text = full.emit();
        assert!(text.contains("last_background"));
        assert!(text.contains("last_port"));
    }

    #[test]
    fn every_library_algorithm_emits_clean_rtl() {
        for t in library::all() {
            let name = format!("hw_{}", t.name().replace(['-', '+'], "_"));
            let m = emit_hardwired(&t, HardwiredCaps::default(), &name);
            assert_clean(&m);
        }
    }

    #[test]
    fn reset_state_is_the_first_op_state() {
        let m = emit_hardwired(&library::mats(), HardwiredCaps::default(), "x");
        assert!(
            m.emit().contains("RESET_STATE = 4'd1")
                || m.emit().contains("RESET_STATE = 3'd1")
        );
    }
}
