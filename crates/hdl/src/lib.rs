//! # mbist-hdl — Verilog emission for the MBIST architectures
//!
//! The paper's artifacts were gate-level ASIC netlists; this crate closes
//! the loop by emitting synthesizable Verilog-2001 from the verified Rust
//! models:
//!
//! - [`emit_hardwired`]: hardwired march controllers as a state register
//!   plus the *actual minimized covers* from the two-level synthesizer —
//!   a readable synthesized netlist,
//! - [`emit_microcode`]: the Z×10 microcode controller with its scan
//!   chain, instruction counter, branch and reference registers,
//! - [`emit_datapath`] / [`emit_top`]: the shared datapath and a complete
//!   BIST unit with a memory interface,
//! - [`emit_testbench`]: a self-checking testbench that scan-loads a
//!   compiled program image (verified bit-exact against the
//!   cycle-accurate model),
//! - [`lint`] / [`assert_clean`]: a structural linter standing in for a
//!   simulator in this environment.
//!
//! # Examples
//!
//! ```
//! use mbist_hdl::{assert_clean, emit_hardwired};
//! use mbist_core::hardwired::HardwiredCaps;
//! use mbist_march::library;
//!
//! let module = emit_hardwired(&library::march_c(), HardwiredCaps::default(), "march_c");
//! assert_clean(&module);
//! println!("{}", module.emit());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bist;
mod expr;
mod hardwired;
mod lint;
mod microcode;
mod module;
mod progfsm;
mod testbench;

pub use bist::{emit_datapath, emit_top};
pub use expr::cover_to_verilog;
pub use hardwired::emit_hardwired;
pub use lint::{assert_clean, identifiers, lint, LintIssue};
pub use microcode::{emit_microcode, CTRL_OUTPUTS};
pub use module::{Item, LocalParam, Module, Net, NetKind, Port, PortDir};
pub use progfsm::emit_progfsm;
pub use testbench::{emit_testbench, program_scan_image};
