//! Property tests for the validator/watchdog contract (vendored-proptest,
//! `--features proptest`): any program the static validator accepts must
//! assert `Test End` within the closed-form [`cycle_budget`], and the
//! validator must agree with the controller constructors about which
//! programs are admissible.

use proptest::prelude::*;

use mbist_core::microcode::{MicrocodeConfig, MicrocodeController, Microinstruction};
use mbist_core::progfsm::{FsmInstruction, ProgFsmConfig, ProgFsmController};
use mbist_core::validate::{cycle_budget, validate_microcode, validate_progfsm};
use mbist_core::{BistDatapath, BistUnit, CoreError};
use mbist_march::standard_backgrounds;
use mbist_mem::{MemGeometry, MemoryArray};
use mbist_rtl::Bits;

/// Arbitrary microcode programs: every 10-bit pattern is fair game (the
/// fail-safe decoder never rejects), so the strategy covers corrupted
/// stores as well as hand-written programs.
fn arb_microcode() -> impl Strategy<Value = Vec<Microinstruction>> {
    proptest::collection::vec(0u64..1024, 1..10).prop_map(|words| {
        words
            .into_iter()
            .map(|v| Microinstruction::decode_failsafe(Bits::new(10, v)))
            .collect()
    })
}

/// Arbitrary prog-FSM parameter rows from raw 8-bit patterns.
fn arb_progfsm() -> impl Strategy<Value = Vec<FsmInstruction>> {
    proptest::collection::vec(0u64..256, 1..8).prop_map(|words| {
        words
            .into_iter()
            .map(|v| FsmInstruction::decode_failsafe(Bits::new(8, v)))
            .collect()
    })
}

fn arb_geometry() -> impl Strategy<Value = MemGeometry> {
    (1u64..12, 1u8..3, 1u8..3)
        .prop_map(|(words, width, ports)| MemGeometry::new(words, width, ports))
}

proptest! {
    #[test]
    fn accepted_microcode_terminates_within_the_derived_budget(
        program in arb_microcode(),
        geometry in arb_geometry(),
    ) {
        let verdict = validate_microcode(&program);
        let config = MicrocodeConfig {
            capacity: program.len(),
            ..MicrocodeConfig::default()
        };
        let built = MicrocodeController::new("prop", &program, config);
        match verdict {
            Err(_) => prop_assert!(
                built.is_err(),
                "constructor accepted a program the validator rejects"
            ),
            Ok(()) => {
                let controller = built.expect("validator-accepted program loads");
                let backgrounds = standard_backgrounds(geometry.width());
                let budget = cycle_budget(program.len(), &geometry, backgrounds.len());
                let datapath = BistDatapath::new(geometry, backgrounds);
                let mut unit = BistUnit::new(controller, datapath);
                let mut mem = MemoryArray::new(geometry);
                let outcome = unit.run_bounded(&mut mem, budget);
                prop_assert!(
                    !matches!(outcome, Err(CoreError::CycleBudgetExceeded { .. })),
                    "accepted program `{}` blew the {budget}-cycle budget on {geometry}",
                    mbist_core::microcode::to_source(&program)
                );
            }
        }
    }

    #[test]
    fn accepted_progfsm_terminates_within_the_derived_budget(
        program in arb_progfsm(),
        geometry in arb_geometry(),
    ) {
        let verdict = validate_progfsm(&program);
        let config = ProgFsmConfig {
            capacity: program.len(),
            ..ProgFsmConfig::default()
        };
        let built = ProgFsmController::new("prop", &program, config);
        match verdict {
            Err(_) => prop_assert!(
                built.is_err(),
                "constructor accepted a buffer the validator rejects"
            ),
            Ok(()) => {
                let controller = built.expect("validator-accepted buffer loads");
                let backgrounds = standard_backgrounds(geometry.width());
                let budget = cycle_budget(program.len(), &geometry, backgrounds.len());
                let datapath = BistDatapath::new(geometry, backgrounds);
                let mut unit = BistUnit::new(controller, datapath);
                let mut mem = MemoryArray::new(geometry);
                let outcome = unit.run_bounded(&mut mem, budget);
                prop_assert!(
                    !matches!(outcome, Err(CoreError::CycleBudgetExceeded { .. })),
                    "accepted buffer blew the {budget}-cycle budget on {geometry}"
                );
            }
        }
    }

    #[test]
    fn single_upsets_never_alias_the_signature(
        program in arb_microcode(),
        bit in 0usize..10_000,
    ) {
        if validate_microcode(&program).is_err() {
            // the shim has no prop_assume; rejected programs are vacuous here
            return Ok(());
        }
        use mbist_core::ScanRecoverable;
        let config = MicrocodeConfig {
            capacity: program.len(),
            ..MicrocodeConfig::default()
        };
        let mut controller =
            MicrocodeController::new("prop", &program, config).unwrap();
        let bit = bit % controller.store_bits();
        controller.inject_upset(bit);
        prop_assert!(
            controller.verify_integrity().is_err(),
            "single-bit upset at {bit} escaped the interleaved parity"
        );
        let cost = controller.scan_reload();
        prop_assert!(cost > 0);
        prop_assert!(controller.verify_integrity().is_ok());
    }
}
