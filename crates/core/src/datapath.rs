//! The shared BIST datapath: address generator, data-background generator,
//! port counter and comparator.
//!
//! Every controller architecture drives the *same* datapath — exactly as in
//! the paper, where the controller is swapped while address generation,
//! data generation and compare logic are common components of the memory
//! BIST unit. Keeping the datapath shared guarantees the area comparison
//! isolates the controller (the paper's "internal area") and the
//! operation-stream equivalence proofs compare controllers only.

use mbist_mem::{MemGeometry, PortId};
use mbist_rtl::{Bits, Direction, Primitive, Structure, UpDownCounter};

use crate::signals::{ControlSignals, StatusSignals};

/// The datapath state of a memory BIST unit.
///
/// # Examples
///
/// ```
/// use mbist_core::BistDatapath;
/// use mbist_march::standard_backgrounds;
/// use mbist_mem::MemGeometry;
///
/// let g = MemGeometry::word_oriented(256, 8);
/// let dp = BistDatapath::new(g, standard_backgrounds(8));
/// assert_eq!(dp.background().value(), 0);
/// assert!(!dp.last_background());
/// ```
#[derive(Debug, Clone)]
pub struct BistDatapath {
    geometry: MemGeometry,
    addr: UpDownCounter,
    /// Reset requested: the counter re-loads at the next access, using that
    /// access's direction (models the load mux on the order line).
    addr_pending_reset: bool,
    backgrounds: Vec<Bits>,
    bg_index: usize,
    port: u8,
}

impl BistDatapath {
    /// Creates a datapath for `geometry` looping over `backgrounds`.
    ///
    /// # Panics
    ///
    /// Panics if `backgrounds` is empty or any background width differs
    /// from the word width.
    #[must_use]
    pub fn new(geometry: MemGeometry, backgrounds: Vec<Bits>) -> Self {
        assert!(!backgrounds.is_empty(), "at least one data background required");
        for bg in &backgrounds {
            assert_eq!(bg.width(), geometry.width(), "background width mismatch");
        }
        Self {
            geometry,
            addr: UpDownCounter::new(geometry.addr_bits(), geometry.last_addr()),
            addr_pending_reset: true,
            backgrounds,
            bg_index: 0,
            port: 0,
        }
    }

    /// The memory geometry this datapath addresses.
    #[must_use]
    pub fn geometry(&self) -> MemGeometry {
        self.geometry
    }

    /// Current word address for an access in direction `dir` (materializes
    /// a pending reset).
    #[must_use]
    pub fn addr_for(&self, dir: Direction) -> u64 {
        if self.addr_pending_reset {
            match dir {
                Direction::Up => 0,
                Direction::Down => self.geometry.last_addr(),
            }
        } else {
            self.addr.value().value()
        }
    }

    /// Current data background.
    #[must_use]
    pub fn background(&self) -> Bits {
        self.backgrounds[self.bg_index]
    }

    /// All configured backgrounds.
    #[must_use]
    pub fn backgrounds(&self) -> &[Bits] {
        &self.backgrounds
    }

    /// Current port.
    #[must_use]
    pub fn port(&self) -> PortId {
        PortId(self.port)
    }

    /// Whether the address generator sits on the final address of a sweep
    /// in `dir`.
    #[must_use]
    pub fn last_address(&self, dir: Direction) -> bool {
        if self.addr_pending_reset {
            self.geometry.words() == 1
        } else {
            self.addr.at_terminal(dir)
        }
    }

    /// Whether the background generator sits on the final background.
    #[must_use]
    pub fn last_background(&self) -> bool {
        self.bg_index + 1 == self.backgrounds.len()
    }

    /// Whether the port counter sits on the final port.
    #[must_use]
    pub fn last_port(&self) -> bool {
        self.port + 1 == self.geometry.ports()
    }

    /// The status lines for a controller executing in direction `dir`.
    #[must_use]
    pub fn status(&self, dir: Direction) -> StatusSignals {
        StatusSignals {
            last_address: self.last_address(dir),
            last_background: self.last_background(),
            last_port: self.last_port(),
        }
    }

    /// The word written for relative data `invert` under the current
    /// background.
    #[must_use]
    pub fn data_word(&self, invert: bool) -> Bits {
        if invert {
            !self.background()
        } else {
            self.background()
        }
    }

    /// Applies one cycle's control signals to the sequential state (the
    /// access itself is driven by the BIST unit).
    pub fn apply(&mut self, signals: &ControlSignals) {
        if signals.has_access() {
            // Materialize a pending reset for this access's direction.
            if self.addr_pending_reset {
                self.addr.load_start(signals.addr_order);
                self.addr_pending_reset = false;
            }
            if signals.addr_inc {
                self.addr.step(signals.addr_order);
            }
        }
        if signals.addr_reset {
            self.addr_pending_reset = true;
        }
        if signals.bg_reset {
            self.bg_index = 0;
        } else if signals.bg_inc && !self.last_background() {
            self.bg_index += 1;
        }
        if signals.port_reset {
            self.port = 0;
        } else if signals.port_inc && !self.last_port() {
            self.port += 1;
        }
    }

    /// Returns the datapath to its power-on state.
    pub fn reset(&mut self) {
        self.addr_pending_reset = true;
        self.addr.load_start(Direction::Up);
        self.bg_index = 0;
        self.port = 0;
    }

    /// Structural inventory of the datapath for area estimation: address
    /// up/down counter, background generator, port counter, write-data XOR
    /// mask and read comparator.
    #[must_use]
    pub fn structure(&self) -> Structure {
        let w = u32::from(self.geometry.width());
        let bg_count = self.backgrounds.len() as u32;
        let mut s =
            Structure::named("datapath").with_child(self.addr.structure("addr_gen"));
        // Background generator: an index counter plus a small pattern
        // decoder per background per bit.
        let bg_bits = (usize::BITS - (self.backgrounds.len() - 1).leading_zeros()).max(1);
        let mut bg = Structure::leaf("bg_gen")
            .with(Primitive::Dff, bg_bits)
            .with(Primitive::Nand2, bg_count.saturating_sub(1) * w / 2 + w);
        bg.add(Primitive::Xor2, w); // data-invert mask
        s.push_child(bg);
        // Port counter (absent on single-port units).
        if self.geometry.ports() > 1 {
            let pbits = (u8::BITS - (self.geometry.ports() - 1).leading_zeros()).max(1);
            s.push_child(
                Structure::leaf("port_ctr")
                    .with(Primitive::Dff, pbits)
                    .with(Primitive::Nand2, pbits),
            );
        }
        // Comparator: per-bit XOR + AND-reduce, plus expected-data mask.
        s.push_child(
            Structure::leaf("comparator")
                .with(Primitive::Xor2, 2 * w)
                .with(Primitive::Nand2, w.saturating_sub(1) + 1),
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbist_march::standard_backgrounds;

    fn dp(words: u64, width: u8, ports: u8) -> BistDatapath {
        let g = MemGeometry::new(words, width, ports);
        BistDatapath::new(g, standard_backgrounds(width))
    }

    fn access(order: Direction, inc: bool) -> ControlSignals {
        ControlSignals {
            read_en: true,
            addr_order: order,
            addr_inc: inc,
            ..ControlSignals::idle()
        }
    }

    #[test]
    fn pending_reset_materializes_per_direction() {
        let d = dp(8, 1, 1);
        assert_eq!(d.addr_for(Direction::Up), 0);
        assert_eq!(d.addr_for(Direction::Down), 7);
    }

    #[test]
    fn sweep_up_then_reset_then_down() {
        let mut d = dp(4, 1, 1);
        let mut seen = Vec::new();
        for _ in 0..4 {
            seen.push(d.addr_for(Direction::Up));
            d.apply(&access(Direction::Up, true));
        }
        assert_eq!(seen, vec![0, 1, 2, 3]);
        d.apply(&ControlSignals { addr_reset: true, ..ControlSignals::idle() });
        let mut seen = Vec::new();
        for _ in 0..4 {
            seen.push(d.addr_for(Direction::Down));
            d.apply(&access(Direction::Down, true));
        }
        assert_eq!(seen, vec![3, 2, 1, 0]);
    }

    #[test]
    fn last_address_tracks_direction() {
        let mut d = dp(2, 1, 1);
        assert!(!d.last_address(Direction::Up));
        d.apply(&access(Direction::Up, true));
        assert!(d.last_address(Direction::Up));
        assert!(!d.last_address(Direction::Down));
    }

    #[test]
    fn single_word_memory_is_always_last() {
        let d = dp(1, 1, 1);
        assert!(d.last_address(Direction::Up));
        assert!(d.last_address(Direction::Down));
    }

    #[test]
    fn background_loop_saturates_and_resets() {
        let mut d = dp(4, 4, 1); // 3 backgrounds for width 4
        assert_eq!(d.background().value(), 0);
        d.apply(&ControlSignals { bg_inc: true, ..ControlSignals::idle() });
        assert_eq!(d.background().value(), 0b1010);
        d.apply(&ControlSignals { bg_inc: true, ..ControlSignals::idle() });
        assert!(d.last_background());
        // saturates at the last background
        d.apply(&ControlSignals { bg_inc: true, ..ControlSignals::idle() });
        assert!(d.last_background());
        d.apply(&ControlSignals { bg_reset: true, ..ControlSignals::idle() });
        assert_eq!(d.background().value(), 0);
    }

    #[test]
    fn port_counter_advances() {
        let mut d = dp(4, 1, 3);
        assert_eq!(d.port(), PortId(0));
        d.apply(&ControlSignals { port_inc: true, ..ControlSignals::idle() });
        assert_eq!(d.port(), PortId(1));
        assert!(!d.last_port());
        d.apply(&ControlSignals { port_inc: true, ..ControlSignals::idle() });
        assert!(d.last_port());
    }

    #[test]
    fn data_word_xors_background() {
        let mut d = dp(4, 4, 1);
        d.apply(&ControlSignals { bg_inc: true, ..ControlSignals::idle() });
        assert_eq!(d.data_word(false).value(), 0b1010);
        assert_eq!(d.data_word(true).value(), 0b0101);
    }

    #[test]
    fn reset_restores_power_on_state() {
        let mut d = dp(4, 4, 2);
        d.apply(&access(Direction::Up, true));
        d.apply(&ControlSignals { bg_inc: true, port_inc: true, ..ControlSignals::idle() });
        d.reset();
        assert_eq!(d.addr_for(Direction::Up), 0);
        assert_eq!(d.background().value(), 0);
        assert_eq!(d.port(), PortId(0));
    }

    #[test]
    fn structure_scales_with_ports() {
        let single = dp(256, 8, 1).structure();
        let multi = dp(256, 8, 2).structure();
        assert!(multi.count(Primitive::Dff) > single.count(Primitive::Dff));
        assert!(single.find("port_ctr").is_none());
        assert!(multi.find("port_ctr").is_some());
    }
}
