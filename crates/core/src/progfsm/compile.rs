//! Compiling march tests onto the programmable FSM-based architecture.
//!
//! Each march element must match one of the SM0…SM7 components (Eq. 2);
//! elements outside the menu make the test inexpressible — the concrete
//! flexibility boundary between this architecture (MEDIUM) and the
//! microcode-based one (HIGH).

use mbist_march::{MarchItem, MarchTest};

use crate::error::CoreError;
use crate::progfsm::components::SmComponent;
use crate::progfsm::isa::{FsmInstruction, FsmOp};

/// Compiles a march test into an upper-controller program.
///
/// # Errors
///
/// Returns [`CoreError::NotExpressible`] if an element matches no march
/// component, a pause is not followed by an element, or pause durations
/// are mixed.
///
/// # Examples
///
/// ```
/// use mbist_core::progfsm::compile;
/// use mbist_march::library;
///
/// assert_eq!(compile(&library::march_c())?.len(), 8);   // Fig. 5
/// assert!(compile(&library::march_b()).is_err());        // 6-op element
/// assert!(compile(&library::march_c_plus_plus()).is_err()); // triple reads
/// # Ok::<(), mbist_core::CoreError>(())
/// ```
pub fn compile(test: &MarchTest) -> Result<Vec<FsmInstruction>, CoreError> {
    let mut out = Vec::new();
    let mut pending_hold = false;
    let mut pause: Option<f64> = None;

    for item in test.items() {
        match item {
            MarchItem::Pause { ns } => {
                match pause {
                    None => pause = Some(*ns),
                    Some(d) if d == *ns => {}
                    Some(d) => {
                        return Err(CoreError::NotExpressible {
                            architecture: "programmable-fsm",
                            message: format!(
                                "mixed pause durations {d}ns and {ns}ns exceed the \
                                 single hold timer"
                            ),
                        })
                    }
                }
                pending_hold = true;
            }
            MarchItem::Element(e) => {
                let (sm, d) = SmComponent::matching(e.ops()).ok_or_else(|| {
                    CoreError::NotExpressible {
                        architecture: "programmable-fsm",
                        message: format!("element {e} matches no march test component"),
                    }
                })?;
                out.push(FsmInstruction {
                    hold: std::mem::take(&mut pending_hold),
                    down: e.order() == mbist_march::AddressOrder::Down,
                    invert: d,
                    cmp_invert: false,
                    kind: FsmOp::Component(sm),
                });
            }
        }
    }
    if pending_hold {
        return Err(CoreError::NotExpressible {
            architecture: "programmable-fsm",
            message: "trailing pause has no following element to hold".into(),
        });
    }
    out.push(FsmInstruction { kind: FsmOp::LoopBg, ..FsmInstruction::nop() });
    out.push(FsmInstruction { kind: FsmOp::LoopPort, ..FsmInstruction::nop() });
    Ok(out)
}

/// The (single) pause duration used by the test's hold bits.
///
/// # Errors
///
/// Returns [`CoreError::NotExpressible`] if the test mixes pause durations.
pub fn pause_duration(test: &MarchTest) -> Result<Option<f64>, CoreError> {
    let mut duration: Option<f64> = None;
    for item in test.items() {
        if let MarchItem::Pause { ns } = item {
            match duration {
                None => duration = Some(*ns),
                Some(d) if d == *ns => {}
                Some(d) => {
                    return Err(CoreError::NotExpressible {
                        architecture: "programmable-fsm",
                        message: format!("mixed pause durations {d}ns and {ns}ns"),
                    })
                }
            }
        }
    }
    Ok(duration)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbist_march::library;

    #[test]
    fn march_c_is_fig_5() {
        let p = compile(&library::march_c()).unwrap();
        assert_eq!(p.len(), 8);
        // SM0 up d0; SM1 up d0; SM1 up d1; SM1 down d0; SM1 down d1; SM5 up d0
        let kinds: Vec<String> = p.iter().map(ToString::to_string).collect();
        assert_eq!(
            kinds,
            vec![
                "SM0 up d=0",
                "SM1 up d=0",
                "SM1 up d=1",
                "SM1 down d=0",
                "SM1 down d=1",
                "SM5 up d=0",
                "loopbg",
                "loopport",
            ]
        );
    }

    #[test]
    fn retention_tail_sets_hold_bits() {
        let p = compile(&library::march_c_plus()).unwrap();
        // …; hold SM7 up d=0; hold SM5 up d=1; loops
        let holds: Vec<usize> =
            p.iter().enumerate().filter(|(_, i)| i.hold).map(|(k, _)| k).collect();
        assert_eq!(holds.len(), 2);
        assert!(p[holds[0]].to_string().contains("SM7"));
        assert!(p[holds[1]].to_string().contains("SM5"));
    }

    #[test]
    fn expressible_library_subset() {
        let expressible = [
            "mats", "mats+", "march-x", "march-y", "march-c", "march-c+", "pmovi",
            "march-u", "march-lr", "march-a", "march-a+",
        ];
        let inexpressible = ["march-b", "march-c++", "march-a++", "march-ss", "march-g"];
        for t in library::all() {
            let result = compile(&t);
            if expressible.contains(&t.name()) {
                assert!(result.is_ok(), "{} should compile", t.name());
            } else {
                assert!(inexpressible.contains(&t.name()), "unclassified {}", t.name());
                assert!(result.is_err(), "{} should be rejected", t.name());
            }
        }
    }

    #[test]
    fn error_names_offending_element() {
        let err = compile(&library::march_b()).unwrap_err();
        assert!(err.to_string().contains("matches no march test component"));
    }

    #[test]
    fn trailing_pause_rejected() {
        let t = mbist_march::MarchTest::parse("t", "m(w0); m(r0); pause(1ms)").unwrap();
        // a trailing pause is representable in notation but not on this
        // architecture
        let err = compile(&t).unwrap_err();
        assert!(err.to_string().contains("trailing pause"));
    }
}
