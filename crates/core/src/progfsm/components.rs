//! The eight canonical march test components SM0…SM7 (paper Eq. 2).
//!
//! Most march algorithms decompose into elements drawn from this menu,
//! each parameterized by address order and data value `d`. The lower-level
//! FSM realizes exactly these components — which is why the architecture's
//! flexibility is MEDIUM: an element outside the menu (March B's 6-op
//! element, the `++` variants' triple-read elements) cannot be expressed.

use std::fmt;

use mbist_march::MarchOp;

/// A march test component: a per-cell operation pattern parameterized by
/// the data value `d`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SmComponent {
    /// SM0 = `(w d)` — initialization.
    Sm0,
    /// SM1 = `(r d, w d̄)` — the March C workhorse.
    Sm1,
    /// SM2 = `(r d, w d̄, r d̄, w d)` — read-verify-restore.
    Sm2,
    /// SM3 = `(r d, w d̄, w d)` — March A's 3-op element.
    Sm3,
    /// SM4 = `(r d, r d, r d)` — triple read.
    Sm4,
    /// SM5 = `(r d)` — verification sweep.
    Sm5,
    /// SM6 = `(r d, w d̄, w d, w d̄)` — March A's 4-op element.
    Sm6,
    /// SM7 = `(r d, w d̄, r d̄)` — the data-retention element.
    Sm7,
}

impl SmComponent {
    /// All components in mode order.
    pub const ALL: [SmComponent; 8] = [
        SmComponent::Sm0,
        SmComponent::Sm1,
        SmComponent::Sm2,
        SmComponent::Sm3,
        SmComponent::Sm4,
        SmComponent::Sm5,
        SmComponent::Sm6,
        SmComponent::Sm7,
    ];

    /// The 3-bit mode encoding.
    #[must_use]
    pub fn mode(self) -> u8 {
        match self {
            SmComponent::Sm0 => 0,
            SmComponent::Sm1 => 1,
            SmComponent::Sm2 => 2,
            SmComponent::Sm3 => 3,
            SmComponent::Sm4 => 4,
            SmComponent::Sm5 => 5,
            SmComponent::Sm6 => 6,
            SmComponent::Sm7 => 7,
        }
    }

    /// Decodes a 3-bit mode.
    #[must_use]
    pub fn from_mode(mode: u8) -> SmComponent {
        Self::ALL[usize::from(mode & 0b111)]
    }

    /// The per-cell operation pattern for data value `d`.
    #[must_use]
    pub fn ops(self, d: bool) -> Vec<MarchOp> {
        use MarchOp::{Read, Write};
        match self {
            SmComponent::Sm0 => vec![Write(d)],
            SmComponent::Sm1 => vec![Read(d), Write(!d)],
            SmComponent::Sm2 => vec![Read(d), Write(!d), Read(!d), Write(d)],
            SmComponent::Sm3 => vec![Read(d), Write(!d), Write(d)],
            SmComponent::Sm4 => vec![Read(d), Read(d), Read(d)],
            SmComponent::Sm5 => vec![Read(d)],
            SmComponent::Sm6 => vec![Read(d), Write(!d), Write(d), Write(!d)],
            SmComponent::Sm7 => vec![Read(d), Write(!d), Read(!d)],
        }
    }

    /// Finds the component and data value realizing an operation pattern.
    #[must_use]
    pub fn matching(ops: &[MarchOp]) -> Option<(SmComponent, bool)> {
        for sm in SmComponent::ALL {
            for d in [false, true] {
                if sm.ops(d) == ops {
                    return Some((sm, d));
                }
            }
        }
        None
    }

    /// Longest pattern length across all components (bounds the RW states
    /// of the lower FSM).
    pub const MAX_OPS: usize = 4;
}

impl fmt::Display for SmComponent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SM{}", self.mode())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbist_march::library;

    #[test]
    fn mode_roundtrip() {
        for sm in SmComponent::ALL {
            assert_eq!(SmComponent::from_mode(sm.mode()), sm);
        }
    }

    #[test]
    fn no_component_exceeds_the_rw_states() {
        for sm in SmComponent::ALL {
            assert!(sm.ops(false).len() <= SmComponent::MAX_OPS, "{sm} too long");
            assert!(!sm.ops(true).is_empty());
        }
    }

    #[test]
    fn matching_recovers_component_and_polarity() {
        for sm in SmComponent::ALL {
            for d in [false, true] {
                let (found, fd) = SmComponent::matching(&sm.ops(d)).unwrap();
                assert_eq!((found, fd), (sm, d), "ambiguous match for {sm}/{d}");
            }
        }
    }

    #[test]
    fn march_c_elements_all_match() {
        for e in library::march_c().elements() {
            assert!(
                SmComponent::matching(e.ops()).is_some(),
                "element {e} should match a component"
            );
        }
    }

    #[test]
    fn march_a_uses_sm6_and_sm3() {
        let a = library::march_a();
        let elements: Vec<_> = a.elements().skip(1).collect();
        let (sm, d) = SmComponent::matching(elements[0].ops()).unwrap();
        assert_eq!((sm, d), (SmComponent::Sm6, false));
        let (sm, d) = SmComponent::matching(elements[1].ops()).unwrap();
        assert_eq!((sm, d), (SmComponent::Sm3, true));
    }

    #[test]
    fn march_b_long_element_matches_nothing() {
        let b = library::march_b();
        let long = b.elements().nth(1).unwrap();
        assert_eq!(long.ops().len(), 6);
        assert!(SmComponent::matching(long.ops()).is_none());
    }

    #[test]
    fn triple_read_write_element_matches_nothing() {
        use mbist_march::MarchOp::{Read, Write};
        // March C++ style element (r0,r0,r0,w1)
        let ops = [Read(false), Read(false), Read(false), Write(true)];
        assert!(SmComponent::matching(&ops).is_none());
    }
}
