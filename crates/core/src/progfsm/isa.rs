//! The upper-controller instruction format (paper Fig. 5).
//!
//! Each instruction of the 2-dimensional circular buffer is 8 bits:
//!
//! | bits | field | meaning |
//! |------|-------|---------|
//! | 7    | `hold`       | pause (retention hold) before running the component |
//! | 6    | `down`       | reference address order: down |
//! | 5    | `invert`     | reference data value `d` is the complemented background |
//! | 4    | `cmp_invert` | extra compare-polarity XOR (reference compare value) |
//! | 3    | `special`    | 0 = march component, 1 = loop/terminate row |
//! | 2..0 | `mode`       | component SM0…SM7, or special op |
//!
//! Special rows (`special = 1`) are the paper's `xxx`-prefixed entries at
//! the bottom of Fig. 5: background loop-back (path A), port increment
//! loop-back (path B) and unconditional test end.

use std::fmt;

use mbist_rtl::Bits;

use crate::error::CoreError;
use crate::progfsm::components::SmComponent;

/// Width of an upper-controller instruction in bits.
pub const FSM_INSTRUCTION_BITS: u8 = 8;

/// What an upper-controller instruction does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FsmOp {
    /// Run a march test component through the lower FSM.
    Component(SmComponent),
    /// Path A: repeat the whole algorithm for the next data background.
    LoopBg,
    /// Path B: repeat the whole algorithm on the next port; terminate
    /// after the last port.
    LoopPort,
    /// Unconditional test end.
    End,
}

/// One 8-bit upper-controller instruction.
///
/// # Examples
///
/// ```
/// use mbist_core::progfsm::{FsmInstruction, FsmOp, SmComponent};
///
/// let inst = FsmInstruction {
///     down: true,
///     invert: true,
///     kind: FsmOp::Component(SmComponent::Sm1),
///     ..FsmInstruction::nop()
/// };
/// assert_eq!(FsmInstruction::decode(inst.encode())?, inst);
/// # Ok::<(), mbist_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FsmInstruction {
    /// Pause before running (retention hold).
    pub hold: bool,
    /// Down address order.
    pub down: bool,
    /// Data value `d` is the complemented background.
    pub invert: bool,
    /// Additional compare-polarity inversion.
    pub cmp_invert: bool,
    /// The operation.
    pub kind: FsmOp,
}

impl FsmInstruction {
    /// A do-nothing placeholder (`SM0` with all fields clear — callers use
    /// struct update syntax on it).
    #[must_use]
    pub fn nop() -> Self {
        Self {
            hold: false,
            down: false,
            invert: false,
            cmp_invert: false,
            kind: FsmOp::Component(SmComponent::Sm0),
        }
    }

    /// Encodes into an 8-bit word.
    #[must_use]
    pub fn encode(&self) -> Bits {
        let (special, mode) = match self.kind {
            FsmOp::Component(sm) => (false, sm.mode()),
            FsmOp::LoopBg => (true, 0),
            FsmOp::LoopPort => (true, 1),
            FsmOp::End => (true, 7),
        };
        let mut v = u64::from(mode);
        if special {
            v |= 1 << 3;
        }
        if self.cmp_invert {
            v |= 1 << 4;
        }
        if self.invert {
            v |= 1 << 5;
        }
        if self.down {
            v |= 1 << 6;
        }
        if self.hold {
            v |= 1 << 7;
        }
        Bits::new(FSM_INSTRUCTION_BITS, v)
    }

    /// Decodes an 8-bit word.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Decode`] for wrong widths or undefined special
    /// modes.
    pub fn decode(word: Bits) -> Result<Self, CoreError> {
        if word.width() != FSM_INSTRUCTION_BITS {
            return Err(CoreError::Decode {
                message: format!(
                    "expected an {FSM_INSTRUCTION_BITS}-bit word, got {} bits",
                    word.width()
                ),
            });
        }
        let mode = (word.value() & 0b111) as u8;
        let kind = if word.bit(3) {
            match mode {
                0 => FsmOp::LoopBg,
                1 => FsmOp::LoopPort,
                7 => FsmOp::End,
                other => {
                    return Err(CoreError::Decode {
                        message: format!("undefined special mode {other}"),
                    })
                }
            }
        } else {
            FsmOp::Component(SmComponent::from_mode(mode))
        };
        Ok(Self {
            hold: word.bit(7),
            down: word.bit(6),
            invert: word.bit(5),
            cmp_invert: word.bit(4),
            kind,
        })
    }

    /// Decodes an 8-bit word the way the hardware would after an upset:
    /// an undefined special mode resolves to the fail-safe `End` (the
    /// upper controller stops rather than executing garbage). Used when
    /// re-decoding a possibly-corrupted parameter buffer — the integrity
    /// signature, not the decoder, is the detection mechanism.
    ///
    /// # Panics
    ///
    /// Panics if the word is not 8 bits wide (a model bug, not a fault).
    #[must_use]
    pub fn decode_failsafe(word: Bits) -> Self {
        assert_eq!(word.width(), FSM_INSTRUCTION_BITS, "fsm instruction width");
        Self::decode(word).unwrap_or(Self {
            hold: word.bit(7),
            down: word.bit(6),
            invert: word.bit(5),
            cmp_invert: word.bit(4),
            kind: FsmOp::End,
        })
    }
}

impl fmt::Display for FsmInstruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts: Vec<String> = Vec::new();
        if self.hold {
            parts.push("hold".into());
        }
        match self.kind {
            FsmOp::Component(sm) => {
                parts.push(sm.to_string());
                parts.push(if self.down { "down".into() } else { "up".into() });
                parts.push(format!("d={}", u8::from(self.invert)));
                if self.cmp_invert {
                    parts.push("cmp1".into());
                }
            }
            FsmOp::LoopBg => parts.push("loopbg".into()),
            FsmOp::LoopPort => parts.push("loopport".into()),
            FsmOp::End => parts.push("end".into()),
        }
        f.write_str(&parts.join(" "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_components_and_specials() {
        let mut insts = Vec::new();
        for sm in SmComponent::ALL {
            for (hold, down, invert) in
                [(false, false, false), (true, true, true), (false, true, false)]
            {
                insts.push(FsmInstruction {
                    hold,
                    down,
                    invert,
                    cmp_invert: false,
                    kind: FsmOp::Component(sm),
                });
            }
        }
        for kind in [FsmOp::LoopBg, FsmOp::LoopPort, FsmOp::End] {
            insts.push(FsmInstruction { kind, ..FsmInstruction::nop() });
        }
        for inst in insts {
            assert_eq!(FsmInstruction::decode(inst.encode()).unwrap(), inst);
        }
    }

    #[test]
    fn undefined_special_mode_rejected() {
        let word = Bits::new(8, 0b0000_1010); // special, mode 2
        assert!(FsmInstruction::decode(word).is_err());
    }

    #[test]
    fn failsafe_decode_turns_undefined_specials_into_end() {
        let word = Bits::new(8, 0b1000_1010); // hold + special mode 2
        let inst = FsmInstruction::decode_failsafe(word);
        assert_eq!(inst.kind, FsmOp::End);
        assert!(inst.hold, "flag bits are preserved");
        let clean = FsmInstruction {
            down: true,
            kind: FsmOp::Component(SmComponent::Sm3),
            ..FsmInstruction::nop()
        };
        assert_eq!(FsmInstruction::decode_failsafe(clean.encode()), clean);
    }

    #[test]
    fn wrong_width_rejected() {
        assert!(FsmInstruction::decode(Bits::new(10, 0)).is_err());
    }

    #[test]
    fn display_is_readable() {
        let i = FsmInstruction {
            hold: true,
            down: true,
            invert: true,
            kind: FsmOp::Component(SmComponent::Sm7),
            ..FsmInstruction::nop()
        };
        assert_eq!(i.to_string(), "hold SM7 down d=1");
        let l = FsmInstruction { kind: FsmOp::LoopPort, ..FsmInstruction::nop() };
        assert_eq!(l.to_string(), "loopport");
    }
}
