//! The programmable FSM-based memory BIST architecture (paper §2.2).
//!
//! - [`SmComponent`]: the eight march test components of Eq. 2,
//! - [`FsmInstruction`] / [`FsmOp`]: the 8-bit upper-controller word of
//!   Fig. 5,
//! - [`ProgFsmController`]: the two-level controller of Fig. 3-4,
//! - [`compile`]: march notation → component program,
//! - [`ProgFsmBist`]: one-call construction of a complete BIST unit.

mod compile;
mod components;
mod controller;
mod isa;

pub use compile::{compile, pause_duration};
pub use components::SmComponent;
pub use controller::{LowerState, ProgFsmConfig, ProgFsmController};
pub use isa::{FsmInstruction, FsmOp, FSM_INSTRUCTION_BITS};

use mbist_march::{standard_backgrounds, MarchTest};
use mbist_mem::MemGeometry;

use crate::datapath::BistDatapath;
use crate::error::CoreError;
use crate::unit::BistUnit;

/// Convenience constructors for programmable FSM-based BIST units.
#[derive(Debug, Clone, Copy)]
pub struct ProgFsmBist;

impl ProgFsmBist {
    /// Compiles `test`, sizes a controller for it and wires up the shared
    /// datapath for `geometry`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotExpressible`] if the test uses elements
    /// outside the SM0…SM7 menu.
    pub fn for_test(
        test: &MarchTest,
        geometry: &MemGeometry,
    ) -> Result<BistUnit<ProgFsmController>, CoreError> {
        Self::for_test_with(test, geometry, ProgFsmConfig::default())
    }

    /// Like [`ProgFsmBist::for_test`] with an explicit base configuration.
    ///
    /// # Errors
    ///
    /// See [`ProgFsmBist::for_test`].
    pub fn for_test_with(
        test: &MarchTest,
        geometry: &MemGeometry,
        config: ProgFsmConfig,
    ) -> Result<BistUnit<ProgFsmController>, CoreError> {
        let program = compile(test)?;
        let mut config = config;
        config.capacity = config.capacity.max(program.len());
        if let Some(ns) = pause_duration(test)? {
            config.pause_ns = ns;
        }
        let controller = ProgFsmController::new(test.name(), &program, config)?;
        let datapath = BistDatapath::new(*geometry, standard_backgrounds(geometry.width()));
        Ok(BistUnit::new(controller, datapath))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbist_march::{expand, library};

    #[test]
    fn expressible_algorithms_match_reference_everywhere() {
        let geometries = [
            MemGeometry::bit_oriented(4),
            MemGeometry::word_oriented(4, 4),
            MemGeometry::new(4, 2, 2),
        ];
        for t in library::all() {
            for g in geometries {
                match ProgFsmBist::for_test(&t, &g) {
                    Ok(mut unit) => {
                        assert_eq!(
                            unit.emit_steps(),
                            expand(&t, &g),
                            "{} on {}",
                            t.name(),
                            g
                        );
                    }
                    Err(CoreError::NotExpressible { .. }) => {
                        assert!(
                            ["march-b", "march-c++", "march-a++", "march-ss", "march-g"]
                                .contains(&t.name()),
                            "{} unexpectedly inexpressible",
                            t.name()
                        );
                    }
                    Err(other) => panic!("{}: {other}", t.name()),
                }
            }
        }
    }

    #[test]
    fn pause_register_loaded_from_test() {
        let g = MemGeometry::bit_oriented(4);
        let unit = ProgFsmBist::for_test(&library::march_a_plus(), &g).unwrap();
        assert_eq!(
            unit.controller().config().pause_ns,
            library::DEFAULT_RETENTION_PAUSE_NS
        );
    }
}
