//! The programmable FSM-based memory BIST controller (paper Fig. 3-4).
//!
//! Two levels: a parameter-driven 7-state *lower* FSM
//! (`Idle → Reset → RW1..RW4 → Done`, Fig. 4a) realizes one march test
//! component per activation; an *upper* 2-dimensional circular buffer
//! (Fig. 4b) feeds it one 8-bit parameter word per component, with path A
//! (background loop-back) and path B (port increment) realized by the
//! special instructions.

use mbist_march::MarchOp;
use mbist_rtl::{Bits, CellStyle, Direction, Primitive, ScanChain, Structure};

use crate::controller::{BistController, Flexibility, ScanRecoverable};
use crate::datapath::BistDatapath;
use crate::error::CoreError;
use crate::integrity::Signature;
use crate::progfsm::isa::{FsmInstruction, FsmOp, FSM_INSTRUCTION_BITS};
use crate::signals::ControlSignals;
use crate::validate::validate_progfsm;

/// Configuration of a programmable FSM-based controller instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgFsmConfig {
    /// Circular-buffer capacity in instructions.
    pub capacity: usize,
    /// Pause duration of the hold bit, in nanoseconds.
    pub pause_ns: f64,
}

impl Default for ProgFsmConfig {
    fn default() -> Self {
        Self { capacity: 12, pause_ns: 100_000.0 }
    }
}

/// The 2-dimensional circular parameter buffer, modeled at the bit level:
/// `capacity × 8` full-scan cells (the buffer shifts at the functional
/// rate, so scan-only cells are ruled out — see `structure`). Row `i`
/// occupies cells `[i*8, i*8+8)`, LSB first; the buffer index wraps at the
/// *programmed* row count, not the capacity.
#[derive(Debug, Clone)]
struct ParameterBuffer {
    capacity: usize,
    /// Programmed rows; the circular index wraps here.
    len: usize,
    chain: ScanChain,
}

impl ParameterBuffer {
    fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "parameter buffer needs at least one row");
        Self {
            capacity,
            len: 0,
            chain: ScanChain::with_style(
                capacity * usize::from(FSM_INSTRUCTION_BITS),
                CellStyle::FullScan,
            ),
        }
    }

    /// Serially loads `program`, padding unused rows with zero words.
    /// Costs `capacity × 8` scan clocks.
    fn load(&mut self, program: &[FsmInstruction]) -> Result<u64, CoreError> {
        if program.len() > self.capacity {
            return Err(CoreError::ProgramTooLarge {
                required: program.len(),
                capacity: self.capacity,
            });
        }
        let width = usize::from(FSM_INSTRUCTION_BITS);
        let mut image = vec![false; self.capacity * width];
        for (i, inst) in program.iter().enumerate() {
            let word = inst.encode();
            for b in 0..FSM_INSTRUCTION_BITS {
                image[i * width + usize::from(b)] = word.bit(b);
            }
        }
        let before = self.chain.shifts();
        let pattern: Vec<bool> = image.iter().rev().copied().collect();
        self.chain.load_serial(&pattern);
        self.len = program.len();
        Ok(self.chain.shifts() - before)
    }

    /// Decodes the programmed rows with the fail-safe decoder — never
    /// errors, even after the buffer has been corrupted.
    fn rows(&self) -> Vec<FsmInstruction> {
        let width = usize::from(FSM_INSTRUCTION_BITS);
        (0..self.len)
            .map(|i| {
                let bits = Bits::from_bits_lsb_first(
                    (0..width).map(|b| self.chain.cell(i * width + b)),
                );
                FsmInstruction::decode_failsafe(bits)
            })
            .collect()
    }

    fn signature(&self) -> Signature {
        Signature::of(self.chain.cells().iter().copied())
    }
}

/// The lower-level FSM's state (paper Fig. 4a).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LowerState {
    /// Waiting for the upper controller.
    Idle,
    /// Resetting the address generator and datapath for a new component.
    Reset,
    /// Performing operation `k` of the component on the current cell.
    Rw(u8),
    /// Component complete; handshake back to the upper controller.
    Done,
}

/// The programmable FSM-based memory BIST controller.
///
/// # Examples
///
/// ```
/// use mbist_core::progfsm::{compile, ProgFsmConfig, ProgFsmController};
/// use mbist_core::BistController;
/// use mbist_march::library;
///
/// let program = compile(&library::march_c())?;
/// assert_eq!(program.len(), 8); // 6 components + path A/B rows (Fig. 5)
/// let ctrl = ProgFsmController::new("march-c", &program, ProgFsmConfig::default())?;
/// assert_eq!(ctrl.algorithm(), "march-c");
/// # Ok::<(), mbist_core::CoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ProgFsmController {
    algorithm: String,
    config: ProgFsmConfig,
    /// The bit-level circular buffer hardware.
    store: ParameterBuffer,
    /// Decoded view of the store (refreshed on every load and on every
    /// injected upset).
    buffer: Vec<FsmInstruction>,
    /// Last known-good program for scan-reload recovery.
    golden: Vec<FsmInstruction>,
    /// Store signature recorded when `golden` was scan-loaded.
    loaded_signature: Signature,
    index: usize,
    state: LowerState,
    /// Resolved operation pattern of the active component.
    ops: Vec<MarchOp>,
    dir: Direction,
    cmp_invert: bool,
    done: bool,
}

impl ProgFsmController {
    /// Builds a controller and scan-loads `program` into the circular
    /// buffer.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ProgramTooLarge`] if the program exceeds the
    /// buffer capacity, or [`CoreError::InvalidProgram`] if it fails
    /// static validation (see [`crate::validate::validate_progfsm`]).
    ///
    /// # Panics
    ///
    /// Panics if `config.capacity` is zero.
    pub fn new(
        algorithm: impl Into<String>,
        program: &[FsmInstruction],
        config: ProgFsmConfig,
    ) -> Result<Self, CoreError> {
        validate_progfsm(program)?;
        let mut store = ParameterBuffer::new(config.capacity);
        store.load(program)?;
        let loaded_signature = store.signature();
        Ok(Self {
            algorithm: algorithm.into(),
            config,
            buffer: store.rows(),
            golden: program.to_vec(),
            loaded_signature,
            store,
            index: 0,
            state: LowerState::Idle,
            ops: Vec::new(),
            dir: Direction::Up,
            cmp_invert: false,
            done: false,
        })
    }

    /// Scan-loads a new program with zero hardware change. Returns the
    /// scan clocks consumed.
    ///
    /// # Errors
    ///
    /// See [`ProgFsmController::new`].
    pub fn load_program(
        &mut self,
        algorithm: impl Into<String>,
        program: &[FsmInstruction],
    ) -> Result<u64, CoreError> {
        validate_progfsm(program)?;
        let cycles = self.store.load(program)?;
        self.buffer = self.store.rows();
        self.golden = program.to_vec();
        self.loaded_signature = self.store.signature();
        self.algorithm = algorithm.into();
        self.reset();
        Ok(cycles)
    }

    /// Total scan clocks spent on program loads.
    #[must_use]
    pub fn scan_cycles(&self) -> u64 {
        self.store.chain.shifts()
    }

    /// The loaded program.
    #[must_use]
    pub fn program(&self) -> &[FsmInstruction] {
        &self.buffer
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &ProgFsmConfig {
        &self.config
    }

    /// The lower FSM's current state (for traces and tests).
    #[must_use]
    pub fn lower_state(&self) -> LowerState {
        self.state
    }
}

impl ScanRecoverable for ProgFsmController {
    fn store_bits(&self) -> usize {
        self.store.chain.len()
    }

    fn inject_upset(&mut self, bit: usize) {
        self.store.chain.flip_cell(bit);
        // The upper controller reads whatever the buffer now holds;
        // undecodable rows resolve through the fail-safe decoder.
        self.buffer = self.store.rows();
    }

    fn loaded_signature(&self) -> Signature {
        self.loaded_signature
    }

    fn store_signature(&self) -> Signature {
        self.store.signature()
    }

    fn scan_reload(&mut self) -> u64 {
        let golden = std::mem::take(&mut self.golden);
        let cycles = self
            .store
            .load(&golden)
            .expect("golden program was loaded before and still fits");
        self.golden = golden;
        self.buffer = self.store.rows();
        self.loaded_signature = self.store.signature();
        self.reset();
        cycles
    }
}

impl BistController for ProgFsmController {
    fn architecture(&self) -> &'static str {
        "programmable-fsm"
    }

    fn algorithm(&self) -> &str {
        &self.algorithm
    }

    fn flexibility(&self) -> Flexibility {
        Flexibility::Medium
    }

    fn reset(&mut self) {
        self.index = 0;
        self.state = LowerState::Idle;
        self.ops.clear();
        self.dir = Direction::Up;
        self.cmp_invert = false;
        self.done = false;
    }

    fn is_done(&self) -> bool {
        self.done
    }

    fn step(&mut self, datapath: &BistDatapath) -> ControlSignals {
        if self.done {
            return ControlSignals { done: true, ..ControlSignals::idle() };
        }
        match self.state {
            LowerState::Idle => {
                if self.index >= self.buffer.len() {
                    self.done = true;
                    return ControlSignals { done: true, ..ControlSignals::idle() };
                }
                let inst = self.buffer[self.index];
                let mut sig = ControlSignals::idle();
                match inst.kind {
                    FsmOp::Component(sm) => {
                        self.ops = sm.ops(inst.invert);
                        self.dir = if inst.down { Direction::Down } else { Direction::Up };
                        self.cmp_invert = inst.cmp_invert;
                        if inst.hold {
                            sig.pause_ns = Some(self.config.pause_ns);
                        }
                        self.state = LowerState::Reset;
                    }
                    FsmOp::LoopBg => {
                        // Path A: repeat the algorithm for the next
                        // background; otherwise fall through to path B.
                        if datapath.last_background() {
                            sig.bg_reset = true;
                            self.index = (self.index + 1) % self.buffer.len();
                        } else {
                            sig.bg_inc = true;
                            self.index = 0;
                        }
                    }
                    FsmOp::LoopPort => {
                        if datapath.last_port() {
                            sig.done = true;
                            self.done = true;
                        } else {
                            sig.port_inc = true;
                            self.index = 0;
                        }
                    }
                    FsmOp::End => {
                        sig.done = true;
                        self.done = true;
                    }
                }
                sig
            }
            LowerState::Reset => {
                self.state = LowerState::Rw(0);
                ControlSignals {
                    addr_reset: true,
                    addr_order: self.dir,
                    ..ControlSignals::idle()
                }
            }
            LowerState::Rw(k) => {
                let op = self.ops[usize::from(k)];
                let mut sig =
                    ControlSignals { addr_order: self.dir, ..ControlSignals::idle() };
                match op {
                    MarchOp::Read(d) => {
                        sig.read_en = true;
                        sig.compare_en = true;
                        sig.compare_invert = d ^ self.cmp_invert;
                    }
                    MarchOp::Write(d) => {
                        sig.write_en = true;
                        sig.data_invert = d;
                    }
                }
                let last_op = usize::from(k) + 1 == self.ops.len();
                if last_op {
                    if datapath.status(self.dir).last_address {
                        self.state = LowerState::Done;
                    } else {
                        sig.addr_inc = true;
                        self.state = LowerState::Rw(0);
                    }
                } else {
                    self.state = LowerState::Rw(k + 1);
                }
                sig
            }
            LowerState::Done => {
                self.state = LowerState::Idle;
                self.index = (self.index + 1) % self.buffer.len();
                ControlSignals::idle()
            }
        }
    }

    fn structure(&self) -> Structure {
        let z = self.config.capacity as u32;
        let width = u32::from(FSM_INSTRUCTION_BITS);
        let idx_bits = (usize::BITS - (self.config.capacity - 1).leading_zeros()).max(1);
        Structure::named("progfsm_controller")
            .with_child(
                // The circular buffer shifts at the functional rate, so its
                // cells are full-scan registers (the paper's rationale for
                // why this storage cannot use slow scan-only cells).
                Structure::leaf("circular_buffer").with(Primitive::ScanDff, z * width),
            )
            .with_child(
                Structure::leaf("buffer_index")
                    .with(Primitive::Dff, idx_bits)
                    .with(Primitive::Nand2, 2 * idx_bits)
                    .with(Primitive::Mux2, idx_bits),
            )
            .with_child(
                // 7-state lower FSM: 3-bit state register plus the
                // parameter-driven next-state/output network and the
                // component pattern decode (mode → op sequence).
                Structure::leaf("lower_fsm")
                    .with(Primitive::Dff, 3 + 2) // state + op counter
                    .with(Primitive::Nand2, 96)
                    .with(Primitive::Inv, 20)
                    .with(Primitive::Xor2, 4),
            )
            .with_child(
                Structure::leaf("pause_timer")
                    .with(Primitive::Dff, 20)
                    .with(Primitive::Nand2, 24),
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::progfsm::compile;
    use crate::unit::BistUnit;
    use mbist_march::{expand, library, standard_backgrounds};
    use mbist_mem::{MemGeometry, MemoryArray};

    fn unit_for(
        test: &mbist_march::MarchTest,
        g: MemGeometry,
    ) -> BistUnit<ProgFsmController> {
        let program = compile(test).unwrap();
        let config =
            ProgFsmConfig { capacity: program.len().max(12), ..ProgFsmConfig::default() };
        let ctrl = ProgFsmController::new(test.name(), &program, config).unwrap();
        let dp = crate::datapath::BistDatapath::new(g, standard_backgrounds(g.width()));
        BistUnit::new(ctrl, dp)
    }

    #[test]
    fn march_c_stream_matches_reference() {
        let g = MemGeometry::bit_oriented(4);
        let mut unit = unit_for(&library::march_c(), g);
        assert_eq!(unit.emit_steps(), expand(&library::march_c(), &g));
    }

    #[test]
    fn march_a_and_y_match_reference() {
        let g = MemGeometry::bit_oriented(5);
        for t in [library::march_a(), library::march_y()] {
            let mut unit = unit_for(&t, g);
            assert_eq!(unit.emit_steps(), expand(&t, &g), "{}", t.name());
        }
    }

    #[test]
    fn retention_variant_emits_pauses_before_components() {
        let g = MemGeometry::bit_oriented(3);
        let mut unit = unit_for(&library::march_c_plus(), g);
        assert_eq!(unit.emit_steps(), expand(&library::march_c_plus(), &g));
    }

    #[test]
    fn word_oriented_and_multiport_loops_match() {
        let g = MemGeometry::new(3, 4, 2);
        let mut unit = unit_for(&library::march_c(), g);
        assert_eq!(unit.emit_steps(), expand(&library::march_c(), &g));
    }

    #[test]
    fn overhead_is_three_cycles_per_component_activation() {
        let g = MemGeometry::bit_oriented(16);
        let mut unit = unit_for(&library::march_c(), g);
        let mut mem = MemoryArray::new(g);
        let report = unit.run(&mut mem);
        assert_eq!(report.bus_cycles, 160);
        // 6 components × (Idle + Reset + Done) + LoopBg + LoopPort
        assert_eq!(report.overhead_cycles(), 6 * 3 + 2);
        assert!(report.passed());
    }

    #[test]
    fn program_reload_switches_algorithm() {
        let g = MemGeometry::bit_oriented(4);
        let mut unit = unit_for(&library::march_c(), g);
        let _ = unit.emit_steps();
        let mut ctrl = unit.controller().clone();
        ctrl.load_program("mats+", &compile(&library::mats_plus()).unwrap()).unwrap();
        let dp = crate::datapath::BistDatapath::new(g, standard_backgrounds(1));
        let mut unit2 = BistUnit::new(ctrl, dp);
        assert_eq!(unit2.emit_steps(), expand(&library::mats_plus(), &g));
    }

    #[test]
    fn oversized_program_rejected() {
        let program = compile(&library::march_c()).unwrap();
        let err = ProgFsmController::new(
            "x",
            &program,
            ProgFsmConfig { capacity: 4, ..ProgFsmConfig::default() },
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::ProgramTooLarge { .. }));
    }

    #[test]
    fn scan_load_cost_is_capacity_times_row_width() {
        let program = compile(&library::march_c()).unwrap();
        let ctrl =
            ProgFsmController::new("march-c", &program, ProgFsmConfig::default()).unwrap();
        assert_eq!(ctrl.scan_cycles(), 12 * 8, "one full-buffer scan load");
    }

    #[test]
    fn constructor_rejects_non_terminating_buffers() {
        // No End/LoopPort row: the circular buffer would replay forever.
        let prog = vec![FsmInstruction::nop()];
        let err =
            ProgFsmController::new("bad", &prog, ProgFsmConfig::default()).unwrap_err();
        assert!(matches!(err, CoreError::InvalidProgram { .. }), "{err}");
    }

    #[test]
    fn upset_is_detected_and_scan_reload_recovers() {
        let g = MemGeometry::bit_oriented(4);
        let program = compile(&library::mats_plus()).unwrap();
        let mut ctrl =
            ProgFsmController::new("mats+", &program, ProgFsmConfig::default()).unwrap();
        ctrl.verify_integrity().unwrap();
        let golden_view = ctrl.program().to_vec();

        ctrl.inject_upset(5); // invert bit of row 0
        assert!(ctrl.verify_integrity().is_err());
        assert_ne!(ctrl.program(), golden_view.as_slice());

        let cost = ctrl.scan_reload();
        assert_eq!(cost, 12 * 8, "recovery costs one full-buffer scan load");
        ctrl.verify_integrity().unwrap();
        assert_eq!(ctrl.program(), golden_view.as_slice());

        // and the recovered controller still emits the reference stream
        let dp = crate::datapath::BistDatapath::new(g, standard_backgrounds(1));
        let mut unit = BistUnit::new(ctrl, dp);
        assert_eq!(unit.emit_steps(), expand(&library::mats_plus(), &g));
    }

    #[test]
    fn structure_models_full_rate_buffer_cells() {
        let ctrl = ProgFsmController::new(
            "x",
            &compile(&library::march_c()).unwrap(),
            ProgFsmConfig::default(),
        )
        .unwrap();
        let s = ctrl.structure();
        assert_eq!(s.find("circular_buffer").unwrap().count(Primitive::ScanDff), 96);
        assert_eq!(s.count(Primitive::ScanOnlyCell), 0);
    }
}
