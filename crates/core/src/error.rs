//! Error types for the BIST core crate.

use std::error::Error;
use std::fmt;

/// Errors produced by BIST program compilation and instruction decoding.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A raw instruction word could not be decoded.
    Decode {
        /// Description of the malformed field.
        message: String,
    },
    /// The march test cannot be expressed on the target architecture.
    NotExpressible {
        /// Architecture that rejected the test.
        architecture: &'static str,
        /// What could not be expressed.
        message: String,
    },
    /// The program does not fit the controller's storage unit.
    ProgramTooLarge {
        /// Instructions required.
        required: usize,
        /// Storage capacity in instructions.
        capacity: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Decode { message } => write!(f, "invalid instruction word: {message}"),
            CoreError::NotExpressible { architecture, message } => {
                write!(f, "not expressible on the {architecture} architecture: {message}")
            }
            CoreError::ProgramTooLarge { required, capacity } => write!(
                f,
                "program needs {required} instructions but the storage unit holds {capacity}"
            ),
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<CoreError>();
    }

    #[test]
    fn display_is_specific() {
        let e = CoreError::ProgramTooLarge { required: 12, capacity: 9 };
        assert!(e.to_string().contains("12"));
        assert!(e.to_string().contains('9'));
        let e = CoreError::NotExpressible {
            architecture: "programmable-fsm",
            message: "element ⇑(r0,r0,r0,w1) matches no march component".into(),
        };
        assert!(e.to_string().contains("programmable-fsm"));
    }
}
