//! Error types for the BIST core crate.

use std::error::Error;
use std::fmt;

/// Errors produced by BIST program compilation and instruction decoding.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A raw instruction word could not be decoded.
    Decode {
        /// Description of the malformed field.
        message: String,
    },
    /// The march test cannot be expressed on the target architecture.
    NotExpressible {
        /// Architecture that rejected the test.
        architecture: &'static str,
        /// What could not be expressed.
        message: String,
    },
    /// The program does not fit the controller's storage unit.
    ProgramTooLarge {
        /// Instructions required.
        required: usize,
        /// Storage capacity in instructions.
        capacity: usize,
    },
    /// A program failed static validation (see [`crate::validate`]): it
    /// could loop forever or exercise undefined controller behavior.
    InvalidProgram {
        /// Architecture whose validator rejected the program.
        architecture: &'static str,
        /// Why the program was rejected.
        reason: String,
    },
    /// A bounded run exhausted its cycle budget without the controller
    /// asserting `Test End` — the watchdog verdict for a hung (typically
    /// corrupted) program.
    CycleBudgetExceeded {
        /// The budget that was exhausted, in controller clock cycles.
        budget: u64,
        /// Architecture of the hung controller.
        architecture: &'static str,
        /// Algorithm that was running.
        algorithm: String,
    },
    /// The program store's integrity signature no longer matches the
    /// signature recorded at load time — the store was corrupted (e.g. by
    /// a single-event upset) after loading.
    IntegrityViolation {
        /// Signature recorded when the program was scan-loaded.
        expected: u16,
        /// Signature recomputed from the store's current contents.
        observed: u16,
    },
    /// Scan-reload recovery did not restore program integrity within the
    /// configured retry bound.
    RecoveryFailed {
        /// Reload attempts performed before giving up.
        attempts: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Decode { message } => write!(f, "invalid instruction word: {message}"),
            CoreError::NotExpressible { architecture, message } => {
                write!(f, "not expressible on the {architecture} architecture: {message}")
            }
            CoreError::ProgramTooLarge { required, capacity } => write!(
                f,
                "program needs {required} instructions but the storage unit holds {capacity}"
            ),
            CoreError::InvalidProgram { architecture, reason } => {
                write!(f, "invalid {architecture} program: {reason}")
            }
            CoreError::CycleBudgetExceeded { budget, architecture, algorithm } => write!(
                f,
                "{architecture} controller running {algorithm} exceeded its cycle \
                 budget of {budget} cycles (watchdog abort)"
            ),
            CoreError::IntegrityViolation { expected, observed } => write!(
                f,
                "program store integrity violation: signature {observed:#06x} does \
                 not match the load-time signature {expected:#06x}"
            ),
            CoreError::RecoveryFailed { attempts } => write!(
                f,
                "program store integrity not restored after {attempts} scan-reload \
                 attempt(s)"
            ),
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<CoreError>();
    }

    #[test]
    fn display_is_specific() {
        let e = CoreError::ProgramTooLarge { required: 12, capacity: 9 };
        assert!(e.to_string().contains("12"));
        assert!(e.to_string().contains('9'));
        let e = CoreError::NotExpressible {
            architecture: "programmable-fsm",
            message: "element ⇑(r0,r0,r0,w1) matches no march component".into(),
        };
        assert!(e.to_string().contains("programmable-fsm"));
    }

    #[test]
    fn robustness_variants_display_their_numbers() {
        let e = CoreError::CycleBudgetExceeded {
            budget: 4096,
            architecture: "microcode",
            algorithm: "march-c".into(),
        };
        assert!(e.to_string().contains("4096"));
        assert!(e.to_string().contains("march-c"));
        let e = CoreError::IntegrityViolation { expected: 0x1a2b, observed: 0x1a2f };
        assert!(e.to_string().contains("0x1a2b"));
        assert!(e.to_string().contains("0x1a2f"));
        let e = CoreError::RecoveryFailed { attempts: 3 };
        assert!(e.to_string().contains('3'));
        let e = CoreError::InvalidProgram {
            architecture: "microcode",
            reason: "element loop at 2 makes no address progress".into(),
        };
        assert!(e.to_string().contains("address progress"));
    }
}
