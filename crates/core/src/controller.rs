//! The controller abstraction shared by all three architectures.

use std::fmt;

use mbist_rtl::Structure;

use crate::datapath::BistDatapath;
use crate::signals::ControlSignals;

/// How much a controller architecture can change without a hardware
/// re-spin — the paper's Table 1 "Flex." column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Flexibility {
    /// Hardwired: any algorithm change requires re-design and
    /// re-implementation.
    Low,
    /// Programmable within a fixed menu of march components (the
    /// programmable FSM-based architecture).
    Medium,
    /// Freely microprogrammable: arbitrary operation sequences, loop
    /// structures and polarities (the microcode-based architecture).
    High,
}

impl fmt::Display for Flexibility {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Flexibility::Low => "LOW",
            Flexibility::Medium => "MEDIUM",
            Flexibility::High => "HIGH",
        })
    }
}

/// A controller whose program store is scan-loadable and therefore both a
/// soft-error target and a recovery mechanism.
///
/// Implemented by the microcode and programmable-FSM controllers (their
/// stores are written through scan chains); the hardwired controller has no
/// program store and is inherently immune to program upsets.
///
/// The integrity mechanism is the 16-column parity signature of
/// [`crate::integrity`]: recorded when a program is scan-loaded, recomputed
/// from the store on demand. A mismatch means the store changed *after*
/// loading — the single-event-upset (SEU) signature.
pub trait ScanRecoverable: BistController {
    /// Number of storage bits in the program store (valid upset targets).
    fn store_bits(&self) -> usize;

    /// Flips one storage bit in place — the SEU model. Consumes no scan
    /// clocks and bypasses both write paths.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= self.store_bits()`.
    fn inject_upset(&mut self, bit: usize);

    /// The signature recorded when the current program was scan-loaded.
    fn loaded_signature(&self) -> crate::integrity::Signature;

    /// The signature of the store's *current* contents.
    fn store_signature(&self) -> crate::integrity::Signature;

    /// Checks the store against the load-time signature.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::IntegrityViolation`](crate::CoreError::IntegrityViolation)
    /// if the signatures differ.
    fn verify_integrity(&self) -> Result<(), crate::CoreError> {
        let expected = self.loaded_signature();
        let observed = self.store_signature();
        if expected == observed {
            Ok(())
        } else {
            Err(crate::CoreError::IntegrityViolation {
                expected: expected.value(),
                observed: observed.value(),
            })
        }
    }

    /// Scan-reloads the last known-good program image, restoring integrity
    /// and resetting the controller. Returns the scan clocks consumed —
    /// the hardware cost of the recovery.
    fn scan_reload(&mut self) -> u64;
}

/// A cycle-accurate memory BIST controller.
///
/// Each call to [`BistController::step`] models one clock edge: the
/// controller observes the datapath status lines and asserts one
/// [`ControlSignals`] bundle. The BIST unit applies the bundle to the
/// datapath and the memory under test.
pub trait BistController {
    /// Architecture name for reports (e.g. `"microcode"`).
    fn architecture(&self) -> &'static str;

    /// Name of the loaded test algorithm.
    fn algorithm(&self) -> &str;

    /// The architecture's programmability class.
    fn flexibility(&self) -> Flexibility;

    /// Returns the controller to its reset state (instruction counter to
    /// the first instruction, reference/branch registers cleared).
    fn reset(&mut self);

    /// Whether the controller has asserted `Test End`.
    fn is_done(&self) -> bool;

    /// Executes one clock cycle.
    fn step(&mut self, datapath: &BistDatapath) -> ControlSignals;

    /// Structural inventory of the controller (excluding the shared
    /// datapath) for area estimation.
    fn structure(&self) -> Structure;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flexibility_orders_low_to_high() {
        assert!(Flexibility::Low < Flexibility::Medium);
        assert!(Flexibility::Medium < Flexibility::High);
    }

    #[test]
    fn flexibility_displays_match_paper_table() {
        assert_eq!(Flexibility::High.to_string(), "HIGH");
        assert_eq!(Flexibility::Medium.to_string(), "MEDIUM");
        assert_eq!(Flexibility::Low.to_string(), "LOW");
    }
}
