//! The controller abstraction shared by all three architectures.

use std::fmt;

use mbist_rtl::Structure;

use crate::datapath::BistDatapath;
use crate::signals::ControlSignals;

/// How much a controller architecture can change without a hardware
/// re-spin — the paper's Table 1 "Flex." column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Flexibility {
    /// Hardwired: any algorithm change requires re-design and
    /// re-implementation.
    Low,
    /// Programmable within a fixed menu of march components (the
    /// programmable FSM-based architecture).
    Medium,
    /// Freely microprogrammable: arbitrary operation sequences, loop
    /// structures and polarities (the microcode-based architecture).
    High,
}

impl fmt::Display for Flexibility {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Flexibility::Low => "LOW",
            Flexibility::Medium => "MEDIUM",
            Flexibility::High => "HIGH",
        })
    }
}

/// A cycle-accurate memory BIST controller.
///
/// Each call to [`BistController::step`] models one clock edge: the
/// controller observes the datapath status lines and asserts one
/// [`ControlSignals`] bundle. The BIST unit applies the bundle to the
/// datapath and the memory under test.
pub trait BistController {
    /// Architecture name for reports (e.g. `"microcode"`).
    fn architecture(&self) -> &'static str;

    /// Name of the loaded test algorithm.
    fn algorithm(&self) -> &str;

    /// The architecture's programmability class.
    fn flexibility(&self) -> Flexibility;

    /// Returns the controller to its reset state (instruction counter to
    /// the first instruction, reference/branch registers cleared).
    fn reset(&mut self);

    /// Whether the controller has asserted `Test End`.
    fn is_done(&self) -> bool;

    /// Executes one clock cycle.
    fn step(&mut self, datapath: &BistDatapath) -> ControlSignals;

    /// Structural inventory of the controller (excluding the shared
    /// datapath) for area estimation.
    fn structure(&self) -> Structure;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flexibility_orders_low_to_high() {
        assert!(Flexibility::Low < Flexibility::Medium);
        assert!(Flexibility::Medium < Flexibility::High);
    }

    #[test]
    fn flexibility_displays_match_paper_table() {
        assert_eq!(Flexibility::High.to_string(), "HIGH");
        assert_eq!(Flexibility::Medium.to_string(), "MEDIUM");
        assert_eq!(Flexibility::Low.to_string(), "LOW");
    }
}
