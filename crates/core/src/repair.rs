//! Redundancy analysis: from failure bitmap to repair solution.
//!
//! Embedded memories ship with spare rows and columns; the BIST fail log
//! is the input to *redundancy allocation* — deciding which spares replace
//! which failing rows/columns. This module implements the classical
//! two-phase algorithm: **must-repair** analysis (a row with more failing
//! columns than there are spare columns can only be fixed by a spare row,
//! and vice versa), then a **greedy most-fails-first** cover for the
//! remainder. Optimal spare allocation is NP-complete; must-repair +
//! greedy is the standard production heuristic.

use std::collections::{BTreeMap, BTreeSet};

use mbist_mem::CellId;

use crate::diag::FailBitmap;

/// The spare resources available on the memory macro.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Redundancy {
    /// Spare rows (replace a whole word address).
    pub spare_rows: u32,
    /// Spare columns (replace a bit position across all words).
    pub spare_cols: u32,
}

/// A computed repair solution.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RepairSolution {
    /// Word addresses replaced by spare rows.
    pub row_repairs: Vec<u64>,
    /// Bit positions replaced by spare columns.
    pub col_repairs: Vec<u8>,
    /// Failing cells not covered by any allocated spare (empty = repaired).
    pub uncovered: Vec<CellId>,
}

impl RepairSolution {
    /// Whether every failing cell is covered.
    #[must_use]
    pub fn is_repaired(&self) -> bool {
        self.uncovered.is_empty()
    }

    /// Spares consumed.
    #[must_use]
    pub fn spares_used(&self) -> (usize, usize) {
        (self.row_repairs.len(), self.col_repairs.len())
    }

    /// Whether `cell` is covered by the allocated spares.
    #[must_use]
    pub fn covers(&self, cell: CellId) -> bool {
        self.row_repairs.contains(&cell.word) || self.col_repairs.contains(&cell.bit)
    }
}

/// Allocates spares for a failure bitmap.
///
/// # Examples
///
/// ```
/// use mbist_core::{FailLog, repair::{allocate_repair, Redundancy}};
/// use mbist_mem::{MemGeometry, Miscompare, PortId};
/// use mbist_rtl::Bits;
///
/// let mut log = FailLog::new();
/// log.record(1, Miscompare {
///     port: PortId(0), addr: 5,
///     expected: Bits::new(4, 0), observed: Bits::new(4, 0b0100),
/// });
/// let bitmap = log.bitmap(MemGeometry::word_oriented(16, 4));
/// let solution = allocate_repair(&bitmap, Redundancy { spare_rows: 1, spare_cols: 1 });
/// assert!(solution.is_repaired());
/// ```
#[must_use]
pub fn allocate_repair(bitmap: &FailBitmap, redundancy: Redundancy) -> RepairSolution {
    // Failing cells grouped by row and by column.
    let mut rows: BTreeMap<u64, BTreeSet<u8>> = BTreeMap::new();
    let mut cols: BTreeMap<u8, BTreeSet<u64>> = BTreeMap::new();
    for cell in bitmap.cells().keys() {
        rows.entry(cell.word).or_default().insert(cell.bit);
        cols.entry(cell.bit).or_default().insert(cell.word);
    }

    let mut row_repairs: BTreeSet<u64> = BTreeSet::new();
    let mut col_repairs: BTreeSet<u8> = BTreeSet::new();

    // Phase 1: must-repair, iterated to fixpoint.
    loop {
        let mut changed = false;
        let cols_left = redundancy.spare_cols as usize - col_repairs.len();
        for (&row, bits) in &rows {
            if row_repairs.contains(&row) {
                continue;
            }
            let live = bits.iter().filter(|b| !col_repairs.contains(b)).count();
            if live > cols_left && row_repairs.len() < redundancy.spare_rows as usize {
                row_repairs.insert(row);
                changed = true;
            }
        }
        let rows_left = redundancy.spare_rows as usize - row_repairs.len();
        for (&col, words) in &cols {
            if col_repairs.contains(&col) {
                continue;
            }
            let live = words.iter().filter(|w| !row_repairs.contains(w)).count();
            if live > rows_left && col_repairs.len() < redundancy.spare_cols as usize {
                col_repairs.insert(col);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Phase 2: greedy cover of the remaining fails.
    loop {
        let uncovered: Vec<CellId> = bitmap
            .cells()
            .keys()
            .filter(|c| !row_repairs.contains(&c.word) && !col_repairs.contains(&c.bit))
            .copied()
            .collect();
        if uncovered.is_empty() {
            break;
        }
        // Candidate scores: fails covered by repairing each row / column.
        let mut best_row: Option<(u64, usize)> = None;
        if row_repairs.len() < redundancy.spare_rows as usize {
            let mut counts: BTreeMap<u64, usize> = BTreeMap::new();
            for c in &uncovered {
                *counts.entry(c.word).or_insert(0) += 1;
            }
            best_row = counts.into_iter().max_by_key(|&(w, n)| (n, std::cmp::Reverse(w)));
        }
        let mut best_col: Option<(u8, usize)> = None;
        if col_repairs.len() < redundancy.spare_cols as usize {
            let mut counts: BTreeMap<u8, usize> = BTreeMap::new();
            for c in &uncovered {
                *counts.entry(c.bit).or_insert(0) += 1;
            }
            best_col = counts.into_iter().max_by_key(|&(b, n)| (n, std::cmp::Reverse(b)));
        }
        match (best_row, best_col) {
            (Some((w, rn)), Some((b, cn))) => {
                // Ties go to the row spare (rows are usually cheaper).
                if rn >= cn {
                    row_repairs.insert(w);
                } else {
                    col_repairs.insert(b);
                }
            }
            (Some((w, _)), None) => {
                row_repairs.insert(w);
            }
            (None, Some((b, _))) => {
                col_repairs.insert(b);
            }
            (None, None) => break, // out of spares
        }
    }

    let uncovered: Vec<CellId> = bitmap
        .cells()
        .keys()
        .filter(|c| !row_repairs.contains(&c.word) && !col_repairs.contains(&c.bit))
        .copied()
        .collect();
    RepairSolution {
        row_repairs: row_repairs.into_iter().collect(),
        col_repairs: col_repairs.into_iter().collect(),
        uncovered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::FailLog;
    use mbist_mem::{MemGeometry, Miscompare, PortId};
    use mbist_rtl::Bits;

    fn bitmap_of(cells: &[(u64, u8)], width: u8) -> FailBitmap {
        let mut log = FailLog::new();
        for &(word, bit) in cells {
            log.record(
                0,
                Miscompare {
                    port: PortId(0),
                    addr: word,
                    expected: Bits::zero(width),
                    observed: Bits::zero(width).with_bit(bit, true),
                },
            );
        }
        log.bitmap(MemGeometry::word_oriented(64, width))
    }

    #[test]
    fn clean_bitmap_needs_no_spares() {
        let s = allocate_repair(&bitmap_of(&[], 8), Redundancy::default());
        assert!(s.is_repaired());
        assert_eq!(s.spares_used(), (0, 0));
    }

    #[test]
    fn single_cell_uses_one_spare() {
        let s = allocate_repair(
            &bitmap_of(&[(5, 3)], 8),
            Redundancy { spare_rows: 1, spare_cols: 1 },
        );
        assert!(s.is_repaired());
        let (r, c) = s.spares_used();
        assert_eq!(r + c, 1);
    }

    #[test]
    fn row_defect_takes_a_row_spare() {
        // 4 fails across one word: with 1 spare col that row is
        // must-repair.
        let s = allocate_repair(
            &bitmap_of(&[(9, 0), (9, 2), (9, 5), (9, 7)], 8),
            Redundancy { spare_rows: 1, spare_cols: 1 },
        );
        assert!(s.is_repaired());
        assert_eq!(s.row_repairs, vec![9]);
        assert!(s.col_repairs.is_empty());
    }

    #[test]
    fn column_defect_takes_a_column_spare() {
        let s = allocate_repair(
            &bitmap_of(&[(1, 6), (13, 6), (40, 6), (62, 6)], 8),
            Redundancy { spare_rows: 1, spare_cols: 1 },
        );
        assert!(s.is_repaired());
        assert_eq!(s.col_repairs, vec![6]);
        assert!(s.row_repairs.is_empty());
    }

    #[test]
    fn cross_pattern_uses_both_spares() {
        // A row of fails and a column of fails crossing at (9,6).
        let s = allocate_repair(
            &bitmap_of(&[(9, 0), (9, 3), (9, 6), (2, 6), (20, 6), (33, 6)], 8),
            Redundancy { spare_rows: 1, spare_cols: 1 },
        );
        assert!(s.is_repaired());
        assert_eq!(s.row_repairs, vec![9]);
        assert_eq!(s.col_repairs, vec![6]);
    }

    #[test]
    fn unrepairable_reports_uncovered_cells() {
        // Three scattered cells, one spare total.
        let s = allocate_repair(
            &bitmap_of(&[(1, 1), (20, 4), (40, 7)], 8),
            Redundancy { spare_rows: 1, spare_cols: 0 },
        );
        assert!(!s.is_repaired());
        assert_eq!(s.uncovered.len(), 2);
    }

    #[test]
    fn greedy_prefers_the_larger_cover() {
        // Word 5 has 3 fails, word 9 has 1: with one spare row, word 5
        // must be chosen.
        let s = allocate_repair(
            &bitmap_of(&[(5, 0), (5, 1), (5, 2), (9, 4)], 8),
            Redundancy { spare_rows: 1, spare_cols: 1 },
        );
        assert!(s.is_repaired());
        assert_eq!(s.row_repairs, vec![5]);
        assert_eq!(s.col_repairs, vec![4]);
    }

    #[test]
    fn covers_reflects_allocation() {
        let s = allocate_repair(
            &bitmap_of(&[(5, 3)], 8),
            Redundancy { spare_rows: 1, spare_cols: 0 },
        );
        assert!(s.covers(CellId::new(5, 0)), "whole row covered");
        assert!(!s.covers(CellId::new(6, 3)));
    }

    #[test]
    fn deterministic_allocation() {
        let cells = [(3u64, 1u8), (3, 5), (17, 1), (29, 2), (29, 5), (29, 6)];
        let r = Redundancy { spare_rows: 2, spare_cols: 2 };
        let a = allocate_repair(&bitmap_of(&cells, 8), r);
        let b = allocate_repair(&bitmap_of(&cells, 8), r);
        assert_eq!(a, b);
    }
}
