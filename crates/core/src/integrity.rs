//! Program-store integrity signatures.
//!
//! The paper's scan-loadable stores (the microcode storage unit of §2.1 and
//! the prog-FSM parameter buffer of §2.2) are exactly what makes the
//! architectures field-reprogrammable — and exactly what makes them soft-
//! error targets: a single-event upset in a stored instruction silently
//! changes the test the controller runs. This module provides the cheap
//! hardware answer: a 16-column interleaved parity word computed while the
//! program shifts in, recorded at load time and recomputed from the store
//! before every protected run. Any single-bit upset lands in exactly one
//! parity column and is therefore always detected; multi-bit upsets escape
//! only when every parity column is hit an even number of times.

use std::fmt;

/// Width of the signature in parity columns.
pub const SIGNATURE_BITS: u8 = 16;

/// A 16-bit interleaved-parity signature of a program store's bit image.
///
/// Bit `i` of the image is folded into signature column `i % 16`, so the
/// signature is computable by a 16-bit LFSR-style register on the scan path
/// with no extra scan clocks.
///
/// # Examples
///
/// ```
/// use mbist_core::integrity::Signature;
///
/// let image = [true, false, true, true];
/// let sig = Signature::of(image.iter().copied());
/// assert_eq!(sig, Signature::of(image.iter().copied()), "deterministic");
///
/// let mut flipped = image;
/// flipped[2] = !flipped[2];
/// assert_ne!(sig, Signature::of(flipped.iter().copied()), "any 1-bit upset is visible");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Signature(u16);

impl Signature {
    /// Computes the signature of a bit image, index 0 first.
    #[must_use]
    pub fn of(bits: impl IntoIterator<Item = bool>) -> Self {
        let mut word: u16 = 0;
        for (i, bit) in bits.into_iter().enumerate() {
            if bit {
                word ^= 1 << (i % usize::from(SIGNATURE_BITS));
            }
        }
        Self(word)
    }

    /// The raw 16-bit parity word.
    #[must_use]
    pub fn value(self) -> u16 {
        self.0
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#06x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_image_signs_to_zero() {
        assert_eq!(Signature::of(std::iter::empty()).value(), 0);
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let image: Vec<bool> = (0..160).map(|i| i % 3 == 0).collect();
        let clean = Signature::of(image.iter().copied());
        for i in 0..image.len() {
            let mut upset = image.clone();
            upset[i] = !upset[i];
            assert_ne!(
                Signature::of(upset.iter().copied()),
                clean,
                "flip at {i} must change the signature"
            );
        }
    }

    #[test]
    fn same_column_double_flip_aliases() {
        // The documented blind spot: two flips 16 cells apart cancel.
        let image = vec![false; 40];
        let clean = Signature::of(image.iter().copied());
        let mut upset = image;
        upset[3] = true;
        upset[19] = true;
        assert_eq!(Signature::of(upset.iter().copied()), clean);
    }

    #[test]
    fn display_is_hex() {
        let sig = Signature::of((0..16).map(|i| i == 5));
        assert_eq!(sig.to_string(), "0x0020");
    }
}
