//! Static program validation and watchdog cycle budgets.
//!
//! A scan-loadable controller accepts *any* bit image, including hand-
//! written or corrupted programs whose control flow never reaches
//! `Test End`. This module provides the two defenses layered in front of
//! the run loop:
//!
//! - [`validate_microcode`] / [`validate_progfsm`]: static checks that
//!   reject every program shape that can loop forever on the cycle-accurate
//!   controllers (element loops that make no address progress or mix
//!   address orders, duplicated `Repeat`/`LoopBg` instructions that
//!   ping-pong the flag/background state, prog-FSM circular buffers with no
//!   terminating row);
//! - [`cycle_budget`]: a closed-form upper bound on the cycles any
//!   *accepted* program can take, used as the default watchdog budget of
//!   [`BistUnit::run_bounded`](crate::BistUnit::run_bounded). The
//!   vendored-proptest suite (`crates/core/tests/robustness_props.rs`)
//!   fuzzes the pair: every validator-accepted program must assert
//!   `Test End` within the derived budget.

use mbist_mem::MemGeometry;

use crate::error::CoreError;
use crate::microcode::{FlowOp, Microinstruction};
use crate::progfsm::{FsmInstruction, FsmOp};

/// An upper bound on the controller cycles a validator-accepted program of
/// `program_len` instructions can consume on `geometry` with `backgrounds`
/// data backgrounds, across all ports.
///
/// Derivation: per (background, port) pass every stored instruction drives
/// at most one full address sweep (element loops make address progress on a
/// saturating counter), at most twice under `Repeat`, with at most four
/// operations per address under the prog-FSM component menu; the `+2`
/// paddings absorb flow-control overhead and the `+64` constant absorbs
/// reset/handshake cycles on degenerate geometries. Saturating arithmetic
/// keeps the bound meaningful on extreme geometries.
#[must_use]
pub fn cycle_budget(program_len: usize, geometry: &MemGeometry, backgrounds: usize) -> u64 {
    let passes = (backgrounds.max(1) as u64).saturating_mul(u64::from(geometry.ports()));
    4u64.saturating_mul(program_len as u64 + 2)
        .saturating_mul(geometry.words().saturating_add(2))
        .saturating_mul(passes)
        .saturating_add(64)
}

fn invalid(architecture: &'static str, reason: String) -> CoreError {
    CoreError::InvalidProgram { architecture, reason }
}

/// Validates a microcode program: accepted programs terminate within
/// [`cycle_budget`] on every geometry; rejected ones could hang the
/// controller or exercise undefined decode behavior.
///
/// The checks mirror the controller's flow semantics exactly:
///
/// - no instruction may assert both read and write enables;
/// - at most one `Repeat` (two alternately latch and clear the reference
///   register's repeat flag, branching to instruction 1 forever) and at
///   most one `LoopBg` (the first resets the background generator before
///   the second ever observes `Last Data`);
/// - every element loop (`LoopElem` plus the body the branch register
///   points into) must step the address generator via at least one
///   *access* carrying `addr_inc` (a flow-only `addr_inc` is ignored by
///   the datapath) and must keep one address order across its accesses
///   (the saturating address counter never reaches the up-terminal while
///   stepping down, and vice versa).
///
/// Element bodies are checked along both entry paths: the linear pass from
/// instruction 0 and, when a `Repeat` is present, the repeat pass from
/// instruction 1 — the two paths can see different element boundaries.
///
/// # Errors
///
/// Returns [`CoreError::InvalidProgram`] naming the offending instruction.
pub fn validate_microcode(program: &[Microinstruction]) -> Result<(), CoreError> {
    const ARCH: &str = "microcode";
    for (i, inst) in program.iter().enumerate() {
        if inst.read && inst.write {
            return Err(invalid(
                ARCH,
                format!("instruction {i} asserts both read and write enables"),
            ));
        }
    }
    let repeats = program.iter().filter(|i| i.flow == FlowOp::Repeat).count();
    if repeats > 1 {
        return Err(invalid(
            ARCH,
            format!("{repeats} repeat instructions would ping-pong the repeat flag"),
        ));
    }
    let bg_loops = program.iter().filter(|i| i.flow == FlowOp::LoopBg).count();
    if bg_loops > 1 {
        return Err(invalid(
            ARCH,
            format!(
                "{bg_loops} background loops: the first resets the background \
                 generator before the second can observe Last Data"
            ),
        ));
    }
    scan_element_loops(program, 0, 0)?;
    if repeats == 1 && program.len() > 1 {
        scan_element_loops(program, 1, 1)?;
    }
    Ok(())
}

/// Walks one entry path through `program`, tracking the branch register
/// exactly as the controller's Save-Current-Address automation does, and
/// checks every element loop encountered for address progress and a
/// consistent address order.
fn scan_element_loops(
    program: &[Microinstruction],
    start: usize,
    branch_reg: usize,
) -> Result<(), CoreError> {
    const ARCH: &str = "microcode";
    let mut br = branch_reg;
    for i in start..program.len() {
        let inst = program[i];
        match inst.flow {
            FlowOp::Next => {}
            FlowOp::LoopElem => {
                let body = &program[br..=i];
                if !body.iter().any(|b| b.has_access() && b.addr_inc) {
                    return Err(invalid(
                        ARCH,
                        format!("element loop at {i} makes no address progress"),
                    ));
                }
                if body.iter().any(|b| b.has_access() && b.addr_down != inst.addr_down) {
                    return Err(invalid(
                        ARCH,
                        format!(
                            "element loop at {i} mixes address orders; the \
                             saturating address counter would never reach its \
                             terminal count"
                        ),
                    ));
                }
                br = i + 1;
            }
            FlowOp::Repeat
            | FlowOp::LoopBg
            | FlowOp::LoopPort
            | FlowOp::Hold
            | FlowOp::SaveAddr => br = i + 1,
            // Execution along this path stops here; later instructions are
            // only reachable through the other validated entry paths.
            FlowOp::Terminate => return Ok(()),
        }
    }
    Ok(())
}

/// Validates a prog-FSM parameter program: accepted programs terminate
/// within [`cycle_budget`]; rejected ones would cycle the circular buffer
/// forever.
///
/// - a non-empty buffer must contain a terminating row (`End` or
///   `LoopPort`) — the buffer index wraps, so a program without one
///   replays forever;
/// - at most one `LoopBg` (same flag ping-pong as the microcode case).
///
/// # Errors
///
/// Returns [`CoreError::InvalidProgram`] describing the defect.
pub fn validate_progfsm(program: &[FsmInstruction]) -> Result<(), CoreError> {
    const ARCH: &str = "programmable-fsm";
    if !program.is_empty()
        && !program.iter().any(|i| matches!(i.kind, FsmOp::End | FsmOp::LoopPort))
    {
        return Err(invalid(
            ARCH,
            "circular buffer has no End or LoopPort row; the index wraps and \
             the program replays forever"
                .into(),
        ));
    }
    let bg_loops = program.iter().filter(|i| matches!(i.kind, FsmOp::LoopBg)).count();
    if bg_loops > 1 {
        return Err(invalid(
            ARCH,
            format!(
                "{bg_loops} background loop-back rows: the first resets the \
                 background generator before the second can observe Last Data"
            ),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::progfsm::SmComponent;
    use mbist_march::library;

    fn w0_inc_loop() -> Microinstruction {
        Microinstruction {
            write: true,
            addr_inc: true,
            flow: FlowOp::LoopElem,
            ..Microinstruction::nop()
        }
    }

    #[test]
    fn every_library_compile_output_validates() {
        for t in library::all() {
            let p = crate::microcode::compile(&t).unwrap();
            validate_microcode(&p).unwrap_or_else(|e| panic!("{}: {e}", t.name()));
            if let Ok(p) = crate::progfsm::compile(&t) {
                validate_progfsm(&p).unwrap_or_else(|e| panic!("{}: {e}", t.name()));
            }
        }
    }

    #[test]
    fn no_progress_element_is_rejected() {
        let prog = vec![Microinstruction {
            write: true,
            flow: FlowOp::LoopElem,
            ..Microinstruction::nop()
        }];
        let err = validate_microcode(&prog).unwrap_err();
        assert!(err.to_string().contains("address progress"), "{err}");
    }

    #[test]
    fn flow_only_addr_inc_is_not_progress() {
        // addr_inc without an access is ignored by the datapath.
        let prog = vec![
            Microinstruction { addr_inc: true, ..Microinstruction::nop() },
            Microinstruction {
                read: true,
                flow: FlowOp::LoopElem,
                ..Microinstruction::nop()
            },
        ];
        assert!(validate_microcode(&prog).is_err());
    }

    #[test]
    fn mixed_direction_element_is_rejected() {
        let prog = vec![
            Microinstruction {
                write: true,
                addr_inc: true,
                addr_down: true,
                ..Microinstruction::nop()
            },
            Microinstruction {
                read: true,
                addr_inc: true,
                flow: FlowOp::LoopElem,
                ..Microinstruction::nop()
            },
        ];
        let err = validate_microcode(&prog).unwrap_err();
        assert!(err.to_string().contains("address orders"), "{err}");
    }

    #[test]
    fn double_repeat_and_double_loopbg_are_rejected() {
        let rep = Microinstruction { flow: FlowOp::Repeat, ..Microinstruction::nop() };
        let err = validate_microcode(&[w0_inc_loop(), rep, rep]).unwrap_err();
        assert!(err.to_string().contains("repeat"), "{err}");
        let bg = Microinstruction { flow: FlowOp::LoopBg, ..Microinstruction::nop() };
        let err = validate_microcode(&[w0_inc_loop(), bg, bg]).unwrap_err();
        assert!(err.to_string().contains("background"), "{err}");
    }

    #[test]
    fn repeat_pass_element_boundaries_are_checked() {
        // Linearly the element [0..=2] makes progress via instruction 0,
        // but the repeat pass enters at 1 and loops [1..=2] forever.
        let prog = vec![
            Microinstruction { write: true, addr_inc: true, ..Microinstruction::nop() },
            Microinstruction { read: true, ..Microinstruction::nop() },
            Microinstruction {
                write: true,
                flow: FlowOp::LoopElem,
                ..Microinstruction::nop()
            },
            Microinstruction { flow: FlowOp::Repeat, ..Microinstruction::nop() },
        ];
        // sanity: without the Repeat the linear pass alone accepts it
        assert!(validate_microcode(&prog[..3]).is_ok());
        assert!(validate_microcode(&prog).is_err());
    }

    #[test]
    fn read_write_conflict_is_rejected() {
        let prog =
            vec![Microinstruction { read: true, write: true, ..Microinstruction::nop() }];
        assert!(validate_microcode(&prog).is_err());
    }

    #[test]
    fn degenerate_terminating_programs_are_accepted() {
        validate_microcode(&[]).unwrap();
        validate_microcode(&[Microinstruction {
            flow: FlowOp::Terminate,
            ..Microinstruction::nop()
        }])
        .unwrap();
        validate_progfsm(&[]).unwrap();
    }

    #[test]
    fn progfsm_without_terminator_is_rejected() {
        let prog = vec![FsmInstruction {
            kind: FsmOp::Component(SmComponent::Sm1),
            ..FsmInstruction::nop()
        }];
        let err = validate_progfsm(&prog).unwrap_err();
        assert!(err.to_string().contains("End or LoopPort"), "{err}");
        let err = validate_progfsm(&[FsmInstruction {
            kind: FsmOp::LoopBg,
            ..FsmInstruction::nop()
        }])
        .unwrap_err();
        assert!(err.to_string().contains("End or LoopPort"), "{err}");
    }

    #[test]
    fn progfsm_double_loopbg_is_rejected() {
        let bg = FsmInstruction { kind: FsmOp::LoopBg, ..FsmInstruction::nop() };
        let end = FsmInstruction { kind: FsmOp::End, ..FsmInstruction::nop() };
        assert!(validate_progfsm(&[bg, bg, end]).is_err());
        assert!(validate_progfsm(&[bg, end]).is_ok());
    }

    #[test]
    fn budget_dominates_real_runs() {
        use mbist_march::{expand, standard_backgrounds};
        use mbist_mem::MemGeometry;
        for t in library::all() {
            for g in [MemGeometry::bit_oriented(16), MemGeometry::new(8, 4, 2)] {
                let p = crate::microcode::compile(&t).unwrap();
                let bgs = standard_backgrounds(g.width()).len();
                let budget = cycle_budget(p.len(), &g, bgs);
                // The reference stream length is a lower bound on cycles;
                // flow-control overhead is a handful of cycles per element,
                // well inside the budget's +64 constant slack.
                let steps = expand(&t, &g).len() as u64;
                assert!(
                    budget > steps + 64,
                    "{} on {g}: budget {budget} too close to {steps}",
                    t.name()
                );
            }
        }
    }
}
