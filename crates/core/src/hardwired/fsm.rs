//! Hardwired (non-programmable) march-test controllers.
//!
//! A [`HardwiredFsm`] is the logic realization of one fixed march
//! algorithm: one FSM state per march operation (plus pause states), with
//! element, background and port loops folded into the state transitions —
//! zero cycle overhead, zero flexibility. These are the paper's March C /
//! C+ / C++ / A / A+ / A++ baselines of Tables 1-2.
//!
//! The controller also exports its full [`transition table`]
//! (`HardwiredFsm::transition_table`) so the area model can synthesize the
//! next-state and output logic with the two-level minimizer and count
//! gates the way the paper's ASIC flow did.

use mbist_march::{MarchItem, MarchOp, MarchTest};
use mbist_rtl::{Direction, Primitive, Structure};

use crate::controller::{BistController, Flexibility};
use crate::datapath::BistDatapath;
use crate::signals::{ControlSignals, StatusSignals};

/// Which wrap-around loops the hardwired controller implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HardwiredCaps {
    /// Repeat the algorithm per data background (word-oriented support).
    pub background_loop: bool,
    /// Repeat the algorithm per port (multiport support).
    pub port_loop: bool,
}

impl Default for HardwiredCaps {
    /// Bit-oriented, single-port — the paper's Table 1 configuration.
    fn default() -> Self {
        Self { background_loop: false, port_loop: false }
    }
}

/// Internal control position: one per march operation / pause, plus Done.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Position {
    /// Executing op `op` of item `item`.
    At {
        item: usize,
        op: usize,
    },
    Done,
}

/// One row of the exported state transition table.
#[derive(Debug, Clone, PartialEq)]
pub struct FsmTransition {
    /// Current state index.
    pub state: usize,
    /// Input minterm: bit 0 = `last_address`, bit 1 = `last_background`,
    /// bit 2 = `last_port`.
    pub inputs: u8,
    /// Next state index.
    pub next: usize,
    /// Output vector, see [`OUTPUT_NAMES`].
    pub outputs: Vec<bool>,
}

/// Names of the output columns of the transition table.
pub const OUTPUT_NAMES: [&str; 12] = [
    "read_en",
    "write_en",
    "data_invert",
    "compare_invert",
    "order_down",
    "addr_inc",
    "addr_reset",
    "bg_inc",
    "bg_reset",
    "port_inc",
    "pause",
    "done",
];

/// A hardwired march-test controller.
///
/// # Examples
///
/// ```
/// use mbist_core::hardwired::{HardwiredCaps, HardwiredFsm};
/// use mbist_march::library;
///
/// let ctrl = HardwiredFsm::new(&library::march_c(), HardwiredCaps::default());
/// assert_eq!(ctrl.state_count(), 11); // 10 op states + Done
/// ```
#[derive(Debug, Clone)]
pub struct HardwiredFsm {
    algorithm: String,
    items: Vec<MarchItem>,
    caps: HardwiredCaps,
    position: Position,
}

impl HardwiredFsm {
    /// Hardwires `test` with the given loop capabilities.
    #[must_use]
    pub fn new(test: &MarchTest, caps: HardwiredCaps) -> Self {
        Self {
            algorithm: test.name().to_string(),
            items: test.items().to_vec(),
            caps,
            position: Position::At { item: 0, op: 0 },
        }
    }

    /// The loop capabilities.
    #[must_use]
    pub fn caps(&self) -> HardwiredCaps {
        self.caps
    }

    /// Number of FSM states (op states + pause states + Done).
    #[must_use]
    pub fn state_count(&self) -> usize {
        let mut n = 1; // Done
        for item in &self.items {
            n += match item {
                MarchItem::Element(e) => e.ops().len(),
                MarchItem::Pause { .. } => 1,
            };
        }
        n
    }

    /// Number of status inputs the FSM observes.
    #[must_use]
    pub fn input_count(&self) -> usize {
        1 + usize::from(self.caps.background_loop) + usize::from(self.caps.port_loop)
    }

    /// State-register width in bits.
    #[must_use]
    pub fn state_bits(&self) -> u32 {
        let s = self.state_count();
        (usize::BITS - (s - 1).leading_zeros()).max(1)
    }

    /// Linear state index of a position.
    fn state_index(&self, pos: Position) -> usize {
        match pos {
            Position::Done => 0,
            Position::At { item, op } => {
                let mut idx = 1;
                for (i, it) in self.items.iter().enumerate() {
                    if i == item {
                        return idx + op;
                    }
                    idx += match it {
                        MarchItem::Element(e) => e.ops().len(),
                        MarchItem::Pause { .. } => 1,
                    };
                }
                unreachable!("position out of range")
            }
        }
    }

    /// Position for a linear state index, or `None` for unused codes.
    fn position_of(&self, index: usize) -> Option<Position> {
        if index == 0 {
            return Some(Position::Done);
        }
        let mut idx = 1;
        for (i, it) in self.items.iter().enumerate() {
            let len = match it {
                MarchItem::Element(e) => e.ops().len(),
                MarchItem::Pause { .. } => 1,
            };
            if index < idx + len {
                return Some(Position::At { item: i, op: index - idx });
            }
            idx += len;
        }
        None
    }

    /// The pure combinational transition function: from a position and
    /// status inputs, produce this cycle's signals and the next position.
    fn transition(
        &self,
        pos: Position,
        status: StatusSignals,
    ) -> (ControlSignals, Position) {
        let Position::At { item, op } = pos else {
            return (
                ControlSignals { done: true, ..ControlSignals::idle() },
                Position::Done,
            );
        };
        let mut sig = ControlSignals::idle();
        let next_in_item: Option<Position> = match &self.items[item] {
            MarchItem::Pause { ns } => {
                sig.pause_ns = Some(*ns);
                None
            }
            MarchItem::Element(e) => {
                let dir = e.order().direction();
                sig.addr_order = dir;
                match e.ops()[op] {
                    MarchOp::Read(d) => {
                        sig.read_en = true;
                        sig.compare_en = true;
                        sig.compare_invert = d;
                    }
                    MarchOp::Write(d) => {
                        sig.write_en = true;
                        sig.data_invert = d;
                    }
                }
                if op + 1 < e.ops().len() {
                    Some(Position::At { item, op: op + 1 })
                } else if !status.last_address {
                    sig.addr_inc = true;
                    Some(Position::At { item, op: 0 })
                } else {
                    sig.addr_reset = true;
                    None
                }
            }
        };
        if let Some(next) = next_in_item {
            return (sig, next);
        }
        // Item finished: advance; fold pass-wrap loops into this cycle.
        if item + 1 < self.items.len() {
            return (sig, Position::At { item: item + 1, op: 0 });
        }
        if self.caps.background_loop && !status.last_background {
            sig.bg_inc = true;
            return (sig, Position::At { item: 0, op: 0 });
        }
        if self.caps.background_loop {
            sig.bg_reset = true;
        }
        if self.caps.port_loop && !status.last_port {
            sig.port_inc = true;
            return (sig, Position::At { item: 0, op: 0 });
        }
        sig.done = true;
        (sig, Position::Done)
    }

    /// Exports the complete state transition table for logic synthesis.
    /// Inputs not implemented by the caps are omitted from the enumeration
    /// (their columns would be unconnected).
    #[must_use]
    pub fn transition_table(&self) -> Vec<FsmTransition> {
        let mut rows = Vec::new();
        let input_count = self.input_count() as u8;
        for s in 0..self.state_count() {
            let pos = self.position_of(s).expect("state indices are dense");
            for inputs in 0..(1u8 << input_count) {
                let status = self.status_from_bits(inputs);
                let (sig, next) = self.transition(pos, status);
                rows.push(FsmTransition {
                    state: s,
                    inputs,
                    next: self.state_index(next),
                    outputs: vec![
                        sig.read_en,
                        sig.write_en,
                        sig.data_invert,
                        sig.compare_invert,
                        sig.addr_order == Direction::Down,
                        sig.addr_inc,
                        sig.addr_reset,
                        sig.bg_inc,
                        sig.bg_reset,
                        sig.port_inc,
                        sig.pause_ns.is_some(),
                        sig.done,
                    ],
                });
            }
        }
        rows
    }

    fn status_from_bits(&self, inputs: u8) -> StatusSignals {
        let mut bit = 0;
        let last_address = inputs & 1 != 0;
        bit += 1;
        let last_background = if self.caps.background_loop {
            let v = inputs & (1 << bit) != 0;
            bit += 1;
            v
        } else {
            true
        };
        let last_port = if self.caps.port_loop { inputs & (1 << bit) != 0 } else { true };
        StatusSignals { last_address, last_background, last_port }
    }
}

impl BistController for HardwiredFsm {
    fn architecture(&self) -> &'static str {
        "hardwired"
    }

    fn algorithm(&self) -> &str {
        &self.algorithm
    }

    fn flexibility(&self) -> Flexibility {
        Flexibility::Low
    }

    fn reset(&mut self) {
        self.position = Position::At { item: 0, op: 0 };
    }

    fn is_done(&self) -> bool {
        self.position == Position::Done
    }

    fn step(&mut self, datapath: &BistDatapath) -> ControlSignals {
        let dir = match self.position {
            Position::At { item, .. } => match &self.items[item] {
                MarchItem::Element(e) => e.order().direction(),
                MarchItem::Pause { .. } => Direction::Up,
            },
            Position::Done => Direction::Up,
        };
        let (sig, next) = self.transition(self.position, datapath.status(dir));
        self.position = next;
        sig
    }

    /// Coarse structural estimate: the state register plus a literal-count
    /// heuristic for the next-state/output network. The area crate replaces
    /// the combinational part with true minimized-logic gate counts from
    /// [`HardwiredFsm::transition_table`].
    fn structure(&self) -> Structure {
        let bits = self.state_bits();
        let states = self.state_count() as u32;
        Structure::named("hardwired_controller")
            .with_child(Structure::leaf("state_register").with(Primitive::Dff, bits))
            .with_child(
                Structure::leaf("next_state_logic")
                    .with(Primitive::Nand2, states * (bits + 2))
                    .with(Primitive::Inv, states),
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unit::BistUnit;
    use mbist_march::{expand, library, standard_backgrounds};
    use mbist_mem::{MemGeometry, MemoryArray};

    fn unit_for(test: &MarchTest, g: MemGeometry) -> BistUnit<HardwiredFsm> {
        let caps =
            HardwiredCaps { background_loop: g.width() > 1, port_loop: g.ports() > 1 };
        let ctrl = HardwiredFsm::new(test, caps);
        let dp = crate::datapath::BistDatapath::new(g, standard_backgrounds(g.width()));
        BistUnit::new(ctrl, dp)
    }

    #[test]
    fn all_library_algorithms_match_reference() {
        let geometries = [
            MemGeometry::bit_oriented(4),
            MemGeometry::word_oriented(4, 4),
            MemGeometry::new(4, 2, 2),
        ];
        for t in library::all() {
            for g in geometries {
                let mut unit = unit_for(&t, g);
                assert_eq!(unit.emit_steps(), expand(&t, &g), "{} on {}", t.name(), g);
            }
        }
    }

    #[test]
    fn hardwired_has_zero_cycle_overhead() {
        let g = MemGeometry::bit_oriented(16);
        let mut unit = unit_for(&library::march_c(), g);
        let mut mem = MemoryArray::new(g);
        let report = unit.run(&mut mem);
        assert_eq!(report.bus_cycles, 160);
        assert_eq!(report.overhead_cycles(), 0, "hardwired folds all control");
        assert!(report.passed());
    }

    #[test]
    fn pause_states_cost_one_cycle_each() {
        let g = MemGeometry::bit_oriented(4);
        let mut unit = unit_for(&library::march_c_plus(), g);
        let mut mem = MemoryArray::new(g);
        let report = unit.run(&mut mem);
        assert_eq!(report.overhead_cycles(), 2);
        assert_eq!(report.pause_ns, 2.0 * library::DEFAULT_RETENTION_PAUSE_NS);
    }

    #[test]
    fn state_counts_grow_with_algorithm_enhancement() {
        let caps = HardwiredCaps::default();
        let c = HardwiredFsm::new(&library::march_c(), caps).state_count();
        let cp = HardwiredFsm::new(&library::march_c_plus(), caps).state_count();
        let cpp = HardwiredFsm::new(&library::march_c_plus_plus(), caps).state_count();
        assert!(c < cp && cp < cpp, "{c} < {cp} < {cpp}");
        assert_eq!(c, 11);
        assert_eq!(cp, 11 + 2 + 4); // +2 pauses +4 retention-tail ops
    }

    #[test]
    fn transition_table_is_complete_and_consistent() {
        let ctrl = HardwiredFsm::new(&library::mats_plus(), HardwiredCaps::default());
        let table = ctrl.transition_table();
        assert_eq!(table.len(), ctrl.state_count() * 2); // 1 input bit
        for row in &table {
            assert!(row.next < ctrl.state_count());
            assert_eq!(row.outputs.len(), OUTPUT_NAMES.len());
        }
        // Done state loops to itself with done asserted.
        let done_rows: Vec<_> = table.iter().filter(|r| r.state == 0).collect();
        for r in done_rows {
            assert_eq!(r.next, 0);
            assert!(r.outputs[11]);
        }
    }

    #[test]
    fn table_replays_identically_to_the_controller() {
        // Interpreting the exported table must reproduce the emitted
        // stream: the table IS the controller.
        let g = MemGeometry::bit_oriented(3);
        let test = library::march_y();
        let mut unit = unit_for(&test, g);
        let reference = unit.emit_steps();

        let ctrl = HardwiredFsm::new(&test, HardwiredCaps::default());
        let table = ctrl.transition_table();
        let lookup = |state: usize, inputs: u8| {
            table
                .iter()
                .find(|r| r.state == state && r.inputs == inputs)
                .expect("table is complete")
        };
        // Replay with a tiny interpreter against the reference datapath.
        let mut dp = crate::datapath::BistDatapath::new(g, standard_backgrounds(1));
        let mut state = ctrl.state_index(Position::At { item: 0, op: 0 });
        let mut ops = 0;
        while state != 0 {
            // Determine direction from the output row under both input
            // values (order_down is input-independent).
            let probe = lookup(state, 0);
            let dir = if probe.outputs[4] { Direction::Down } else { Direction::Up };
            let inputs = u8::from(dp.status(dir).last_address);
            let row = lookup(state, inputs);
            if row.outputs[0] || row.outputs[1] {
                let expected = &reference[ops];
                let bus = expected.as_bus().expect("march-y has no pauses");
                assert_eq!(bus.addr, dp.addr_for(dir), "op {ops}");
                assert_eq!(bus.op.is_write(), row.outputs[1], "op {ops}");
                ops += 1;
            }
            dp.apply(&ControlSignals {
                read_en: row.outputs[0],
                write_en: row.outputs[1],
                addr_order: dir,
                addr_inc: row.outputs[5],
                addr_reset: row.outputs[6],
                ..ControlSignals::idle()
            });
            state = row.next;
        }
        assert_eq!(ops, reference.len());
    }

    use mbist_march::MarchTest;
}
