//! Hardwired (non-programmable) BIST baselines (paper §3).

mod fsm;

pub use fsm::{FsmTransition, HardwiredCaps, HardwiredFsm, OUTPUT_NAMES};

use mbist_march::{standard_backgrounds, MarchTest};
use mbist_mem::MemGeometry;

use crate::datapath::BistDatapath;
use crate::unit::BistUnit;

/// Convenience constructors for hardwired BIST units.
#[derive(Debug, Clone, Copy)]
pub struct HardwiredBist;

impl HardwiredBist {
    /// Hardwires `test` for `geometry`, enabling the background loop for
    /// word-oriented memories and the port loop for multiport memories —
    /// the paper's Table 2 "modified to support" configurations.
    #[must_use]
    pub fn for_test(test: &MarchTest, geometry: &MemGeometry) -> BistUnit<HardwiredFsm> {
        let caps = HardwiredCaps {
            background_loop: geometry.width() > 1,
            port_loop: geometry.ports() > 1,
        };
        let controller = HardwiredFsm::new(test, caps);
        let datapath = BistDatapath::new(*geometry, standard_backgrounds(geometry.width()));
        BistUnit::new(controller, datapath)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbist_march::library;
    use mbist_mem::MemGeometry;

    #[test]
    fn caps_follow_geometry() {
        let bit =
            HardwiredBist::for_test(&library::march_c(), &MemGeometry::bit_oriented(8));
        assert!(!bit.controller().caps().background_loop);
        assert!(!bit.controller().caps().port_loop);

        let word = HardwiredBist::for_test(&library::march_c(), &MemGeometry::new(8, 8, 2));
        assert!(word.controller().caps().background_loop);
        assert!(word.controller().caps().port_loop);
    }
}
