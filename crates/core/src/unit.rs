//! The memory BIST unit: controller + datapath + comparator + fail log.

use mbist_mem::{BusCycle, MemoryArray, Miscompare, TestStep};
use mbist_rtl::{Bits, Structure, Trace};

use crate::controller::{BistController, ScanRecoverable};
use crate::datapath::BistDatapath;
use crate::diag::FailLog;
use crate::error::CoreError;
use crate::recovery::{RecoveryPolicy, RecoveryReport};

/// Safety valve: a controller that has not finished after this many cycles
/// per memory cell (per background, per port) is considered hung.
const MAX_CYCLES_PER_OP: u64 = 64;

/// Outcome of a BIST session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionReport {
    /// Controller architecture.
    pub architecture: &'static str,
    /// Algorithm name.
    pub algorithm: String,
    /// Total controller clock cycles (including flow-control overhead).
    pub cycles: u64,
    /// Memory accesses driven.
    pub bus_cycles: u64,
    /// Total pause time in nanoseconds.
    pub pause_ns: f64,
    /// Every miscompare, in occurrence order.
    pub fail_log: FailLog,
}

impl SessionReport {
    /// Whether the memory passed.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.fail_log.is_empty()
    }

    /// Controller overhead: cycles that did not drive a memory access.
    #[must_use]
    pub fn overhead_cycles(&self) -> u64 {
        self.cycles - self.bus_cycles
    }
}

/// A complete memory BIST unit wrapping a controller and the shared
/// datapath.
///
/// # Examples
///
/// ```
/// use mbist_core::{microcode::MicrocodeBist, BistUnit};
/// use mbist_march::library;
/// use mbist_mem::{MemGeometry, MemoryArray};
///
/// let g = MemGeometry::bit_oriented(64);
/// let mut unit = MicrocodeBist::for_test(&library::march_c(), &g)?;
/// let mut mem = MemoryArray::new(g);
/// let report = unit.run(&mut mem);
/// assert!(report.passed());
/// assert_eq!(report.bus_cycles, 10 * 64);
/// # Ok::<(), mbist_core::CoreError>(())
/// ```
#[derive(Debug)]
pub struct BistUnit<C> {
    controller: C,
    datapath: BistDatapath,
}

impl<C: BistController> BistUnit<C> {
    /// Assembles a unit from a controller and datapath.
    #[must_use]
    pub fn new(controller: C, datapath: BistDatapath) -> Self {
        Self { controller, datapath }
    }

    /// The controller.
    #[must_use]
    pub fn controller(&self) -> &C {
        &self.controller
    }

    /// Mutable access to the controller (for scan reloads and fault
    /// injection).
    pub fn controller_mut(&mut self) -> &mut C {
        &mut self.controller
    }

    /// The datapath.
    #[must_use]
    pub fn datapath(&self) -> &BistDatapath {
        &self.datapath
    }

    /// Runs a full session against `mem`, returning the report.
    ///
    /// # Panics
    ///
    /// Panics if the controller exceeds the hang safety valve — that would
    /// be a controller model bug, not a memory fault.
    pub fn run(&mut self, mem: &mut MemoryArray) -> SessionReport {
        self.run_inner(Some(mem), None)
    }

    /// The watchdog budget [`BistUnit::run_bounded`] applies when no
    /// explicit budget is given: a sound over-approximation of any
    /// validator-accepted program's cycle count on this unit's geometry.
    #[must_use]
    pub fn default_cycle_budget(&self) -> u64 {
        let g = self.datapath.geometry();
        MAX_CYCLES_PER_OP
            .saturating_mul(g.words().max(1))
            .saturating_mul(self.datapath.backgrounds().len() as u64)
            .saturating_mul(u64::from(g.ports()))
            .saturating_add(1024)
    }

    /// Runs a full session under a watchdog: if the controller has not
    /// asserted `Test End` within `budget` cycles, the run is aborted with
    /// [`CoreError::CycleBudgetExceeded`] instead of hanging — the defense
    /// against corrupted (e.g. upset-struck) programs whose control flow
    /// never terminates.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::CycleBudgetExceeded`] when the budget runs
    /// out. The partial session state is discarded; the controller is left
    /// resettable.
    pub fn run_bounded(
        &mut self,
        mem: &mut MemoryArray,
        budget: u64,
    ) -> Result<SessionReport, CoreError> {
        self.session(Some(mem), None, None, Some(budget))
    }

    /// Runs a full session with integrity checking and bounded recovery:
    ///
    /// 1. verify the program store's signature; on a mismatch, scan-reload
    ///    the golden program and re-verify, up to
    ///    `policy.max_reload_attempts` times;
    /// 2. run under the watchdog budget (`policy.cycle_budget`, or
    ///    [`BistUnit::default_cycle_budget`] when `None`).
    ///
    /// Returns the session report plus a [`RecoveryReport`] accounting for
    /// the recovery work (attempts and scan-clock cost).
    ///
    /// # Errors
    ///
    /// [`CoreError::RecoveryFailed`] if integrity cannot be restored
    /// within the retry bound; [`CoreError::CycleBudgetExceeded`] if the
    /// (verified) program still fails to terminate in budget.
    pub fn run_protected(
        &mut self,
        mem: &mut MemoryArray,
        policy: &RecoveryPolicy,
    ) -> Result<(SessionReport, RecoveryReport), CoreError>
    where
        C: ScanRecoverable,
    {
        let budget = policy.cycle_budget.unwrap_or_else(|| self.default_cycle_budget());
        let mut recovery =
            RecoveryReport { cycle_budget: budget, ..RecoveryReport::default() };
        while let Err(violation) = self.controller.verify_integrity() {
            recovery.integrity_violations += 1;
            if recovery.reload_attempts >= policy.max_reload_attempts {
                debug_assert!(matches!(violation, CoreError::IntegrityViolation { .. }));
                return Err(CoreError::RecoveryFailed {
                    attempts: recovery.reload_attempts,
                });
            }
            recovery.reload_attempts += 1;
            recovery.recovery_scan_cycles += self.controller.scan_reload();
        }
        let report = self.session(Some(mem), None, None, Some(budget))?;
        Ok((report, recovery))
    }

    /// Runs a full session while recording architectural signals into
    /// `trace` (instruction counter / FSM state / address / done).
    ///
    /// # Panics
    ///
    /// See [`BistUnit::run`].
    pub fn run_traced(
        &mut self,
        mem: &mut MemoryArray,
        trace: &mut Trace,
    ) -> SessionReport {
        self.run_inner(Some(mem), Some(trace))
    }

    /// Dry-runs the controller with no memory attached, emitting the
    /// operation stream it *would* drive — the stream compared against
    /// [`mbist_march::expand`] in the equivalence proofs.
    ///
    /// # Panics
    ///
    /// See [`BistUnit::run`].
    pub fn emit_steps(&mut self) -> Vec<TestStep> {
        let mut steps = Vec::new();
        let _ = self.session(None, None, Some(&mut steps), None);
        steps
    }

    fn run_inner(
        &mut self,
        mem: Option<&mut MemoryArray>,
        trace: Option<&mut Trace>,
    ) -> SessionReport {
        match self.session(mem, trace, None, None) {
            Ok(report) => report,
            // Unreachable: with no budget the safety valve panics instead.
            Err(e) => unreachable!("unbounded session cannot fail: {e}"),
        }
    }

    fn session(
        &mut self,
        mut mem: Option<&mut MemoryArray>,
        mut trace: Option<&mut Trace>,
        mut steps_out: Option<&mut Vec<TestStep>>,
        budget: Option<u64>,
    ) -> Result<SessionReport, CoreError> {
        self.controller.reset();
        self.datapath.reset();

        let g = self.datapath.geometry();
        let max_cycles = budget.unwrap_or_else(|| self.default_cycle_budget());

        let mut fail_log = FailLog::new();
        let mut cycles: u64 = 0;
        let mut bus_cycles: u64 = 0;
        let mut pause_ns: f64 = 0.0;

        let trace_ids = trace.as_deref_mut().map(|t| {
            (
                t.declare("addr", g.addr_bits()),
                t.declare("read", 1),
                t.declare("write", 1),
                t.declare("done", 1),
            )
        });

        while !self.controller.is_done() {
            if cycles >= max_cycles {
                if budget.is_some() {
                    return Err(CoreError::CycleBudgetExceeded {
                        budget: max_cycles,
                        architecture: self.controller.architecture(),
                        algorithm: self.controller.algorithm().to_string(),
                    });
                }
                panic!(
                    "{} controller hung after {cycles} cycles running {}",
                    self.controller.architecture(),
                    self.controller.algorithm()
                );
            }
            let signals = self.controller.step(&self.datapath);
            cycles += 1;

            if signals.has_access() {
                let addr = self.datapath.addr_for(signals.addr_order);
                let port = self.datapath.port();
                bus_cycles += 1;
                if signals.write_en {
                    let data = self.datapath.data_word(signals.data_invert);
                    if let Some(m) = mem.as_deref_mut() {
                        m.write(port, addr, data);
                    }
                    if let Some(out) = steps_out.as_deref_mut() {
                        out.push(TestStep::Bus(BusCycle::write(port, addr, data)));
                    }
                } else {
                    let expected: Option<Bits> = signals
                        .compare_en
                        .then(|| self.datapath.data_word(signals.compare_invert));
                    if let Some(m) = mem.as_deref_mut() {
                        let observed = m.read(port, addr);
                        if let Some(exp) = expected {
                            if observed != exp {
                                fail_log.record(
                                    cycles,
                                    Miscompare { port, addr, expected: exp, observed },
                                );
                            }
                        }
                    }
                    if let Some(out) = steps_out.as_deref_mut() {
                        out.push(TestStep::Bus(match expected {
                            Some(exp) => BusCycle::read(port, addr, exp),
                            None => BusCycle::read_unchecked(port, addr),
                        }));
                    }
                }
                if let (Some(t), Some((addr_id, r_id, w_id, _))) =
                    (trace.as_deref_mut(), trace_ids)
                {
                    t.record(cycles, addr_id, Bits::new(g.addr_bits(), addr));
                    t.record(cycles, r_id, Bits::bit1(signals.read_en));
                    t.record(cycles, w_id, Bits::bit1(signals.write_en));
                }
            } else if let (Some(t), Some((_, r_id, w_id, _))) =
                (trace.as_deref_mut(), trace_ids)
            {
                t.record(cycles, r_id, Bits::bit1(false));
                t.record(cycles, w_id, Bits::bit1(false));
            }

            if let Some(ns) = signals.pause_ns {
                pause_ns += ns;
                if let Some(m) = mem.as_deref_mut() {
                    m.pause(ns);
                }
                if let Some(out) = steps_out.as_deref_mut() {
                    out.push(TestStep::Pause { ns });
                }
            }

            self.datapath.apply(&signals);

            if let (Some(t), Some((_, _, _, done_id))) = (trace.as_deref_mut(), trace_ids) {
                t.record(cycles, done_id, Bits::bit1(signals.done));
            }
        }

        Ok(SessionReport {
            architecture: self.controller.architecture(),
            algorithm: self.controller.algorithm().to_string(),
            cycles,
            bus_cycles,
            pause_ns,
            fail_log,
        })
    }

    /// Structural inventory of the whole unit (controller + datapath).
    #[must_use]
    pub fn structure(&self) -> Structure {
        Structure::named(format!("{}_bist_unit", self.controller.architecture()))
            .with_child(self.controller.structure())
            .with_child(self.datapath.structure())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::microcode::MicrocodeBist;
    use crate::progfsm::ProgFsmBist;
    use mbist_march::library;
    use mbist_mem::MemGeometry;

    #[test]
    fn bounded_run_matches_unbounded_on_clean_programs() {
        let g = MemGeometry::bit_oriented(16);
        let mut unit = MicrocodeBist::for_test(&library::march_c(), &g).unwrap();
        let budget = unit.default_cycle_budget();
        let bounded = unit.run_bounded(&mut MemoryArray::new(g), budget).unwrap();
        let unbounded = unit.run(&mut MemoryArray::new(g));
        assert_eq!(bounded, unbounded);
    }

    #[test]
    fn starved_budget_reports_cycle_budget_exceeded() {
        let g = MemGeometry::bit_oriented(16);
        let mut unit = MicrocodeBist::for_test(&library::march_c(), &g).unwrap();
        let err = unit.run_bounded(&mut MemoryArray::new(g), 10).unwrap_err();
        assert!(matches!(err, CoreError::CycleBudgetExceeded { budget: 10, .. }), "{err}");
    }

    #[test]
    fn corrupted_branch_word_trips_the_watchdog_instead_of_hanging() {
        let g = MemGeometry::bit_oriented(8);
        let mut unit = MicrocodeBist::for_test(&library::march_c(), &g).unwrap();
        // March C's instruction 0 is `w0 inc loop`; clearing its addr_inc
        // bit (storage cell 9) leaves an element loop that never advances
        // the address — the classic unbounded-loop corruption.
        unit.controller_mut().inject_upset(9);
        let budget = unit.default_cycle_budget();
        let err = unit.run_bounded(&mut MemoryArray::new(g), budget).unwrap_err();
        assert!(matches!(err, CoreError::CycleBudgetExceeded { .. }), "{err}");
    }

    #[test]
    fn protected_run_recovers_from_an_upset_and_matches_the_clean_report() {
        let g = MemGeometry::bit_oriented(8);
        let mut unit = MicrocodeBist::for_test(&library::march_c(), &g).unwrap();
        let clean = unit.run(&mut MemoryArray::new(g));

        unit.controller_mut().inject_upset(9);
        let (report, recovery) = unit
            .run_protected(&mut MemoryArray::new(g), &RecoveryPolicy::default())
            .unwrap();
        assert_eq!(report, clean, "recovered run is indistinguishable");
        assert!(recovery.recovered());
        assert_eq!(recovery.integrity_violations, 1);
        assert_eq!(recovery.reload_attempts, 1);
        assert_eq!(
            recovery.recovery_scan_cycles,
            unit.controller().config().capacity as u64 * 10,
            "one full-chain reload"
        );
    }

    #[test]
    fn protected_run_on_a_clean_store_reports_no_recovery() {
        let g = MemGeometry::bit_oriented(4);
        let mut unit = ProgFsmBist::for_test(&library::mats_plus(), &g).unwrap();
        let (report, recovery) = unit
            .run_protected(&mut MemoryArray::new(g), &RecoveryPolicy::default())
            .unwrap();
        assert!(report.passed());
        assert!(!recovery.recovered());
        assert_eq!(recovery.cycle_budget, unit.default_cycle_budget());
    }

    #[test]
    fn exhausted_retry_bound_reports_recovery_failed() {
        let g = MemGeometry::bit_oriented(4);
        let mut unit = ProgFsmBist::for_test(&library::mats_plus(), &g).unwrap();
        unit.controller_mut().inject_upset(0);
        let policy = RecoveryPolicy { max_reload_attempts: 0, ..RecoveryPolicy::default() };
        let err = unit.run_protected(&mut MemoryArray::new(g), &policy).unwrap_err();
        assert!(matches!(err, CoreError::RecoveryFailed { attempts: 0 }), "{err}");
    }
}
