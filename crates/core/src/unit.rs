//! The memory BIST unit: controller + datapath + comparator + fail log.

use mbist_mem::{BusCycle, MemoryArray, Miscompare, TestStep};
use mbist_rtl::{Bits, Structure, Trace};

use crate::controller::BistController;
use crate::datapath::BistDatapath;
use crate::diag::FailLog;

/// Safety valve: a controller that has not finished after this many cycles
/// per memory cell (per background, per port) is considered hung.
const MAX_CYCLES_PER_OP: u64 = 64;

/// Outcome of a BIST session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionReport {
    /// Controller architecture.
    pub architecture: &'static str,
    /// Algorithm name.
    pub algorithm: String,
    /// Total controller clock cycles (including flow-control overhead).
    pub cycles: u64,
    /// Memory accesses driven.
    pub bus_cycles: u64,
    /// Total pause time in nanoseconds.
    pub pause_ns: f64,
    /// Every miscompare, in occurrence order.
    pub fail_log: FailLog,
}

impl SessionReport {
    /// Whether the memory passed.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.fail_log.is_empty()
    }

    /// Controller overhead: cycles that did not drive a memory access.
    #[must_use]
    pub fn overhead_cycles(&self) -> u64 {
        self.cycles - self.bus_cycles
    }
}

/// A complete memory BIST unit wrapping a controller and the shared
/// datapath.
///
/// # Examples
///
/// ```
/// use mbist_core::{microcode::MicrocodeBist, BistUnit};
/// use mbist_march::library;
/// use mbist_mem::{MemGeometry, MemoryArray};
///
/// let g = MemGeometry::bit_oriented(64);
/// let mut unit = MicrocodeBist::for_test(&library::march_c(), &g)?;
/// let mut mem = MemoryArray::new(g);
/// let report = unit.run(&mut mem);
/// assert!(report.passed());
/// assert_eq!(report.bus_cycles, 10 * 64);
/// # Ok::<(), mbist_core::CoreError>(())
/// ```
#[derive(Debug)]
pub struct BistUnit<C> {
    controller: C,
    datapath: BistDatapath,
}

impl<C: BistController> BistUnit<C> {
    /// Assembles a unit from a controller and datapath.
    #[must_use]
    pub fn new(controller: C, datapath: BistDatapath) -> Self {
        Self { controller, datapath }
    }

    /// The controller.
    #[must_use]
    pub fn controller(&self) -> &C {
        &self.controller
    }

    /// The datapath.
    #[must_use]
    pub fn datapath(&self) -> &BistDatapath {
        &self.datapath
    }

    /// Runs a full session against `mem`, returning the report.
    ///
    /// # Panics
    ///
    /// Panics if the controller exceeds the hang safety valve — that would
    /// be a controller model bug, not a memory fault.
    pub fn run(&mut self, mem: &mut MemoryArray) -> SessionReport {
        self.run_inner(Some(mem), None)
    }

    /// Runs a full session while recording architectural signals into
    /// `trace` (instruction counter / FSM state / address / done).
    ///
    /// # Panics
    ///
    /// See [`BistUnit::run`].
    pub fn run_traced(&mut self, mem: &mut MemoryArray, trace: &mut Trace) -> SessionReport {
        self.run_inner(Some(mem), Some(trace))
    }

    /// Dry-runs the controller with no memory attached, emitting the
    /// operation stream it *would* drive — the stream compared against
    /// [`mbist_march::expand`] in the equivalence proofs.
    ///
    /// # Panics
    ///
    /// See [`BistUnit::run`].
    pub fn emit_steps(&mut self) -> Vec<TestStep> {
        let mut steps = Vec::new();
        self.session(None, None, Some(&mut steps));
        steps
    }

    fn run_inner(
        &mut self,
        mem: Option<&mut MemoryArray>,
        trace: Option<&mut Trace>,
    ) -> SessionReport {
        self.session(mem, trace, None)
    }

    fn session(
        &mut self,
        mut mem: Option<&mut MemoryArray>,
        mut trace: Option<&mut Trace>,
        mut steps_out: Option<&mut Vec<TestStep>>,
    ) -> SessionReport {
        self.controller.reset();
        self.datapath.reset();

        let g = self.datapath.geometry();
        let max_cycles = MAX_CYCLES_PER_OP
            * g.words().max(1)
            * self.datapath.backgrounds().len() as u64
            * u64::from(g.ports())
            + 1024;

        let mut fail_log = FailLog::new();
        let mut cycles: u64 = 0;
        let mut bus_cycles: u64 = 0;
        let mut pause_ns: f64 = 0.0;

        let trace_ids = trace.as_deref_mut().map(|t| {
            (
                t.declare("addr", g.addr_bits()),
                t.declare("read", 1),
                t.declare("write", 1),
                t.declare("done", 1),
            )
        });

        while !self.controller.is_done() {
            assert!(
                cycles < max_cycles,
                "{} controller hung after {cycles} cycles running {}",
                self.controller.architecture(),
                self.controller.algorithm()
            );
            let signals = self.controller.step(&self.datapath);
            cycles += 1;

            if signals.has_access() {
                let addr = self.datapath.addr_for(signals.addr_order);
                let port = self.datapath.port();
                bus_cycles += 1;
                if signals.write_en {
                    let data = self.datapath.data_word(signals.data_invert);
                    if let Some(m) = mem.as_deref_mut() {
                        m.write(port, addr, data);
                    }
                    if let Some(out) = steps_out.as_deref_mut() {
                        out.push(TestStep::Bus(BusCycle::write(port, addr, data)));
                    }
                } else {
                    let expected: Option<Bits> = signals
                        .compare_en
                        .then(|| self.datapath.data_word(signals.compare_invert));
                    if let Some(m) = mem.as_deref_mut() {
                        let observed = m.read(port, addr);
                        if let Some(exp) = expected {
                            if observed != exp {
                                fail_log.record(
                                    cycles,
                                    Miscompare { port, addr, expected: exp, observed },
                                );
                            }
                        }
                    }
                    if let Some(out) = steps_out.as_deref_mut() {
                        out.push(TestStep::Bus(match expected {
                            Some(exp) => BusCycle::read(port, addr, exp),
                            None => BusCycle::read_unchecked(port, addr),
                        }));
                    }
                }
                if let (Some(t), Some((addr_id, r_id, w_id, _))) =
                    (trace.as_deref_mut(), trace_ids)
                {
                    t.record(cycles, addr_id, Bits::new(g.addr_bits(), addr));
                    t.record(cycles, r_id, Bits::bit1(signals.read_en));
                    t.record(cycles, w_id, Bits::bit1(signals.write_en));
                }
            } else if let (Some(t), Some((_, r_id, w_id, _))) =
                (trace.as_deref_mut(), trace_ids)
            {
                t.record(cycles, r_id, Bits::bit1(false));
                t.record(cycles, w_id, Bits::bit1(false));
            }

            if let Some(ns) = signals.pause_ns {
                pause_ns += ns;
                if let Some(m) = mem.as_deref_mut() {
                    m.pause(ns);
                }
                if let Some(out) = steps_out.as_deref_mut() {
                    out.push(TestStep::Pause { ns });
                }
            }

            self.datapath.apply(&signals);

            if let (Some(t), Some((_, _, _, done_id))) = (trace.as_deref_mut(), trace_ids) {
                t.record(cycles, done_id, Bits::bit1(signals.done));
            }
        }

        SessionReport {
            architecture: self.controller.architecture(),
            algorithm: self.controller.algorithm().to_string(),
            cycles,
            bus_cycles,
            pause_ns,
            fail_log,
        }
    }

    /// Structural inventory of the whole unit (controller + datapath).
    #[must_use]
    pub fn structure(&self) -> Structure {
        Structure::named(format!("{}_bist_unit", self.controller.architecture()))
            .with_child(self.controller.structure())
            .with_child(self.datapath.structure())
    }
}
