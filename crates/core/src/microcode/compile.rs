//! Compiling march tests into microcode programs.
//!
//! The compiler exploits the architecture's `Repeat` mechanism: when
//! [`MarchTest::symmetric_split`] finds that the test is an initialization
//! instruction followed by two complement-related halves, only the first
//! half is emitted plus a single `Repeat` instruction carrying the
//! complement mask — producing the paper's 9-instruction March C.
//! Non-symmetric tests (March B, the `++` variants) are emitted unrolled;
//! the architecture still expresses them, just in more storage — exactly
//! the flexibility-versus-size trade the paper quantifies.

use mbist_march::{MarchElement, MarchItem, MarchTest};

use crate::error::CoreError;
use crate::microcode::isa::{FlowOp, Microinstruction};

/// Compiles a march test into a microcode program (without loading it).
///
/// # Errors
///
/// Returns [`CoreError::NotExpressible`] if the test uses pauses of
/// different durations (the architecture has a single scan-loadable pause
/// register).
///
/// # Examples
///
/// ```
/// use mbist_core::microcode::compile;
/// use mbist_march::library;
///
/// assert_eq!(compile(&library::march_c())?.len(), 9);
/// assert_eq!(compile(&library::march_a())?.len(), 11);
/// // March B is not symmetric: fully unrolled
/// assert_eq!(compile(&library::march_b())?.len(), 19);
/// # Ok::<(), mbist_core::CoreError>(())
/// ```
pub fn compile(test: &MarchTest) -> Result<Vec<Microinstruction>, CoreError> {
    let _ = pause_duration(test)?; // validate pause uniformity up front
    let items = test.items();
    let mut prog = Vec::new();

    let split = test.symmetric_split().filter(|s| {
        // `Repeat` branches to instruction 1, so the prefix must compile to
        // exactly one instruction: a single write-only op.
        s.prefix_len == 1 && items[0].as_element().is_some_and(|e| e.ops().len() == 1)
    });

    match split {
        Some(split) => {
            compile_items(&items[..1], &mut prog);
            compile_items(&items[1..1 + split.half_len], &mut prog);
            prog.push(Microinstruction {
                addr_down: split.mask.order,
                data_invert: split.mask.data,
                cmp_invert: split.mask.compare,
                flow: FlowOp::Repeat,
                ..Microinstruction::nop()
            });
            compile_items(&items[1 + 2 * split.half_len..], &mut prog);
        }
        None => compile_items(items, &mut prog),
    }

    prog.push(Microinstruction {
        bg_inc: true,
        flow: FlowOp::LoopBg,
        ..Microinstruction::nop()
    });
    prog.push(Microinstruction { flow: FlowOp::LoopPort, ..Microinstruction::nop() });
    Ok(prog)
}

/// The (single) pause duration used by the test's `Hold` instructions.
///
/// # Errors
///
/// Returns [`CoreError::NotExpressible`] if the test mixes pause
/// durations.
pub fn pause_duration(test: &MarchTest) -> Result<Option<f64>, CoreError> {
    let mut duration: Option<f64> = None;
    for item in test.items() {
        if let MarchItem::Pause { ns } = item {
            match duration {
                None => duration = Some(*ns),
                Some(d) if d == *ns => {}
                Some(d) => {
                    return Err(CoreError::NotExpressible {
                        architecture: "microcode",
                        message: format!(
                            "mixed pause durations {d}ns and {ns}ns exceed the single \
                             pause register"
                        ),
                    })
                }
            }
        }
    }
    Ok(duration)
}

fn compile_items(items: &[MarchItem], prog: &mut Vec<Microinstruction>) {
    for item in items {
        match item {
            MarchItem::Pause { .. } => {
                prog.push(Microinstruction {
                    flow: FlowOp::Hold,
                    ..Microinstruction::nop()
                });
            }
            MarchItem::Element(e) => compile_element(e, prog),
        }
    }
}

fn compile_element(e: &MarchElement, prog: &mut Vec<Microinstruction>) {
    let down = e.order() == mbist_march::AddressOrder::Down;
    let last = e.ops().len() - 1;
    for (k, op) in e.ops().iter().enumerate() {
        prog.push(Microinstruction {
            read: op.is_read(),
            write: op.is_write(),
            cmp_invert: op.is_read() && op.data(),
            data_invert: op.is_write() && op.data(),
            addr_down: down,
            addr_inc: k == last,
            flow: if k == last { FlowOp::LoopElem } else { FlowOp::Next },
            ..Microinstruction::nop()
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbist_march::library;

    #[test]
    fn march_c_compiles_to_nine_instructions_as_in_fig_2() {
        let p = compile(&library::march_c()).unwrap();
        assert_eq!(p.len(), 9);
        // Instruction 5 (0-indexed) is the Repeat with order-only mask.
        let rep = p[5];
        assert_eq!(rep.flow, FlowOp::Repeat);
        assert!(rep.addr_down);
        assert!(!rep.data_invert);
        assert!(!rep.cmp_invert);
        // Last two instructions support word-oriented and multiport
        // memories, as the paper notes.
        assert_eq!(p[7].flow, FlowOp::LoopBg);
        assert_eq!(p[8].flow, FlowOp::LoopPort);
    }

    #[test]
    fn march_a_repeat_uses_full_complement_mask() {
        let p = compile(&library::march_a()).unwrap();
        // 1 init + 7 half ops (4+3) + repeat + 2 loops = 11
        assert_eq!(p.len(), 11);
        let rep = p[8];
        assert_eq!(rep.flow, FlowOp::Repeat);
        assert!(rep.addr_down && rep.data_invert && rep.cmp_invert);
    }

    #[test]
    fn non_symmetric_march_b_unrolls() {
        let p = compile(&library::march_b()).unwrap();
        // 17 ops + LoopBg + LoopPort, no Repeat
        assert_eq!(p.len(), 19);
        assert!(p.iter().all(|i| i.flow != FlowOp::Repeat));
    }

    #[test]
    fn retention_variant_emits_holds() {
        let p = compile(&library::march_c_plus()).unwrap();
        let holds = p.iter().filter(|i| i.flow == FlowOp::Hold).count();
        assert_eq!(holds, 2);
        assert_eq!(
            pause_duration(&library::march_c_plus()).unwrap(),
            Some(library::DEFAULT_RETENTION_PAUSE_NS)
        );
    }

    #[test]
    fn mixed_pause_durations_are_rejected() {
        let t =
            MarchTest::parse("mixed", "m(w0); pause(1ms); m(r0,w1,r1); pause(2ms); m(r1)")
                .unwrap();
        assert!(matches!(
            compile(&t),
            Err(CoreError::NotExpressible { architecture: "microcode", .. })
        ));
    }

    #[test]
    fn mats_plus_is_symmetric_and_compresses() {
        // m(w0); u(r0,w1); d(r1,w0): the down half is the full complement
        // of the up half → init + 2 ops + repeat + 2 loops.
        let p = compile(&library::mats_plus()).unwrap();
        assert_eq!(p.len(), 6);
        assert!(p[0].addr_inc && p[0].flow == FlowOp::LoopElem);
        assert!(!p[1].addr_inc && p[1].flow == FlowOp::Next);
        assert!(p[2].addr_inc && p[2].flow == FlowOp::LoopElem);
        let rep = p[3];
        assert_eq!(rep.flow, FlowOp::Repeat);
        assert!(rep.addr_down && rep.data_invert && rep.cmp_invert);
    }

    #[test]
    fn element_encoding_sets_inc_on_last_op_only() {
        // March Y is symmetric too; check the element encoding on the
        // unrolled March B instead.
        let p = compile(&library::march_b()).unwrap();
        // first element m(w0) → instruction 0
        assert!(p[0].write && p[0].addr_inc && p[0].flow == FlowOp::LoopElem);
        // second element ⇑(r0,w1,r1,w0,r0,w1) → instructions 1..7
        for (k, inst) in p.iter().enumerate().take(6).skip(1) {
            assert_eq!(inst.flow, FlowOp::Next, "mid-element op {k}");
            assert!(!inst.addr_inc);
        }
        assert_eq!(p[6].flow, FlowOp::LoopElem);
        assert!(p[6].addr_inc);
    }

    use mbist_march::MarchTest;
}
