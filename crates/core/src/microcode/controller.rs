//! The microcode-based memory BIST controller (paper Fig. 1).
//!
//! Components, exactly as in the figure: the Z×10 *storage unit*, the
//! `log2(Z)+1`-bit *instruction counter*, the *instruction selector* (a
//! Z×10:10 mux), the *branch register*, the *instruction decoder* and the
//! 4-bit *reference register* (repeat bit + auxiliary address order, data
//! and compare polarities).

use mbist_rtl::{CellStyle, Direction, Primitive, Structure};

use crate::controller::{BistController, Flexibility, ScanRecoverable};
use crate::datapath::BistDatapath;
use crate::error::CoreError;
use crate::integrity::Signature;
use crate::microcode::isa::{FlowOp, Microinstruction, INSTRUCTION_BITS};
use crate::microcode::storage::StorageUnit;
use crate::signals::ControlSignals;
use crate::validate::validate_microcode;

/// Configuration of a microcode-based controller instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MicrocodeConfig {
    /// Storage-unit capacity in instructions (the paper's `Z`).
    pub capacity: usize,
    /// Pause duration of the `Hold` instruction, in nanoseconds (a
    /// scan-loadable pause register in hardware).
    pub pause_ns: f64,
    /// Storage-cell style — [`CellStyle::FullScan`] for the baseline
    /// controller of Table 1, [`CellStyle::ScanOnly`] for the redesigned
    /// controller of Table 3.
    pub cell_style: CellStyle,
}

impl Default for MicrocodeConfig {
    fn default() -> Self {
        Self { capacity: 16, pause_ns: 100_000.0, cell_style: CellStyle::FullScan }
    }
}

/// The 4-bit reference register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct ReferenceRegister {
    repeat: bool,
    aux_order: bool,
    aux_data: bool,
    aux_cmp: bool,
}

/// The microcode-based memory BIST controller.
///
/// # Examples
///
/// ```
/// use mbist_core::microcode::{compile, MicrocodeConfig, MicrocodeController};
/// use mbist_core::BistController;
/// use mbist_march::library;
///
/// let program = compile(&library::march_c())?;
/// assert_eq!(program.len(), 9); // the paper's 9-instruction March C
/// let ctrl = MicrocodeController::new(
///     "march-c",
///     &program,
///     MicrocodeConfig::default(),
/// )?;
/// assert_eq!(ctrl.algorithm(), "march-c");
/// # Ok::<(), mbist_core::CoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MicrocodeController {
    algorithm: String,
    config: MicrocodeConfig,
    storage: StorageUnit,
    /// Decoded view of the storage unit (refreshed on every load and on
    /// every injected upset).
    program: Vec<Microinstruction>,
    /// Last known-good program, kept off-chip (the tester's copy) for
    /// scan-reload recovery.
    golden: Vec<Microinstruction>,
    /// Store signature recorded when `golden` was scan-loaded.
    loaded_signature: Signature,
    /// Instruction counter.
    pc: usize,
    /// Branch register: first instruction of the current march element
    /// (maintained by the Save-Current-Address automation).
    branch_reg: usize,
    reference: ReferenceRegister,
    done: bool,
}

impl MicrocodeController {
    /// Builds a controller and scan-loads `program`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ProgramTooLarge`] if the program exceeds
    /// `config.capacity`, [`CoreError::Decode`] if it contains an
    /// undecodable word, or [`CoreError::InvalidProgram`] if it fails
    /// static validation (see [`crate::validate::validate_microcode`]).
    pub fn new(
        algorithm: impl Into<String>,
        program: &[Microinstruction],
        config: MicrocodeConfig,
    ) -> Result<Self, CoreError> {
        validate_microcode(program)?;
        let mut storage = StorageUnit::new(config.capacity, config.cell_style);
        storage.load(program)?;
        let decoded = storage.program()?;
        let loaded_signature = storage.signature();
        Ok(Self {
            algorithm: algorithm.into(),
            config,
            storage,
            golden: decoded.clone(),
            loaded_signature,
            program: decoded,
            pc: 0,
            branch_reg: 0,
            reference: ReferenceRegister::default(),
            done: false,
        })
    }

    /// Scan-loads a new program *without any hardware change* — the
    /// defining capability of the architecture. Returns the scan clocks
    /// consumed.
    ///
    /// # Errors
    ///
    /// See [`MicrocodeController::new`].
    pub fn load_program(
        &mut self,
        algorithm: impl Into<String>,
        program: &[Microinstruction],
    ) -> Result<u64, CoreError> {
        validate_microcode(program)?;
        let cycles = self.storage.load(program)?;
        self.program = self.storage.program()?;
        self.golden = self.program.clone();
        self.loaded_signature = self.storage.signature();
        self.algorithm = algorithm.into();
        self.reset();
        Ok(cycles)
    }

    /// The loaded program (decoded view of the storage unit).
    #[must_use]
    pub fn program(&self) -> &[Microinstruction] {
        &self.program
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &MicrocodeConfig {
        &self.config
    }

    /// Total scan clocks spent on program loads.
    #[must_use]
    pub fn scan_cycles(&self) -> u64 {
        self.storage.scan_cycles()
    }

    /// Current instruction counter value (for traces and tests).
    #[must_use]
    pub fn pc(&self) -> usize {
        self.pc
    }

    /// Sets the instruction counter and the branch register (a control
    /// transfer to the start of a new march element).
    fn goto(&mut self, target: usize) {
        self.pc = target;
        self.branch_reg = target;
    }
}

impl ScanRecoverable for MicrocodeController {
    fn store_bits(&self) -> usize {
        self.storage.bit_len()
    }

    fn inject_upset(&mut self, bit: usize) {
        self.storage.flip_cell(bit);
        // The instruction selector reads whatever the store now holds;
        // undecodable words resolve through the fail-safe decoder. The
        // upset is *not* validated — detecting it is the signature's job,
        // containing it is the watchdog's.
        self.program = self.storage.program_failsafe();
    }

    fn loaded_signature(&self) -> Signature {
        self.loaded_signature
    }

    fn store_signature(&self) -> Signature {
        self.storage.signature()
    }

    fn scan_reload(&mut self) -> u64 {
        let golden = std::mem::take(&mut self.golden);
        let cycles = self
            .storage
            .load(&golden)
            .expect("golden program was loaded before and still fits");
        self.golden = golden;
        self.program = self.golden.clone();
        self.loaded_signature = self.storage.signature();
        self.reset();
        cycles
    }
}

impl BistController for MicrocodeController {
    fn architecture(&self) -> &'static str {
        "microcode"
    }

    fn algorithm(&self) -> &str {
        &self.algorithm
    }

    fn flexibility(&self) -> Flexibility {
        Flexibility::High
    }

    fn reset(&mut self) {
        self.pc = 0;
        self.branch_reg = 0;
        self.reference = ReferenceRegister::default();
        self.done = false;
    }

    fn is_done(&self) -> bool {
        self.done
    }

    fn step(&mut self, datapath: &BistDatapath) -> ControlSignals {
        if self.done || self.pc >= self.program.len() {
            // Exhausting the instruction addresses sets the instruction
            // counter's end bit (paper: "the last bit of the instruction
            // counter specifies the end of the test").
            self.done = true;
            return ControlSignals { done: true, ..ControlSignals::idle() };
        }
        let inst = self.program[self.pc];
        let down = inst.addr_down ^ self.reference.aux_order;
        let dir = if down { Direction::Down } else { Direction::Up };
        let status = datapath.status(dir);

        let mut sig = ControlSignals { addr_order: dir, ..ControlSignals::idle() };
        if inst.read {
            sig.read_en = true;
            sig.compare_en = true;
            sig.compare_invert = inst.cmp_invert ^ self.reference.aux_cmp;
        } else if inst.write {
            sig.write_en = true;
            sig.data_invert = inst.data_invert ^ self.reference.aux_data;
        }

        match inst.flow {
            FlowOp::Next => {
                sig.addr_inc = inst.addr_inc;
                self.pc += 1;
            }
            FlowOp::LoopElem => {
                if status.last_address {
                    sig.addr_reset = true;
                    self.goto(self.pc + 1);
                } else {
                    sig.addr_inc = inst.addr_inc;
                    self.pc = self.branch_reg;
                }
            }
            FlowOp::Repeat => {
                if self.reference.repeat {
                    // Second execution: a no-operation that clears the
                    // reference register.
                    self.reference = ReferenceRegister::default();
                    self.goto(self.pc + 1);
                } else {
                    self.reference = ReferenceRegister {
                        repeat: true,
                        aux_order: inst.addr_down,
                        aux_data: inst.data_invert,
                        aux_cmp: inst.cmp_invert,
                    };
                    self.goto(1);
                }
            }
            FlowOp::LoopBg => {
                if status.last_background {
                    sig.bg_reset = true;
                    self.goto(self.pc + 1);
                } else {
                    sig.bg_inc = true;
                    self.goto(0);
                }
            }
            FlowOp::LoopPort => {
                if status.last_port {
                    sig.done = true;
                    self.done = true;
                } else {
                    sig.port_inc = true;
                    self.goto(0);
                }
            }
            FlowOp::Hold => {
                sig.pause_ns = Some(self.config.pause_ns);
                self.goto(self.pc + 1);
            }
            FlowOp::SaveAddr => {
                self.branch_reg = self.pc + 1;
                self.pc += 1;
            }
            FlowOp::Terminate => {
                sig.done = true;
                self.done = true;
            }
        }
        sig
    }

    fn structure(&self) -> Structure {
        let z = self.config.capacity as u32;
        let pc_bits = (usize::BITS - (self.config.capacity - 1).leading_zeros()).max(1) + 1;
        let br_bits = pc_bits - 1;
        let width = u32::from(INSTRUCTION_BITS);
        Structure::named("microcode_controller")
            .with_child(self.storage.structure())
            .with_child(
                Structure::leaf("instruction_counter")
                    .with(Primitive::Dff, pc_bits)
                    .with(Primitive::Xor2, pc_bits)
                    .with(Primitive::Nand2, pc_bits)
                    .with(Primitive::Mux2, pc_bits),
            )
            .with_child(
                // Z×10:10 selector as a mux tree.
                Structure::leaf("instruction_selector")
                    .with(Primitive::Mux2, width * z.saturating_sub(1)),
            )
            .with_child(Structure::leaf("branch_register").with(Primitive::Dff, br_bits))
            .with_child(
                Structure::leaf("reference_register")
                    .with(Primitive::Dff, 4)
                    .with(Primitive::Xor2, 3),
            )
            .with_child(
                // Fixed flow-control decode logic (3-bit field, condition
                // selection, counter steering).
                Structure::leaf("instruction_decoder")
                    .with(Primitive::Nand2, 42)
                    .with(Primitive::Inv, 12),
            )
            .with_child(
                // Pause timer for the Hold instruction.
                Structure::leaf("pause_timer")
                    .with(Primitive::Dff, 20)
                    .with(Primitive::Nand2, 24),
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::microcode::compile;
    use crate::unit::BistUnit;
    use mbist_march::{expand, library, standard_backgrounds};
    use mbist_mem::{MemGeometry, MemoryArray};

    fn unit_for(
        test: &mbist_march::MarchTest,
        g: MemGeometry,
    ) -> BistUnit<MicrocodeController> {
        let program = compile(test).unwrap();
        let config = MicrocodeConfig {
            capacity: program.len().max(16),
            ..MicrocodeConfig::default()
        };
        let ctrl = MicrocodeController::new(test.name(), &program, config).unwrap();
        let dp = crate::datapath::BistDatapath::new(g, standard_backgrounds(g.width()));
        BistUnit::new(ctrl, dp)
    }

    #[test]
    fn march_c_stream_matches_reference() {
        let g = MemGeometry::bit_oriented(4);
        let mut unit = unit_for(&library::march_c(), g);
        let steps = unit.emit_steps();
        let reference = expand(&library::march_c(), &g);
        assert_eq!(steps, reference);
    }

    #[test]
    fn march_a_stream_matches_reference_full_complement() {
        let g = MemGeometry::bit_oriented(4);
        let mut unit = unit_for(&library::march_a(), g);
        assert_eq!(unit.emit_steps(), expand(&library::march_a(), &g));
    }

    #[test]
    fn flow_overhead_is_small() {
        let g = MemGeometry::bit_oriented(16);
        let mut unit = unit_for(&library::march_c(), g);
        let mut mem = MemoryArray::new(g);
        let report = unit.run(&mut mem);
        assert_eq!(report.bus_cycles, 160);
        // overhead: 2 × Repeat + LoopBg + LoopPort
        assert_eq!(report.overhead_cycles(), 4);
    }

    #[test]
    fn reload_changes_algorithm_without_hardware_change() {
        let g = MemGeometry::bit_oriented(8);
        let mut unit = unit_for(&library::march_c(), g);
        let mut mem = MemoryArray::new(g);
        assert!(unit.run(&mut mem).passed());

        // Hot-load MATS+ into the same hardware.
        let p2 = compile(&library::mats_plus()).unwrap();
        // (fields on the unit are private; rebuild the controller in place)
        let steps_before = unit.controller().scan_cycles();
        let mut ctrl = unit.controller().clone();
        ctrl.load_program("mats+", &p2).unwrap();
        assert!(ctrl.scan_cycles() > steps_before);
        let dp = crate::datapath::BistDatapath::new(g, standard_backgrounds(1));
        let mut unit2 = BistUnit::new(ctrl, dp);
        assert_eq!(unit2.emit_steps(), expand(&library::mats_plus(), &g));
    }

    #[test]
    fn done_after_terminate_stays_done() {
        let prog =
            vec![Microinstruction { flow: FlowOp::Terminate, ..Microinstruction::nop() }];
        let mut ctrl =
            MicrocodeController::new("end", &prog, MicrocodeConfig::default()).unwrap();
        let dp = crate::datapath::BistDatapath::new(
            MemGeometry::bit_oriented(2),
            standard_backgrounds(1),
        );
        let s = ctrl.step(&dp);
        assert!(s.done);
        assert!(ctrl.is_done());
        let s2 = ctrl.step(&dp);
        assert!(s2.done);
    }

    #[test]
    fn falling_off_the_program_terminates() {
        let prog = vec![Microinstruction { read: true, ..Microinstruction::nop() }];
        let mut ctrl =
            MicrocodeController::new("fall", &prog, MicrocodeConfig::default()).unwrap();
        let dp = crate::datapath::BistDatapath::new(
            MemGeometry::bit_oriented(2),
            standard_backgrounds(1),
        );
        let _ = ctrl.step(&dp);
        let s = ctrl.step(&dp);
        assert!(s.done, "instruction-address exhaustion ends the test");
    }

    #[test]
    fn constructor_rejects_hanging_programs() {
        // An element loop with no address progress would spin forever.
        let prog = vec![Microinstruction {
            write: true,
            flow: FlowOp::LoopElem,
            ..Microinstruction::nop()
        }];
        let err =
            MicrocodeController::new("bad", &prog, MicrocodeConfig::default()).unwrap_err();
        assert!(matches!(err, CoreError::InvalidProgram { .. }), "{err}");
        // load_program applies the same validation
        let mut ctrl = MicrocodeController::new(
            "ok",
            &compile(&library::march_c()).unwrap(),
            MicrocodeConfig::default(),
        )
        .unwrap();
        assert!(ctrl.load_program("bad", &prog).is_err());
    }

    #[test]
    fn upset_is_detected_and_scan_reload_recovers() {
        let program = compile(&library::march_c()).unwrap();
        let mut ctrl =
            MicrocodeController::new("march-c", &program, MicrocodeConfig::default())
                .unwrap();
        ctrl.verify_integrity().unwrap();
        let golden_view = ctrl.program().to_vec();

        ctrl.inject_upset(9); // addr_inc bit of instruction 0
        let err = ctrl.verify_integrity().unwrap_err();
        assert!(matches!(err, CoreError::IntegrityViolation { .. }), "{err}");
        assert_ne!(ctrl.program(), golden_view.as_slice(), "behavior changed");

        let cost = ctrl.scan_reload();
        assert_eq!(cost, 16 * 10, "recovery costs one full-chain scan load");
        ctrl.verify_integrity().unwrap();
        assert_eq!(ctrl.program(), golden_view.as_slice());
    }

    #[test]
    fn upset_outside_the_program_is_still_detected() {
        // Padding slots never execute, but the parity word covers the
        // whole store — detection is conservative.
        let program = compile(&library::mats_plus()).unwrap();
        let mut ctrl =
            MicrocodeController::new("mats+", &program, MicrocodeConfig::default())
                .unwrap();
        let bit = ctrl.store_bits() - 1;
        ctrl.inject_upset(bit);
        assert!(ctrl.verify_integrity().is_err());
    }

    #[test]
    fn structure_has_the_figure_1_components() {
        let ctrl = MicrocodeController::new(
            "x",
            &compile(&library::march_c()).unwrap(),
            MicrocodeConfig::default(),
        )
        .unwrap();
        let s = ctrl.structure();
        for name in [
            "storage_unit",
            "instruction_counter",
            "instruction_selector",
            "branch_register",
            "reference_register",
            "instruction_decoder",
        ] {
            assert!(s.find(name).is_some(), "missing {name}");
        }
        assert_eq!(s.find("reference_register").unwrap().count(Primitive::Dff), 4);
    }

    #[test]
    fn scan_only_style_changes_storage_primitive() {
        let config = MicrocodeConfig {
            cell_style: CellStyle::ScanOnly,
            ..MicrocodeConfig::default()
        };
        let ctrl =
            MicrocodeController::new("x", &compile(&library::march_c()).unwrap(), config)
                .unwrap();
        let s = ctrl.structure();
        assert_eq!(s.count(Primitive::ScanOnlyCell), 160);
        assert_eq!(s.find("storage_unit").unwrap().count(Primitive::ScanDff), 0);
    }
}
