//! A tiny assembler / disassembler for microcode programs.
//!
//! The text format is one instruction per line; `#` starts a comment.
//! Tokens (whitespace-separated, any order except the leading op):
//!
//! | token | meaning |
//! |-------|---------|
//! | `r0` / `r1`      | read expecting background / complement |
//! | `w0` / `w1`      | write background / complement |
//! | `nop`            | no memory access |
//! | `down`           | down address order |
//! | `inc`            | step the address generator |
//! | `bginc`          | advance the background generator |
//! | `loop`           | end-of-element loop ([`FlowOp::LoopElem`]) |
//! | `repeat(m,…)`    | symmetric repeat; mask of `order`, `data`, `cmp` |
//! | `loopbg`         | background loop |
//! | `loopport`       | port loop |
//! | `hold`           | retention pause |
//! | `save`           | save branch register |
//! | `end`            | terminate |
//!
//! The format round-trips with [`Microinstruction`]'s `Display`, so a
//! program can be dumped, edited in the field and re-loaded — the
//! paper's whole point.

use crate::error::CoreError;
use crate::microcode::isa::{FlowOp, Microinstruction};

/// Assembles program text into microinstructions.
///
/// # Errors
///
/// Returns [`CoreError::Decode`] naming the offending line and token.
///
/// # Examples
///
/// ```
/// use mbist_core::microcode::{assemble, compile};
/// use mbist_march::library;
///
/// let text = "
///     w0 inc loop
///     r0
///     w1 inc loop
///     r1
///     w0 inc loop
///     repeat(order)
///     r0 inc loop
///     bginc loopbg
///     loopport
/// ";
/// let program = assemble(text)?;
/// assert_eq!(program, compile(&library::march_c())?);
/// # Ok::<(), mbist_core::CoreError>(())
/// ```
pub fn assemble(text: &str) -> Result<Vec<Microinstruction>, CoreError> {
    let mut program = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        program.push(assemble_line(line).map_err(|message| CoreError::Decode {
            message: format!("line {}: {message}", lineno + 1),
        })?);
    }
    if program.is_empty() {
        return Err(CoreError::Decode { message: "program has no instructions".into() });
    }
    Ok(program)
}

fn assemble_line(line: &str) -> Result<Microinstruction, String> {
    let mut inst = Microinstruction::nop();
    let mut flow_set = false;
    for token in line.split_whitespace() {
        match token {
            "r0" | "r1" | "w0" | "w1" => {
                if inst.has_access() {
                    return Err(format!("duplicate memory op `{token}`"));
                }
                let invert = token.ends_with('1');
                if token.starts_with('r') {
                    inst.read = true;
                    inst.cmp_invert = invert;
                } else {
                    inst.write = true;
                    inst.data_invert = invert;
                }
            }
            "nop" | "next" => {}
            "down" => inst.addr_down = true,
            "inc" => inst.addr_inc = true,
            "bginc" => inst.bg_inc = true,
            "loop" => set_flow(&mut inst, &mut flow_set, FlowOp::LoopElem)?,
            "loopbg" => set_flow(&mut inst, &mut flow_set, FlowOp::LoopBg)?,
            "loopport" => set_flow(&mut inst, &mut flow_set, FlowOp::LoopPort)?,
            "hold" => set_flow(&mut inst, &mut flow_set, FlowOp::Hold)?,
            "save" => set_flow(&mut inst, &mut flow_set, FlowOp::SaveAddr)?,
            "end" => set_flow(&mut inst, &mut flow_set, FlowOp::Terminate)?,
            t if t.starts_with("repeat(") && t.ends_with(')') => {
                set_flow(&mut inst, &mut flow_set, FlowOp::Repeat)?;
                for field in t["repeat(".len()..t.len() - 1].split(',') {
                    match field.trim() {
                        "" => {}
                        "order" => inst.addr_down = true,
                        "data" => inst.data_invert = true,
                        "cmp" => inst.cmp_invert = true,
                        other => return Err(format!("unknown repeat field `{other}`")),
                    }
                }
            }
            other => return Err(format!("unknown token `{other}`")),
        }
    }
    Ok(inst)
}

fn set_flow(
    inst: &mut Microinstruction,
    flow_set: &mut bool,
    flow: FlowOp,
) -> Result<(), String> {
    if *flow_set {
        return Err(format!("duplicate flow op `{}`", flow.mnemonic()));
    }
    inst.flow = flow;
    *flow_set = true;
    Ok(())
}

/// Disassembles a program into the assembler text format.
#[must_use]
pub fn disassemble(program: &[Microinstruction]) -> String {
    let mut out = String::new();
    for (i, inst) in program.iter().enumerate() {
        out.push_str(&format!("{i:>3}: {inst}\n"));
    }
    out
}

/// Disassembles without addresses, producing re-assemblable text.
#[must_use]
pub fn to_source(program: &[Microinstruction]) -> String {
    program.iter().map(|i| format!("{i}\n")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::microcode::compile;
    use mbist_march::library;

    #[test]
    fn roundtrip_all_library_programs() {
        for t in library::all() {
            let program = compile(&t).unwrap();
            let text = to_source(&program);
            let reassembled =
                assemble(&text).unwrap_or_else(|e| panic!("{}: {e}\n{text}", t.name()));
            assert_eq!(reassembled, program, "roundtrip failed for {}", t.name());
        }
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let p = assemble("# header\n\n  w0 inc loop  # init\nend\n").unwrap();
        assert_eq!(p.len(), 2);
        assert!(p[0].write);
        assert_eq!(p[1].flow, FlowOp::Terminate);
    }

    #[test]
    fn rejects_unknown_tokens_with_line_numbers() {
        let err = assemble("w0 inc loop\nfrobnicate\n").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 2"));
        assert!(msg.contains("frobnicate"));
    }

    #[test]
    fn rejects_duplicate_ops_and_flows() {
        assert!(assemble("r0 w1").is_err());
        assert!(assemble("loop end").is_err());
        assert!(assemble("").is_err());
    }

    #[test]
    fn repeat_fields_parse() {
        let p = assemble("repeat(order,data,cmp)").unwrap();
        assert!(p[0].addr_down && p[0].data_invert && p[0].cmp_invert);
        assert_eq!(p[0].flow, FlowOp::Repeat);
        assert!(assemble("repeat(banana)").is_err());
    }

    #[test]
    fn disassemble_includes_addresses() {
        let program = compile(&library::march_c()).unwrap();
        let text = disassemble(&program);
        assert!(text.contains("  0: w0 inc loop"));
        assert!(text.contains("repeat(order)"));
    }
}
