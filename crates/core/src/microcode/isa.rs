//! The microcode instruction set (paper Fig. 2).
//!
//! Each microinstruction is 10 bits wide:
//!
//! | bits | field | meaning |
//! |------|-------|---------|
//! | 9    | `addr_inc`   | step the address generator after this access |
//! | 8    | `addr_down`  | down address order (XORed with the reference register's auxiliary order) |
//! | 7    | `data_invert`| write the complemented background (XORed with auxiliary data) |
//! | 6    | `bg_inc`     | advance the data-background generator (asserted by `LoopBg`) |
//! | 5    | `cmp_invert` | expect the complemented background on reads (XORed with auxiliary compare) |
//! | 4    | `write`      | write enable |
//! | 3    | `read`       | read enable (reads are always compared) |
//! | 2..0 | `flow`       | flow-control field, see [`FlowOp`] |
//!
//! The `Repeat` instruction reuses the `addr_down` / `data_invert` /
//! `cmp_invert` fields as the auxiliary polarities loaded into the
//! reference register — the mechanism that encodes a symmetric march
//! algorithm's second half for free.
//!
//! ### Concretization notes
//!
//! The paper's figure text is partially garbled in the surviving copy; the
//! flow semantics implemented here are the self-consistent reconstruction:
//! the *branch register* always tracks the first instruction of the march
//! element currently executing (the paper's "Save Address Condition"
//! automation with the last-address condition), `Repeat` branches to
//! instruction 1 (the paper's `Reset to 1` line in Fig. 1 — symmetric
//! algorithms place their repeatable block right after the single
//! initialization instruction), and `LoopBg`/`LoopPort` branch to
//! instruction 0 (`Reset to 0`).

use std::fmt;

use mbist_rtl::Bits;

use crate::error::CoreError;

/// Width of a microinstruction in bits.
pub const INSTRUCTION_BITS: u8 = 10;

/// The 3-bit flow-control field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FlowOp {
    /// Fall through to the next instruction (mid-element operation).
    #[default]
    Next = 0,
    /// End of a march element: branch to the branch register while
    /// `Last Address` is de-asserted; otherwise reset the address
    /// generator and fall through.
    LoopElem = 1,
    /// Symmetric repeat: on first execution latch this instruction's
    /// polarity fields into the reference register and branch to
    /// instruction 1; on second execution clear the reference register and
    /// fall through (a no-operation, as the paper describes).
    Repeat = 2,
    /// Background loop: advance the data background and branch to
    /// instruction 0 while `Last Data` is de-asserted; otherwise reset the
    /// background generator and fall through.
    LoopBg = 3,
    /// Port loop: advance the port and branch to instruction 0 while
    /// `Last Port` is de-asserted; otherwise terminate the test.
    LoopPort = 4,
    /// Conditional hold: idle for the pause-register duration
    /// (data-retention pause), then fall through.
    Hold = 5,
    /// Save the next instruction's address into the branch register
    /// (explicit override of the automatic element tracking).
    SaveAddr = 6,
    /// Unconditional terminate.
    Terminate = 7,
}

impl FlowOp {
    /// Decodes the 3-bit field.
    #[must_use]
    pub fn from_bits(bits: u8) -> FlowOp {
        match bits & 0b111 {
            0 => FlowOp::Next,
            1 => FlowOp::LoopElem,
            2 => FlowOp::Repeat,
            3 => FlowOp::LoopBg,
            4 => FlowOp::LoopPort,
            5 => FlowOp::Hold,
            6 => FlowOp::SaveAddr,
            _ => FlowOp::Terminate,
        }
    }

    /// Mnemonic used by the assembler.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            FlowOp::Next => "next",
            FlowOp::LoopElem => "loop",
            FlowOp::Repeat => "repeat",
            FlowOp::LoopBg => "loopbg",
            FlowOp::LoopPort => "loopport",
            FlowOp::Hold => "hold",
            FlowOp::SaveAddr => "save",
            FlowOp::Terminate => "end",
        }
    }
}

impl fmt::Display for FlowOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// One decoded 10-bit microinstruction.
///
/// # Examples
///
/// ```
/// use mbist_core::microcode::{FlowOp, Microinstruction};
///
/// // `w1 inc loop` — write the complemented background, step the address,
/// // loop the element.
/// let inst = Microinstruction {
///     write: true,
///     data_invert: true,
///     addr_inc: true,
///     flow: FlowOp::LoopElem,
///     ..Microinstruction::nop()
/// };
/// let word = inst.encode();
/// assert_eq!(Microinstruction::decode(word)?, inst);
/// # Ok::<(), mbist_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Microinstruction {
    /// Step the address generator after this access.
    pub addr_inc: bool,
    /// Down address order (before the reference-register XOR).
    pub addr_down: bool,
    /// Write the complemented background (before the XOR).
    pub data_invert: bool,
    /// Advance the background generator.
    pub bg_inc: bool,
    /// Expect the complemented background (before the XOR).
    pub cmp_invert: bool,
    /// Write enable.
    pub write: bool,
    /// Read enable.
    pub read: bool,
    /// Flow-control field.
    pub flow: FlowOp,
}

impl Microinstruction {
    /// An instruction with every field clear (`nop next`).
    #[must_use]
    pub fn nop() -> Self {
        Self::default()
    }

    /// Encodes into a 10-bit word.
    #[must_use]
    pub fn encode(&self) -> Bits {
        let mut v = self.flow as u64;
        if self.read {
            v |= 1 << 3;
        }
        if self.write {
            v |= 1 << 4;
        }
        if self.cmp_invert {
            v |= 1 << 5;
        }
        if self.bg_inc {
            v |= 1 << 6;
        }
        if self.data_invert {
            v |= 1 << 7;
        }
        if self.addr_down {
            v |= 1 << 8;
        }
        if self.addr_inc {
            v |= 1 << 9;
        }
        Bits::new(INSTRUCTION_BITS, v)
    }

    /// Decodes a 10-bit word.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Decode`] if the word is not 10 bits wide or
    /// asserts both `read` and `write`.
    pub fn decode(word: Bits) -> Result<Self, CoreError> {
        if word.width() != INSTRUCTION_BITS {
            return Err(CoreError::Decode {
                message: format!(
                    "expected a {INSTRUCTION_BITS}-bit word, got {} bits",
                    word.width()
                ),
            });
        }
        let inst = Self::fields(word);
        if inst.read && inst.write {
            return Err(CoreError::Decode {
                message: "read and write enables both asserted".into(),
            });
        }
        Ok(inst)
    }

    /// Decodes a 10-bit word the way the hardware decoder would after an
    /// upset: a word asserting both enables resolves to the non-destructive
    /// read (the write enable is masked). Used when re-decoding a store
    /// whose contents may have been corrupted — the integrity signature,
    /// not the decoder, is the detection mechanism.
    ///
    /// # Panics
    ///
    /// Panics if the word is not 10 bits wide (a model bug, not a fault).
    #[must_use]
    pub fn decode_failsafe(word: Bits) -> Self {
        assert_eq!(word.width(), INSTRUCTION_BITS, "microinstruction width");
        let mut inst = Self::fields(word);
        if inst.read && inst.write {
            inst.write = false;
        }
        inst
    }

    fn fields(word: Bits) -> Self {
        Self {
            flow: FlowOp::from_bits((word.value() & 0b111) as u8),
            read: word.bit(3),
            write: word.bit(4),
            cmp_invert: word.bit(5),
            bg_inc: word.bit(6),
            data_invert: word.bit(7),
            addr_down: word.bit(8),
            addr_inc: word.bit(9),
        }
    }

    /// Whether the instruction drives a memory access.
    #[must_use]
    pub fn has_access(&self) -> bool {
        self.read || self.write
    }
}

impl fmt::Display for Microinstruction {
    /// Renders in assembler syntax (see the `microcode::asm` module).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts: Vec<String> = Vec::new();
        if self.read {
            parts.push(format!("r{}", u8::from(self.cmp_invert)));
        } else if self.write {
            parts.push(format!("w{}", u8::from(self.data_invert)));
        }
        if self.flow == FlowOp::Repeat {
            let mut aux = Vec::new();
            if self.addr_down {
                aux.push("order");
            }
            if self.data_invert {
                aux.push("data");
            }
            if self.cmp_invert {
                aux.push("cmp");
            }
            parts.push(format!("repeat({})", aux.join(",")));
            return f.write_str(&parts.join(" "));
        }
        if self.addr_down {
            parts.push("down".into());
        }
        if self.addr_inc {
            parts.push("inc".into());
        }
        if self.bg_inc {
            parts.push("bginc".into());
        }
        if self.flow != FlowOp::Next {
            parts.push(self.flow.mnemonic().into());
        }
        if parts.is_empty() {
            parts.push("nop".into());
        }
        f.write_str(&parts.join(" "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip_all_flow_ops() {
        for flow_bits in 0..8u8 {
            let inst = Microinstruction {
                addr_inc: flow_bits % 2 == 0,
                addr_down: flow_bits % 3 == 0,
                data_invert: true,
                bg_inc: false,
                cmp_invert: flow_bits > 4,
                write: true,
                read: false,
                flow: FlowOp::from_bits(flow_bits),
            };
            assert_eq!(Microinstruction::decode(inst.encode()).unwrap(), inst);
        }
    }

    #[test]
    fn decode_rejects_wrong_width() {
        assert!(Microinstruction::decode(Bits::new(8, 0)).is_err());
    }

    #[test]
    fn decode_rejects_read_write_conflict() {
        let word = Bits::new(10, (1 << 3) | (1 << 4));
        let err = Microinstruction::decode(word).unwrap_err();
        assert!(err.to_string().contains("both"));
    }

    #[test]
    fn nop_encodes_to_zero() {
        assert!(Microinstruction::nop().encode().is_zero());
    }

    #[test]
    fn flow_from_bits_masks() {
        assert_eq!(FlowOp::from_bits(0b1010), FlowOp::Repeat);
        assert_eq!(FlowOp::from_bits(7), FlowOp::Terminate);
    }

    #[test]
    fn display_shows_mnemonics() {
        let inst = Microinstruction {
            write: true,
            data_invert: true,
            addr_inc: true,
            flow: FlowOp::LoopElem,
            ..Microinstruction::nop()
        };
        assert_eq!(inst.to_string(), "w1 inc loop");
        let rep = Microinstruction {
            addr_down: true,
            flow: FlowOp::Repeat,
            ..Microinstruction::nop()
        };
        assert_eq!(rep.to_string(), "repeat(order)");
        assert_eq!(Microinstruction::nop().to_string(), "nop");
    }

    #[test]
    fn failsafe_decode_masks_the_destructive_enable() {
        let word = Bits::new(10, (1 << 3) | (1 << 4) | (1 << 5));
        let inst = Microinstruction::decode_failsafe(word);
        assert!(inst.read && !inst.write, "read priority on conflict");
        assert!(inst.cmp_invert, "other fields decode normally");
        // clean words decode identically to the strict decoder
        for v in [0u64, 0b10_0000_1001, 0b01_1000_0111] {
            let w = Bits::new(10, v);
            assert_eq!(
                Microinstruction::decode_failsafe(w),
                Microinstruction::decode(w).unwrap()
            );
        }
    }

    #[test]
    fn exhaustive_decode_never_panics() {
        let mut ok = 0;
        for v in 0..1024u64 {
            if Microinstruction::decode(Bits::new(10, v)).is_ok() {
                ok += 1;
            }
        }
        // 1/4 of encodings assert both read and write
        assert_eq!(ok, 768);
    }
}
