//! The microcode storage unit: a Z×10 scan-loadable buffer.
//!
//! The storage unit never changes during a test and is written only
//! through the scan path, which is what lets the paper replace its
//! full-scan registers with 4-5× smaller *scan-only* cells (Table 3). The
//! scan load is modeled cycle-accurately: loading a Z-instruction store
//! costs exactly `Z × 10` scan clocks.

use mbist_rtl::{Bits, CellStyle, ScanChain, Structure};

use crate::error::CoreError;
use crate::integrity::Signature;
use crate::microcode::isa::{Microinstruction, INSTRUCTION_BITS};

/// The storage unit of the microcode-based controller.
#[derive(Debug, Clone)]
pub struct StorageUnit {
    capacity: usize,
    chain: ScanChain,
}

impl StorageUnit {
    /// Creates a zeroed storage unit holding `capacity` instructions with
    /// the given storage-cell style.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize, style: CellStyle) -> Self {
        assert!(capacity > 0, "storage unit needs at least one instruction slot");
        Self {
            capacity,
            chain: ScanChain::with_style(capacity * usize::from(INSTRUCTION_BITS), style),
        }
    }

    /// Number of instruction slots (the paper's `Z`).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The storage-cell style (for area accounting).
    #[must_use]
    pub fn style(&self) -> CellStyle {
        self.chain.style()
    }

    /// Total scan clocks spent loading this unit since construction.
    #[must_use]
    pub fn scan_cycles(&self) -> u64 {
        self.chain.shifts()
    }

    /// Serially loads a program through the scan path, padding unused slots
    /// with zero words. Costs `capacity × 10` scan clocks.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ProgramTooLarge`] if the program exceeds the
    /// capacity.
    pub fn load(&mut self, program: &[Microinstruction]) -> Result<u64, CoreError> {
        if program.len() > self.capacity {
            return Err(CoreError::ProgramTooLarge {
                required: program.len(),
                capacity: self.capacity,
            });
        }
        // Build the full bit image: instruction i occupies cells
        // [i*10, i*10+10), LSB first. Serial loading places the FIRST bit
        // shifted in at the DEEPEST cell, so shift the image in reverse.
        let mut image = vec![false; self.capacity * usize::from(INSTRUCTION_BITS)];
        for (i, inst) in program.iter().enumerate() {
            let word = inst.encode();
            for b in 0..INSTRUCTION_BITS {
                image[i * usize::from(INSTRUCTION_BITS) + usize::from(b)] = word.bit(b);
            }
        }
        let before = self.chain.shifts();
        let pattern: Vec<bool> = image.iter().rev().copied().collect();
        self.chain.load_serial(&pattern);
        Ok(self.chain.shifts() - before)
    }

    /// Decodes instruction slot `index` from the stored bits.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Decode`] if the stored word is malformed.
    ///
    /// # Panics
    ///
    /// Panics if `index >= capacity`.
    pub fn instruction(&self, index: usize) -> Result<Microinstruction, CoreError> {
        assert!(index < self.capacity, "instruction index out of range");
        let base = index * usize::from(INSTRUCTION_BITS);
        let bits = Bits::from_bits_lsb_first(
            (0..usize::from(INSTRUCTION_BITS)).map(|b| self.chain.cell(base + b)),
        );
        Microinstruction::decode(bits)
    }

    /// Decodes the entire stored program (trailing all-zero slots are
    /// `nop next` instructions and are trimmed).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Decode`] if any stored word is malformed.
    pub fn program(&self) -> Result<Vec<Microinstruction>, CoreError> {
        let mut out = Vec::with_capacity(self.capacity);
        for i in 0..self.capacity {
            out.push(self.instruction(i)?);
        }
        while out.last() == Some(&Microinstruction::nop()) {
            out.pop();
        }
        Ok(out)
    }

    /// Decodes the entire stored program with the fail-safe decoder
    /// ([`Microinstruction::decode_failsafe`]): never errors, even after
    /// the store has been corrupted. Trailing `nop` slots are trimmed.
    #[must_use]
    pub fn program_failsafe(&self) -> Vec<Microinstruction> {
        let mut out = Vec::with_capacity(self.capacity);
        for i in 0..self.capacity {
            let base = i * usize::from(INSTRUCTION_BITS);
            let bits = Bits::from_bits_lsb_first(
                (0..usize::from(INSTRUCTION_BITS)).map(|b| self.chain.cell(base + b)),
            );
            out.push(Microinstruction::decode_failsafe(bits));
        }
        while out.last() == Some(&Microinstruction::nop()) {
            out.pop();
        }
        out
    }

    /// Number of storage cells (`capacity × 10`) — valid upset targets.
    #[must_use]
    pub fn bit_len(&self) -> usize {
        self.chain.len()
    }

    /// The interleaved-parity signature of the store's current contents.
    #[must_use]
    pub fn signature(&self) -> Signature {
        Signature::of(self.chain.cells().iter().copied())
    }

    /// Flips storage cell `bit` — the single-event-upset model (no scan
    /// clocks consumed, no write path exercised).
    ///
    /// # Panics
    ///
    /// Panics if `bit >= self.bit_len()`.
    pub fn flip_cell(&mut self, bit: usize) {
        self.chain.flip_cell(bit);
    }

    /// Structural inventory for area estimation: the Z×10 cell array.
    #[must_use]
    pub fn structure(&self) -> Structure {
        self.chain.structure("storage_unit")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::microcode::isa::FlowOp;

    fn sample_program() -> Vec<Microinstruction> {
        vec![
            Microinstruction {
                write: true,
                addr_inc: true,
                flow: FlowOp::LoopElem,
                ..Microinstruction::nop()
            },
            Microinstruction { read: true, ..Microinstruction::nop() },
            Microinstruction {
                write: true,
                data_invert: true,
                addr_inc: true,
                flow: FlowOp::LoopElem,
                ..Microinstruction::nop()
            },
            Microinstruction { flow: FlowOp::Terminate, ..Microinstruction::nop() },
        ]
    }

    #[test]
    fn load_and_readback_roundtrip() {
        let mut s = StorageUnit::new(8, CellStyle::ScanOnly);
        let prog = sample_program();
        let cycles = s.load(&prog).unwrap();
        assert_eq!(cycles, 8 * 10, "full-chain scan load costs capacity × width");
        assert_eq!(s.program().unwrap(), prog);
    }

    #[test]
    fn per_slot_decode_matches() {
        let mut s = StorageUnit::new(4, CellStyle::ScanOnly);
        let prog = sample_program();
        s.load(&prog).unwrap();
        for (i, inst) in prog.iter().enumerate() {
            assert_eq!(s.instruction(i).unwrap(), *inst);
        }
    }

    #[test]
    fn oversized_program_is_rejected() {
        let mut s = StorageUnit::new(2, CellStyle::ScanOnly);
        let err = s.load(&sample_program()).unwrap_err();
        assert!(matches!(err, CoreError::ProgramTooLarge { required: 4, capacity: 2 }));
    }

    #[test]
    fn reload_replaces_previous_program() {
        let mut s = StorageUnit::new(4, CellStyle::FullScan);
        s.load(&sample_program()).unwrap();
        let short =
            vec![Microinstruction { flow: FlowOp::Terminate, ..Microinstruction::nop() }];
        s.load(&short).unwrap();
        assert_eq!(s.program().unwrap(), short);
        assert_eq!(s.scan_cycles(), 2 * 4 * 10);
    }

    #[test]
    fn signature_tracks_every_single_upset() {
        let mut s = StorageUnit::new(4, CellStyle::ScanOnly);
        s.load(&sample_program()).unwrap();
        let clean = s.signature();
        for bit in 0..s.bit_len() {
            s.flip_cell(bit);
            assert_ne!(s.signature(), clean, "upset at {bit} must be visible");
            s.flip_cell(bit);
            assert_eq!(s.signature(), clean);
        }
    }

    #[test]
    fn failsafe_program_survives_a_conflict_upset() {
        let mut s = StorageUnit::new(4, CellStyle::ScanOnly);
        s.load(&sample_program()).unwrap();
        // Slot 1 is `r0 next`; setting its write-enable bit (cell 1*10+4)
        // creates the read/write conflict the strict decoder rejects.
        s.flip_cell(10 + 4);
        assert!(s.program().is_err(), "strict decode rejects the conflict");
        let degraded = s.program_failsafe();
        assert!(degraded[1].read && !degraded[1].write, "read priority");
        // unaffected slots decode identically
        assert_eq!(degraded[0], sample_program()[0]);
    }

    #[test]
    fn structure_counts_cells_by_style() {
        use mbist_rtl::Primitive;
        let scan_only = StorageUnit::new(9, CellStyle::ScanOnly);
        assert_eq!(scan_only.structure().count(Primitive::ScanOnlyCell), 90);
        let full = StorageUnit::new(9, CellStyle::FullScan);
        assert_eq!(full.structure().count(Primitive::ScanDff), 90);
    }
}
