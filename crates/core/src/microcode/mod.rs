//! The microcode-based memory BIST architecture (paper §2.1).
//!
//! - [`Microinstruction`] / [`FlowOp`]: the 10-bit ISA of Fig. 2,
//! - [`StorageUnit`]: the Z×10 scan-loadable microcode store,
//! - [`MicrocodeController`]: the cycle-accurate controller of Fig. 1,
//! - [`compile`]: march notation → microcode (with `Repeat` compression of
//!   symmetric algorithms),
//! - [`assemble`] / [`disassemble`]: the field-update text format,
//! - [`MicrocodeBist`]: one-call construction of a complete BIST unit.

mod asm;
mod compile;
mod controller;
mod isa;
mod storage;

pub use asm::{assemble, disassemble, to_source};
pub use compile::{compile, pause_duration};
pub use controller::{MicrocodeConfig, MicrocodeController};
pub use isa::{FlowOp, Microinstruction, INSTRUCTION_BITS};
pub use storage::StorageUnit;

use mbist_march::{standard_backgrounds, MarchTest};
use mbist_mem::MemGeometry;

use crate::datapath::BistDatapath;
use crate::error::CoreError;
use crate::unit::BistUnit;

/// Convenience constructors for microcode-based BIST units.
#[derive(Debug, Clone, Copy)]
pub struct MicrocodeBist;

impl MicrocodeBist {
    /// Compiles `test`, sizes a controller for it and wires up the shared
    /// datapath for `geometry` (standard backgrounds, all ports).
    ///
    /// # Errors
    ///
    /// Propagates compilation errors (e.g. mixed pause durations).
    pub fn for_test(
        test: &MarchTest,
        geometry: &MemGeometry,
    ) -> Result<BistUnit<MicrocodeController>, CoreError> {
        Self::for_test_with(test, geometry, MicrocodeConfig::default())
    }

    /// Like [`MicrocodeBist::for_test`] with an explicit base
    /// configuration. The capacity is grown to fit the program; the pause
    /// register is loaded from the test's pause duration when it has one.
    ///
    /// # Errors
    ///
    /// Propagates compilation errors.
    pub fn for_test_with(
        test: &MarchTest,
        geometry: &MemGeometry,
        config: MicrocodeConfig,
    ) -> Result<BistUnit<MicrocodeController>, CoreError> {
        let program = compile(test)?;
        let mut config = config;
        config.capacity = config.capacity.max(program.len());
        if let Some(ns) = pause_duration(test)? {
            config.pause_ns = ns;
        }
        let controller = MicrocodeController::new(test.name(), &program, config)?;
        let datapath = BistDatapath::new(*geometry, standard_backgrounds(geometry.width()));
        Ok(BistUnit::new(controller, datapath))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbist_march::{expand, library};

    #[test]
    fn for_test_sizes_capacity_to_program() {
        let g = MemGeometry::bit_oriented(8);
        // March C++ unrolls: needs more than the default 16 slots.
        let unit = MicrocodeBist::for_test(&library::march_c_plus_plus(), &g).unwrap();
        assert!(unit.controller().config().capacity >= unit.controller().program().len());
    }

    #[test]
    fn for_test_loads_pause_register() {
        let g = MemGeometry::bit_oriented(8);
        let unit = MicrocodeBist::for_test(&library::march_c_plus(), &g).unwrap();
        assert_eq!(
            unit.controller().config().pause_ns,
            library::DEFAULT_RETENTION_PAUSE_NS
        );
    }

    #[test]
    fn every_library_algorithm_matches_reference_on_every_geometry() {
        let geometries = [
            MemGeometry::bit_oriented(4),
            MemGeometry::word_oriented(4, 4),
            MemGeometry::new(4, 2, 2),
        ];
        for t in library::all() {
            for g in geometries {
                let mut unit = MicrocodeBist::for_test(&t, &g).unwrap();
                let steps = unit.emit_steps();
                let reference = expand(&t, &g);
                assert_eq!(steps, reference, "{} on {}", t.name(), g);
            }
        }
    }
}
