//! Degraded-mode recovery policy and reporting.

use std::fmt;

/// How a protected run responds to program-store integrity failures.
///
/// # Examples
///
/// ```
/// use mbist_core::RecoveryPolicy;
///
/// let policy = RecoveryPolicy::default();
/// assert_eq!(policy.max_reload_attempts, 3);
/// assert!(policy.cycle_budget.is_none(), "budget derived from the unit");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Scan-reload attempts allowed before giving up with
    /// [`CoreError::RecoveryFailed`](crate::CoreError::RecoveryFailed).
    pub max_reload_attempts: usize,
    /// Watchdog cycle budget for the run itself; `None` derives a sound
    /// bound from the unit's geometry (see
    /// [`BistUnit::default_cycle_budget`](crate::BistUnit::default_cycle_budget)).
    pub cycle_budget: Option<u64>,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        Self { max_reload_attempts: 3, cycle_budget: None }
    }
}

/// What a protected run did to get the controller into a runnable state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Integrity-check failures observed (before and between reloads).
    pub integrity_violations: usize,
    /// Scan reloads performed.
    pub reload_attempts: usize,
    /// Scan clocks spent on recovery reloads — the hardware cost of
    /// getting back to a known-good program.
    pub recovery_scan_cycles: u64,
    /// The watchdog budget the run was held to, in controller cycles.
    pub cycle_budget: u64,
}

impl RecoveryReport {
    /// Whether the run needed any recovery at all.
    #[must_use]
    pub fn recovered(&self) -> bool {
        self.reload_attempts > 0
    }
}

impl fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} integrity violation(s), {} reload(s), {} recovery scan clocks, \
             budget {} cycles",
            self.integrity_violations,
            self.reload_attempts,
            self.recovery_scan_cycles,
            self.cycle_budget
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_report_needed_no_recovery() {
        let r = RecoveryReport::default();
        assert!(!r.recovered());
        assert_eq!(r.integrity_violations, 0);
    }

    #[test]
    fn display_carries_the_numbers() {
        let r = RecoveryReport {
            integrity_violations: 1,
            reload_attempts: 1,
            recovery_scan_cycles: 160,
            cycle_budget: 4096,
        };
        assert!(r.recovered());
        let s = r.to_string();
        assert!(s.contains("160") && s.contains("4096"), "{s}");
    }
}
