//! Periodic on-line (in-field) memory testing.
//!
//! The paper's conclusion points out that a programmable controller whose
//! overhead is already justified can expand from manufacturing test and
//! diagnostics to *on-line* testing per Nicolaidis \[7\]. This module
//! simulates that deployment: application workload bursts alternate with
//! transparent (content-preserving) test rounds, and the figure of merit
//! is the detection latency — how many rounds pass between a field defect
//! appearing and the BIST flagging it.

use mbist_march::{run_transparent, transparent, MarchTest};
use mbist_mem::{FaultKind, MemGeometry, MemoryArray, PortId};
use mbist_rtl::Bits;

/// Configuration of a periodic on-line test deployment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineConfig {
    /// Application accesses simulated between test rounds.
    pub workload_ops_per_round: usize,
    /// Seed of the deterministic workload generator.
    pub seed: u64,
    /// Port used by both the workload and the BIST.
    pub port: PortId,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        Self { workload_ops_per_round: 256, seed: 0x5eed, port: PortId(0) }
    }
}

/// Outcome of an on-line testing session.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineReport {
    /// Test rounds executed.
    pub rounds_run: usize,
    /// Round (0-based) whose test first failed, if any.
    pub detection_round: Option<usize>,
    /// Rounds whose transparent test failed to restore content — must stay
    /// zero while the memory is healthy.
    pub content_upsets: usize,
    /// Total BIST bus cycles spent across all rounds.
    pub test_cycles: u64,
}

impl OnlineReport {
    /// Detection latency in rounds from `injected_at`, if detected.
    #[must_use]
    pub fn latency_from(&self, injected_at: usize) -> Option<usize> {
        self.detection_round.map(|d| d.saturating_sub(injected_at))
    }
}

/// Runs `rounds` alternating workload-burst / transparent-test rounds on
/// `mem`, optionally injecting `fault` right before the workload of round
/// `inject.0`.
///
/// # Panics
///
/// Panics if `test` is not transparent-compatible (see
/// [`transparent::is_transparent_compatible`]) or the fault does not fit
/// the geometry.
#[must_use]
pub fn run_periodic(
    mem: &mut MemoryArray,
    test: &MarchTest,
    rounds: usize,
    config: &OnlineConfig,
    inject: Option<(usize, FaultKind)>,
) -> OnlineReport {
    assert!(
        transparent::is_transparent_compatible(test),
        "{} cannot run transparently",
        test.name()
    );
    let geometry = mem.geometry();
    let mut rng = config.seed;
    let mut report = OnlineReport {
        rounds_run: 0,
        detection_round: None,
        content_upsets: 0,
        test_cycles: 0,
    };

    for round in 0..rounds {
        if let Some((at, fault)) = inject {
            if at == round {
                mem.inject(fault).expect("injected fault fits the geometry");
            }
        }
        workload_burst(mem, &geometry, config, &mut rng);

        let outcome = run_transparent(mem, test, config.port);
        report.rounds_run += 1;
        report.test_cycles += outcome.report.bus_cycles;
        if !outcome.content_preserved {
            report.content_upsets += 1;
        }
        if !outcome.report.passed() {
            report.detection_round = Some(round);
            break;
        }
    }
    report
}

/// Deterministic application traffic: a mix of writes and (unchecked)
/// reads over random addresses.
fn workload_burst(
    mem: &mut MemoryArray,
    geometry: &MemGeometry,
    config: &OnlineConfig,
    rng: &mut u64,
) {
    for _ in 0..config.workload_ops_per_round {
        let r = splitmix(rng);
        let addr = r % geometry.words();
        let data = Bits::new(geometry.width(), r >> 13);
        if r & 0x3 != 0 {
            mem.write(config.port, addr, data);
        } else {
            let _ = mem.read(config.port, addr);
        }
    }
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbist_march::library;
    use mbist_mem::CellId;

    #[test]
    fn healthy_memory_survives_many_rounds() {
        let g = MemGeometry::word_oriented(32, 8);
        let mut mem = MemoryArray::new(g);
        mem.randomize(1);
        let report =
            run_periodic(&mut mem, &library::march_c(), 8, &OnlineConfig::default(), None);
        assert_eq!(report.rounds_run, 8);
        assert_eq!(report.detection_round, None);
        assert_eq!(report.content_upsets, 0);
        assert_eq!(report.test_cycles, 8 * 9 * 32);
    }

    #[test]
    fn field_defect_is_caught_at_the_next_round() {
        let g = MemGeometry::word_oriented(32, 8);
        let mut mem = MemoryArray::new(g);
        let fault = FaultKind::StuckAt { cell: CellId::new(11, 2), value: true };
        let report = run_periodic(
            &mut mem,
            &library::march_c(),
            16,
            &OnlineConfig::default(),
            Some((5, fault)),
        );
        assert_eq!(report.detection_round, Some(5), "caught on the injection round");
        assert_eq!(report.latency_from(5), Some(0));
        assert_eq!(report.rounds_run, 6, "session stops at detection");
    }

    #[test]
    fn workload_between_rounds_does_not_false_alarm() {
        // The workload rewrites content arbitrarily; each round's
        // prediction pass must absorb that.
        let g = MemGeometry::bit_oriented(64);
        let mut mem = MemoryArray::new(g);
        let config =
            OnlineConfig { workload_ops_per_round: 1024, ..OnlineConfig::default() };
        let report = run_periodic(&mut mem, &library::march_x(), 4, &config, None);
        assert_eq!(report.detection_round, None);
    }

    #[test]
    fn transition_fault_needs_the_right_workload_state() {
        // A TF↑ is only caught once the cell should hold 1; latency can be
        // nonzero but detection must eventually happen because the
        // transparent march writes both polarities relative to content.
        let g = MemGeometry::bit_oriented(32);
        let mut mem = MemoryArray::new(g);
        let fault = FaultKind::Transition { cell: CellId::bit_oriented(7), rising: true };
        let report = run_periodic(
            &mut mem,
            &library::march_c(),
            10,
            &OnlineConfig::default(),
            Some((2, fault)),
        );
        let round = report.detection_round.expect("TF must be caught");
        assert!(round >= 2);
    }

    #[test]
    fn defect_appearing_in_the_final_round_is_still_caught() {
        let g = MemGeometry::bit_oriented(32);
        let mut mem = MemoryArray::new(g);
        let fault = FaultKind::StuckAt { cell: CellId::bit_oriented(3), value: true };
        let report = run_periodic(
            &mut mem,
            &library::march_c(),
            8,
            &OnlineConfig::default(),
            Some((7, fault)),
        );
        assert_eq!(report.detection_round, Some(7), "no round after the defect");
        assert_eq!(report.rounds_run, 8);
        // latency_from saturates when asked about a later injection point
        assert_eq!(report.latency_from(9), Some(0));
    }

    #[test]
    fn zero_workload_rounds_still_run_the_test() {
        let g = MemGeometry::bit_oriented(16);
        let config = OnlineConfig { workload_ops_per_round: 0, ..OnlineConfig::default() };
        let mut mem = MemoryArray::new(g);
        let healthy = run_periodic(&mut mem, &library::march_c(), 3, &config, None);
        assert_eq!(healthy.rounds_run, 3);
        assert_eq!(healthy.detection_round, None);
        assert!(healthy.test_cycles > 0, "rounds without workload still test");

        let fault = FaultKind::StuckAt { cell: CellId::bit_oriented(5), value: true };
        let mut mem = MemoryArray::new(g);
        let report =
            run_periodic(&mut mem, &library::march_c(), 3, &config, Some((0, fault)));
        assert_eq!(report.detection_round, Some(0));
    }

    #[test]
    fn zero_rounds_is_a_no_op() {
        let g = MemGeometry::bit_oriented(8);
        let mut mem = MemoryArray::new(g);
        let report =
            run_periodic(&mut mem, &library::march_c(), 0, &OnlineConfig::default(), None);
        assert_eq!(report.rounds_run, 0);
        assert_eq!(report.detection_round, None);
        assert_eq!(report.test_cycles, 0);
        assert_eq!(report.latency_from(0), None);
    }

    #[test]
    fn stuck_at_detection_never_false_alarms_content_restore() {
        // A stuck-at cell reads as its stuck value during the prediction
        // pass too, so the restore target *is* the stuck value: the round
        // detects the defect without reporting a content upset.
        let g = MemGeometry::bit_oriented(16);
        let config = OnlineConfig { workload_ops_per_round: 0, ..OnlineConfig::default() };
        let mut mem = MemoryArray::new(g);
        let fault = FaultKind::StuckAt { cell: CellId::bit_oriented(9), value: true };
        let report =
            run_periodic(&mut mem, &library::march_c(), 8, &config, Some((3, fault)));
        assert_eq!(report.detection_round, Some(3));
        assert_eq!(report.content_upsets, 0, "restore target is the observed state");
        assert_eq!(report.rounds_run, 4);
    }

    #[test]
    fn coupling_upset_breaks_content_restore_only_after_it_appears() {
        // A coupling inversion flips the victim's *stored* state whenever
        // the aggressor transitions after the victim's restore — the one
        // defect class whose appearance breaks the content guarantee. All
        // rounds before the injection must restore cleanly.
        let g = MemGeometry::bit_oriented(16);
        let config = OnlineConfig { workload_ops_per_round: 0, ..OnlineConfig::default() };
        let mut mem = MemoryArray::new(g);
        // Down-order elements touch the high-address victim before the
        // low-address aggressor, so the aggressor's final falling write
        // lands after the victim's restore.
        let fault = FaultKind::CouplingInversion {
            aggressor: CellId::bit_oriented(2),
            victim: CellId::bit_oriented(12),
            rising: false,
        };
        let report =
            run_periodic(&mut mem, &library::march_c(), 8, &config, Some((3, fault)));
        let detected = report.detection_round.expect("march-c detects CFin");
        assert_eq!(detected, 3, "caught on the round the defect appeared");
        assert_eq!(report.content_upsets, 1, "only the defective round fails restore");
    }

    #[test]
    #[should_panic(expected = "cannot run transparently")]
    fn non_transparent_algorithm_is_rejected() {
        let g = MemGeometry::bit_oriented(8);
        let mut mem = MemoryArray::new(g);
        let _ = run_periodic(&mut mem, &library::mats(), 1, &OnlineConfig::default(), None);
    }
}
