//! The control interface between a BIST controller and the shared datapath.
//!
//! A controller — microcode-based, programmable-FSM-based or hardwired —
//! asserts a [`ControlSignals`] bundle every clock cycle (the paper's
//! "controlling signals for the memory array and other components of the
//! memory BIST unit"). The datapath executes them in a fixed order:
//! perform the memory operation, then step/reset the address generator,
//! then the background generator, then the port counter.

use mbist_rtl::Direction;

/// One cycle's worth of controller outputs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ControlSignals {
    /// Drive a read this cycle.
    pub read_en: bool,
    /// Drive a write this cycle.
    pub write_en: bool,
    /// Written data is the complemented background.
    pub data_invert: bool,
    /// Check the read against the expected value.
    pub compare_en: bool,
    /// Expected read data is the complemented background.
    pub compare_invert: bool,
    /// Address sweep direction for this cycle's access.
    pub addr_order: Direction,
    /// Step the address generator (in `addr_order`) after the access.
    pub addr_inc: bool,
    /// Re-load the address generator at the start of the next access's
    /// sweep (the load value is selected by that access's direction).
    pub addr_reset: bool,
    /// Advance the data-background generator.
    pub bg_inc: bool,
    /// Reset the data-background generator to the first background.
    pub bg_reset: bool,
    /// Advance to the next port.
    pub port_inc: bool,
    /// Reset the port counter to port 0.
    pub port_reset: bool,
    /// Idle for this long (data-retention pause) before the next cycle.
    pub pause_ns: Option<f64>,
    /// Test is complete; the unit stops clocking the controller.
    pub done: bool,
}

impl ControlSignals {
    /// An idle cycle (no bus op, no datapath change).
    #[must_use]
    pub fn idle() -> Self {
        Self::default()
    }

    /// Whether this cycle drives a memory access.
    #[must_use]
    pub fn has_access(&self) -> bool {
        self.read_en || self.write_en
    }
}

/// Status lines fed back from the datapath to the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatusSignals {
    /// Address generator sits on the final address of the current sweep.
    pub last_address: bool,
    /// Background generator sits on the final background.
    pub last_background: bool,
    /// Port counter sits on the final port.
    pub last_port: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_has_no_access() {
        let s = ControlSignals::idle();
        assert!(!s.has_access());
        assert!(!s.done);
        assert!(s.pause_ns.is_none());
    }

    #[test]
    fn access_detection() {
        let r = ControlSignals { read_en: true, ..ControlSignals::idle() };
        assert!(r.has_access());
        let w = ControlSignals { write_en: true, ..ControlSignals::idle() };
        assert!(w.has_access());
    }
}
