//! Diagnostics: fail logging and failure-bitmap reconstruction.
//!
//! The paper motivates programmable BIST partly by diagnostics cost: the
//! same controller that screens parts in production can, in the lab,
//! re-run targeted algorithms and log every miscompare. This module
//! captures that flow: a [`FailLog`] records (cycle, port, address,
//! syndrome) tuples; a [`FailBitmap`] folds them into per-cell fail counts
//! and classifies the spatial signature.

use std::collections::BTreeMap;
use std::fmt;

use mbist_mem::{CellId, MemGeometry, Miscompare};

/// An ordered log of miscompares with the controller cycle they occurred on.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FailLog {
    entries: Vec<(u64, Miscompare)>,
}

impl FailLog {
    /// Creates an empty log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a miscompare observed at `cycle`.
    pub fn record(&mut self, cycle: u64, miscompare: Miscompare) {
        self.entries.push((cycle, miscompare));
    }

    /// Whether the log is empty (the memory passed).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of logged miscompares.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// The logged entries in occurrence order.
    #[must_use]
    pub fn entries(&self) -> &[(u64, Miscompare)] {
        &self.entries
    }

    /// Iterates over the miscompares only.
    pub fn miscompares(&self) -> impl Iterator<Item = &Miscompare> {
        self.entries.iter().map(|(_, m)| m)
    }

    /// Folds the log into a per-cell failure bitmap.
    #[must_use]
    pub fn bitmap(&self, geometry: MemGeometry) -> FailBitmap {
        let mut counts: BTreeMap<CellId, usize> = BTreeMap::new();
        for (_, m) in &self.entries {
            let syndrome = m.syndrome();
            for bit in 0..geometry.width() {
                if syndrome.bit(bit) {
                    *counts.entry(CellId::new(m.addr, bit)).or_insert(0) += 1;
                }
            }
        }
        FailBitmap { geometry, counts }
    }
}

/// Per-cell failure counts reconstructed from a fail log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailBitmap {
    geometry: MemGeometry,
    counts: BTreeMap<CellId, usize>,
}

/// The spatial signature of a failure bitmap — the first question a
/// product engineer asks of a new fallout bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailSignature {
    /// No failing cells.
    Clean,
    /// Exactly one failing cell (classic single-cell defect: SAF/TF/SOF).
    SingleCell,
    /// Two failing cells (typical coupling-fault pair).
    CellPair,
    /// All failing cells share one word (word-line or word-local defect).
    SingleWord,
    /// All failing cells share one bit position (bit-line/column defect).
    SingleColumn,
    /// Anything else.
    Scattered,
}

impl FailBitmap {
    /// Failing cells and their fail counts.
    #[must_use]
    pub fn cells(&self) -> &BTreeMap<CellId, usize> {
        &self.counts
    }

    /// Number of distinct failing cells.
    #[must_use]
    pub fn failing_cell_count(&self) -> usize {
        self.counts.len()
    }

    /// Classifies the spatial signature.
    #[must_use]
    pub fn signature(&self) -> FailSignature {
        match self.counts.len() {
            0 => FailSignature::Clean,
            1 => FailSignature::SingleCell,
            2 => FailSignature::CellPair,
            _ => {
                let mut words: Vec<u64> = self.counts.keys().map(|c| c.word).collect();
                words.dedup();
                if words.len() == 1 {
                    return FailSignature::SingleWord;
                }
                let mut bits: Vec<u8> = self.counts.keys().map(|c| c.bit).collect();
                bits.sort_unstable();
                bits.dedup();
                if bits.len() == 1 {
                    FailSignature::SingleColumn
                } else {
                    FailSignature::Scattered
                }
            }
        }
    }

    /// Renders an ASCII bitmap (rows = words with failures, columns = bit
    /// positions; `#` marks a failing cell).
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let width = self.geometry.width();
        let mut current: Option<u64> = None;
        let mut row = vec![b'.'; width as usize];
        let flush = |out: &mut String, word: u64, row: &mut Vec<u8>| {
            let _ = writeln!(
                out,
                "{word:>8x}  {}",
                std::str::from_utf8(row).expect("ascii row")
            );
            row.fill(b'.');
        };
        for cell in self.counts.keys() {
            if current != Some(cell.word) {
                if let Some(w) = current {
                    flush(&mut out, w, &mut row);
                }
                current = Some(cell.word);
            }
            row[cell.bit as usize] = b'#';
        }
        if let Some(w) = current {
            flush(&mut out, w, &mut row);
        }
        out
    }
}

impl fmt::Display for FailBitmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbist_mem::PortId;
    use mbist_rtl::Bits;

    fn mis(addr: u64, expected: u64, observed: u64, width: u8) -> Miscompare {
        Miscompare {
            port: PortId(0),
            addr,
            expected: Bits::new(width, expected),
            observed: Bits::new(width, observed),
        }
    }

    #[test]
    fn empty_log_is_clean() {
        let log = FailLog::new();
        assert!(log.is_empty());
        let bm = log.bitmap(MemGeometry::word_oriented(8, 4));
        assert_eq!(bm.signature(), FailSignature::Clean);
        assert_eq!(bm.failing_cell_count(), 0);
    }

    #[test]
    fn single_cell_signature() {
        let mut log = FailLog::new();
        log.record(3, mis(5, 0b0000, 0b0100, 4));
        log.record(9, mis(5, 0b1111, 0b1011, 4));
        let bm = log.bitmap(MemGeometry::word_oriented(8, 4));
        assert_eq!(bm.failing_cell_count(), 1);
        assert_eq!(bm.signature(), FailSignature::SingleCell);
        assert_eq!(bm.cells()[&CellId::new(5, 2)], 2);
    }

    #[test]
    fn pair_signature() {
        let mut log = FailLog::new();
        log.record(1, mis(2, 0, 1, 1));
        log.record(2, mis(6, 0, 1, 1));
        let bm = log.bitmap(MemGeometry::bit_oriented(8));
        assert_eq!(bm.signature(), FailSignature::CellPair);
    }

    #[test]
    fn column_signature() {
        let mut log = FailLog::new();
        for addr in [1u64, 3, 5] {
            log.record(addr, mis(addr, 0b0000, 0b1000, 4));
        }
        let bm = log.bitmap(MemGeometry::word_oriented(8, 4));
        assert_eq!(bm.signature(), FailSignature::SingleColumn);
    }

    #[test]
    fn word_signature() {
        let mut log = FailLog::new();
        log.record(1, mis(3, 0b0000, 0b0111, 4));
        let bm = log.bitmap(MemGeometry::word_oriented(8, 4));
        assert_eq!(bm.failing_cell_count(), 3);
        assert_eq!(bm.signature(), FailSignature::SingleWord);
    }

    #[test]
    fn scattered_signature() {
        let mut log = FailLog::new();
        log.record(1, mis(0, 0b00, 0b01, 2));
        log.record(2, mis(1, 0b00, 0b10, 2));
        log.record(3, mis(2, 0b00, 0b01, 2));
        let bm = log.bitmap(MemGeometry::word_oriented(8, 2));
        assert_eq!(bm.signature(), FailSignature::Scattered);
    }

    #[test]
    fn render_marks_failing_bits() {
        let mut log = FailLog::new();
        log.record(1, mis(3, 0b0000, 0b0101, 4));
        let bm = log.bitmap(MemGeometry::word_oriented(8, 4));
        let text = bm.render();
        assert!(text.contains('3'));
        assert!(text.contains("#.#."));
    }
}
