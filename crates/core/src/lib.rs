//! # mbist-core — programmable memory BIST architectures
//!
//! The paper's contribution, in executable form
//! (*On Programmable Memory Built-In Self Test Architectures*, Zarrineh &
//! Upadhyaya, DATE 1999):
//!
//! - [`microcode`]: the microcode-based controller (Fig. 1-2) — a Z×10
//!   scan-loadable storage unit, instruction counter, branch register,
//!   reference register and instruction decoder, with a compiler that
//!   exploits the `Repeat` mechanism to encode symmetric march algorithms
//!   (March C in 9 instructions). Flexibility: **HIGH**.
//! - [`progfsm`]: the programmable FSM-based controller (Fig. 3-5) — a
//!   parameter-driven 7-state lower FSM realizing the SM0…SM7 march
//!   components and an upper circular parameter buffer. Flexibility:
//!   **MEDIUM** (elements outside the component menu are rejected).
//! - [`hardwired`]: non-programmable baselines — direct FSM realizations
//!   of any march algorithm, with exported transition tables for logic
//!   synthesis. Flexibility: **LOW**.
//!
//! All three drive the same shared [`BistDatapath`] (address generator,
//! background generator, port counter, comparator) inside a [`BistUnit`],
//! and all three provably emit the *identical* operation stream as the
//! reference expansion in [`mbist_march`] — the workspace's central
//! equivalence property.
//!
//! # Examples
//!
//! Run March C from all three architectures against the same faulty
//! memory:
//!
//! ```
//! use mbist_core::{hardwired::HardwiredBist, microcode::MicrocodeBist,
//!                  progfsm::ProgFsmBist};
//! use mbist_march::library;
//! use mbist_mem::{CellId, FaultKind, MemGeometry, MemoryArray};
//!
//! let g = MemGeometry::bit_oriented(32);
//! let fault = FaultKind::StuckAt { cell: CellId::bit_oriented(7), value: true };
//! let test = library::march_c();
//!
//! let mut micro = MicrocodeBist::for_test(&test, &g)?;
//! let mut fsm = ProgFsmBist::for_test(&test, &g)?;
//! let mut hard = HardwiredBist::for_test(&test, &g);
//!
//! for report in [
//!     micro.run(&mut MemoryArray::with_fault(g, fault).unwrap()),
//!     fsm.run(&mut MemoryArray::with_fault(g, fault).unwrap()),
//!     hard.run(&mut MemoryArray::with_fault(g, fault).unwrap()),
//! ] {
//!     assert!(!report.passed());
//!     assert!(report.fail_log.miscompares().all(|m| m.addr == 7));
//! }
//! # Ok::<(), mbist_core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod controller;
mod datapath;
mod diag;
mod error;
pub mod hardwired;
pub mod integrity;
pub mod microcode;
pub mod online;
pub mod progfsm;
mod recovery;
pub mod repair;
mod signals;
mod unit;
pub mod validate;

pub use controller::{BistController, Flexibility, ScanRecoverable};
pub use datapath::BistDatapath;
pub use diag::{FailBitmap, FailLog, FailSignature};
pub use error::CoreError;
pub use recovery::{RecoveryPolicy, RecoveryReport};
pub use signals::{ControlSignals, StatusSignals};
pub use unit::{BistUnit, SessionReport};
