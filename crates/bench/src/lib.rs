//! Shared helpers for the MBIST benchmark harness: the binaries that
//! regenerate the paper's tables and figures, and the Criterion benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mbist_core::{
    hardwired::HardwiredBist, microcode::MicrocodeBist, progfsm::ProgFsmBist,
    BistController, SessionReport,
};
use mbist_march::MarchTest;
use mbist_mem::{MemGeometry, MemoryArray};

/// The memory geometry of the paper's Table 1 configuration (a 1K×1
/// bit-oriented, single-port embedded array).
#[must_use]
pub fn table1_geometry() -> MemGeometry {
    MemGeometry::bit_oriented(1024)
}

/// Word-oriented configuration used for Table 2 (1K×8).
#[must_use]
pub fn word_geometry() -> MemGeometry {
    MemGeometry::word_oriented(1024, 8)
}

/// Multiport configuration used for Table 2 (1K×8, 2 ports).
#[must_use]
pub fn multiport_geometry() -> MemGeometry {
    MemGeometry::new(1024, 8, 2)
}

/// Runs `test` on a fault-free memory through every architecture that can
/// express it, returning (architecture, session report) pairs.
#[must_use]
pub fn run_all_architectures(
    test: &MarchTest,
    geometry: &MemGeometry,
) -> Vec<(&'static str, SessionReport)> {
    let mut out = Vec::new();
    if let Ok(mut unit) = MicrocodeBist::for_test(test, geometry) {
        let mut mem = MemoryArray::new(*geometry);
        out.push((unit.controller().architecture(), unit.run(&mut mem)));
    }
    if let Ok(mut unit) = ProgFsmBist::for_test(test, geometry) {
        let mut mem = MemoryArray::new(*geometry);
        out.push((unit.controller().architecture(), unit.run(&mut mem)));
    }
    let mut unit = HardwiredBist::for_test(test, geometry);
    let mut mem = MemoryArray::new(*geometry);
    out.push((unit.controller().architecture(), unit.run(&mut mem)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbist_march::library;

    #[test]
    fn all_architectures_run_march_c_cleanly() {
        let g = MemGeometry::bit_oriented(64);
        let results = run_all_architectures(&library::march_c(), &g);
        assert_eq!(results.len(), 3);
        for (arch, report) in &results {
            assert!(report.passed(), "{arch} failed a fault-free memory");
            assert_eq!(report.bus_cycles, 640, "{arch}");
        }
    }

    #[test]
    fn inexpressible_tests_skip_progfsm() {
        let g = MemGeometry::bit_oriented(8);
        let results = run_all_architectures(&library::march_b(), &g);
        assert_eq!(results.len(), 2);
        assert!(results.iter().all(|(a, _)| *a != "programmable-fsm"));
    }
}
