//! Std-only coverage-engine performance harness.
//!
//! Measures fault simulation in eight modes on the same sampled fault
//! universes:
//!
//! - `seed_replay`: the original algorithm — the [`legacy`] reference
//!   simulator (per-bit cell stores, per-write `Vec<bool>` snapshots,
//!   linear fault scans) replaying the entire stream and collecting every
//!   miscompare;
//! - `engine_full`: the rewritten indexed/bitmask array, still replaying
//!   the full stream per fault;
//! - `detect_jobs1`: the engine with early exit at the first miscompare,
//!   forced serial (`jobs = 1`), full replay per fault;
//! - `sliced`: the sliced differential engine over one shared compiled
//!   trace, forced serial;
//! - `packed`: the lane-packed bit-parallel engine (256 congruent faults
//!   per `[u64; 4]` lane-block batch, sliced fallback for the decoder
//!   classes), forced serial;
//! - `parallel_auto`: full replay with the host's available parallelism;
//! - `sliced_parallel`: the sliced engine with the host's parallelism;
//! - `packed_parallel`: the packed engine with the host's parallelism.
//!
//! Every mode that runs must agree on the detection count; each
//! `(test, geometry)` pair prints an `agreement OK` line that CI greps
//! for. `--modes a,b,...` restricts which modes run — speedup ratios
//! whose baseline didn't run are reported as skipped, never fabricated.
//! When both `sliced` and `packed` run, the harness also times the two
//! engines head-to-head on the batchable fault subset (exactly the faults
//! the packed engine routes to lanes) of the largest march-c run — the
//! `packed_vs_sliced_batchable` acceptance ratio. Each geometry also gets
//! a `{class → packed|sliced|full}` routing breakdown with a
//! batchable-faults ratio and a `routing OK` sanity line (per-class counts
//! summing to the sampled total) that CI greps for.
//!
//! Emits `BENCH_coverage.json` (test × geometry × wall-ns × faults/sec,
//! min and median over the sample count) and prints a human summary with
//! the speedups vs the seed path and vs `detect_jobs1`. `--quick`
//! shrinks the workload for smoke runs; `--out PATH` overrides the JSON
//! path.
//!
//! No external crates: timing via `std::time::Instant`, JSON by hand.

use std::fmt::Write as _;
use std::time::Instant;
use std::{env, fs, thread};

use mbist_march::{
    evaluate_coverage, expand_with, fault_route, library, routing_breakdown, run_steps,
    CompiledTrace, CoverageOptions, ExpandOptions, FaultRoute, MarchTest, SimEngine,
};
use mbist_mem::{
    class_universe_sampled, FaultClass, FaultKind, MemGeometry, MemoryArray, UniverseSpec,
};

/// The fault simulator exactly as the workspace seed implemented it,
/// preserved as the performance baseline. Semantically equivalent to
/// [`mbist_mem::MemoryArray`] (the regression suite proves the rewrite kept
/// behavior); the difference is purely mechanical: per-bit stores behind
/// `Vec<bool>` old/new snapshots, and a linear scan of the fault list on
/// every store and every observed bit.
mod legacy {
    use mbist_mem::{CellId, FaultKind, MemGeometry, PortId, TestStep};
    use mbist_rtl::Bits;

    #[derive(Default, Clone)]
    struct FaultState {
        consecutive_reads: u8,
        last_write_ns: f64,
    }

    #[derive(Clone)]
    struct FaultEntry {
        kind: FaultKind,
        state: FaultState,
    }

    #[derive(Default, Clone)]
    struct SenseLatch {
        value: u64,
        valid: bool,
    }

    pub struct LegacyArray {
        geometry: MemGeometry,
        words: Vec<u64>,
        faults: Vec<FaultEntry>,
        sense: Vec<SenseLatch>,
        now_ns: f64,
    }

    #[derive(Clone, Copy)]
    enum Effect {
        Invert,
        Force(bool),
    }

    impl LegacyArray {
        pub fn with_fault(geometry: MemGeometry, fault: FaultKind) -> Self {
            let mut mem = Self {
                geometry,
                words: vec![0; usize::try_from(geometry.words()).expect("fits")],
                faults: Vec::new(),
                sense: vec![SenseLatch::default(); usize::from(geometry.ports())],
                now_ns: 0.0,
            };
            if let FaultKind::StuckAt { cell, value } = fault {
                mem.set_raw(cell, value);
            }
            mem.faults.push(FaultEntry { kind: fault, state: FaultState::default() });
            mem
        }

        pub fn pause(&mut self, ns: f64) {
            self.now_ns += ns;
        }

        pub fn write(&mut self, _port: PortId, addr: u64, data: Bits) {
            self.now_ns += 10.0;
            let (targets, _) = self.resolve(addr);
            for word in targets {
                self.write_word(word, data);
            }
        }

        fn write_word(&mut self, word: u64, data: Bits) {
            let width = self.geometry.width();
            let mut old = vec![false; usize::from(width)];
            let mut new = vec![false; usize::from(width)];
            for bit in 0..width {
                let cell = CellId::new(word, bit);
                old[usize::from(bit)] = self.raw_bit(cell);
                self.store_cell_base(cell, data.bit(bit));
                new[usize::from(bit)] = self.raw_bit(cell);
            }
            let mut effects: Vec<(CellId, Effect)> = Vec::new();
            for bit in 0..width {
                let (o, n) = (old[usize::from(bit)], new[usize::from(bit)]);
                if o == n {
                    continue;
                }
                let rising = n;
                let aggressor = CellId::new(word, bit);
                for f in &self.faults {
                    match f.kind {
                        FaultKind::CouplingInversion {
                            aggressor: a,
                            victim,
                            rising: r,
                        } if a == aggressor
                            && r == rising
                            && self.victim_sensitized(victim, word, &old, &new) =>
                        {
                            effects.push((victim, Effect::Invert));
                        }
                        FaultKind::CouplingIdempotent {
                            aggressor: a,
                            victim,
                            rising: r,
                            forced,
                        } if a == aggressor
                            && r == rising
                            && self.victim_sensitized(victim, word, &old, &new) =>
                        {
                            effects.push((victim, Effect::Force(forced)));
                        }
                        FaultKind::NpsfActive { base, trigger, rising: r, others }
                            if trigger == aggressor
                                && r == rising
                                && others.iter().all(|(c, v)| self.raw_bit(*c) == *v)
                                && self.victim_sensitized(base, word, &old, &new) =>
                        {
                            effects.push((base, Effect::Invert));
                        }
                        _ => {}
                    }
                }
            }
            for (victim, effect) in effects {
                let v = match effect {
                    Effect::Invert => !self.raw_bit(victim),
                    Effect::Force(b) => b,
                };
                self.store_victim(victim, v);
            }
        }

        fn victim_sensitized(
            &self,
            victim: CellId,
            word: u64,
            old: &[bool],
            new: &[bool],
        ) -> bool {
            if victim.word != word {
                return true;
            }
            let i = usize::from(victim.bit);
            old[i] == new[i]
        }

        pub fn read(&mut self, port: PortId, addr: u64) -> Bits {
            self.now_ns += 10.0;
            let (targets, wired_and) = self.resolve(addr);
            let width = self.geometry.width();
            let mut combined: Option<u64> = None;
            for word in targets {
                let mut v = 0u64;
                for bit in 0..width {
                    if self.observed_bit(port, CellId::new(word, bit)) {
                        v |= 1 << bit;
                    }
                }
                combined = Some(match combined {
                    None => v,
                    Some(prev) => {
                        if wired_and {
                            prev & v
                        } else {
                            prev | v
                        }
                    }
                });
            }
            let value = combined.expect("at least one word");
            let latch = &mut self.sense[usize::from(port.0)];
            latch.value = value;
            latch.valid = true;
            Bits::new(width, value)
        }

        fn resolve(&self, addr: u64) -> (Vec<u64>, bool) {
            let mut a = addr;
            for f in &self.faults {
                if let FaultKind::AddressMap { from, to } = f.kind {
                    if from == a {
                        a = to;
                        break;
                    }
                }
            }
            let mut out = vec![a];
            let mut wired_and = true;
            for f in &self.faults {
                if let FaultKind::AddressMulti { addr: m, extra, wired_and: wa } = f.kind {
                    if m == a {
                        out.push(extra);
                        wired_and = wa;
                    }
                }
            }
            (out, wired_and)
        }

        fn raw_bit(&self, cell: CellId) -> bool {
            (self.words[cell.word as usize] >> cell.bit) & 1 == 1
        }

        fn set_raw(&mut self, cell: CellId, value: bool) {
            let w = &mut self.words[cell.word as usize];
            if value {
                *w |= 1 << cell.bit;
            } else {
                *w &= !(1 << cell.bit);
            }
        }

        fn store_cell_base(&mut self, cell: CellId, new: bool) {
            if self
                .faults
                .iter()
                .any(|f| matches!(f.kind, FaultKind::StuckOpen { cell: c } if c == cell))
            {
                return;
            }
            let old = self.raw_bit(cell);
            let mut val = new;
            for f in &self.faults {
                if let FaultKind::Transition { cell: c, rising } = f.kind {
                    if c == cell {
                        if rising && !old && new {
                            val = false;
                        }
                        if !rising && old && !new {
                            val = true;
                        }
                    }
                }
            }
            for f in &self.faults {
                if let FaultKind::StuckAt { cell: c, value } = f.kind {
                    if c == cell {
                        val = value;
                    }
                }
            }
            self.set_raw(cell, val);
            self.touch_written(cell);
        }

        fn store_victim(&mut self, cell: CellId, value: bool) {
            let mut val = value;
            for f in &self.faults {
                if let FaultKind::StuckAt { cell: c, value: v } = f.kind {
                    if c == cell {
                        val = v;
                    }
                }
            }
            self.set_raw(cell, val);
            self.touch_written(cell);
        }

        fn touch_written(&mut self, cell: CellId) {
            let now = self.now_ns;
            for f in &mut self.faults {
                match f.kind {
                    FaultKind::Retention { cell: c, .. } if c == cell => {
                        f.state.last_write_ns = now;
                    }
                    FaultKind::PullOpen { cell: c, .. } if c == cell => {
                        f.state.consecutive_reads = 0;
                    }
                    _ => {}
                }
            }
        }

        fn observed_bit(&mut self, port: PortId, cell: CellId) -> bool {
            if self
                .faults
                .iter()
                .any(|f| matches!(f.kind, FaultKind::StuckOpen { cell: c } if c == cell))
            {
                let latch = &self.sense[usize::from(port.0)];
                return latch.valid && (latch.value >> cell.bit) & 1 == 1;
            }
            let now = self.now_ns;
            let mut decay: Option<bool> = None;
            for f in &mut self.faults {
                if let FaultKind::Retention { cell: c, decays_to, retention_ns } = f.kind {
                    if c == cell && now - f.state.last_write_ns > retention_ns {
                        decay = Some(decays_to);
                    }
                }
            }
            if let Some(v) = decay {
                self.store_victim(cell, v);
            }
            let mut v = self.raw_bit(cell);
            let mut drained: Option<bool> = None;
            for f in &mut self.faults {
                if let FaultKind::PullOpen { cell: c, good_reads, decays_to } = f.kind {
                    if c == cell {
                        f.state.consecutive_reads =
                            f.state.consecutive_reads.saturating_add(1);
                        if f.state.consecutive_reads > good_reads {
                            drained = Some(decays_to);
                        }
                    }
                }
            }
            if let Some(d) = drained {
                v = d;
                self.store_victim(cell, d);
            }
            let mut masked: Option<bool> = None;
            for f in &self.faults {
                if let FaultKind::CouplingState { aggressor, victim, when, forced } = f.kind
                {
                    if victim == cell && self.raw_bit(aggressor) == when {
                        masked = Some(forced);
                    }
                }
            }
            if let Some(m) = masked {
                v = m;
            }
            let mut npsf: Option<bool> = None;
            for f in &self.faults {
                if let FaultKind::NpsfStatic { base, neighborhood, forced } = f.kind {
                    if base == cell
                        && neighborhood.iter().all(|(c, val)| self.raw_bit(*c) == *val)
                    {
                        npsf = Some(forced);
                    }
                }
            }
            if let Some(m) = npsf {
                v = m;
            }
            for f in &self.faults {
                if let FaultKind::StuckAt { cell: c, value } = f.kind {
                    if c == cell {
                        v = value;
                    }
                }
            }
            v
        }
    }

    /// The seed's full-report replay: every checked read is compared and
    /// every miscompare collected, exactly like the original `run_steps`.
    pub fn run_steps_collect(mem: &mut LegacyArray, steps: &[TestStep]) -> bool {
        let mut miscompares: Vec<(PortId, u64)> = Vec::new();
        for step in steps {
            match step {
                TestStep::Pause { ns } => mem.pause(*ns),
                TestStep::Bus(cycle) => match cycle.op {
                    mbist_mem::Operation::Write(data) => {
                        mem.write(cycle.port, cycle.addr, data);
                    }
                    mbist_mem::Operation::Read => {
                        let observed = mem.read(cycle.port, cycle.addr);
                        if let Some(expected) = cycle.expected {
                            if observed != expected {
                                miscompares.push((cycle.port, cycle.addr));
                            }
                        }
                    }
                },
            }
        }
        !miscompares.is_empty()
    }
}

const MAX_FAULTS_PER_CLASS: usize = 512;

/// Mode names in canonical run order (slowest baseline first).
const MODE_NAMES: [&str; 8] = [
    "seed_replay",
    "engine_full",
    "detect_jobs1",
    "sliced",
    "packed",
    "parallel_auto",
    "sliced_parallel",
    "packed_parallel",
];

/// The sampled faults the packed engine routes to its lane batches — the
/// subset the head-to-head acceptance ratio is timed on. Computed from the
/// engine's actual per-fault routing decision, not a hard-coded class
/// list, so it tracks whatever the lanes currently vectorize.
fn batchable_subset(geometry: &MemGeometry) -> Vec<FaultKind> {
    sampled_universe(geometry)
        .into_iter()
        .filter(|&f| fault_route(SimEngine::Packed, f) == FaultRoute::Packed)
        .collect()
}

type Mode<'a> = (&'static str, Box<dyn FnMut() -> usize + 'a>);

struct Entry {
    test: String,
    geometry: MemGeometry,
    mode: &'static str,
    faults: usize,
    /// Best wall time over the sample count — the headline number.
    wall_ns: u128,
    /// Median wall time over the sample count — the stability check.
    median_ns: u128,
}

impl Entry {
    fn faults_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            f64::INFINITY
        } else {
            self.faults as f64 * 1e9 / self.wall_ns as f64
        }
    }
}

/// The acceptance universe: every fault class, stride-capped per class the
/// same way `evaluate_coverage` caps it.
fn sampled_universe(geometry: &MemGeometry) -> Vec<FaultKind> {
    sampled_classes(geometry, &FaultClass::ALL)
}

/// Stride-capped universe restricted to `classes` — the same index set as
/// the engine's sampler, via the shared sampled generator.
fn sampled_classes(geometry: &MemGeometry, classes: &[FaultClass]) -> Vec<FaultKind> {
    let spec = UniverseSpec::default();
    let mut faults = Vec::new();
    for &class in classes.iter() {
        faults.extend(class_universe_sampled(geometry, class, &spec, MAX_FAULTS_PER_CLASS));
    }
    faults
}

/// The true pre-optimization baseline: the seed's array and full-report
/// replay, via the [`legacy`] reference simulator.
fn run_seed_replay(test: &MarchTest, geometry: &MemGeometry) -> usize {
    let steps = expand_with(test, geometry, &ExpandOptions::for_geometry(geometry));
    let mut detected = 0;
    for fault in sampled_universe(geometry) {
        let mut mem = legacy::LegacyArray::with_fault(*geometry, fault);
        if legacy::run_steps_collect(&mut mem, &steps) {
            detected += 1;
        }
    }
    detected
}

/// The rewritten array, but still replaying the whole stream per fault —
/// isolates the indexed/bitmask array speedup from the early-exit speedup.
fn run_full_replay(test: &MarchTest, geometry: &MemGeometry) -> usize {
    let steps = expand_with(test, geometry, &ExpandOptions::for_geometry(geometry));
    let mut detected = 0;
    for fault in sampled_universe(geometry) {
        let mut mem =
            MemoryArray::with_fault(*geometry, fault).expect("universe fits geometry");
        if !run_steps(&mut mem, &steps).passed() {
            detected += 1;
        }
    }
    detected
}

fn run_engine(
    test: &MarchTest,
    geometry: &MemGeometry,
    jobs: Option<usize>,
    engine: SimEngine,
) -> usize {
    let report = evaluate_coverage(
        test,
        geometry,
        &CoverageOptions {
            max_faults_per_class: Some(MAX_FAULTS_PER_CLASS),
            jobs,
            engine,
            ..CoverageOptions::default()
        },
    );
    report.rows.iter().map(|r| r.detected).sum()
}

/// Min and median wall time of `f` over `samples` runs, with the result of
/// the first run returned for cross-mode agreement checks.
fn time_stats<F: FnMut() -> usize>(samples: usize, mut f: F) -> (u128, u128, usize) {
    let mut times = Vec::with_capacity(samples.max(1));
    let mut result = 0;
    for i in 0..samples.max(1) {
        let start = Instant::now();
        let r = f();
        times.push(start.elapsed().as_nanos());
        if i == 0 {
            result = r;
        }
    }
    times.sort_unstable();
    let min = times[0];
    let median = times[times.len() / 2];
    (min, median, result)
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Speedup of `denominator_mode` over `numerator_mode` (wall-time ratio),
/// `None` when either mode wasn't measured for the acceptance entry.
fn ratio(baseline: Option<&Entry>, candidate: Option<&Entry>) -> Option<f64> {
    Some(baseline?.wall_ns as f64 / candidate?.wall_ns.max(1) as f64)
}

/// The first recorded entry for `mode` (used by the dedicated batchable-
/// subset measurement, which records exactly one entry per engine).
fn pick_entry<'a>(entries: &'a [Entry], mode: &str) -> Option<&'a Entry> {
    entries.iter().find(|e| e.mode == mode)
}

fn format_ratio(name: &str, r: Option<f64>) -> String {
    match r {
        Some(r) => format!("{name} {r:.1}x"),
        None => format!("{name} skipped (baseline mode not run)"),
    }
}

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_coverage.json".to_string());
    let selected: Vec<&str> = match args.iter().position(|a| a == "--modes") {
        Some(i) => {
            let list = args.get(i + 1).expect("--modes takes a comma-separated list");
            let picked: Vec<&str> = MODE_NAMES
                .iter()
                .copied()
                .filter(|m| list.split(',').any(|s| s == *m))
                .collect();
            for s in list.split(',') {
                assert!(
                    MODE_NAMES.contains(&s),
                    "unknown mode `{s}` (choose from {MODE_NAMES:?})"
                );
            }
            picked
        }
        None => MODE_NAMES.to_vec(),
    };

    let geometries: Vec<MemGeometry> = if quick {
        vec![MemGeometry::bit_oriented(64)]
    } else {
        vec![MemGeometry::bit_oriented(256), MemGeometry::bit_oriented(1024)]
    };
    let tests = [library::mats_plus(), library::march_c()];
    let samples = if quick { 1 } else { 3 };
    let host = thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    println!("coverage engine perf — host parallelism {host}, samples {samples}");
    println!(
        "{:<10} {:<10} {:<15} {:>8} {:>14} {:>14} {:>12}",
        "test", "geometry", "mode", "faults", "wall(min)", "wall(median)", "faults/s"
    );

    let mut entries: Vec<Entry> = Vec::new();
    for g in &geometries {
        let faults = sampled_universe(g).len();
        // Per-class engine routing for this geometry's sampled universe —
        // the whole-run/subset gap made observable. The breakdown must
        // account for every sampled fault exactly once.
        let routing = routing_breakdown(
            g,
            &CoverageOptions { engine: SimEngine::Packed, ..CoverageOptions::default() },
        );
        assert_eq!(
            routing.total(),
            faults,
            "{g}: routing rows must cover the sampled universe"
        );
        print!("{routing}");
        match routing.batchable_ratio() {
            Some(r) => println!(
                "{g} batchable faults: {}/{} ({:.1}%)",
                routing.batchable(),
                routing.total(),
                r * 100.0
            ),
            None => println!("{g} batchable faults: none sampled"),
        }
        println!("{g}: routing OK ({} routed = {faults} sampled)", routing.total());
        for t in &tests {
            let modes: [Mode<'_>; 8] = [
                ("seed_replay", Box::new(|| run_seed_replay(t, g))),
                ("engine_full", Box::new(|| run_full_replay(t, g))),
                ("detect_jobs1", Box::new(|| run_engine(t, g, Some(1), SimEngine::Full))),
                ("sliced", Box::new(|| run_engine(t, g, Some(1), SimEngine::Sliced))),
                ("packed", Box::new(|| run_engine(t, g, Some(1), SimEngine::Packed))),
                ("parallel_auto", Box::new(|| run_engine(t, g, None, SimEngine::Full))),
                ("sliced_parallel", Box::new(|| run_engine(t, g, None, SimEngine::Sliced))),
                ("packed_parallel", Box::new(|| run_engine(t, g, None, SimEngine::Packed))),
            ];
            let mut detected: Option<usize> = None;
            let mut modes_run = 0usize;
            for (mode, mut f) in modes {
                if !selected.contains(&mode) {
                    continue;
                }
                let (wall_ns, median_ns, result) = time_stats(samples, &mut f);
                match detected {
                    None => detected = Some(result),
                    Some(d) => assert_eq!(
                        d,
                        result,
                        "{} {g} {mode}: modes disagree on detections",
                        t.name()
                    ),
                }
                modes_run += 1;
                let e = Entry {
                    test: t.name().to_string(),
                    geometry: *g,
                    mode,
                    faults,
                    wall_ns,
                    median_ns,
                };
                println!(
                    "{:<10} {:<10} {:<15} {:>8} {:>11.3} ms {:>11.3} ms {:>12.0}",
                    e.test,
                    e.geometry.to_string(),
                    e.mode,
                    e.faults,
                    e.wall_ns as f64 / 1e6,
                    e.median_ns as f64 / 1e6,
                    e.faults_per_sec()
                );
                entries.push(e);
            }
            if let Some(d) = detected {
                println!(
                    "{} {g}: agreement OK ({modes_run} modes, {d} detected)",
                    t.name()
                );
            }
        }
    }

    // Speedups on the largest march-c run (the acceptance configuration).
    // Ratios whose baseline mode didn't run are skipped, not fabricated.
    let pick = |mode: &str| {
        entries
            .iter()
            .filter(|e| e.test == "march-c" && e.mode == mode)
            .max_by_key(|e| e.geometry.words())
    };
    let seed = pick("seed_replay");
    let engine_full = pick("engine_full");
    let detect = pick("detect_jobs1");
    let sliced = pick("sliced");
    let packed = pick("packed");
    let parallel = pick("parallel_auto");
    let sliced_parallel = pick("sliced_parallel");
    let packed_parallel = pick("packed_parallel");
    let array_vs_seed = ratio(seed, engine_full);
    let detect_vs_seed = ratio(seed, detect);
    let sliced_vs_seed = ratio(seed, sliced);
    let sliced_vs_detect = ratio(detect, sliced);
    let packed_vs_seed = ratio(seed, packed);
    let packed_vs_sliced = ratio(sliced, packed);
    let parallel_vs_seed = ratio(seed, parallel);
    let sliced_parallel_vs_detect = ratio(detect, sliced_parallel);
    let packed_parallel_vs_detect = ratio(detect, packed_parallel);
    let packed_parallel_vs_sliced_parallel = ratio(sliced_parallel, packed_parallel);
    if let Some(g) = [seed, detect, sliced, packed].iter().flatten().next() {
        println!();
        println!(
            "march-c on {}: {}, {}, {}, {}, {}, {}, {}, {}, {}, {} (host parallelism {host})",
            g.geometry,
            format_ratio("array_vs_seed", array_vs_seed),
            format_ratio("detect_vs_seed", detect_vs_seed),
            format_ratio("sliced_vs_seed", sliced_vs_seed),
            format_ratio("sliced_vs_detect", sliced_vs_detect),
            format_ratio("packed_vs_seed", packed_vs_seed),
            format_ratio("packed_vs_sliced", packed_vs_sliced),
            format_ratio("parallel_vs_seed", parallel_vs_seed),
            format_ratio("sliced_parallel_vs_detect", sliced_parallel_vs_detect),
            format_ratio("packed_parallel_vs_detect", packed_parallel_vs_detect),
            format_ratio(
                "packed_parallel_vs_sliced_parallel",
                packed_parallel_vs_sliced_parallel
            ),
        );
    }

    // The acceptance measurement: sliced vs packed head-to-head on the
    // batchable fault subset of march-c at the largest geometry, single
    // worker — the whole-universe `packed` mode above dilutes the lane win
    // with the sliced fallback classes, so the vectorization claim is
    // timed on exactly the faults the lanes cover. Only measured when both
    // engines were selected; otherwise the ratio is skipped, not made up.
    let mut packed_vs_sliced_batchable = None;
    if selected.contains(&"sliced") && selected.contains(&"packed") {
        let g = *geometries.iter().max_by_key(|g| g.words()).expect("geometries");
        let t = library::march_c();
        let steps = expand_with(&t, &g, &ExpandOptions::for_geometry(&g));
        let trace = CompiledTrace::from_steps(g, &steps);
        let universe = batchable_subset(&g);
        assert_eq!(
            trace.detect_universe(&universe, Some(1), SimEngine::Sliced),
            trace.detect_universe(&universe, Some(1), SimEngine::Packed),
            "march-c {g}: engines disagree on the batchable subset"
        );
        println!();
        for (mode, engine) in [
            ("sliced_batchable", SimEngine::Sliced),
            ("packed_batchable", SimEngine::Packed),
        ] {
            let (wall_ns, median_ns, detected) = time_stats(samples, || {
                trace
                    .detect_universe(&universe, Some(1), engine)
                    .iter()
                    .filter(|&&d| d)
                    .count()
            });
            let e = Entry {
                test: "march-c".to_string(),
                geometry: g,
                mode,
                faults: universe.len(),
                wall_ns,
                median_ns,
            };
            println!(
                "{:<10} {:<10} {:<15} {:>8} {:>11.3} ms {:>11.3} ms {:>12.0}",
                e.test,
                e.geometry.to_string(),
                e.mode,
                e.faults,
                e.wall_ns as f64 / 1e6,
                e.median_ns as f64 / 1e6,
                e.faults_per_sec()
            );
            let _ = detected;
            entries.push(e);
        }
        packed_vs_sliced_batchable = ratio(
            pick_entry(&entries, "sliced_batchable"),
            pick_entry(&entries, "packed_batchable"),
        );
        println!(
            "march-c {g} batchable subset: {}",
            format_ratio("packed_vs_sliced_batchable", packed_vs_sliced_batchable)
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"host_parallelism\": {host},");
    let _ = writeln!(json, "  \"samples\": {samples},");
    let _ = writeln!(json, "  \"max_faults_per_class\": {MAX_FAULTS_PER_CLASS},");
    let ratios = [
        ("array_vs_seed", array_vs_seed),
        ("detect_vs_seed", detect_vs_seed),
        ("sliced_vs_seed", sliced_vs_seed),
        ("sliced_vs_detect", sliced_vs_detect),
        ("packed_vs_seed", packed_vs_seed),
        ("packed_vs_sliced", packed_vs_sliced),
        ("packed_vs_sliced_batchable", packed_vs_sliced_batchable),
        ("parallel_vs_seed", parallel_vs_seed),
        ("sliced_parallel_vs_detect", sliced_parallel_vs_detect),
        ("packed_parallel_vs_detect", packed_parallel_vs_detect),
        ("packed_parallel_vs_sliced_parallel", packed_parallel_vs_sliced_parallel),
    ];
    let speedups: Vec<String> = ratios
        .iter()
        .filter_map(|(name, r)| r.map(|r| format!("\"{name}\": {r:.3}")))
        .collect();
    let _ = writeln!(json, "  \"speedup\": {{ {} }},", speedups.join(", "));
    {
        let g = *geometries.iter().max_by_key(|g| g.words()).expect("geometries");
        let routing = routing_breakdown(
            &g,
            &CoverageOptions { engine: SimEngine::Packed, ..CoverageOptions::default() },
        );
        let classes: Vec<String> = routing
            .rows
            .iter()
            .map(|r| {
                format!(
                    "\"{}\": {{ \"packed\": {}, \"sliced\": {}, \"full\": {} }}",
                    r.class.label(),
                    r.packed,
                    r.sliced,
                    r.full
                )
            })
            .collect();
        let ratio_field = match routing.batchable_ratio() {
            Some(r) => format!("{r:.4}"),
            None => "null".to_string(),
        };
        let _ = writeln!(
            json,
            "  \"routing\": {{ \"geometry\": \"{g}\", \"engine\": \"packed\",              \"batchable\": {}, \"total\": {}, \"batchable_ratio\": {ratio_field},              \"classes\": {{ {} }} }},",
            routing.batchable(),
            routing.total(),
            classes.join(", ")
        );
    }
    json.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{ \"test\": \"{}\", \"geometry\": \"{}\", \"mode\": \"{}\", \
             \"faults\": {}, \"wall_ns\": {}, \"median_ns\": {}, \
             \"faults_per_sec\": {:.1} }}{comma}",
            json_escape(&e.test),
            e.geometry,
            e.mode,
            e.faults,
            e.wall_ns,
            e.median_ns,
            e.faults_per_sec()
        );
    }
    json.push_str("  ]\n}\n");
    fs::write(&out_path, json).expect("write benchmark JSON");
    println!("wrote {out_path}");
}
