//! Regenerates the paper's **Table 1**: size of the memory BIST
//! methodology for bit-oriented, single-port memories.

use mbist_area::{observations, table1, Technology};

fn main() {
    let tech = Technology::cmos5s();
    println!("{}", table1(&tech));
    let obs = observations(&tech);
    println!("Observations (paper §3):");
    println!(
        "  - scan-only storage redesign reduces the microcode controller by {:.0}%",
        obs.scan_only_reduction * 100.0
    );
    println!(
        "  - adjusted microcode / programmable FSM area ratio: {:.2} (< 1: microcode \
         gives more flexibility at less overhead)",
        obs.microcode_vs_progfsm
    );
    println!(
        "  - hardwired March C++ / March C area ratio: {:.2} (> 1: enhancing the fault \
         model grows the non-programmable unit)",
        obs.enhancement_growth
    );
    println!(
        "  - programmable-vs-hardwired gap factor at March C++: {:.2} (< 1: the gap \
         narrows as the hardwired unit is enhanced)",
        obs.gap_narrowing
    );
}
