//! Std-only robustness study: controller-store upsets vs detection latency.
//!
//! Models a deployed BIST unit whose program store is exposed to single-
//! event upsets between test sessions. Each *mission* runs `R` rounds; a
//! round flips every store bit independently with probability `p` (the
//! upset rate), then runs the session through the protected path
//! ([`BistUnit::run_protected`]): integrity signature check, scan-reload
//! recovery, watchdog cycle budget.
//!
//! Measured per architecture × upset rate:
//!
//! - how many corrupted rounds the signature catches immediately vs after
//!   aliasing (an even number of flips in one parity column is invisible
//!   until a later flip breaks the symmetry) — the *detection latency* in
//!   rounds;
//! - how often the watchdog budget, not the signature, terminates a
//!   corrupted run (the fail-safe behind the fail-safe);
//! - the recovery cost in scan clocks.
//!
//! Emits `BENCH_robustness.json` and prints a human table. `--quick`
//! shrinks the sweep for smoke runs; `--out PATH` overrides the JSON path.

use std::fmt::Write as _;
use std::{env, fs};

use mbist_core::{
    microcode::MicrocodeBist, progfsm::ProgFsmBist, BistController, BistUnit, CoreError,
    RecoveryPolicy, ScanRecoverable,
};
use mbist_march::{library, MarchTest};
use mbist_mem::{MemGeometry, MemoryArray};

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform in `[0, 1)`.
fn unit_f64(state: &mut u64) -> f64 {
    (splitmix(state) >> 11) as f64 / (1u64 << 53) as f64
}

#[derive(Default)]
struct Tally {
    rounds: u64,
    corrupted_rounds: u64,
    flips: u64,
    signature_detections: u64,
    watchdog_detections: u64,
    silent_rounds: u64,
    latency_rounds_total: u64,
    latency_rounds_max: u64,
    recovery_scan_cycles: u64,
}

impl Tally {
    fn detections(&self) -> u64 {
        self.signature_detections + self.watchdog_detections
    }

    fn mean_latency(&self) -> f64 {
        if self.detections() == 0 {
            0.0
        } else {
            self.latency_rounds_total as f64 / self.detections() as f64
        }
    }
}

/// One mission: `rounds` sessions under per-bit upset probability `p`.
/// Corruption accumulates across rounds until a detection triggers the
/// scan-reload (restoring the store), mirroring a field deployment where
/// the only repair mechanism is the recovery path itself.
fn mission<C: BistController + ScanRecoverable>(
    unit: &mut BistUnit<C>,
    geometry: &MemGeometry,
    p: f64,
    rounds: u64,
    rng: &mut u64,
    tally: &mut Tally,
) {
    let policy = RecoveryPolicy::default();
    let store_bits = unit.controller().store_bits();
    // round index of the oldest still-undetected corruption
    let mut corrupt_since: Option<u64> = None;
    for round in 0..rounds {
        let mut flipped = 0u64;
        for bit in 0..store_bits {
            if unit_f64(rng) < p {
                unit.controller_mut().inject_upset(bit);
                flipped += 1;
            }
        }
        tally.rounds += 1;
        tally.flips += flipped;
        if flipped > 0 && corrupt_since.is_none() {
            corrupt_since = Some(round);
        }
        if corrupt_since.is_some() {
            tally.corrupted_rounds += 1;
        }

        let mut mem = MemoryArray::new(*geometry);
        let caught = match unit.run_protected(&mut mem, &policy) {
            Ok((_report, recovery)) => {
                tally.recovery_scan_cycles += recovery.recovery_scan_cycles;
                (recovery.reload_attempts > 0).then_some("signature")
            }
            Err(CoreError::CycleBudgetExceeded { .. }) => {
                // aliased corruption hung the controller; the watchdog
                // caught it — recover by hand and keep flying
                tally.recovery_scan_cycles += unit.controller_mut().scan_reload();
                Some("watchdog")
            }
            Err(e) => panic!("protected run cannot fail otherwise: {e}"),
        };
        match (caught, corrupt_since) {
            (Some(kind), Some(since)) => {
                let latency = round - since;
                tally.latency_rounds_total += latency;
                tally.latency_rounds_max = tally.latency_rounds_max.max(latency);
                if kind == "signature" {
                    tally.signature_detections += 1;
                } else {
                    tally.watchdog_detections += 1;
                }
                corrupt_since = None;
            }
            (None, Some(_)) => tally.silent_rounds += 1,
            _ => {}
        }
    }
}

fn sweep(
    arch: &str,
    test: &MarchTest,
    geometry: &MemGeometry,
    p: f64,
    missions: u64,
    rounds: u64,
    seed: u64,
) -> Tally {
    let mut tally = Tally::default();
    let mut rng = seed;
    for _ in 0..missions {
        match arch {
            "microcode" => {
                let mut unit = MicrocodeBist::for_test(test, geometry)
                    .expect("march-c compiles for microcode");
                mission(&mut unit, geometry, p, rounds, &mut rng, &mut tally);
            }
            "progfsm" => {
                let mut unit = ProgFsmBist::for_test(test, geometry)
                    .expect("march-c compiles for progfsm");
                mission(&mut unit, geometry, p, rounds, &mut rng, &mut tally);
            }
            _ => unreachable!("unknown architecture {arch}"),
        }
    }
    tally
}

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_robustness.json".to_string());

    let (missions, rounds) = if quick { (8, 16) } else { (64, 64) };
    let rates = [1e-3, 5e-3, 2e-2, 8e-2];
    let geometry = MemGeometry::bit_oriented(16);
    let test = library::march_c();

    let mut table = String::new();
    let _ = writeln!(
        table,
        "{:<10} {:>8} {:>10} {:>10} {:>9} {:>9} {:>8} {:>8} {:>12}",
        "arch",
        "rate",
        "corrupted",
        "signature",
        "watchdog",
        "silent",
        "lat.mean",
        "lat.max",
        "scan-clocks"
    );
    let mut json = String::from("[\n");
    let mut first = true;
    for arch in ["microcode", "progfsm"] {
        for &p in &rates {
            let t = sweep(arch, &test, &geometry, p, missions, rounds, 0x0b5e_55ed);
            let _ = writeln!(
                table,
                "{:<10} {:>8} {:>10} {:>10} {:>9} {:>9} {:>8.2} {:>8} {:>12}",
                arch,
                format!("{p:.0e}"),
                t.corrupted_rounds,
                t.signature_detections,
                t.watchdog_detections,
                t.silent_rounds,
                t.mean_latency(),
                t.latency_rounds_max,
                t.recovery_scan_cycles,
            );
            if !first {
                json.push_str(",\n");
            }
            first = false;
            let _ = write!(
                json,
                "  {{\"arch\": \"{arch}\", \"upset_rate\": {p}, \"missions\": {missions}, \
                 \"rounds\": {}, \"corrupted_rounds\": {}, \"flips\": {}, \
                 \"signature_detections\": {}, \"watchdog_detections\": {}, \
                 \"silent_rounds\": {}, \"mean_latency_rounds\": {:.4}, \
                 \"max_latency_rounds\": {}, \"recovery_scan_cycles\": {}}}",
                t.rounds,
                t.corrupted_rounds,
                t.flips,
                t.signature_detections,
                t.watchdog_detections,
                t.silent_rounds,
                t.mean_latency(),
                t.latency_rounds_max,
                t.recovery_scan_cycles,
            );
        }
    }
    json.push_str("\n]\n");

    println!("robustness sweep: march-c on {geometry}, {missions} missions × {rounds} rounds per cell");
    println!("{table}");
    println!(
        "every single-bit upset is caught in-round by the 16-column interleaved \
         parity; latency > 0 and watchdog catches only arise from multi-bit \
         aliasing, silent rounds are aliased corruptions that neither signature \
         nor watchdog has caught yet"
    );
    match fs::write(&out_path, &json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => eprintln!("could not write {out_path}: {e}"),
    }
}
