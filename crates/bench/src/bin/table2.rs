//! Regenerates the paper's **Table 2**: size of the memory BIST
//! methodology for word-oriented and multiport memories.

use mbist_area::{table2, Technology};

fn main() {
    let tech = Technology::cmos5s();
    println!("{}", table2(&tech));
    println!(
        "Note: controller internal area only; the shared datapath (address\n\
         generator, comparator) grows identically for every architecture and\n\
         is excluded, as in the paper's controller-size comparison."
    );
}
