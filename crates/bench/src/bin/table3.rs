//! Regenerates the paper's **Table 3**: adjusted size of the
//! microcode-based controller with scan-only storage cells, plus the
//! storage-cell sensitivity sweep behind the paper's observation that
//! storage-unit area reductions have the largest effect.

use mbist_area::{storage_cell_sweep, table3, Technology};

fn main() {
    let tech = Technology::cmos5s();
    println!("{}", table3(&tech));

    println!("Storage-cell area sensitivity (microcode controller, bit-oriented):");
    println!("{:>12} {:>16} {:>18}", "cell GE", "controller GE", "storage fraction");
    for p in storage_cell_sweep(&tech, 1.0, 8.0, 8) {
        println!(
            "{:>12.2} {:>16.0} {:>17.0}%",
            p.cell_ge,
            p.controller_ge,
            p.storage_fraction * 100.0
        );
    }
}
