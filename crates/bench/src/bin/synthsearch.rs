//! Std-only search-synthesis benchmark.
//!
//! Runs both `mbist-search` strategies (the seeded evolutionary loop and
//! the primitive composition) on the classic static fault universe
//! (SAF/TF/CFin/CFid/CFst, stride-sampled) with the packed engine as the
//! fitness oracle, and compares the found test's length against the
//! classical March C / March C+ / March C++ at the coverage each achieves
//! on the *same* sampled universe — the apples-to-apples answer to "did
//! the search find something at least as short as the handwritten tests".
//!
//! Beyond the strategy rows it measures the batched oracle head-to-head
//! against the serial legacy path (one `expand → compile → detect` round
//! trip per candidate) on a canonicalized search-shaped candidate stream,
//! printing a `batched_vs_serial X.XXx` line CI gates on, and — in full
//! mode — a wide 1024×1 / 11-class throughput row that exercises the
//! non-batchable fallbacks too.
//!
//! Prints a human summary plus one `search OK` line per strategy that CI
//! greps for (found coverage reaches the target AND the found test is no
//! longer than March C), and emits `BENCH_synth.json` with found length,
//! coverage, the oracle's compile/simulate wall split and batched
//! throughput for both strategies alongside the reference rows. All
//! timing lives in nested `"timing"` objects so determinism checks can
//! strip it wholesale. `--quick` shrinks the workload for smoke runs;
//! `--out PATH` overrides the JSON path.
//!
//! No external crates: timing via `std::time::Instant`, JSON by hand.

use std::fmt::Write as _;
use std::time::Instant;
use std::{env, fs};

use mbist_march::{
    expand_with, library, CancelToken, CandidateBatchScorer, CompiledTrace, ComplementMask,
    ExpandOptions, MarchElement, MarchItem, MarchTest, SimEngine,
};
use mbist_mem::{subset_universe, FaultClass, FaultKind, MemGeometry, UniverseSpec};
use mbist_search::{canonical_elements, search_march, SearchOptions, Strategy};

/// The classic static classes every March C variant targets.
const CLASSES: [FaultClass; 5] = [
    FaultClass::StuckAt,
    FaultClass::Transition,
    FaultClass::CouplingInversion,
    FaultClass::CouplingIdempotent,
    FaultClass::CouplingState,
];

/// The seed benchmark's measured evolutionary throughput at the reference
/// configuration (256×1, 5 classes, budget 2000, seed 1) before the
/// batched oracle landed — the denominator of `speedup_vs_baseline`.
const BASELINE_CANDIDATES_PER_SEC: f64 = 2409.47;

struct StrategyRow {
    strategy: &'static str,
    test: String,
    ops_per_cell: usize,
    detected: usize,
    total: usize,
    converged: bool,
    evaluations: usize,
    generations: usize,
    memo_hits: usize,
    /// Identical-trajectory repetitions the wall figures are the best of.
    reps: usize,
    wall_ns: u128,
    compile_ns: u64,
    simulate_ns: u64,
    candidates_per_sec: f64,
    /// Only the full-mode evolutionary row runs the reference
    /// configuration the baseline was measured on.
    speedup_vs_baseline: Option<f64>,
}

struct ReferenceRow {
    name: String,
    ops_per_cell: usize,
    detected: usize,
    total: usize,
}

/// A reference test's detection count on the same sampled universe the
/// search optimizes against.
fn reference_row(
    test: &MarchTest,
    geometry: &MemGeometry,
    universe: &[FaultKind],
) -> ReferenceRow {
    let steps = expand_with(test, geometry, &ExpandOptions::for_geometry(geometry));
    let trace = CompiledTrace::from_steps(*geometry, &steps);
    let flags = trace.detect_universe(universe, None, SimEngine::Packed);
    ReferenceRow {
        name: test.name().to_string(),
        ops_per_cell: test.ops_per_cell(),
        detected: flags.iter().filter(|&&d| d).count(),
        total: universe.len(),
    }
}

/// A deterministic search-shaped candidate stream: canonicalized library
/// element sequences plus systematic single-edit variants (order
/// complement, element drop, element swap). Canonicalization matters — the
/// evolutionary loop only ever submits fault-free clean candidates, so the
/// stream must replay clean too for the head-to-head to exercise the same
/// oracle fast paths a real search hits.
fn candidate_stream(n: usize) -> Vec<MarchTest> {
    let base: Vec<Vec<MarchElement>> = library::all()
        .iter()
        .map(|t| t.elements().cloned().collect::<Vec<_>>())
        .filter(|e: &Vec<MarchElement>| !e.is_empty())
        .collect();
    let mut out = Vec::new();
    let mut k = 0usize;
    while out.len() < n {
        for b in &base {
            if out.len() >= n {
                break;
            }
            let mut e = b.clone();
            match k % 4 {
                0 => {}
                1 => {
                    let i = k % e.len();
                    e[i] = e[i].complemented(ComplementMask {
                        order: true,
                        data: false,
                        compare: false,
                    });
                }
                2 => {
                    if e.len() > 1 {
                        e.remove(k % e.len());
                    }
                }
                _ => {
                    let i = k % e.len();
                    let j = (k / 2) % e.len();
                    e.swap(i, j);
                }
            }
            out.push(MarchTest::new(
                format!("cand-{}", out.len()),
                canonical_elements(&e).into_iter().map(MarchItem::Element).collect(),
            ));
            k += 1;
        }
    }
    out
}

struct HeadToHead {
    candidates: usize,
    serial_ns: u128,
    batched_ns: u128,
    compile_ns: u64,
    simulate_ns: u64,
    speedup: f64,
}

/// The batched oracle against the serial legacy path on the same
/// candidates, same universe, same early-exit bound — identical counts
/// asserted, wall clocks compared. The scorer is constructed outside the
/// timed region, mirroring a real search (the universe plan is built once
/// per run and amortized over the whole budget).
fn batched_vs_serial(
    geometry: MemGeometry,
    universe: &[FaultKind],
    candidates: usize,
) -> HeadToHead {
    let batch = candidate_stream(candidates);
    let opts = ExpandOptions::for_geometry(&geometry);
    let stop = Some(universe.len());

    let started = Instant::now();
    let mut serial_counts = Vec::with_capacity(batch.len());
    for test in &batch {
        let steps = expand_with(test, &geometry, &opts);
        let trace = CompiledTrace::from_steps(geometry, &steps);
        let flags = trace.detect_universe(universe, stop, SimEngine::Packed);
        serial_counts.push(flags.iter().filter(|&&f| f).count());
    }
    let serial_ns = started.elapsed().as_nanos();

    let mut scorer =
        CandidateBatchScorer::new(geometry, opts, universe.to_vec(), SimEngine::Packed);
    let started = Instant::now();
    let scored = scorer.score_batch(&batch, stop, None, &CancelToken::none());
    let batched_ns = started.elapsed().as_nanos();
    let batched_counts: Vec<usize> =
        scored.into_iter().map(|s| s.expect("uncancelled slot scored")).collect();
    assert_eq!(
        batched_counts, serial_counts,
        "batched scorer diverged from the serial reference"
    );
    let (compile_ns, simulate_ns) = scorer.timing();

    HeadToHead {
        candidates: batch.len(),
        serial_ns,
        batched_ns,
        compile_ns,
        simulate_ns,
        speedup: serial_ns as f64 / batched_ns.max(1) as f64,
    }
}

fn run_strategy(
    strategy: Strategy,
    options: &SearchOptions,
    reps: usize,
    speedup_baseline: bool,
) -> StrategyRow {
    let options = SearchOptions { strategy, ..options.clone() };
    // The search is deterministic, so every rep runs the identical
    // trajectory; the fastest rep is the least-noise measurement of the
    // same work (the box shares its single core with neighbors).
    let (mut found, mut wall_ns) = (None, u128::MAX);
    for _ in 0..reps.max(1) {
        let started = Instant::now();
        let outcome = search_march("found", &options);
        let elapsed = started.elapsed().as_nanos();
        if elapsed < wall_ns {
            (found, wall_ns) = (Some(outcome), elapsed);
        }
    }
    let found = found.expect("at least one rep ran");
    let candidates_per_sec =
        if wall_ns == 0 { 0.0 } else { found.evaluations as f64 / (wall_ns as f64 / 1e9) };
    StrategyRow {
        strategy: strategy.label(),
        test: found.test.to_string(),
        ops_per_cell: found.test.ops_per_cell(),
        detected: found.detected,
        total: found.total,
        converged: found.converged,
        evaluations: found.evaluations,
        generations: found.generations,
        memo_hits: found.memo_hits,
        reps: reps.max(1),
        wall_ns,
        compile_ns: found.compile_ns,
        simulate_ns: found.simulate_ns,
        candidates_per_sec,
        speedup_vs_baseline: speedup_baseline
            .then_some(candidates_per_sec / BASELINE_CANDIDATES_PER_SEC),
    }
}

fn print_strategy(row: &StrategyRow) {
    let per_eval = |ns: u64| ns as f64 / 1e3 / row.evaluations.max(1) as f64;
    println!(
        "  {:<8} {}n, coverage {}/{} ({:.1}%), {} evaluations, {} generations, \
         {:.1} candidates/sec",
        row.strategy,
        row.ops_per_cell,
        row.detected,
        row.total,
        row.detected as f64 / row.total as f64 * 100.0,
        row.evaluations,
        row.generations,
        row.candidates_per_sec,
    );
    print!(
        "           compile {:.1} us/eval, simulate {:.1} us/eval, {} memo hits",
        per_eval(row.compile_ns),
        per_eval(row.simulate_ns),
        row.memo_hits,
    );
    match row.speedup_vs_baseline {
        Some(s) => println!(", {s:.2}x vs {BASELINE_CANDIDATES_PER_SEC}/s baseline"),
        None => println!(),
    }
}

fn timing_json(fields: &[(&str, String)]) -> String {
    let body: Vec<String> = fields.iter().map(|(k, v)| format!("\"{k}\": {v}")).collect();
    format!("{{{}}}", body.join(", "))
}

fn strategy_json(r: &StrategyRow) -> String {
    let mut timing = vec![
        ("reps", r.reps.to_string()),
        ("wall_ns", r.wall_ns.to_string()),
        ("compile_ns", r.compile_ns.to_string()),
        ("simulate_ns", r.simulate_ns.to_string()),
        ("candidates_per_sec_batched", format!("{:.2}", r.candidates_per_sec)),
    ];
    if let Some(s) = r.speedup_vs_baseline {
        timing.push(("speedup_vs_baseline", format!("{s:.2}")));
    }
    format!(
        "{{\"strategy\": \"{}\", \"test\": \"{}\", \"ops_per_cell\": {}, \
         \"detected\": {}, \"total\": {}, \"coverage\": {:.6}, \"converged\": {}, \
         \"evaluations\": {}, \"generations\": {}, \"memo_hits\": {}, \
         \"timing\": {}}}",
        r.strategy,
        json_escape(&r.test),
        r.ops_per_cell,
        r.detected,
        r.total,
        r.detected as f64 / r.total as f64,
        r.converged,
        r.evaluations,
        r.generations,
        r.memo_hits,
        timing_json(&timing),
    )
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_synth.json".to_string());

    let geometry = MemGeometry::bit_oriented(if quick { 64 } else { 256 });
    let max_faults_per_class = if quick { 128 } else { 256 };
    let budget = if quick { 600 } else { 2000 };
    let seed = 1u64;

    let universe = subset_universe(
        &geometry,
        &CLASSES,
        &UniverseSpec::default(),
        max_faults_per_class,
    );
    println!(
        "search synthesis on {geometry}: {} sampled faults (saf,tf,cfin,cfid,cfst), \
         budget {budget}, seed {seed}",
        universe.len()
    );

    let references: Vec<ReferenceRow> =
        [library::march_c(), library::march_c_plus(), library::march_c_plus_plus()]
            .iter()
            .map(|t| reference_row(t, &geometry, &universe))
            .collect();
    let march_c = &references[0];

    let options = SearchOptions {
        geometry,
        classes: CLASSES.to_vec(),
        max_faults_per_class,
        budget,
        seed,
        ..SearchOptions::default()
    };
    let rows: Vec<StrategyRow> = [Strategy::Evolutionary, Strategy::Composition]
        .into_iter()
        .map(|strategy| {
            let row = run_strategy(
                strategy,
                &options,
                5,
                !quick && strategy == Strategy::Evolutionary,
            );
            print_strategy(&row);
            row
        })
        .collect();

    // The oracle head-to-head, always on the reference 256×1 universe so
    // the `batched_vs_serial` CI floor measures the configuration the
    // speedup claim is made at (quick mode only trims the candidate
    // count — the whole comparison costs tens of milliseconds).
    let h2h_geometry = MemGeometry::bit_oriented(256);
    let h2h_universe =
        subset_universe(&h2h_geometry, &CLASSES, &UniverseSpec::default(), 256);
    let h2h = batched_vs_serial(h2h_geometry, &h2h_universe, if quick { 96 } else { 256 });
    println!(
        "  batched_vs_serial {:.2}x ({} candidates: serial {:.1} us/cand, \
         batched {:.1} us/cand)",
        h2h.speedup,
        h2h.candidates,
        h2h.serial_ns as f64 / 1e3 / h2h.candidates as f64,
        h2h.batched_ns as f64 / 1e3 / h2h.candidates as f64,
    );

    // Full mode only: the wide 1024×1 row over every fault class, which
    // drags in the non-batchable fallbacks (decoder faults keep the
    // steps-free and sparse-support fast paths off) — sustained throughput
    // on the heavy configuration, not an acceptance gate.
    let wide = (!quick).then(|| {
        let wide_geometry = MemGeometry::bit_oriented(1024);
        let wide_options = SearchOptions {
            geometry: wide_geometry,
            classes: FaultClass::ALL.to_vec(),
            max_faults_per_class,
            budget: 800,
            seed,
            ..SearchOptions::default()
        };
        let row = run_strategy(Strategy::Evolutionary, &wide_options, 1, false);
        println!(
            "  wide {wide_geometry} {}-class: {}/{} ({:.1}%), {} evaluations, \
             {:.1} candidates/sec",
            FaultClass::ALL.len(),
            row.detected,
            row.total,
            row.detected as f64 / row.total as f64 * 100.0,
            row.evaluations,
            row.candidates_per_sec,
        );
        (wide_geometry, row)
    });

    println!("  references on the same universe:");
    for r in &references {
        println!(
            "  {:<10} {}n, coverage {}/{} ({:.1}%)",
            r.name,
            r.ops_per_cell,
            r.detected,
            r.total,
            r.detected as f64 / r.total as f64 * 100.0
        );
    }

    // The acceptance gate: each strategy converges on the full universe
    // and finds a test no longer than the handwritten March C at the same
    // (100%) coverage.
    for row in &rows {
        assert!(row.converged, "{} did not reach the coverage target", row.strategy);
        assert_eq!(row.detected, row.total, "{} below 100% coverage", row.strategy);
        assert_eq!(march_c.detected, march_c.total, "march-c below 100% on this universe");
        assert!(
            row.ops_per_cell <= march_c.ops_per_cell,
            "{} found {}n, longer than march-c's {}n",
            row.strategy,
            row.ops_per_cell,
            march_c.ops_per_cell
        );
        println!(
            "search OK: {} {}n at 100.0% <= march-c {}n at 100.0%",
            row.strategy, row.ops_per_cell, march_c.ops_per_cell
        );
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"geometry\": \"{geometry}\",");
    let _ =
        writeln!(json, "  \"universe\": [\"saf\", \"tf\", \"cfin\", \"cfid\", \"cfst\"],");
    let _ = writeln!(json, "  \"faults\": {},", universe.len());
    let _ = writeln!(json, "  \"max_faults_per_class\": {max_faults_per_class},");
    let _ = writeln!(json, "  \"budget\": {budget},");
    let _ = writeln!(json, "  \"seed\": {seed},");
    let _ =
        writeln!(json, "  \"baseline_candidates_per_sec\": {BASELINE_CANDIDATES_PER_SEC},");
    json.push_str("  \"strategies\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {}{}",
            strategy_json(r),
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"batched_vs_serial\": {{\"geometry\": \"{}\", \"candidates\": {}, \
         \"faults\": {}, \"timing\": {}}},",
        h2h_geometry,
        h2h.candidates,
        h2h_universe.len(),
        timing_json(&[
            ("serial_ns", h2h.serial_ns.to_string()),
            ("batched_ns", h2h.batched_ns.to_string()),
            ("compile_ns", h2h.compile_ns.to_string()),
            ("simulate_ns", h2h.simulate_ns.to_string()),
            ("speedup", format!("{:.2}", h2h.speedup)),
        ]),
    );
    if let Some((wide_geometry, row)) = &wide {
        let _ = writeln!(
            json,
            "  \"wide\": {{\"geometry\": \"{}\", \"classes\": {}, {}}},",
            wide_geometry,
            FaultClass::ALL.len(),
            strategy_json(row).trim_matches(['{', '}']),
        );
    }
    json.push_str("  \"references\": [\n");
    for (i, r) in references.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"test\": \"{}\", \"ops_per_cell\": {}, \"detected\": {}, \
             \"total\": {}, \"coverage\": {:.6}}}{}",
            json_escape(&r.name),
            r.ops_per_cell,
            r.detected,
            r.total,
            r.detected as f64 / r.total as f64,
            if i + 1 < references.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    fs::write(&out_path, json).expect("write benchmark JSON");
    println!("wrote {out_path}");
}
