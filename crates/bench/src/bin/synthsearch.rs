//! Std-only search-synthesis benchmark.
//!
//! Runs both `mbist-search` strategies (the seeded evolutionary loop and
//! the primitive composition) on the classic static fault universe
//! (SAF/TF/CFin/CFid/CFst, stride-sampled) with the packed engine as the
//! fitness oracle, and compares the found test's length against the
//! classical March C / March C+ / March C++ at the coverage each achieves
//! on the *same* sampled universe — the apples-to-apples answer to "did
//! the search find something at least as short as the handwritten tests".
//!
//! Prints a human summary plus one `search OK` line per strategy that CI
//! greps for (found coverage reaches the target AND the found test is no
//! longer than March C), and emits `BENCH_synth.json` with found length,
//! coverage and candidates/sec for both strategies alongside the
//! reference rows. `--quick` shrinks the workload for smoke runs;
//! `--out PATH` overrides the JSON path.
//!
//! No external crates: timing via `std::time::Instant`, JSON by hand.

use std::fmt::Write as _;
use std::time::Instant;
use std::{env, fs};

use mbist_march::{
    expand_with, library, CompiledTrace, ExpandOptions, MarchTest, SimEngine,
};
use mbist_mem::{subset_universe, FaultClass, MemGeometry, UniverseSpec};
use mbist_search::{search_march, SearchOptions, Strategy};

/// The classic static classes every March C variant targets.
const CLASSES: [FaultClass; 5] = [
    FaultClass::StuckAt,
    FaultClass::Transition,
    FaultClass::CouplingInversion,
    FaultClass::CouplingIdempotent,
    FaultClass::CouplingState,
];

struct StrategyRow {
    strategy: &'static str,
    test: String,
    ops_per_cell: usize,
    detected: usize,
    total: usize,
    converged: bool,
    evaluations: usize,
    generations: usize,
    wall_ns: u128,
    candidates_per_sec: f64,
}

struct ReferenceRow {
    name: String,
    ops_per_cell: usize,
    detected: usize,
    total: usize,
}

/// A reference test's detection count on the same sampled universe the
/// search optimizes against.
fn reference_row(
    test: &MarchTest,
    geometry: &MemGeometry,
    universe: &[mbist_mem::FaultKind],
) -> ReferenceRow {
    let steps = expand_with(test, geometry, &ExpandOptions::for_geometry(geometry));
    let trace = CompiledTrace::from_steps(*geometry, &steps);
    let flags = trace.detect_universe(universe, None, SimEngine::Packed);
    ReferenceRow {
        name: test.name().to_string(),
        ops_per_cell: test.ops_per_cell(),
        detected: flags.iter().filter(|&&d| d).count(),
        total: universe.len(),
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_synth.json".to_string());

    let geometry = MemGeometry::bit_oriented(if quick { 64 } else { 256 });
    let max_faults_per_class = if quick { 128 } else { 256 };
    let budget = if quick { 600 } else { 2000 };
    let seed = 1u64;

    let universe = subset_universe(
        &geometry,
        &CLASSES,
        &UniverseSpec::default(),
        max_faults_per_class,
    );
    println!(
        "search synthesis on {geometry}: {} sampled faults (saf,tf,cfin,cfid,cfst), \
         budget {budget}, seed {seed}",
        universe.len()
    );

    let references: Vec<ReferenceRow> =
        [library::march_c(), library::march_c_plus(), library::march_c_plus_plus()]
            .iter()
            .map(|t| reference_row(t, &geometry, &universe))
            .collect();
    let march_c = &references[0];

    let mut rows: Vec<StrategyRow> = Vec::new();
    for strategy in [Strategy::Evolutionary, Strategy::Composition] {
        let options = SearchOptions {
            geometry,
            classes: CLASSES.to_vec(),
            max_faults_per_class,
            budget,
            seed,
            strategy,
            ..SearchOptions::default()
        };
        let started = Instant::now();
        let found = search_march("found", &options);
        let wall_ns = started.elapsed().as_nanos();
        let candidates_per_sec = if wall_ns == 0 {
            0.0
        } else {
            found.evaluations as f64 / (wall_ns as f64 / 1e9)
        };
        println!(
            "  {:<8} {}n, coverage {}/{} ({:.1}%), {} evaluations, {} generations, \
             {:.1} candidates/sec",
            strategy.label(),
            found.test.ops_per_cell(),
            found.detected,
            found.total,
            found.coverage() * 100.0,
            found.evaluations,
            found.generations,
            candidates_per_sec,
        );
        rows.push(StrategyRow {
            strategy: strategy.label(),
            test: found.test.to_string(),
            ops_per_cell: found.test.ops_per_cell(),
            detected: found.detected,
            total: found.total,
            converged: found.converged,
            evaluations: found.evaluations,
            generations: found.generations,
            wall_ns,
            candidates_per_sec,
        });
    }

    println!("  references on the same universe:");
    for r in &references {
        println!(
            "  {:<10} {}n, coverage {}/{} ({:.1}%)",
            r.name,
            r.ops_per_cell,
            r.detected,
            r.total,
            r.detected as f64 / r.total as f64 * 100.0
        );
    }

    // The acceptance gate: each strategy converges on the full universe
    // and finds a test no longer than the handwritten March C at the same
    // (100%) coverage.
    for row in &rows {
        assert!(row.converged, "{} did not reach the coverage target", row.strategy);
        assert_eq!(row.detected, row.total, "{} below 100% coverage", row.strategy);
        assert_eq!(march_c.detected, march_c.total, "march-c below 100% on this universe");
        assert!(
            row.ops_per_cell <= march_c.ops_per_cell,
            "{} found {}n, longer than march-c's {}n",
            row.strategy,
            row.ops_per_cell,
            march_c.ops_per_cell
        );
        println!(
            "search OK: {} {}n at 100.0% <= march-c {}n at 100.0%",
            row.strategy, row.ops_per_cell, march_c.ops_per_cell
        );
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"geometry\": \"{geometry}\",");
    let _ =
        writeln!(json, "  \"universe\": [\"saf\", \"tf\", \"cfin\", \"cfid\", \"cfst\"],");
    let _ = writeln!(json, "  \"faults\": {},", universe.len());
    let _ = writeln!(json, "  \"max_faults_per_class\": {max_faults_per_class},");
    let _ = writeln!(json, "  \"budget\": {budget},");
    let _ = writeln!(json, "  \"seed\": {seed},");
    json.push_str("  \"strategies\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"strategy\": \"{}\", \"test\": \"{}\", \"ops_per_cell\": {}, \
             \"detected\": {}, \"total\": {}, \"coverage\": {:.6}, \"converged\": {}, \
             \"evaluations\": {}, \"generations\": {}, \"wall_ns\": {}, \
             \"candidates_per_sec\": {:.2}}}{}",
            r.strategy,
            json_escape(&r.test),
            r.ops_per_cell,
            r.detected,
            r.total,
            r.detected as f64 / r.total as f64,
            r.converged,
            r.evaluations,
            r.generations,
            r.wall_ns,
            r.candidates_per_sec,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n  \"references\": [\n");
    for (i, r) in references.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"test\": \"{}\", \"ops_per_cell\": {}, \"detected\": {}, \
             \"total\": {}, \"coverage\": {:.6}}}{}",
            json_escape(&r.name),
            r.ops_per_cell,
            r.detected,
            r.total,
            r.detected as f64 / r.total as f64,
            if i + 1 < references.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    fs::write(&out_path, json).expect("write benchmark JSON");
    println!("wrote {out_path}");
}
