//! Regenerates the paper's figures and the extension studies.
//!
//! Usage: `figures [fig1|fig2|fig4|fig5|coverage|overhead|loadtime|transparent|all]`
//!
//! - `fig1`: microcode controller datapath trace (Fig. 1 in action),
//! - `fig2`: the 9-instruction March C microcode program (Fig. 2),
//! - `fig4`: lower/upper programmable-FSM state walk (Fig. 4),
//! - `fig5`: the 8-instruction March C FSM program (Fig. 5),
//! - `coverage`: per-algorithm fault-coverage matrix (extension Ext-1),
//! - `overhead`: controller cycle overhead comparison (extension),
//! - `loadtime`: scan-load time of the programmable architectures,
//! - `transparent`: content-preserving in-field test demo (Ext-4).

use mbist_bench::run_all_architectures;
use mbist_core::{
    microcode::{self, MicrocodeBist},
    progfsm::{self, ProgFsmBist},
};
use mbist_march::{
    evaluate_coverage, library, run_transparent, CoverageOptions, MarchTest,
};
use mbist_mem::{FaultClass, MemGeometry, MemoryArray, PortId};
use mbist_rtl::Trace;

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let run_all = arg == "all";
    if run_all || arg == "fig1" {
        fig1();
    }
    if run_all || arg == "fig2" {
        fig2();
    }
    if run_all || arg == "fig4" {
        fig4();
    }
    if run_all || arg == "fig5" {
        fig5();
    }
    if run_all || arg == "coverage" {
        coverage();
    }
    if run_all || arg == "overhead" {
        overhead();
    }
    if run_all || arg == "loadtime" {
        loadtime();
    }
    if run_all || arg == "transparent" {
        transparent();
    }
    if run_all || arg == "sharing" {
        sharing();
    }
    if run_all || arg == "online" {
        online();
    }
    if run_all || arg == "synth" {
        synth();
    }
}

/// Extension — march-test synthesis for a target fault mix.
fn synth() {
    use mbist_march::{synthesize_march, SynthesisOptions};
    println!("== Extension: march-test synthesis for target fault mixes ==");
    let mixes: [(&str, Vec<FaultClass>); 3] = [
        ("saf-only", vec![FaultClass::StuckAt]),
        (
            "static",
            vec![FaultClass::StuckAt, FaultClass::Transition, FaultClass::AddressDecoder],
        ),
        (
            "coupling",
            vec![
                FaultClass::StuckAt,
                FaultClass::Transition,
                FaultClass::CouplingInversion,
                FaultClass::CouplingIdempotent,
            ],
        ),
    ];
    for (label, classes) in mixes {
        let options = SynthesisOptions { classes, ..SynthesisOptions::default() };
        let result = synthesize_march(label, &options);
        println!(
            "{label:<10} {:>2}n  coverage {:>3}/{:<3}  ({} evaluations)\n           {}",
            result.test.ops_per_cell(),
            result.detected,
            result.total,
            result.evaluations,
            result.test
        );
    }
    println!();
}

/// Extension — SoC controller-sharing crossover (the paper's "lower
/// overall memory test logic overhead" claim).
fn sharing() {
    use mbist_area::{crossover_memory_count, sharing_analysis, SocMemory, Technology};
    println!("== Extension: shared programmable controller vs dedicated hardwired ==");
    let tech = Technology::cmos5s();
    let lifecycle =
        vec![library::march_c(), library::march_c_plus(), library::march_c_plus_plus()];
    let template = SocMemory {
        name: "sram".into(),
        geometry: MemGeometry::word_oriented(1024, 8),
        algorithms: lifecycle,
    };
    println!(
        "{:>4} {:>22} {:>22} {:>22}",
        "N", "shared prog (GE)", "dedicated hw (GE)", "dedicated prog (GE)"
    );
    for n in [1usize, 2, 4, 8, 16] {
        let memories: Vec<SocMemory> = (0..n)
            .map(|i| SocMemory {
                name: format!("sram{i}"),
                geometry: template.geometry,
                algorithms: template.algorithms.clone(),
            })
            .collect();
        let a = sharing_analysis(&tech, &memories);
        println!(
            "{:>4} {:>22.0} {:>22.0} {:>22.0}",
            n,
            a.shared_programmable_ge,
            a.dedicated_hardwired_ge,
            a.dedicated_programmable_ge
        );
    }
    match crossover_memory_count(&tech, &template, 32) {
        Some(n) => println!(
            "crossover: sharing wins from {n} memories (3 lifecycle algorithms each)\n"
        ),
        None => println!("no crossover within 32 memories\n"),
    }
}

/// Extension — periodic on-line transparent testing and detection latency.
fn online() {
    use mbist_core::online::{run_periodic, OnlineConfig};
    use mbist_mem::{CellId, FaultKind};
    println!("== Extension: periodic on-line transparent testing (32x8) ==");
    let g = MemGeometry::word_oriented(32, 8);
    for (label, inject) in [
        ("healthy part, 8 rounds", None),
        (
            "SAF appears at round 3",
            Some((3usize, FaultKind::StuckAt { cell: CellId::new(9, 4), value: true })),
        ),
        (
            "TF appears at round 2",
            Some((
                2usize,
                FaultKind::Transition { cell: CellId::new(20, 1), rising: false },
            )),
        ),
    ] {
        let mut mem = MemoryArray::new(g);
        mem.randomize(7);
        let report = run_periodic(
            &mut mem,
            &library::march_c(),
            8,
            &OnlineConfig::default(),
            inject,
        );
        println!(
            "{label:<26} rounds={} detected_at={:?} content_upsets={} test_cycles={}",
            report.rounds_run,
            report.detection_round,
            report.content_upsets,
            report.test_cycles
        );
    }
    println!();
}

/// Fig. 1 — the microcode controller driving the datapath, as a signal
/// trace over a tiny memory.
fn fig1() {
    println!("== Fig. 1: microcode-based BIST controller, March C on a 4x1 memory ==");
    let g = MemGeometry::bit_oriented(4);
    let mut unit =
        MicrocodeBist::for_test(&library::march_c(), &g).expect("march C compiles");
    let mut mem = MemoryArray::new(g);
    let mut trace = Trace::new();
    let report = unit.run_traced(&mut mem, &mut trace);
    println!("{}", trace.render(1, report.cycles));
    println!(
        "cycles: {} (bus {}, flow overhead {})\n",
        report.cycles,
        report.bus_cycles,
        report.overhead_cycles()
    );
}

/// Fig. 2 — the microcode instruction definition exercised by the March C
/// program.
fn fig2() {
    println!("== Fig. 2: March C microcode program (9 instructions) ==");
    let program = microcode::compile(&library::march_c()).expect("march C compiles");
    print!("{}", microcode::disassemble(&program));
    println!(
        "instructions: {} for the 10n March C — symmetric halves folded by \
         `repeat(order)` through the reference register\n",
        program.len()
    );
}

/// Fig. 4 — the 7-state lower FSM walking Idle→Reset→RW→Done per
/// component, with path A/B loop-backs.
fn fig4() {
    println!("== Fig. 4: programmable FSM lower/upper controller walk ==");
    let g = MemGeometry::bit_oriented(2);
    let mut unit =
        ProgFsmBist::for_test(&library::mats_plus(), &g).expect("MATS+ compiles");
    let mut mem = MemoryArray::new(g);
    let mut trace = Trace::new();
    let report = unit.run_traced(&mut mem, &mut trace);
    println!("{}", trace.render(1, report.cycles));
    println!(
        "cycles: {} (bus {}, Idle/Reset/Done handshake overhead {})\n",
        report.cycles,
        report.bus_cycles,
        report.overhead_cycles()
    );
}

/// Fig. 5 — the FSM-based instruction definition exercised by March C.
fn fig5() {
    println!("== Fig. 5: March C programmable-FSM program (8 instructions) ==");
    let program = progfsm::compile(&library::march_c()).expect("march C compiles");
    for (i, inst) in program.iter().enumerate() {
        println!("{i:>3}: {inst}");
    }
    println!();
}

/// Ext-1 — fault-coverage matrix across the algorithm library.
fn coverage() {
    println!("== Ext-1: fault coverage by serial fault simulation (64x1 memory) ==");
    let g = MemGeometry::bit_oriented(64);
    let classes = [
        FaultClass::StuckAt,
        FaultClass::Transition,
        FaultClass::AddressDecoder,
        FaultClass::CouplingInversion,
        FaultClass::CouplingIdempotent,
        FaultClass::CouplingState,
        FaultClass::StuckOpen,
        FaultClass::Retention,
        FaultClass::PullOpen,
        FaultClass::NpsfStatic,
        FaultClass::NpsfActive,
    ];
    print!("{:<12}", "algorithm");
    for c in classes {
        print!("{:>7}", c.label());
    }
    println!();
    for t in library::all() {
        let report = evaluate_coverage(
            &t,
            &g,
            &CoverageOptions {
                classes: classes.to_vec(),
                max_faults_per_class: Some(128),
                ..CoverageOptions::default()
            },
        );
        print!("{:<12}", t.name());
        for row in &report.rows {
            print!("{:>6.0}%", row.ratio() * 100.0);
        }
        println!();
    }
    println!();
}

/// Extension — cycle overhead of each controller architecture.
fn overhead() {
    println!("== Extension: controller cycle overhead, March C on 1Kx1 ==");
    let g = MemGeometry::bit_oriented(1024);
    println!(
        "{:<18} {:>10} {:>10} {:>10} {:>12}",
        "architecture", "cycles", "bus", "overhead", "overhead/op"
    );
    for (arch, report) in run_all_architectures(&library::march_c(), &g) {
        println!(
            "{:<18} {:>10} {:>10} {:>10} {:>11.4}%",
            arch,
            report.cycles,
            report.bus_cycles,
            report.overhead_cycles(),
            report.overhead_cycles() as f64 / report.bus_cycles as f64 * 100.0
        );
    }
    println!();
}

/// Extension — scan-load time of the programmable architectures (the
/// single-load property the paper contrasts against the multi-load patent
/// \[3\] scheme).
fn loadtime() {
    println!("== Extension: program load cost ==");
    let g = MemGeometry::bit_oriented(1024);
    for t in [library::march_c(), library::march_a(), library::march_c_plus()] {
        let unit = MicrocodeBist::for_test(&t, &g).expect("compiles");
        let scan_bits = unit.controller().scan_cycles();
        let prog = unit.controller().program().len();
        println!(
            "microcode  {:<10} {:>2} instructions, one scan load of {:>4} clocks",
            t.name(),
            prog,
            scan_bits
        );
    }
    for t in [library::march_c(), library::march_a()] {
        let unit = ProgFsmBist::for_test(&t, &g).expect("compiles");
        let prog = unit.controller().program().len();
        println!("prog-fsm   {:<10} {:>2} instructions, one parallel load", t.name(), prog);
    }
    println!();
}

/// Ext-4 — transparent (content-preserving) testing for in-field use.
fn transparent() {
    println!("== Ext-4: transparent March C on a 16x4 memory with live content ==");
    let g = MemGeometry::word_oriented(16, 4);
    let mut mem = MemoryArray::new(g);
    mem.randomize(2024);
    let before: Vec<u64> = (0..16).map(|a| mem.peek(a).value()).collect();
    let out = run_transparent(&mut mem, &library::march_c(), PortId(0));
    let after: Vec<u64> = (0..16).map(|a| mem.peek(a).value()).collect();
    println!("content before: {before:x?}");
    println!("content after : {after:x?}");
    println!(
        "passed: {}, content preserved: {}\n",
        out.report.passed(),
        out.content_preserved
    );
    let _ = check_transparent_compat(&library::mats());
}

fn check_transparent_compat(t: &MarchTest) -> bool {
    let ok = mbist_march::is_transparent_compatible(t);
    println!("{} is {}transparent-compatible", t.name(), if ok { "" } else { "NOT " });
    ok
}
