//! Std-only load generator for the mbist-service daemon.
//!
//! Four measurements against in-process servers on ephemeral ports:
//!
//! - **cold vs warm** — median `detects` latency on March C 1024×1 with the
//!   cache disabled (every request pays the trace compile) vs a warm trace
//!   cache (the acceptance criterion: warm must be ≥ 5× faster);
//! - **closed loop** — N clients each issuing requests back-to-back over
//!   one connection: sustained requests/s plus client-side p50/p95;
//! - **open loop** — a burst of concurrent slow requests against a
//!   deliberately tiny worker pool and queue: counts `ok` vs structured
//!   `busy` rejections, proving saturation sheds load instead of hanging;
//! - **agreement** — service responses compared byte-for-byte against the
//!   offline CLI (`agreement OK` lines that CI greps).
//!
//! `--quick` shrinks the workload for smoke runs; `--out PATH` overrides
//! the JSON path (default `BENCH_service.json`). With `--addr HOST:PORT`
//! the generator instead drives an already-running daemon (agreement check
//! plus a short closed-loop burst; add `--shutdown` to stop the daemon
//! afterwards) — the mode the CI service smoke test uses.
//!
//! No external crates: timing via `std::time::Instant`, JSON by hand on
//! the way out and via `mbist_service::json` on the way in.

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Instant;
use std::{env, fs, thread};

use mbist_service::json::Json;
use mbist_service::{Server, ServiceConfig};

/// One client connection with serial request/reply and per-request timing.
struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to service");
        stream.set_nodelay(true).expect("nodelay");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client { stream, reader }
    }

    /// Sends one request line, returns the parsed reply and the
    /// round-trip latency in microseconds. The newline is framed into a
    /// single write: a trailing-byte second segment would hit the
    /// Nagle/delayed-ACK interaction and cost ~40 ms per request.
    fn ask(&mut self, line: &str) -> (Json, u64) {
        let start = Instant::now();
        let mut framed = String::with_capacity(line.len() + 1);
        framed.push_str(line);
        framed.push('\n');
        self.stream.write_all(framed.as_bytes()).expect("send request");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("read reply");
        let micros = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        (Json::parse(reply.trim()).expect("reply is JSON"), micros)
    }
}

fn assert_ok(reply: &Json, context: &str) {
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true), "{context}: {reply}");
}

fn text_of(reply: &Json) -> &str {
    reply.get("text").and_then(Json::as_str).expect("text payload")
}

fn percentile(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((q * sorted_us.len() as f64).ceil() as usize).clamp(1, sorted_us.len());
    sorted_us[rank - 1]
}

fn cli(args: &[&str]) -> String {
    mbist_cli::run(&args.iter().map(ToString::to_string).collect::<Vec<_>>())
        .expect("offline CLI succeeds")
}

/// Sequential `detects` sweep over distinct faults; returns sorted
/// per-request latencies (µs). Distinct addresses keep the result memo out
/// of the picture, so warm runs measure exactly the trace-cache reuse.
fn detects_sweep(addr: &str, words: u64, count: usize) -> Vec<u64> {
    let mut client = Client::connect(addr);
    let mut lat = Vec::with_capacity(count);
    for i in 0..count {
        let line = format!(
            r#"{{"kind":"detects","test":"march-c","words":{words},"fault":"sa0@{}"}}"#,
            i as u64 % words
        );
        let (reply, us) = client.ask(&line);
        assert_ok(&reply, "detects sweep");
        lat.push(us);
    }
    lat.sort_unstable();
    lat
}

fn cold_vs_warm(words: u64, count: usize) -> (u64, u64, f64) {
    let cold_server = Server::start(
        "127.0.0.1:0",
        ServiceConfig { workers: 1, cache_bytes: 0, ..ServiceConfig::default() },
    )
    .expect("bind cold server");
    let cold = detects_sweep(&cold_server.local_addr().to_string(), words, count);
    cold_server.shutdown();
    let _ = cold_server.join();

    let warm_server = Server::start(
        "127.0.0.1:0",
        ServiceConfig { workers: 1, ..ServiceConfig::default() },
    )
    .expect("bind warm server");
    let warm_addr = warm_server.local_addr().to_string();
    // One warm-up request compiles and caches the trace before measuring.
    let _ = detects_sweep(&warm_addr, words, 1);
    let warm = detects_sweep(&warm_addr, words, count);
    warm_server.shutdown();
    let _ = warm_server.join();

    let cold_median = percentile(&cold, 0.5);
    let warm_median = percentile(&warm, 0.5);
    (cold_median, warm_median, cold_median as f64 / warm_median.max(1) as f64)
}

struct ClosedLoop {
    clients: usize,
    requests: usize,
    wall_ms: u64,
    requests_per_sec: f64,
    p50_us: u64,
    p95_us: u64,
    trace_hit_ratio: f64,
}

/// `clients` threads, each issuing `per_client` back-to-back requests over
/// its own connection against `addr`.
fn closed_loop(addr: &str, words: u64, clients: usize, per_client: usize) -> ClosedLoop {
    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let addr = addr.to_string();
            thread::spawn(move || {
                let mut client = Client::connect(&addr);
                let mut lat = Vec::with_capacity(per_client);
                for i in 0..per_client {
                    let fault = (c * 131 + i * 7) as u64 % words;
                    let line = format!(
                        r#"{{"kind":"detects","test":"march-c","words":{words},"fault":"sa1@{fault}"}}"#
                    );
                    let (reply, us) = client.ask(&line);
                    assert_ok(&reply, "closed loop");
                    lat.push(us);
                }
                lat
            })
        })
        .collect();
    let mut lat: Vec<u64> =
        handles.into_iter().flat_map(|h| h.join().expect("client thread")).collect();
    let wall_ms = u64::try_from(start.elapsed().as_millis()).unwrap_or(u64::MAX);
    lat.sort_unstable();
    let total = clients * per_client;

    let (status, _) = Client::connect(addr).ask(r#"{"kind":"status"}"#);
    assert_ok(&status, "status");
    let trace_hit_ratio = status
        .get("status")
        .and_then(|s| s.get("cache"))
        .and_then(|c| c.get("trace_hit_ratio"))
        .and_then(Json::as_f64)
        .unwrap_or(0.0);

    ClosedLoop {
        clients,
        requests: total,
        wall_ms,
        requests_per_sec: total as f64 * 1000.0 / wall_ms.max(1) as f64,
        p50_us: percentile(&lat, 0.5),
        p95_us: percentile(&lat, 0.95),
        trace_hit_ratio,
    }
}

/// A concurrent burst against a one-worker, two-slot server. Every client
/// gets a response — `ok` or a structured `busy` — and the two must sum to
/// the offered load (nobody hangs, nothing is dropped).
fn open_loop_burst(burst: usize, words: u64) -> (usize, usize) {
    let server = Server::start(
        "127.0.0.1:0",
        ServiceConfig { workers: 1, queue_depth: 2, ..ServiceConfig::default() },
    )
    .expect("bind burst server");
    let addr = server.local_addr().to_string();
    let handles: Vec<_> = (0..burst)
        .map(|_| {
            let addr = addr.clone();
            thread::spawn(move || {
                let line = format!(
                    r#"{{"kind":"coverage","test":"march-c","words":{words},"engine":"full"}}"#
                );
                let (reply, _) = Client::connect(&addr).ask(&line);
                match reply.get("ok").and_then(Json::as_bool) {
                    Some(true) => true,
                    Some(false) => {
                        let class = reply
                            .get("error")
                            .and_then(|e| e.get("class"))
                            .and_then(Json::as_str)
                            .expect("error class");
                        assert_eq!(class, "busy", "unexpected rejection: {reply}");
                        false
                    }
                    None => panic!("malformed reply {reply}"),
                }
            })
        })
        .collect();
    let oks = handles
        .into_iter()
        .map(|h| h.join().expect("burst client"))
        .filter(|ok| *ok)
        .count();
    server.shutdown();
    let _ = server.join();
    (oks, burst - oks)
}

/// Byte-identity of service responses vs the offline CLI; prints the
/// `agreement OK` lines CI greps and returns them for the JSON report.
fn agreement_check(addr: &str) -> Vec<String> {
    let mut client = Client::connect(addr);
    let mut lines = Vec::new();
    let cases: [(&str, String, Vec<&str>); 3] = [
        (
            "coverage march-c 256x1",
            r#"{"kind":"coverage","test":"march-c","words":256}"#.to_string(),
            vec!["coverage", "march-c", "--words", "256"],
        ),
        (
            "coverage mats+ 64x1",
            r#"{"kind":"coverage","test":"mats+","words":64}"#.to_string(),
            vec!["coverage", "mats+", "--words", "64"],
        ),
        ("area tables", r#"{"kind":"area"}"#.to_string(), vec!["area"]),
    ];
    for (label, request, cli_args) in cases {
        let (reply, _) = client.ask(&request);
        assert_ok(&reply, label);
        assert_eq!(text_of(&reply), cli(&cli_args), "{label}: service diverged from CLI");
        let line = format!("{label}: agreement OK");
        println!("{line}");
        lines.push(line);
    }
    lines
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let flag = |name: &str| {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
    };
    let out_path = flag("--out").unwrap_or_else(|| "BENCH_service.json".to_string());
    let external = flag("--addr");
    let host = thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    if let Some(addr) = external {
        // Drive an already-running daemon (the CI smoke path): determinism
        // agreement plus a short closed-loop burst, optional shutdown.
        println!("loadgen against external daemon {addr}");
        let agreement = agreement_check(&addr);
        let cl = closed_loop(&addr, 1024, 2, if quick { 10 } else { 50 });
        println!(
            "closed loop: {} requests in {} ms ({:.0} req/s, p50 {} us, p95 {} us, \
             trace hit ratio {:.3})",
            cl.requests,
            cl.wall_ms,
            cl.requests_per_sec,
            cl.p50_us,
            cl.p95_us,
            cl.trace_hit_ratio
        );
        if args.iter().any(|a| a == "--shutdown") {
            let (reply, _) = Client::connect(&addr).ask(r#"{"kind":"shutdown"}"#);
            assert_ok(&reply, "shutdown");
            println!("shutdown requested: daemon draining");
        }
        let mut json = String::new();
        json.push_str("{\n");
        let _ = writeln!(json, "  \"mode\": \"external\",");
        let _ = writeln!(json, "  \"requests_per_sec\": {:.1},", cl.requests_per_sec);
        let _ = writeln!(json, "  \"trace_hit_ratio\": {:.4},", cl.trace_hit_ratio);
        let agreement_json: Vec<String> =
            agreement.iter().map(|l| format!("\"{}\"", json_escape(l))).collect();
        let _ = writeln!(json, "  \"agreement\": [{}]", agreement_json.join(", "));
        json.push_str("}\n");
        fs::write(&out_path, json).expect("write benchmark JSON");
        println!("wrote {out_path}");
        return;
    }

    let sweep = if quick { 20 } else { 200 };
    let (clients, per_client) = if quick { (2, 50) } else { (4, 250) };
    let burst = if quick { 8 } else { 16 };
    println!("service load generator — host parallelism {host}, quick {quick}");

    // 1. Cold vs warm median detects latency on March C 1024×1 (the
    //    acceptance criterion: warm ≥ 5× faster than per-request compile).
    let (cold_us, warm_us, speedup) = cold_vs_warm(1024, sweep);
    println!(
        "cold vs warm (march-c 1024x1, {sweep} detects): median {cold_us} us cold, \
         {warm_us} us warm, warm_vs_cold {speedup:.1}x"
    );

    // 2. Closed-loop sustained throughput against a warm full-size pool.
    let server = Server::start("127.0.0.1:0", ServiceConfig::default()).expect("bind");
    let addr = server.local_addr().to_string();
    let cl = closed_loop(&addr, 1024, clients, per_client);
    println!(
        "closed loop ({} clients x {} requests): {} ms wall, {:.0} req/s, \
         p50 {} us, p95 {} us, trace hit ratio {:.3}",
        cl.clients,
        per_client,
        cl.wall_ms,
        cl.requests_per_sec,
        cl.p50_us,
        cl.p95_us,
        cl.trace_hit_ratio
    );

    // 3. Determinism agreement against the offline CLI, on the same warm
    //    server the throughput run just exercised.
    let agreement = agreement_check(&addr);
    server.shutdown();
    let summary = server.join();
    println!(
        "warm server drained: served {} request(s), {} queued at shutdown",
        summary.served, summary.drained
    );

    // 4. Open-loop burst against a deliberately saturated pool.
    let (oks, busys) = open_loop_burst(burst, 512);
    println!(
        "open loop burst ({burst} concurrent coverage requests, 1 worker, queue 2): \
         {oks} ok, {busys} busy (all answered, none hung)"
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"host_parallelism\": {host},");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"cold_warm\": {{");
    let _ = writeln!(json, "    \"workload\": \"march-c 1024x1 detects\",");
    let _ = writeln!(json, "    \"requests\": {sweep},");
    let _ = writeln!(json, "    \"cold_median_us\": {cold_us},");
    let _ = writeln!(json, "    \"warm_median_us\": {warm_us},");
    let _ = writeln!(json, "    \"warm_vs_cold\": {speedup:.2}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"closed_loop\": {{");
    let _ = writeln!(json, "    \"clients\": {},", cl.clients);
    let _ = writeln!(json, "    \"requests\": {},", cl.requests);
    let _ = writeln!(json, "    \"wall_ms\": {},", cl.wall_ms);
    let _ = writeln!(json, "    \"requests_per_sec\": {:.1},", cl.requests_per_sec);
    let _ = writeln!(json, "    \"p50_us\": {},", cl.p50_us);
    let _ = writeln!(json, "    \"p95_us\": {},", cl.p95_us);
    let _ = writeln!(json, "    \"trace_hit_ratio\": {:.4}", cl.trace_hit_ratio);
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"backpressure\": {{");
    let _ = writeln!(json, "    \"offered\": {burst},");
    let _ = writeln!(json, "    \"ok\": {oks},");
    let _ = writeln!(json, "    \"busy\": {busys}");
    let _ = writeln!(json, "  }},");
    let agreement_json: Vec<String> =
        agreement.iter().map(|l| format!("\"{}\"", json_escape(l))).collect();
    let _ = writeln!(json, "  \"agreement\": [{}]", agreement_json.join(", "));
    json.push_str("}\n");
    fs::write(&out_path, json).expect("write benchmark JSON");
    println!("wrote {out_path}");
}
