//! Std-only load generator for the mbist-service daemon.
//!
//! Measurements against in-process servers on ephemeral ports:
//!
//! - **cold vs warm** — median `detects` latency on March C 1024×1 with the
//!   cache disabled (every request pays the trace compile) vs a warm trace
//!   cache (the acceptance criterion: warm must be ≥ 5× faster);
//! - **closed loop** — N clients each issuing requests back-to-back over
//!   one connection: sustained requests/s plus client-side p50/p95;
//! - **rate sweep** — open-loop: requests sent on a fixed schedule
//!   regardless of replies, latency measured from the *scheduled* send
//!   time (no coordinated omission), showing where the daemon saturates;
//! - **shard curve** — the headline: 1/2/4 in-process shards driven by
//!   placement-aware pipelined clients (the router's own [`HashRing`] +
//!   [`placement_key_of`] decide which shard owns each geometry), in both
//!   line-JSON and binary framing, plus via-router points that price the
//!   extra hop;
//! - **open loop burst** — concurrent slow requests against a deliberately
//!   tiny worker pool and queue: counts `ok` vs structured `busy`
//!   rejections, proving saturation sheds load instead of hanging;
//! - **agreement** — service responses compared byte-for-byte against the
//!   offline CLI (`agreement OK` lines that CI greps).
//!
//! With `--chaos` the generator instead measures **resilience**: a sweep
//! over injected fault rates (worker panics, execution delays, connection
//! drops — see `mbist_service::chaos`) driven through a retrying client
//! with jittered exponential backoff, `retry_after_ms` honoring, and a
//! per-kind circuit breaker. It reports availability (terminal successes /
//! offered requests), tail latency including retries, and the recovery
//! time after a panic storm, into `BENCH_chaos.json`.
//!
//! `--quick` shrinks the workload for smoke runs; `--out PATH` overrides
//! the JSON path (default `BENCH_service.json`, or `BENCH_chaos.json` with
//! `--chaos`). With `--addr HOST:PORT` the generator instead drives an
//! already-running daemon (agreement check plus a short closed-loop burst;
//! add `--shutdown` to stop the daemon afterwards, `--protocol binary` to
//! speak the length-prefixed framing instead of line JSON) — the mode the
//! CI service smoke test uses; `--chaos --addr` drives a chaos-armed
//! external daemon through the resilient client and prints the
//! availability line the CI chaos smoke greps.
//!
//! No external crates: timing via `std::time::Instant`, JSON by hand on
//! the way out and via `mbist_service::json` on the way in.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::{self, BufRead, BufReader, ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::mpsc;
use std::time::{Duration, Instant};
use std::{env, fs, thread};

use mbist_service::binary;
use mbist_service::json::{escape, Json};
use mbist_service::protocol::parse_request_value;
use mbist_service::router::{placement_key_of, HashRing};
use mbist_service::{ChaosConfig, Router, RouterConfig, Server, ServiceConfig};

/// Which framing a connection speaks; the daemon auto-detects per message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Wire {
    Json,
    Binary,
}

impl Wire {
    fn label(self) -> &'static str {
        match self {
            Wire::Json => "json",
            Wire::Binary => "binary",
        }
    }
}

/// Pre-encodes one request line in `wire` framing. The JSON newline is
/// framed into a single buffer: a trailing-byte second write would hit
/// the Nagle/delayed-ACK interaction and cost ~40 ms per request.
fn encode_request(wire: Wire, line: &str) -> Vec<u8> {
    match wire {
        Wire::Json => {
            let mut bytes = Vec::with_capacity(line.len() + 1);
            bytes.extend_from_slice(line.as_bytes());
            bytes.push(b'\n');
            bytes
        }
        Wire::Binary => binary::encode_frame(&Json::parse(line).expect("request is JSON")),
    }
}

/// Reads one reply in `wire` framing.
fn read_reply(wire: Wire, reader: &mut BufReader<TcpStream>) -> io::Result<Json> {
    match wire {
        Wire::Json => {
            let mut reply = String::new();
            if reader.read_line(&mut reply)? == 0 {
                return Err(io::Error::new(ErrorKind::UnexpectedEof, "connection dropped"));
            }
            Json::parse(reply.trim()).map_err(|e| io::Error::new(ErrorKind::InvalidData, e))
        }
        Wire::Binary => {
            let mut frame = vec![0u8; binary::HEADER_BYTES];
            reader.read_exact(&mut frame)?;
            if frame[0] != binary::MAGIC {
                return Err(io::Error::new(
                    ErrorKind::InvalidData,
                    "reply is not binary-framed",
                ));
            }
            let len = u32::from_le_bytes([frame[2], frame[3], frame[4], frame[5]]) as usize;
            frame.resize(binary::HEADER_BYTES + len, 0);
            reader.read_exact(&mut frame[binary::HEADER_BYTES..])?;
            let (value, _) = binary::decode_frame(&frame)
                .map_err(|e| io::Error::new(ErrorKind::InvalidData, e))?
                .ok_or_else(|| {
                    io::Error::new(ErrorKind::InvalidData, "truncated reply frame")
                })?;
            Ok(value)
        }
    }
}

/// One client connection with serial request/reply and per-request timing.
struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    wire: Wire,
}

impl Client {
    fn connect(addr: &str) -> Client {
        Client::try_connect(addr).expect("connect to service")
    }

    fn try_connect(addr: &str) -> io::Result<Client> {
        Client::connect_wire(addr, Wire::Json)
    }

    fn connect_wire(addr: &str, wire: Wire) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        // A daemon that truly loses a job would otherwise hang the client
        // forever; the resilient path counts such silences as `lost`.
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        stream.set_write_timeout(Some(Duration::from_secs(10)))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client { stream, reader, wire })
    }

    /// Fallible [`Client::ask`]: any transport failure (including EOF,
    /// which a chaos drop presents as) surfaces as an error instead of a
    /// panic, so the resilient client can reconnect and retry.
    fn try_ask(&mut self, line: &str) -> io::Result<(Json, u64)> {
        let start = Instant::now();
        let framed = encode_request(self.wire, line);
        self.stream.write_all(&framed)?;
        let parsed = read_reply(self.wire, &mut self.reader)?;
        let micros = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        Ok((parsed, micros))
    }

    /// Sends one request line, returns the parsed reply and the
    /// round-trip latency in microseconds.
    fn ask(&mut self, line: &str) -> (Json, u64) {
        self.try_ask(line).expect("request round-trip")
    }
}

fn assert_ok(reply: &Json, context: &str) {
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true), "{context}: {reply}");
}

fn text_of(reply: &Json) -> &str {
    reply.get("text").and_then(Json::as_str).expect("text payload")
}

fn percentile(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((q * sorted_us.len() as f64).ceil() as usize).clamp(1, sorted_us.len());
    sorted_us[rank - 1]
}

fn cli(args: &[&str]) -> String {
    mbist_cli::run(&args.iter().map(ToString::to_string).collect::<Vec<_>>())
        .expect("offline CLI succeeds")
}

/// Sequential `detects` sweep over distinct faults; returns sorted
/// per-request latencies (µs). Distinct addresses keep the result memo out
/// of the picture, so warm runs measure exactly the trace-cache reuse.
fn detects_sweep(addr: &str, words: u64, count: usize) -> Vec<u64> {
    let mut client = Client::connect(addr);
    let mut lat = Vec::with_capacity(count);
    for i in 0..count {
        let line = format!(
            r#"{{"kind":"detects","test":"march-c","words":{words},"fault":"sa0@{}"}}"#,
            i as u64 % words
        );
        let (reply, us) = client.ask(&line);
        assert_ok(&reply, "detects sweep");
        lat.push(us);
    }
    lat.sort_unstable();
    lat
}

fn cold_vs_warm(words: u64, count: usize) -> (u64, u64, f64) {
    let cold_server = Server::start(
        "127.0.0.1:0",
        ServiceConfig { workers: 1, cache_bytes: 0, ..ServiceConfig::default() },
    )
    .expect("bind cold server");
    let cold = detects_sweep(&cold_server.local_addr().to_string(), words, count);
    cold_server.shutdown();
    let _ = cold_server.join();

    let warm_server = Server::start(
        "127.0.0.1:0",
        ServiceConfig { workers: 1, ..ServiceConfig::default() },
    )
    .expect("bind warm server");
    let warm_addr = warm_server.local_addr().to_string();
    // One warm-up request compiles and caches the trace before measuring.
    let _ = detects_sweep(&warm_addr, words, 1);
    let warm = detects_sweep(&warm_addr, words, count);
    warm_server.shutdown();
    let _ = warm_server.join();

    let cold_median = percentile(&cold, 0.5);
    let warm_median = percentile(&warm, 0.5);
    (cold_median, warm_median, cold_median as f64 / warm_median.max(1) as f64)
}

struct ClosedLoop {
    clients: usize,
    requests: usize,
    wall_ms: u64,
    requests_per_sec: f64,
    p50_us: u64,
    p95_us: u64,
    trace_hit_ratio: f64,
}

/// `clients` threads, each issuing `per_client` back-to-back requests over
/// its own connection against `addr`.
fn closed_loop(
    addr: &str,
    words: u64,
    clients: usize,
    per_client: usize,
    wire: Wire,
) -> ClosedLoop {
    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let addr = addr.to_string();
            thread::spawn(move || {
                let mut client =
                    Client::connect_wire(&addr, wire).expect("connect to service");
                let mut lat = Vec::with_capacity(per_client);
                for i in 0..per_client {
                    let fault = (c * 131 + i * 7) as u64 % words;
                    let line = format!(
                        r#"{{"kind":"detects","test":"march-c","words":{words},"fault":"sa1@{fault}"}}"#
                    );
                    let (reply, us) = client.ask(&line);
                    assert_ok(&reply, "closed loop");
                    lat.push(us);
                }
                lat
            })
        })
        .collect();
    let mut lat: Vec<u64> =
        handles.into_iter().flat_map(|h| h.join().expect("client thread")).collect();
    let wall_ms = u64::try_from(start.elapsed().as_millis()).unwrap_or(u64::MAX);
    lat.sort_unstable();
    let total = clients * per_client;

    let (status, _) = Client::connect(addr).ask(r#"{"kind":"status"}"#);
    assert_ok(&status, "status");
    let trace_hit_ratio = status
        .get("status")
        .and_then(|s| s.get("cache"))
        .and_then(|c| c.get("trace_hit_ratio"))
        .and_then(Json::as_f64)
        .unwrap_or(0.0);

    ClosedLoop {
        clients,
        requests: total,
        wall_ms,
        requests_per_sec: total as f64 * 1000.0 / wall_ms.max(1) as f64,
        p50_us: percentile(&lat, 0.5),
        p95_us: percentile(&lat, 0.95),
        trace_hit_ratio,
    }
}

/// A concurrent burst against a one-worker, two-slot server. Every client
/// gets a response — `ok` or a structured `busy` — and the two must sum to
/// the offered load (nobody hangs, nothing is dropped).
fn open_loop_burst(burst: usize, words: u64) -> (usize, usize) {
    let server = Server::start(
        "127.0.0.1:0",
        ServiceConfig { workers: 1, queue_depth: 2, ..ServiceConfig::default() },
    )
    .expect("bind burst server");
    let addr = server.local_addr().to_string();
    let handles: Vec<_> = (0..burst)
        .map(|_| {
            let addr = addr.clone();
            thread::spawn(move || {
                let line = format!(
                    r#"{{"kind":"coverage","test":"march-c","words":{words},"engine":"full"}}"#
                );
                let (reply, _) = Client::connect(&addr).ask(&line);
                match reply.get("ok").and_then(Json::as_bool) {
                    Some(true) => true,
                    Some(false) => {
                        let class = reply
                            .get("error")
                            .and_then(|e| e.get("class"))
                            .and_then(Json::as_str)
                            .expect("error class");
                        assert_eq!(class, "busy", "unexpected rejection: {reply}");
                        false
                    }
                    None => panic!("malformed reply {reply}"),
                }
            })
        })
        .collect();
    let oks = handles
        .into_iter()
        .map(|h| h.join().expect("burst client"))
        .filter(|ok| *ok)
        .count();
    server.shutdown();
    let _ = server.join();
    (oks, burst - oks)
}

/// Byte-identity of service responses vs the offline CLI; prints the
/// `agreement OK` lines CI greps and returns them for the JSON report.
/// Over the binary wire the decoded reply's `text` payload must still
/// match the CLI byte-for-byte — framing never changes content.
fn agreement_check(addr: &str, wire: Wire) -> Vec<String> {
    let mut client = Client::connect_wire(addr, wire).expect("connect to service");
    let mut lines = Vec::new();
    let cases: [(&str, String, Vec<&str>); 3] = [
        (
            "coverage march-c 256x1",
            r#"{"kind":"coverage","test":"march-c","words":256}"#.to_string(),
            vec!["coverage", "march-c", "--words", "256"],
        ),
        (
            "coverage mats+ 64x1",
            r#"{"kind":"coverage","test":"mats+","words":64}"#.to_string(),
            vec!["coverage", "mats+", "--words", "64"],
        ),
        ("area tables", r#"{"kind":"area"}"#.to_string(), vec!["area"]),
    ];
    for (label, request, cli_args) in cases {
        let (reply, _) = client.ask(&request);
        assert_ok(&reply, label);
        assert_eq!(text_of(&reply), cli(&cli_args), "{label}: service diverged from CLI");
        let line = format!("{label}: agreement OK");
        println!("{line}");
        lines.push(line);
    }
    lines
}

// ---------------------------------------------------------------------------
// Sharded pipelined closed loop (the throughput headline)
// ---------------------------------------------------------------------------

/// In-flight requests per pipelined connection. The reactor releases
/// replies in request order, so a client can keep a window of requests
/// outstanding and amortize per-message syscalls across the batch.
const PIPELINE_WINDOW: usize = 32;

/// Virtual nodes per shard — must match [`RouterConfig::default`] so the
/// loadgen's placement agrees with a real router's.
const VNODES: usize = 64;

/// One measured point of the shard-scaling curve.
struct ShardPoint {
    shards: usize,
    wire: Wire,
    /// `direct` = placement-aware clients, one connection per shard;
    /// `router` = everything through the fronting router.
    path: &'static str,
    requests: usize,
    wall_ms: u64,
    aggregate_rps: f64,
    p50_us: u64,
    p95_us: u64,
}

/// The shard workload: `geoms` distinct coverage geometries with their
/// placement keys — computed with the router's own hash so the grouping
/// below is exactly where a router would send them.
fn shard_workload(geoms: usize) -> Vec<(String, u64)> {
    (0..geoms as u64)
        .map(|g| {
            let line =
                format!(r#"{{"kind":"coverage","test":"march-c","words":{}}}"#, 192 + g);
            let envelope = parse_request_value(&Json::parse(&line).expect("workload JSON"))
                .expect("workload is a valid request");
            (line, placement_key_of(&envelope.request))
        })
        .collect()
}

/// Drives `total` pre-encoded requests over one connection with up to
/// [`PIPELINE_WINDOW`] in flight, round-robin over `requests`. Returns
/// per-request latencies in µs, stamped from each batch's send — the
/// in-window queueing delay is part of what a pipelining client observes.
fn pipelined_worker(
    addr: &str,
    wire: Wire,
    requests: &[Vec<u8>],
    total: usize,
) -> Vec<u64> {
    let stream = TcpStream::connect(addr).expect("connect for pipeline");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut stream = stream;
    let mut lat = Vec::with_capacity(total);
    let mut sent = 0usize;
    let mut batch = Vec::new();
    while sent < total {
        let window = PIPELINE_WINDOW.min(total - sent);
        batch.clear();
        for i in 0..window {
            batch.extend_from_slice(&requests[(sent + i) % requests.len()]);
        }
        let t0 = Instant::now();
        stream.write_all(&batch).expect("send pipeline batch");
        for _ in 0..window {
            let reply = read_reply(wire, &mut reader).expect("pipelined reply");
            assert_ok(&reply, "pipelined loop");
            lat.push(u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX));
        }
        sent += window;
    }
    lat
}

/// Runs one shard-curve point: `n` fresh in-process daemons, the workload
/// placement-grouped by the router's ring. `via_router` fronts the fleet
/// with a real [`Router`] and sends everything through it instead of
/// connecting to the owning shard directly.
fn shard_curve_point(
    n: usize,
    wire: Wire,
    via_router: bool,
    geoms: usize,
    total: usize,
) -> ShardPoint {
    let servers: Vec<Server> = (0..n)
        .map(|_| {
            Server::start("127.0.0.1:0", ServiceConfig::default()).expect("bind shard")
        })
        .collect();
    let shard_addrs: Vec<String> =
        servers.iter().map(|s| s.local_addr().to_string()).collect();
    let router = if via_router {
        let shards = servers.iter().map(Server::local_addr).collect();
        Some(
            Router::start(
                "127.0.0.1:0",
                RouterConfig { shards, ..RouterConfig::default() },
            )
            .expect("start router"),
        )
    } else {
        None
    };
    let router_addr = router.as_ref().map(|r| r.local_addr().to_string());

    // Group the workload by ring placement; a shard the ring assigns
    // nothing to simply idles (possible only at tiny geometry counts).
    let ring = HashRing::new(n, VNODES);
    let workload = shard_workload(geoms);
    let mut groups: Vec<Vec<Vec<u8>>> = vec![Vec::new(); n];
    for (line, key) in &workload {
        groups[ring.place(*key)].push(encode_request(wire, line));
    }
    // Warm every geometry through its own endpoint so the timed loop
    // measures the steady hot-cache state.
    for (line, key) in &workload {
        let endpoint = router_addr.as_deref().unwrap_or(&shard_addrs[ring.place(*key)]);
        let mut warm = Client::connect(endpoint);
        let (reply, _) = warm.ask(line);
        assert_ok(&reply, "shard warm-up");
    }

    // One pipelined client per non-empty shard group, started together.
    let plans: Vec<(String, Vec<Vec<u8>>)> = groups
        .into_iter()
        .enumerate()
        .filter(|(_, g)| !g.is_empty())
        .map(|(shard, g)| {
            let endpoint =
                router_addr.clone().unwrap_or_else(|| shard_addrs[shard].clone());
            (endpoint, g)
        })
        .collect();
    let per_client = total / plans.len().max(1);
    let start = Instant::now();
    let handles: Vec<_> = plans
        .into_iter()
        .map(|(endpoint, requests)| {
            thread::spawn(move || pipelined_worker(&endpoint, wire, &requests, per_client))
        })
        .collect();
    let mut lat: Vec<u64> =
        handles.into_iter().flat_map(|h| h.join().expect("pipelined client")).collect();
    let wall = start.elapsed();
    lat.sort_unstable();
    let requests = lat.len();

    if let Some(router) = router {
        // The router's shutdown broadcast drains every shard for us.
        router.shutdown();
        let _ = router.join();
    } else {
        for s in &servers {
            s.shutdown();
        }
    }
    for s in servers {
        let _ = s.join();
    }

    ShardPoint {
        shards: n,
        wire,
        path: if via_router { "router" } else { "direct" },
        requests,
        wall_ms: u64::try_from(wall.as_millis()).unwrap_or(u64::MAX),
        aggregate_rps: requests as f64 / wall.as_secs_f64().max(1e-9),
        p50_us: percentile(&lat, 0.5),
        p95_us: percentile(&lat, 0.95),
    }
}

fn print_shard_point(p: &ShardPoint) {
    println!(
        "shard curve ({} shard(s), {}, {}): {} requests in {} ms — {:.0} req/s aggregate, \
         p50 {} us, p95 {} us",
        p.shards,
        p.wire.label(),
        p.path,
        p.requests,
        p.wall_ms,
        p.aggregate_rps,
        p.p50_us,
        p.p95_us,
    );
}

/// The latency-vs-shard-count curve: direct placement-aware clients in
/// both framings at every shard count, plus a via-router point pricing
/// the extra hop.
fn shard_curve(quick: bool) -> Vec<ShardPoint> {
    let shard_counts: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4] };
    let geoms = 48;
    let (direct_total, router_total) = if quick { (4_000, 1_000) } else { (24_000, 6_000) };
    let mut points = Vec::new();
    for &n in shard_counts {
        for wire in [Wire::Json, Wire::Binary] {
            points.push(shard_curve_point(n, wire, false, geoms, direct_total));
            print_shard_point(points.last().expect("point just pushed"));
        }
        points.push(shard_curve_point(n, Wire::Binary, true, geoms, router_total));
        print_shard_point(points.last().expect("point just pushed"));
    }
    points
}

// ---------------------------------------------------------------------------
// Open-loop rate sweep
// ---------------------------------------------------------------------------

/// One offered-rate point: what was scheduled, what came back, and the
/// latency measured from each request's *scheduled* send time (so queueing
/// delay under saturation is counted, not omitted).
struct RatePoint {
    offered_rps: u64,
    achieved_rps: f64,
    sent: usize,
    received: usize,
    p50_us: u64,
    p99_us: u64,
}

/// Open-loop driver: a writer thread pushes requests on a fixed schedule
/// (batching whatever is due), a reader drains replies and matches each to
/// its scheduled instant via an in-order channel.
fn open_loop_rate(addr: &str, wire: Wire, rate: u64, duration: Duration) -> RatePoint {
    let line = r#"{"kind":"coverage","test":"march-c","words":160}"#;
    let mut warm = Client::connect(addr);
    let (reply, _) = warm.ask(line);
    assert_ok(&reply, "rate warm-up");
    drop(warm);

    let bytes = encode_request(wire, line);
    let stream = TcpStream::connect(addr).expect("connect for rate sweep");
    stream.set_nodelay(true).expect("nodelay");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let (tx, rx) = mpsc::channel::<Instant>();
    let start = Instant::now();
    let sender = thread::spawn(move || {
        let mut sent = 0usize;
        let mut batch = Vec::new();
        loop {
            let elapsed = start.elapsed();
            if elapsed >= duration {
                break;
            }
            #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
            let due = (elapsed.as_secs_f64() * rate as f64) as usize;
            if due > sent {
                batch.clear();
                for i in sent..due {
                    // The stamp is when request i *should* leave, not when
                    // the writer got scheduled — open-loop latency.
                    let sched = start + Duration::from_secs_f64(i as f64 / rate as f64);
                    let _ = tx.send(sched);
                    batch.extend_from_slice(&bytes);
                }
                writer.write_all(&batch).expect("open-loop send");
                sent = due;
            } else {
                thread::sleep(Duration::from_micros(200));
            }
        }
        sent
    });

    let mut lat = Vec::new();
    while let Ok(sched) = rx.recv() {
        let reply = read_reply(wire, &mut reader).expect("open-loop reply");
        assert_ok(&reply, "rate sweep");
        let us = Instant::now().saturating_duration_since(sched).as_micros();
        lat.push(u64::try_from(us).unwrap_or(u64::MAX));
    }
    let wall = start.elapsed();
    let sent = sender.join().expect("open-loop sender");
    let received = lat.len();
    lat.sort_unstable();
    RatePoint {
        offered_rps: rate,
        achieved_rps: received as f64 / wall.as_secs_f64().max(1e-9),
        sent,
        received,
        p50_us: percentile(&lat, 0.5),
        p99_us: percentile(&lat, 0.99),
    }
}

fn rate_sweep(addr: &str, quick: bool) -> Vec<RatePoint> {
    let rates: &[u64] =
        if quick { &[10_000, 40_000] } else { &[10_000, 25_000, 50_000, 100_000] };
    let duration = Duration::from_millis(if quick { 250 } else { 500 });
    rates
        .iter()
        .map(|&rate| {
            let p = open_loop_rate(addr, Wire::Json, rate, duration);
            println!(
                "rate sweep (offered {} req/s): achieved {:.0} req/s ({} sent, {} answered), \
                 p50 {} us, p99 {} us",
                p.offered_rps, p.achieved_rps, p.sent, p.received, p.p50_us, p.p99_us,
            );
            p
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Chaos / resilience measurement
// ---------------------------------------------------------------------------

/// Retry budget per logical request. With the sweep's worst drop rate of
/// 0.04 the chance of burning all attempts on drops alone is ~1e-14.
const MAX_ATTEMPTS: usize = 10;
/// Consecutive retriable failures of one request kind before the circuit
/// breaker opens.
const BREAKER_THRESHOLD: u32 = 5;
/// How long an opened breaker holds requests back before going half-open.
const BREAKER_COOLDOWN: Duration = Duration::from_millis(100);

/// splitmix64 over a counter — deterministic jitter without external crates
/// (same construction the service's chaos stream uses).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut x = self.0;
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next() % n
        }
    }
}

/// What one resilient client observed, and what the whole fleet observed
/// once the per-thread copies are merged.
#[derive(Debug, Default, Clone, Copy)]
struct ResilienceStats {
    /// Terminal successes.
    ok: u64,
    /// Terminal structured errors (usage, timeout, shutdown, ...).
    terminal_errors: u64,
    /// Requests abandoned after [`MAX_ATTEMPTS`] retriable outcomes.
    gave_up: u64,
    /// Requests where the daemon went silent: accepted bytes, then neither
    /// a reply nor a connection signal within the read timeout. Must stay
    /// zero — a lost request is an exactly-once violation.
    lost: u64,
    /// Retried attempts (busy backoffs, internal retries, reconnect
    /// replays).
    retries: u64,
    /// Reconnections after a dropped or refused connection.
    reconnects: u64,
    /// Times the per-kind circuit breaker opened.
    breaker_trips: u64,
}

impl ResilienceStats {
    fn absorb(&mut self, other: ResilienceStats) {
        self.ok += other.ok;
        self.terminal_errors += other.terminal_errors;
        self.gave_up += other.gave_up;
        self.lost += other.lost;
        self.retries += other.retries;
        self.reconnects += other.reconnects;
        self.breaker_trips += other.breaker_trips;
    }

    fn offered(&self) -> u64 {
        self.ok + self.terminal_errors + self.gave_up + self.lost
    }

    fn availability(&self) -> f64 {
        if self.offered() == 0 {
            return 1.0;
        }
        self.ok as f64 / self.offered() as f64
    }
}

#[derive(Debug, Default)]
struct Breaker {
    consecutive: u32,
    open_until: Option<Instant>,
}

/// A client that survives a chaos-armed daemon: reconnects through drops,
/// honors `busy.retry_after_ms`, retries `internal` failures with jittered
/// exponential backoff, and rate-limits itself with a per-kind circuit
/// breaker once one request kind keeps failing.
struct ResilientClient {
    addr: String,
    conn: Option<Client>,
    rng: Rng,
    breakers: HashMap<String, Breaker>,
    stats: ResilienceStats,
}

impl ResilientClient {
    fn new(addr: &str, seed: u64) -> ResilientClient {
        ResilientClient {
            addr: addr.to_string(),
            conn: None,
            rng: Rng(seed),
            breakers: HashMap::new(),
            stats: ResilienceStats::default(),
        }
    }

    /// Jittered exponential backoff: 5 ms doubling per attempt, capped at
    /// 200 ms, plus up to 50% deterministic jitter so a fleet of retrying
    /// clients does not stampede in lockstep.
    fn backoff(&mut self, attempt: usize) {
        let base = (5u64 << attempt.min(6)).min(200);
        thread::sleep(Duration::from_millis(base + self.rng.below(base / 2 + 1)));
    }

    /// Blocks while the breaker for `kind` is open, then half-opens it.
    fn wait_out_breaker(&mut self, kind: &str) {
        if let Some(until) = self.breakers.entry(kind.to_string()).or_default().open_until {
            let now = Instant::now();
            if now < until {
                thread::sleep(until - now);
            }
            self.breakers.get_mut(kind).expect("breaker exists").open_until = None;
        }
    }

    fn record_breaker(&mut self, kind: &str, failed: bool) {
        let breaker = self.breakers.entry(kind.to_string()).or_default();
        if !failed {
            breaker.consecutive = 0;
            return;
        }
        breaker.consecutive += 1;
        if breaker.consecutive >= BREAKER_THRESHOLD && breaker.open_until.is_none() {
            breaker.open_until = Some(Instant::now() + BREAKER_COOLDOWN);
            breaker.consecutive = 0;
            self.stats.breaker_trips += 1;
        }
    }

    /// Issues one logical request (which must carry numeric id `id`),
    /// retrying through chaos. Returns the total latency in µs — retries
    /// included — on terminal success; `None` otherwise. Every reply must
    /// echo the id: a mismatch would mean a duplicated or misrouted
    /// response, so it fails the run loudly.
    fn call(&mut self, kind: &str, id: u64, line: &str) -> Option<u64> {
        let start = Instant::now();
        for attempt in 0..MAX_ATTEMPTS {
            self.wait_out_breaker(kind);
            if self.conn.is_none() {
                match Client::try_connect(&self.addr) {
                    Ok(conn) => self.conn = Some(conn),
                    Err(_) => {
                        self.stats.reconnects += 1;
                        self.stats.retries += 1;
                        self.backoff(attempt);
                        continue;
                    }
                }
            }
            let outcome = self.conn.as_mut().expect("connected").try_ask(line);
            match outcome {
                Err(e)
                    if e.kind() == ErrorKind::WouldBlock
                        || e.kind() == ErrorKind::TimedOut =>
                {
                    // The daemon accepted the request and went silent: the
                    // job is lost. This is the invariant the exactly-once
                    // ledger exists to protect; do not retry into a
                    // double-execution.
                    self.conn = None;
                    self.stats.lost += 1;
                    return None;
                }
                Err(_) => {
                    // Dropped/reset connection (chaos `drop` lands here as
                    // an EOF): reconnect and replay.
                    self.conn = None;
                    self.stats.reconnects += 1;
                    self.stats.retries += 1;
                    self.backoff(attempt);
                    continue;
                }
                Ok((reply, _)) => {
                    let echoed = reply.get("id").and_then(Json::as_u64);
                    assert_eq!(echoed, Some(id), "id echo violated: {reply}");
                    if reply.get("ok").and_then(Json::as_bool) == Some(true) {
                        self.record_breaker(kind, false);
                        self.stats.ok += 1;
                        return Some(
                            u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX),
                        );
                    }
                    let class = reply
                        .get("error")
                        .and_then(|e| e.get("class"))
                        .and_then(Json::as_str)
                        .expect("error class")
                        .to_string();
                    match class.as_str() {
                        "busy" => {
                            // Honor the server's hint (capped for bench
                            // sanity) plus jitter; backpressure is not a
                            // failure, so the breaker stays untouched.
                            let hint = reply
                                .get("error")
                                .and_then(|e| e.get("retry_after_ms"))
                                .and_then(Json::as_u64)
                                .unwrap_or(25)
                                .min(200);
                            self.stats.retries += 1;
                            thread::sleep(Duration::from_millis(
                                hint + self.rng.below(hint / 2 + 1),
                            ));
                        }
                        "internal" => {
                            // The worker died twice on this job; a replay
                            // gets a fresh job id, so retry — but count it
                            // against the breaker.
                            self.record_breaker(kind, true);
                            self.stats.retries += 1;
                            self.backoff(attempt);
                        }
                        _ => {
                            // usage/timeout/shutdown are terminal: the
                            // server answered definitively.
                            self.record_breaker(kind, false);
                            self.stats.terminal_errors += 1;
                            return None;
                        }
                    }
                }
            }
        }
        self.stats.gave_up += 1;
        None
    }
}

/// One point of the chaos sweep: the injected fault rates.
#[derive(Debug, Clone, Copy)]
struct ChaosPoint {
    panic_p: f64,
    delay_p: f64,
    drop_p: f64,
}

/// What one sweep point measured, client- and server-side.
struct PointReport {
    point: ChaosPoint,
    stats: ResilienceStats,
    p50_us: u64,
    p99_us: u64,
    dispatched: u64,
    answered: u64,
    recovered_jobs: u64,
    injected: (u64, u64, u64),
}

/// `clients` resilient clients, each issuing `per_client` `detects`
/// requests with unique ids; returns merged stats plus sorted end-to-end
/// latencies of the successful requests.
fn chaos_clients(
    addr: &str,
    clients: usize,
    per_client: usize,
    words: u64,
) -> (ResilienceStats, Vec<u64>) {
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let addr = addr.to_string();
            thread::spawn(move || {
                let mut client = ResilientClient::new(&addr, 0x1000 + c as u64);
                let mut lat = Vec::with_capacity(per_client);
                for i in 0..per_client {
                    let id = (c * 1_000_000 + i) as u64;
                    let fault = (c * 131 + i * 7) as u64 % words;
                    let line = format!(
                        r#"{{"id":{id},"kind":"detects","test":"march-c","words":{words},"fault":"sa0@{fault}"}}"#
                    );
                    if let Some(us) = client.call("detects", id, &line) {
                        lat.push(us);
                    }
                }
                (client.stats, lat)
            })
        })
        .collect();
    let mut stats = ResilienceStats::default();
    let mut lat = Vec::new();
    for h in handles {
        let (s, l) = h.join().expect("chaos client");
        stats.absorb(s);
        lat.extend(l);
    }
    lat.sort_unstable();
    (stats, lat)
}

fn jobs_metric(metrics: &Json, group: &str, key: &str) -> u64 {
    metrics.get(group).and_then(|g| g.get(key)).and_then(Json::as_u64).unwrap_or(0)
}

/// Runs one sweep point against a fresh in-process chaos-armed daemon.
fn chaos_point(point: ChaosPoint, clients: usize, per_client: usize) -> PointReport {
    let spec = format!(
        "seed=7,panic={},delay={},drop={}",
        point.panic_p, point.delay_p, point.drop_p
    );
    let chaos = ChaosConfig::parse(&spec).expect("sweep spec");
    let server = Server::start(
        "127.0.0.1:0",
        ServiceConfig { workers: 2, chaos, ..ServiceConfig::default() },
    )
    .expect("bind chaos server");
    let addr = server.local_addr().to_string();
    let (stats, lat) = chaos_clients(&addr, clients, per_client, 256);
    server.shutdown();
    let summary = server.join();
    PointReport {
        point,
        stats,
        p50_us: percentile(&lat, 0.5),
        p99_us: percentile(&lat, 0.99),
        dispatched: jobs_metric(&summary.metrics, "jobs", "dispatched"),
        answered: jobs_metric(&summary.metrics, "jobs", "answered"),
        recovered_jobs: summary.recovered_jobs,
        injected: (
            jobs_metric(&summary.metrics, "chaos", "injected_panics"),
            jobs_metric(&summary.metrics, "chaos", "injected_delays"),
            jobs_metric(&summary.metrics, "chaos", "injected_drops"),
        ),
    }
}

/// Recovery after a panic storm: the first `burst` dispatch attempts all
/// panic, so the earliest jobs burn their retry and fail `internal`; the
/// measurement is how long until the request stream first succeeds again.
fn panic_storm(burst: u32, requests: usize) -> (u64, u64, ResilienceStats) {
    let chaos = ChaosConfig::parse(&format!("seed=7,burst={burst}")).expect("storm spec");
    let server = Server::start(
        "127.0.0.1:0",
        ServiceConfig { workers: 1, chaos, ..ServiceConfig::default() },
    )
    .expect("bind storm server");
    let addr = server.local_addr().to_string();
    let mut client = ResilientClient::new(&addr, 0x5707);
    let start = Instant::now();
    let mut recovery_ms = None;
    for i in 0..requests {
        let id = i as u64;
        let line = format!(
            r#"{{"id":{id},"kind":"detects","test":"march-c","words":64,"fault":"sa1@{}"}}"#,
            id % 64
        );
        if client.call("detects", id, &line).is_some() && recovery_ms.is_none() {
            recovery_ms =
                Some(u64::try_from(start.elapsed().as_millis()).unwrap_or(u64::MAX));
        }
    }
    server.shutdown();
    let summary = server.join();
    (recovery_ms.unwrap_or(u64::MAX), summary.recovered_jobs, client.stats)
}

fn point_json(r: &PointReport) -> String {
    let mut json = String::new();
    let _ = writeln!(json, "    {{");
    let _ = writeln!(json, "      \"panic\": {},", r.point.panic_p);
    let _ = writeln!(json, "      \"delay\": {},", r.point.delay_p);
    let _ = writeln!(json, "      \"drop\": {},", r.point.drop_p);
    let _ = writeln!(json, "      \"offered\": {},", r.stats.offered());
    let _ = writeln!(json, "      \"ok\": {},", r.stats.ok);
    let _ = writeln!(json, "      \"terminal_errors\": {},", r.stats.terminal_errors);
    let _ = writeln!(json, "      \"gave_up\": {},", r.stats.gave_up);
    let _ = writeln!(json, "      \"lost\": {},", r.stats.lost);
    let _ = writeln!(json, "      \"retries\": {},", r.stats.retries);
    let _ = writeln!(json, "      \"reconnects\": {},", r.stats.reconnects);
    let _ = writeln!(json, "      \"breaker_trips\": {},", r.stats.breaker_trips);
    let _ = writeln!(json, "      \"availability\": {:.4},", r.stats.availability());
    let _ = writeln!(json, "      \"p50_us\": {},", r.p50_us);
    let _ = writeln!(json, "      \"p99_us\": {},", r.p99_us);
    let _ = writeln!(json, "      \"server\": {{");
    let _ = writeln!(json, "        \"dispatched\": {},", r.dispatched);
    let _ = writeln!(json, "        \"answered\": {},", r.answered);
    let _ = writeln!(json, "        \"recovered_jobs\": {},", r.recovered_jobs);
    let _ = writeln!(json, "        \"injected_panics\": {},", r.injected.0);
    let _ = writeln!(json, "        \"injected_delays\": {},", r.injected.1);
    let _ = writeln!(json, "        \"injected_drops\": {}", r.injected.2);
    let _ = writeln!(json, "      }}");
    let _ = write!(json, "    }}");
    json
}

fn print_point(r: &PointReport) {
    println!(
        "chaos panic={} delay={} drop={}: offered {}, ok {}, availability {:.4}, \
         lost {}, retries {}, reconnects {}, breaker trips {}, p50 {} us, p99 {} us, \
         recovered_jobs {}",
        r.point.panic_p,
        r.point.delay_p,
        r.point.drop_p,
        r.stats.offered(),
        r.stats.ok,
        r.stats.availability(),
        r.stats.lost,
        r.stats.retries,
        r.stats.reconnects,
        r.stats.breaker_trips,
        r.p50_us,
        r.p99_us,
        r.recovered_jobs,
    );
}

/// The standalone chaos sweep plus the storm-recovery run; writes the
/// `BENCH_chaos.json` report.
fn chaos_sweep(quick: bool, out_path: &str) {
    let (clients, per_client) = if quick { (2, 50) } else { (4, 250) };
    // Fault-free baseline, light, headline (the acceptance point), heavy.
    let points = [
        ChaosPoint { panic_p: 0.0, delay_p: 0.0, drop_p: 0.0 },
        ChaosPoint { panic_p: 0.02, delay_p: 0.02, drop_p: 0.01 },
        ChaosPoint { panic_p: 0.05, delay_p: 0.05, drop_p: 0.02 },
        ChaosPoint { panic_p: 0.10, delay_p: 0.10, drop_p: 0.04 },
    ];
    println!("chaos sweep — {clients} clients x {per_client} requests per point");
    let reports: Vec<PointReport> =
        points.iter().map(|&p| chaos_point(p, clients, per_client)).collect();
    for r in &reports {
        print_point(r);
    }

    let storm_requests = if quick { 20 } else { 40 };
    let (recovery_ms, storm_recovered, storm_stats) = panic_storm(9, storm_requests);
    println!(
        "panic storm (burst 9, {storm_requests} requests): first success after \
         {recovery_ms} ms, availability {:.4}, recovered_jobs {storm_recovered}",
        storm_stats.availability(),
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"mode\": \"sweep\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"workload\": \"march-c 256x1 detects\",");
    let _ = writeln!(json, "  \"clients\": {clients},");
    let _ = writeln!(json, "  \"per_client\": {per_client},");
    let _ = writeln!(json, "  \"points\": [");
    let body: Vec<String> = reports.iter().map(point_json).collect();
    let _ = writeln!(json, "{}", body.join(",\n"));
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"storm\": {{");
    let _ = writeln!(json, "    \"burst\": 9,");
    let _ = writeln!(json, "    \"requests\": {storm_requests},");
    let _ = writeln!(json, "    \"recovery_ms\": {recovery_ms},");
    let _ = writeln!(json, "    \"recovered_jobs\": {storm_recovered},");
    let _ = writeln!(json, "    \"availability\": {:.4}", storm_stats.availability());
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");
    fs::write(out_path, json).expect("write chaos JSON");
    println!("wrote {out_path}");
}

/// Drives an already-running (presumably chaos-armed) daemon through the
/// resilient client — the CI chaos smoke path. Prints the availability
/// line CI greps and writes a small external-mode report.
fn chaos_external(addr: &str, quick: bool, shutdown: bool, out_path: &str) {
    let (clients, per_client) = if quick { (2, 25) } else { (2, 100) };
    println!("chaos loadgen against external daemon {addr}");
    let (stats, lat) = chaos_clients(addr, clients, per_client, 256);
    println!(
        "chaos external: offered {}, ok {}, availability {:.4}, lost {}, \
         retries {}, reconnects {}, breaker trips {}, p50 {} us, p99 {} us",
        stats.offered(),
        stats.ok,
        stats.availability(),
        stats.lost,
        stats.retries,
        stats.reconnects,
        stats.breaker_trips,
        percentile(&lat, 0.5),
        percentile(&lat, 0.99),
    );
    if shutdown {
        // The daemon may drop even the shutdown request; insist.
        let mut client = ResilientClient::new(addr, 0xb7e);
        let done = client.call("shutdown", 999_999, r#"{"id":999999,"kind":"shutdown"}"#);
        assert!(done.is_some(), "shutdown never acknowledged");
        println!("shutdown requested: daemon draining");
    }
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"mode\": \"external\",");
    let _ = writeln!(json, "  \"offered\": {},", stats.offered());
    let _ = writeln!(json, "  \"ok\": {},", stats.ok);
    let _ = writeln!(json, "  \"lost\": {},", stats.lost);
    let _ = writeln!(json, "  \"retries\": {},", stats.retries);
    let _ = writeln!(json, "  \"reconnects\": {},", stats.reconnects);
    let _ = writeln!(json, "  \"availability\": {:.4},", stats.availability());
    let _ = writeln!(json, "  \"p99_us\": {}", percentile(&lat, 0.99));
    json.push_str("}\n");
    fs::write(out_path, json).expect("write chaos JSON");
    println!("wrote {out_path}");
}

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let chaos_mode = args.iter().any(|a| a == "--chaos");
    let flag = |name: &str| {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
    };
    let default_out = if chaos_mode { "BENCH_chaos.json" } else { "BENCH_service.json" };
    let out_path = flag("--out").unwrap_or_else(|| default_out.to_string());
    let external = flag("--addr");
    let host = thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    if chaos_mode {
        match external {
            Some(addr) => chaos_external(
                &addr,
                quick,
                args.iter().any(|a| a == "--shutdown"),
                &out_path,
            ),
            None => chaos_sweep(quick, &out_path),
        }
        return;
    }

    let wire = match flag("--protocol").as_deref() {
        None | Some("json") => Wire::Json,
        Some("binary") => Wire::Binary,
        Some(other) => panic!("unknown --protocol {other} (expected json or binary)"),
    };

    if let Some(addr) = external {
        // Drive an already-running daemon (the CI smoke path): determinism
        // agreement plus a short closed-loop burst, optional shutdown.
        println!("loadgen against external daemon {addr} ({} protocol)", wire.label());
        let agreement = agreement_check(&addr, wire);
        let cl = closed_loop(&addr, 1024, 2, if quick { 10 } else { 50 }, wire);
        println!(
            "closed loop: {} requests in {} ms ({:.0} req/s, p50 {} us, p95 {} us, \
             trace hit ratio {:.3})",
            cl.requests,
            cl.wall_ms,
            cl.requests_per_sec,
            cl.p50_us,
            cl.p95_us,
            cl.trace_hit_ratio
        );
        if args.iter().any(|a| a == "--shutdown") {
            let mut bye = Client::connect_wire(&addr, wire).expect("connect to service");
            let (reply, _) = bye.ask(r#"{"kind":"shutdown"}"#);
            assert_ok(&reply, "shutdown");
            println!("shutdown requested: daemon draining");
        }
        let mut json = String::new();
        json.push_str("{\n");
        let _ = writeln!(json, "  \"mode\": \"external\",");
        let _ = writeln!(json, "  \"protocol\": \"{}\",", wire.label());
        let _ = writeln!(json, "  \"requests_per_sec\": {:.1},", cl.requests_per_sec);
        let _ = writeln!(json, "  \"trace_hit_ratio\": {:.4},", cl.trace_hit_ratio);
        let agreement_json: Vec<String> =
            agreement.iter().map(|l| format!("\"{}\"", escape(l))).collect();
        let _ = writeln!(json, "  \"agreement\": [{}]", agreement_json.join(", "));
        json.push_str("}\n");
        fs::write(&out_path, json).expect("write benchmark JSON");
        println!("wrote {out_path}");
        return;
    }

    let sweep = if quick { 20 } else { 200 };
    let (clients, per_client) = if quick { (2, 50) } else { (4, 250) };
    let burst = if quick { 8 } else { 16 };
    println!("service load generator — host parallelism {host}, quick {quick}");

    // 1. Cold vs warm median detects latency on March C 1024×1 (the
    //    acceptance criterion: warm ≥ 5× faster than per-request compile).
    let (cold_us, warm_us, speedup) = cold_vs_warm(1024, sweep);
    println!(
        "cold vs warm (march-c 1024x1, {sweep} detects): median {cold_us} us cold, \
         {warm_us} us warm, warm_vs_cold {speedup:.1}x"
    );

    // 2. Closed-loop sustained throughput against a warm full-size pool.
    let server = Server::start("127.0.0.1:0", ServiceConfig::default()).expect("bind");
    let addr = server.local_addr().to_string();
    let cl = closed_loop(&addr, 1024, clients, per_client, Wire::Json);
    println!(
        "closed loop ({} clients x {} requests): {} ms wall, {:.0} req/s, \
         p50 {} us, p95 {} us, trace hit ratio {:.3}",
        cl.clients,
        per_client,
        cl.wall_ms,
        cl.requests_per_sec,
        cl.p50_us,
        cl.p95_us,
        cl.trace_hit_ratio
    );

    // 3. Determinism agreement against the offline CLI, on the same warm
    //    server the throughput run just exercised.
    let agreement = agreement_check(&addr, Wire::Json);

    // 4. Open-loop rate sweep on the same warm server: where does one
    //    daemon saturate, and what happens to tail latency past that?
    let rates = rate_sweep(&addr, quick);
    server.shutdown();
    let summary = server.join();
    println!(
        "warm server drained: served {} request(s), {} queued at shutdown",
        summary.served, summary.drained
    );

    // 5. The latency-vs-shard-count curve and its headline aggregate.
    let curve = shard_curve(quick);
    // The headline is the widest fleet's best direct point — the number
    // the acceptance criterion names ("aggregate at 4 shards").
    let max_shards = curve.iter().map(|p| p.shards).max().expect("curve has points");
    let headline = curve
        .iter()
        .filter(|p| p.path == "direct" && p.shards == max_shards)
        .max_by(|a, b| a.aggregate_rps.total_cmp(&b.aggregate_rps))
        .expect("curve has points");
    let baseline_rps = 14_285.7;
    println!(
        "sharded closed loop headline: {} shard(s), {} wire, placement-aware pipelined \
         clients — {:.0} req/s aggregate ({:.1}x the {:.0} req/s thread-per-connection \
         baseline)",
        headline.shards,
        headline.wire.label(),
        headline.aggregate_rps,
        headline.aggregate_rps / baseline_rps,
        baseline_rps,
    );

    // 6. Open-loop burst against a deliberately saturated pool.
    let (oks, busys) = open_loop_burst(burst, 512);
    println!(
        "open loop burst ({burst} concurrent coverage requests, 1 worker, queue 2): \
         {oks} ok, {busys} busy (all answered, none hung)"
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"host_parallelism\": {host},");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"cold_warm\": {{");
    let _ = writeln!(json, "    \"workload\": \"march-c 1024x1 detects\",");
    let _ = writeln!(json, "    \"requests\": {sweep},");
    let _ = writeln!(json, "    \"cold_median_us\": {cold_us},");
    let _ = writeln!(json, "    \"warm_median_us\": {warm_us},");
    let _ = writeln!(json, "    \"warm_vs_cold\": {speedup:.2}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"closed_loop\": {{");
    let _ = writeln!(json, "    \"clients\": {},", cl.clients);
    let _ = writeln!(json, "    \"requests\": {},", cl.requests);
    let _ = writeln!(json, "    \"wall_ms\": {},", cl.wall_ms);
    let _ = writeln!(json, "    \"requests_per_sec\": {:.1},", cl.requests_per_sec);
    let _ = writeln!(json, "    \"p50_us\": {},", cl.p50_us);
    let _ = writeln!(json, "    \"p95_us\": {},", cl.p95_us);
    let _ = writeln!(json, "    \"trace_hit_ratio\": {:.4}", cl.trace_hit_ratio);
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"rate_sweep\": {{");
    let _ = writeln!(json, "    \"protocol\": \"json\",");
    let _ = writeln!(json, "    \"workload\": \"coverage march-c 160x1 (hot cache)\",");
    let _ = writeln!(json, "    \"points\": [");
    let rate_json: Vec<String> = rates
        .iter()
        .map(|p| {
            format!(
                "      {{\"offered_rps\": {}, \"achieved_rps\": {:.1}, \"sent\": {}, \
                 \"received\": {}, \"p50_us\": {}, \"p99_us\": {}}}",
                p.offered_rps, p.achieved_rps, p.sent, p.received, p.p50_us, p.p99_us
            )
        })
        .collect();
    let _ = writeln!(json, "{}", rate_json.join(",\n"));
    let _ = writeln!(json, "    ]");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"sharded\": {{");
    let _ = writeln!(
        json,
        "    \"workload\": \"coverage march-c, 48 geometries, pipeline window {PIPELINE_WINDOW}, \
         placement-aware clients\","
    );
    let _ = writeln!(json, "    \"baseline_rps\": {baseline_rps},");
    let _ = writeln!(json, "    \"headline_rps\": {:.1},", headline.aggregate_rps);
    let _ = writeln!(json, "    \"headline_shards\": {},", headline.shards);
    let _ = writeln!(
        json,
        "    \"speedup_vs_baseline\": {:.2},",
        headline.aggregate_rps / baseline_rps
    );
    let _ = writeln!(json, "    \"curve\": [");
    let curve_json: Vec<String> = curve
        .iter()
        .map(|p| {
            format!(
                "      {{\"shards\": {}, \"wire\": \"{}\", \"path\": \"{}\", \
                 \"requests\": {}, \"wall_ms\": {}, \"aggregate_rps\": {:.1}, \
                 \"p50_us\": {}, \"p95_us\": {}}}",
                p.shards,
                p.wire.label(),
                p.path,
                p.requests,
                p.wall_ms,
                p.aggregate_rps,
                p.p50_us,
                p.p95_us
            )
        })
        .collect();
    let _ = writeln!(json, "{}", curve_json.join(",\n"));
    let _ = writeln!(json, "    ]");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"backpressure\": {{");
    let _ = writeln!(json, "    \"offered\": {burst},");
    let _ = writeln!(json, "    \"ok\": {oks},");
    let _ = writeln!(json, "    \"busy\": {busys}");
    let _ = writeln!(json, "  }},");
    let agreement_json: Vec<String> =
        agreement.iter().map(|l| format!("\"{}\"", escape(l))).collect();
    let _ = writeln!(json, "  \"agreement\": [{}]", agreement_json.join(", "));
    json.push_str("}\n");
    fs::write(&out_path, json).expect("write benchmark JSON");
    println!("wrote {out_path}");
}
