//! Criterion bench behind Table 3: scan-only adjusted microcode controller
//! elaboration and the storage-cell sensitivity sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use mbist_area::{microcode_design, storage_cell_sweep, table3, SupportLevel, Technology};
use mbist_rtl::CellStyle;
use std::hint::black_box;

fn bench_table3(c: &mut Criterion) {
    let tech = Technology::cmos5s();
    let mut group = c.benchmark_group("table3");
    group.sample_size(10);
    group.bench_function("adjusted_microcode_elaboration", |b| {
        b.iter(|| {
            black_box(microcode_design(
                &tech,
                CellStyle::ScanOnly,
                SupportLevel::BitOriented,
            ))
        })
    });
    group.bench_function("storage_cell_sweep_8pt", |b| {
        b.iter(|| black_box(storage_cell_sweep(&tech, 1.0, 8.0, 8)))
    });
    group.bench_function("full_table3", |b| b.iter(|| black_box(table3(&tech))));
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
