//! Cycle-accurate simulation throughput of the three controller
//! architectures running March C against a 1K×1 memory — the harness
//! behind the overhead comparison and the fig. 1/4 traces.

use criterion::{criterion_group, criterion_main, Criterion};
use mbist_core::{
    hardwired::HardwiredBist, microcode::MicrocodeBist, progfsm::ProgFsmBist,
};
use mbist_march::library;
use mbist_mem::{MemGeometry, MemoryArray};
use std::hint::black_box;

fn bench_controllers(c: &mut Criterion) {
    let g = MemGeometry::bit_oriented(1024);
    let test = library::march_c();
    let mut group = c.benchmark_group("controllers_march_c_1k");
    group.sample_size(20);

    group.bench_function("microcode", |b| {
        let mut unit = MicrocodeBist::for_test(&test, &g).unwrap();
        b.iter(|| {
            let mut mem = MemoryArray::new(g);
            black_box(unit.run(&mut mem))
        })
    });
    group.bench_function("programmable_fsm", |b| {
        let mut unit = ProgFsmBist::for_test(&test, &g).unwrap();
        b.iter(|| {
            let mut mem = MemoryArray::new(g);
            black_box(unit.run(&mut mem))
        })
    });
    group.bench_function("hardwired", |b| {
        let mut unit = HardwiredBist::for_test(&test, &g);
        b.iter(|| {
            let mut mem = MemoryArray::new(g);
            black_box(unit.run(&mut mem))
        })
    });
    group.bench_function("reference_expansion", |b| {
        b.iter(|| black_box(mbist_march::expand(&test, &g)))
    });
    group.finish();
}

criterion_group!(benches, bench_controllers);
criterion_main!(benches);
