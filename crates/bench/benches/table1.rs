//! Criterion bench behind Table 1: elaboration + synthesis time for every
//! design point of the bit-oriented, single-port comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use mbist_area::{design_points, table1, SupportLevel, Technology};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let tech = Technology::cmos5s();
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("design_points_bit_oriented", |b| {
        b.iter(|| black_box(design_points(&tech, SupportLevel::BitOriented)))
    });
    group.bench_function("full_table1", |b| b.iter(|| black_box(table1(&tech))));
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
