//! Fault-simulation engine throughput: serial vs parallel coverage
//! evaluation, full-replay vs early-exit detection, full vs sliced
//! differential replay over a shared compiled trace, and sliced vs
//! lane-packed batch simulation of the batchable fault classes.

use criterion::{criterion_group, criterion_main, Criterion};
use mbist_march::{
    evaluate_coverage, expand, library, run_steps, run_steps_detect, CompiledTrace,
    CoverageOptions, SimEngine,
};
use mbist_mem::{class_universe, FaultClass, MemGeometry, MemoryArray, UniverseSpec};
use std::hint::black_box;

fn bench_coverage_parallelism(c: &mut Criterion) {
    let g = MemGeometry::bit_oriented(256);
    let mut group = c.benchmark_group("fault_sim_256x1");
    group.sample_size(10);

    let modes = [
        ("jobs1_full", Some(1), SimEngine::Full),
        ("jobs1_sliced", Some(1), SimEngine::Sliced),
        ("jobs1_packed", Some(1), SimEngine::Packed),
        ("jobs_auto_full", None, SimEngine::Full),
        ("jobs_auto_sliced", None, SimEngine::Sliced),
        ("jobs_auto_packed", None, SimEngine::Packed),
    ];
    for (label, jobs, engine) in modes {
        group.bench_function(format!("march_c_all_classes_{label}"), |b| {
            let opts = CoverageOptions {
                max_faults_per_class: Some(128),
                jobs,
                engine,
                ..CoverageOptions::default()
            };
            b.iter(|| black_box(evaluate_coverage(&library::march_c(), &g, &opts)))
        });
    }
    group.finish();
}

fn bench_sliced_trace(c: &mut Criterion) {
    let g = MemGeometry::bit_oriented(256);
    let test = library::march_c();
    let steps = expand(&test, &g);
    let spec = UniverseSpec::default();
    // A coupling fault exercises the widest sliced support set (two words
    // plus sensitization checks); the victim sits mid-array so neither
    // engine exits unrealistically early.
    let fault =
        class_universe(&g, FaultClass::CouplingInversion, &spec)[g.words() as usize / 2];

    let mut group = c.benchmark_group("sliced_256x1");
    group.sample_size(10);
    group.bench_function("compile_trace_march_c", |b| {
        b.iter(|| black_box(CompiledTrace::from_steps(g, &steps)))
    });
    let trace = CompiledTrace::from_steps(g, &steps);
    group.bench_function("detect_sliced_coupling", |b| {
        b.iter(|| black_box(trace.detect_sliced(fault)))
    });
    group.bench_function("detect_full_coupling", |b| {
        let mut scratch = MemoryArray::new(g);
        b.iter(|| black_box(trace.detect_full(fault, &mut scratch)))
    });
    group.finish();
}

fn bench_packed_batches(c: &mut Criterion) {
    let g = MemGeometry::bit_oriented(256);
    let test = library::march_c();
    let steps = expand(&test, &g);
    let spec = UniverseSpec::default();
    let trace = CompiledTrace::from_steps(g, &steps);
    // The five classes the packed engine vectorizes — the head-to-head
    // against sliced on exactly the faults the u64 lanes cover.
    let batchable = [
        FaultClass::StuckAt,
        FaultClass::Transition,
        FaultClass::CouplingInversion,
        FaultClass::CouplingIdempotent,
        FaultClass::CouplingState,
    ];
    let universe: Vec<_> = batchable
        .iter()
        .flat_map(|&class| class_universe(&g, class, &spec).into_iter().take(256))
        .collect();

    let mut group = c.benchmark_group("packed_256x1");
    group.sample_size(10);
    for (label, engine) in
        [("sliced_batchable", SimEngine::Sliced), ("packed_batchable", SimEngine::Packed)]
    {
        group.bench_function(format!("march_c_{label}"), |b| {
            b.iter(|| black_box(trace.detect_universe(&universe, Some(1), engine)))
        });
    }
    group.finish();
}

fn bench_detect_early_exit(c: &mut Criterion) {
    let g = MemGeometry::bit_oriented(256);
    let test = library::march_c();
    let steps = expand(&test, &g);
    let spec = UniverseSpec::default();
    // A stuck-at fault trips on the very first read sweep (early exit wins);
    // the fault-free array replays the whole stream in both modes.
    let fault = class_universe(&g, FaultClass::StuckAt, &spec)[0];

    let mut group = c.benchmark_group("detect_256x1");
    group.sample_size(10);
    group.bench_function("full_replay_stuck_at", |b| {
        b.iter(|| {
            let mut mem = MemoryArray::with_fault(g, fault).unwrap();
            black_box(!run_steps(&mut mem, &steps).passed())
        })
    });
    group.bench_function("early_exit_stuck_at", |b| {
        b.iter(|| {
            let mut mem = MemoryArray::with_fault(g, fault).unwrap();
            black_box(run_steps_detect(&mut mem, &steps))
        })
    });
    group.bench_function("early_exit_fault_free", |b| {
        b.iter(|| {
            let mut mem = MemoryArray::new(g);
            black_box(run_steps_detect(&mut mem, &steps))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_coverage_parallelism,
    bench_sliced_trace,
    bench_packed_batches,
    bench_detect_early_exit
);
criterion_main!(benches);
