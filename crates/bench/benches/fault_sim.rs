//! Fault-simulation engine throughput: serial vs parallel coverage
//! evaluation and full-replay vs early-exit detection.

use criterion::{criterion_group, criterion_main, Criterion};
use mbist_march::{
    evaluate_coverage, expand, library, run_steps, run_steps_detect, CoverageOptions,
};
use mbist_mem::{class_universe, FaultClass, MemGeometry, MemoryArray, UniverseSpec};
use std::hint::black_box;

fn bench_coverage_parallelism(c: &mut Criterion) {
    let g = MemGeometry::bit_oriented(256);
    let mut group = c.benchmark_group("fault_sim_256x1");
    group.sample_size(10);

    for (label, jobs) in [("jobs1", Some(1)), ("jobs_auto", None)] {
        group.bench_function(format!("march_c_all_classes_{label}"), |b| {
            let opts = CoverageOptions {
                max_faults_per_class: Some(128),
                jobs,
                ..CoverageOptions::default()
            };
            b.iter(|| black_box(evaluate_coverage(&library::march_c(), &g, &opts)))
        });
    }
    group.finish();
}

fn bench_detect_early_exit(c: &mut Criterion) {
    let g = MemGeometry::bit_oriented(256);
    let test = library::march_c();
    let steps = expand(&test, &g);
    let spec = UniverseSpec::default();
    // A stuck-at fault trips on the very first read sweep (early exit wins);
    // the fault-free array replays the whole stream in both modes.
    let fault = class_universe(&g, FaultClass::StuckAt, &spec)[0];

    let mut group = c.benchmark_group("detect_256x1");
    group.sample_size(10);
    group.bench_function("full_replay_stuck_at", |b| {
        b.iter(|| {
            let mut mem = MemoryArray::with_fault(g, fault).unwrap();
            black_box(!run_steps(&mut mem, &steps).passed())
        })
    });
    group.bench_function("early_exit_stuck_at", |b| {
        b.iter(|| {
            let mut mem = MemoryArray::with_fault(g, fault).unwrap();
            black_box(run_steps_detect(&mut mem, &steps))
        })
    });
    group.bench_function("early_exit_fault_free", |b| {
        b.iter(|| {
            let mut mem = MemoryArray::new(g);
            black_box(run_steps_detect(&mut mem, &steps))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_coverage_parallelism, bench_detect_early_exit);
criterion_main!(benches);
