//! Criterion bench behind Table 2: word-oriented and multiport design
//! points (larger FSM input spaces for the synthesized baselines).

use criterion::{criterion_group, criterion_main, Criterion};
use mbist_area::{design_points, table2, SupportLevel, Technology};
use std::hint::black_box;

fn bench_table2(c: &mut Criterion) {
    let tech = Technology::cmos5s();
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    group.bench_function("design_points_word", |b| {
        b.iter(|| black_box(design_points(&tech, SupportLevel::WordOriented)))
    });
    group.bench_function("design_points_multiport", |b| {
        b.iter(|| black_box(design_points(&tech, SupportLevel::Multiport)))
    });
    group.bench_function("full_table2", |b| b.iter(|| black_box(table2(&tech))));
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
