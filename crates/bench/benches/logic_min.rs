//! Two-level minimization throughput on real hardwired-controller
//! transition tables — the synthesis step behind every hardwired row of
//! Tables 1-2.

use criterion::{criterion_group, criterion_main, Criterion};
use mbist_area::synthesize;
use mbist_core::hardwired::{HardwiredCaps, HardwiredFsm};
use mbist_march::library;
use std::hint::black_box;

fn bench_logic_min(c: &mut Criterion) {
    let mut group = c.benchmark_group("fsm_synthesis");
    group.sample_size(10);

    for (name, test) in [
        ("march_c", library::march_c()),
        ("march_a", library::march_a()),
        ("march_c_pp", library::march_c_plus_plus()),
    ] {
        group.bench_function(name, |b| {
            let fsm = HardwiredFsm::new(&test, HardwiredCaps::default());
            b.iter(|| black_box(synthesize(&fsm)))
        });
    }
    group.bench_function("march_a_pp_multiport", |b| {
        let fsm = HardwiredFsm::new(
            &library::march_a_plus_plus(),
            HardwiredCaps { background_loop: true, port_loop: true },
        );
        b.iter(|| black_box(synthesize(&fsm)))
    });
    group.finish();
}

criterion_group!(benches, bench_logic_min);
criterion_main!(benches);
