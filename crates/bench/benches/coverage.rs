//! Serial fault-simulation throughput — the harness behind the Ext-1
//! coverage matrix.

use criterion::{criterion_group, criterion_main, Criterion};
use mbist_march::{evaluate_coverage, library, CoverageOptions};
use mbist_mem::{FaultClass, MemGeometry};
use std::hint::black_box;

fn bench_coverage(c: &mut Criterion) {
    let g = MemGeometry::bit_oriented(64);
    let mut group = c.benchmark_group("coverage_64x1");
    group.sample_size(10);

    for class in [FaultClass::StuckAt, FaultClass::CouplingIdempotent] {
        group.bench_function(format!("march_c_{}", class.label()), |b| {
            let opts = CoverageOptions {
                classes: vec![class],
                max_faults_per_class: Some(64),
                ..CoverageOptions::default()
            };
            b.iter(|| black_box(evaluate_coverage(&library::march_c(), &g, &opts)))
        });
    }
    group.bench_function("march_a_all_classes_sampled", |b| {
        let opts = CoverageOptions {
            max_faults_per_class: Some(32),
            ..CoverageOptions::default()
        };
        b.iter(|| black_box(evaluate_coverage(&library::march_a(), &g, &opts)))
    });
    group.finish();
}

criterion_group!(benches, bench_coverage);
criterion_main!(benches);
