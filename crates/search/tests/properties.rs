//! Property tests: any searched test round-trips through the notation,
//! and canonicalization always yields fault-free-clean candidates.

use proptest::prelude::*;

use mbist_march::{fault_free_clean, synth::candidate_elements, MarchTest};
use mbist_mem::{FaultClass, MemGeometry};
use mbist_search::{
    candidate_test, canonical_elements, search_march, SearchOptions, Strategy,
};

/// The selectable class subsets a property case searches over.
const CLASS_MENU: [FaultClass; 6] = [
    FaultClass::StuckAt,
    FaultClass::Transition,
    FaultClass::AddressDecoder,
    FaultClass::CouplingIdempotent,
    FaultClass::StuckOpen,
    FaultClass::PullOpen,
];

fn roundtrip(test: &MarchTest) -> MarchTest {
    let printed = test.to_string();
    let (name, notation) = printed.split_once(": ").expect("display is `name: notation`");
    MarchTest::parse(name, notation).expect("searched test must re-parse")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Satellite: searched tests pretty-print through the notation and
    /// re-parse to an equivalent element list, for both strategies and
    /// arbitrary seeds / class subsets.
    #[test]
    fn searched_tests_round_trip_through_notation(
        seed in any::<u64>(),
        class_bits in 1u8..64,
        evolve in any::<bool>(),
    ) {
        let classes: Vec<FaultClass> = CLASS_MENU
            .iter()
            .enumerate()
            .filter(|&(i, _)| class_bits & (1 << i) != 0)
            .map(|(_, &c)| c)
            .collect();
        let options = SearchOptions {
            geometry: MemGeometry::bit_oriented(16),
            classes,
            max_faults_per_class: 32,
            budget: 120,
            seed,
            strategy: if evolve { Strategy::Evolutionary } else { Strategy::Composition },
            ..SearchOptions::default()
        };
        let found = search_march("prop", &options);
        let reparsed = roundtrip(&found.test);
        prop_assert_eq!(reparsed.items(), found.test.items());
        prop_assert_eq!(reparsed.ops_per_cell(), found.test.ops_per_cell());
    }

    /// Any random draw from the shared candidate pool becomes a clean,
    /// round-trippable test after canonicalization — the invariant that
    /// lets mutation and crossover recombine freely.
    #[test]
    fn canonicalized_candidates_are_clean_and_round_trip(
        picks in prop::collection::vec(0usize..20, 1..10),
    ) {
        let pool = candidate_elements();
        let raw: Vec<_> = picks.iter().map(|&i| pool[i].clone()).collect();
        let test = candidate_test("cand", &canonical_elements(&raw));
        prop_assert!(fault_free_clean(&test, &MemGeometry::bit_oriented(16)));
        let reparsed = roundtrip(&test);
        prop_assert_eq!(reparsed.items(), test.items());
    }
}
