//! Integration tests: acceptance configuration, determinism across worker
//! counts and engines, and structural invariants of search results.

use mbist_march::{library, MarchTest, SimEngine};
use mbist_mem::{FaultClass, MemGeometry};
use mbist_search::{search_march, SearchOptions, Strategy};

/// The acceptance universe: classic static classes on a 256×1 memory.
fn acceptance_options() -> SearchOptions {
    SearchOptions {
        geometry: MemGeometry::bit_oriented(256),
        classes: vec![
            FaultClass::StuckAt,
            FaultClass::Transition,
            FaultClass::CouplingInversion,
            FaultClass::CouplingIdempotent,
            FaultClass::CouplingState,
        ],
        max_faults_per_class: 256,
        seed: 1,
        ..SearchOptions::default()
    }
}

/// A cheaper configuration for the cross-run comparisons.
fn small_options() -> SearchOptions {
    SearchOptions {
        geometry: MemGeometry::bit_oriented(64),
        classes: vec![
            FaultClass::StuckAt,
            FaultClass::Transition,
            FaultClass::CouplingIdempotent,
        ],
        max_faults_per_class: 128,
        budget: 600,
        seed: 7,
        ..SearchOptions::default()
    }
}

#[test]
fn evolve_meets_the_acceptance_bar() {
    let found = search_march("found", &acceptance_options());
    assert!(
        found.converged,
        "seed-1 search must reach 100%: {}/{} with {}",
        found.detected, found.total, found.test
    );
    assert_eq!(found.detected, found.total, "target is the full universe");
    assert!(
        found.test.ops_per_cell() <= library::march_c().ops_per_cell(),
        "must not exceed March C's 10n: got {}n ({})",
        found.test.ops_per_cell(),
        found.test
    );
}

#[test]
fn compose_covers_the_classic_static_set() {
    let options = SearchOptions {
        geometry: MemGeometry::bit_oriented(32),
        classes: vec![
            FaultClass::StuckAt,
            FaultClass::Transition,
            FaultClass::AddressDecoder,
        ],
        max_faults_per_class: 128,
        strategy: Strategy::Composition,
        ..SearchOptions::default()
    };
    let found = search_march("composed", &options);
    assert!(found.converged, "{}/{}", found.detected, found.total);
    assert!(
        found.test.ops_per_cell() <= library::march_c().ops_per_cell(),
        "{}n",
        found.test.ops_per_cell()
    );
}

/// Satellite: the same `--seed` must produce byte-identical output no
/// matter how many workers score the candidates.
#[test]
fn same_seed_is_byte_identical_across_job_counts() {
    for strategy in [Strategy::Evolutionary, Strategy::Composition] {
        let serial = search_march(
            "s",
            &SearchOptions { jobs: Some(1), strategy, ..small_options() },
        );
        let parallel = search_march(
            "s",
            &SearchOptions { jobs: Some(4), strategy, ..small_options() },
        );
        assert_eq!(
            serial.test.to_string(),
            parallel.test.to_string(),
            "{} output depends on --jobs",
            strategy.label()
        );
        assert_eq!(serial.detected, parallel.detected);
        assert_eq!(serial.evaluations, parallel.evaluations);
        assert_eq!(serial.generations, parallel.generations);
    }
}

/// Satellite: packed and sliced oracles must drive the search to the
/// same answer (their detection flags are bit-identical).
#[test]
fn same_seed_is_byte_identical_across_engines() {
    let packed =
        search_march("s", &SearchOptions { engine: SimEngine::Packed, ..small_options() });
    let sliced =
        search_march("s", &SearchOptions { engine: SimEngine::Sliced, ..small_options() });
    assert_eq!(packed.test.to_string(), sliced.test.to_string());
    assert_eq!(packed.detected, sliced.detected);
    assert_eq!(packed.evaluations, sliced.evaluations);
}

#[test]
fn search_results_never_false_alarm() {
    for strategy in [Strategy::Evolutionary, Strategy::Composition] {
        let options = SearchOptions { strategy, ..small_options() };
        let found = search_march("clean", &options);
        assert!(
            mbist_march::fault_free_clean(&found.test, &options.geometry),
            "{} produced a false-alarming test: {}",
            strategy.label(),
            found.test
        );
    }
}

#[test]
fn results_round_trip_through_notation() {
    for strategy in [Strategy::Evolutionary, Strategy::Composition] {
        let found = search_march("rt", &SearchOptions { strategy, ..small_options() });
        let printed = found.test.to_string();
        let notation = printed.strip_prefix("rt: ").expect("display leads with the name");
        let reparsed =
            MarchTest::parse("rt", notation).expect("searched test must re-parse");
        assert_eq!(reparsed.items(), found.test.items());
    }
}

#[test]
fn target_coverage_below_one_converges_with_a_shorter_test() {
    let full = search_march("full", &small_options());
    let relaxed =
        search_march("relaxed", &SearchOptions { target_coverage: 0.9, ..small_options() });
    assert!(relaxed.converged);
    assert!(relaxed.detected >= relaxed.target_detected);
    assert!(relaxed.test.ops_per_cell() <= full.test.ops_per_cell());
}

#[test]
fn cancelled_search_still_returns_a_well_formed_best_effort() {
    let cancel = mbist_march::CancelToken::manual();
    cancel.cancel();
    let options = SearchOptions { cancel, ..small_options() };
    let found = search_march("partial", &options);
    // The seeds are still evaluated, so a best-so-far test exists and is
    // structurally sound even though the loop never ran.
    assert!(found.test.element_count() >= 1);
    assert!(mbist_march::fault_free_clean(&found.test, &options.geometry));
}
