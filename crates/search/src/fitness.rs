//! The fitness oracle: candidate march tests scored by fault simulation.
//!
//! One oracle instance owns the target fault universe (a user-selected
//! class subset, deterministically stride-sampled) and scores every
//! candidate through [`CompiledTrace::detect_universe`] — the same fan-out
//! `evaluate_coverage` uses, so the detection flags are bit-identical for
//! every worker count and engine, which is what makes the whole search
//! trajectory (and therefore its output) independent of `--jobs` and of
//! packed-vs-sliced engine choice.

use std::collections::HashMap;

use mbist_march::{expand_with, CompiledTrace, ExpandOptions, MarchTest, SimEngine};
use mbist_mem::{subset_universe, FaultKind, MemGeometry};

use crate::{canonical_elements, SearchOptions};

/// A candidate's score: faults detected plus the length penalty input.
///
/// Ordering is lexicographic — more faults detected (capped at the target,
/// so a converged candidate is not rewarded for over-covering) beats any
/// length, then fewer operations per cell wins. This is the
/// `(coverage, −length)` fitness every strategy optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fitness {
    /// Faults of the target universe the candidate detects.
    pub detected: usize,
    /// The candidate's classical complexity figure (ops per cell).
    pub ops_per_cell: usize,
}

impl Fitness {
    /// Whether `self` strictly beats `other` under the
    /// `(min(detected, target), −ops_per_cell)` lexicographic order.
    #[must_use]
    pub fn beats(&self, other: &Fitness, target: usize) -> bool {
        let a = (self.detected.min(target), usize::MAX - self.ops_per_cell);
        let b = (other.detected.min(target), usize::MAX - other.ops_per_cell);
        a > b
    }
}

/// Scores candidate element sequences against one fixed fault universe.
///
/// Evaluations are memoized on the candidate's canonical notation: a
/// candidate revisited by mutation or shrinking costs a hash lookup, not a
/// simulation, and does not consume budget.
pub struct FitnessOracle {
    geometry: MemGeometry,
    expand: ExpandOptions,
    universe: Vec<FaultKind>,
    target_detected: usize,
    jobs: Option<usize>,
    engine: SimEngine,
    evaluations: usize,
    memo: HashMap<String, Fitness>,
}

impl FitnessOracle {
    /// Builds the oracle: materializes the class-subset universe for
    /// `options` and fixes the detection target from `target_coverage`.
    #[must_use]
    pub fn new(options: &SearchOptions) -> Self {
        let universe = subset_universe(
            &options.geometry,
            &options.classes,
            &options.spec,
            options.max_faults_per_class,
        );
        let clamped = options.target_coverage.clamp(0.0, 1.0);
        // ceil, so a 99.9% target on a small universe still demands the
        // last fault; an empty universe is trivially converged.
        let target_detected = (clamped * universe.len() as f64).ceil() as usize;
        Self {
            geometry: options.geometry,
            expand: ExpandOptions::for_geometry(&options.geometry),
            universe,
            target_detected,
            jobs: options.jobs,
            engine: options.engine,
            evaluations: 0,
            memo: HashMap::new(),
        }
    }

    /// Size of the target fault universe.
    #[must_use]
    pub fn total(&self) -> usize {
        self.universe.len()
    }

    /// Faults a candidate must detect to count as converged.
    #[must_use]
    pub fn target_detected(&self) -> usize {
        self.target_detected
    }

    /// Candidate evaluations that actually simulated (memo hits excluded).
    #[must_use]
    pub fn evaluations(&self) -> usize {
        self.evaluations
    }

    /// Scores a candidate (the element sequence *after* the canonical
    /// `⇕(w0)` initialization, in canonical read-expectation form).
    pub fn evaluate(&mut self, elements: &[mbist_march::MarchElement]) -> Fitness {
        let test = candidate_test("candidate", elements);
        let key = test.to_string();
        if let Some(&fit) = self.memo.get(&key) {
            return fit;
        }
        let steps = expand_with(&test, &self.geometry, &self.expand);
        let trace = CompiledTrace::from_steps(self.geometry, &steps);
        let flags = trace.detect_universe(&self.universe, self.jobs, self.engine);
        let fit = Fitness {
            detected: flags.iter().filter(|&&d| d).count(),
            ops_per_cell: test.ops_per_cell(),
        };
        self.evaluations += 1;
        self.memo.insert(key, fit);
        fit
    }
}

/// A full [`MarchTest`] for a candidate: the canonical `⇕(w0)`
/// initialization followed by the candidate elements.
#[must_use]
pub fn candidate_test(name: &str, elements: &[mbist_march::MarchElement]) -> MarchTest {
    use mbist_march::{AddressOrder, MarchElement, MarchOp};
    let mut all = vec![MarchElement::new(AddressOrder::Any, vec![MarchOp::Write(false)])];
    all.extend(canonical_elements(elements));
    MarchTest::from_elements(name, all)
}

/// Greedily shrinks a candidate without dropping below `goal` detected
/// faults: repeated element-removal passes (scanning last to first, so
/// late redundant sweeps go before early load-bearing ones), then
/// op-removal passes inside the surviving elements. Deterministic — no
/// randomness, fixed scan order — and cancellable between trials.
#[must_use]
pub fn shrink_elements(
    oracle: &mut FitnessOracle,
    cancel: &mbist_march::CancelToken,
    mut best: Vec<mbist_march::MarchElement>,
    goal: usize,
) -> Vec<mbist_march::MarchElement> {
    use mbist_march::MarchElement;
    // Element-level removal, repeated to a fixed point.
    loop {
        let mut changed = false;
        let mut i = best.len();
        while i > 0 {
            i -= 1;
            if cancel.is_cancelled() {
                return best;
            }
            let mut trial = best.clone();
            trial.remove(i);
            if oracle.evaluate(&trial).detected >= goal {
                best = trial;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Op-level removal inside each surviving element (single-op elements
    // are skipped — removing their op is element removal, already tried).
    loop {
        let mut changed = false;
        let mut i = best.len();
        while i > 0 {
            i -= 1;
            let mut j = best[i].ops().len();
            while j > 0 {
                j -= 1;
                if best[i].ops().len() == 1 {
                    break;
                }
                if cancel.is_cancelled() {
                    return best;
                }
                let mut ops = best[i].ops().to_vec();
                ops.remove(j);
                let mut trial = best.clone();
                trial[i] = MarchElement::new(best[i].order(), ops);
                if oracle.evaluate(&trial).detected >= goal {
                    best = trial;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    best
}
