//! The fitness oracle: candidate march tests scored by fault simulation.
//!
//! One oracle instance owns the target fault universe (a user-selected
//! class subset, deterministically stride-sampled) and scores candidates
//! through [`CandidateBatchScorer`] — per-worker reusable compile arenas,
//! the packed engine's precomputed universe plan, and early exit once the
//! detection target is decided. Scores are bit-identical for every worker
//! count and engine, which is what makes the whole search trajectory (and
//! therefore its output) independent of `--jobs` and of packed-vs-sliced
//! engine choice.
//!
//! # Batched evaluation and the serial contract
//!
//! [`FitnessOracle::evaluate_batch`] fans a whole generation of candidates
//! across workers and *commits* (memo inserts, evaluation counts) in
//! candidate order — never first-finished-wins — so its observable oracle
//! state is exactly what the same candidates evaluated one-by-one through
//! [`FitnessOracle::evaluate`] would leave behind. [`shrink_elements`]
//! batches whole removal-trial waves the same way: trials are simulated
//! speculatively in parallel, then committed in the serial scan order up
//! to and including the first acceptance; the speculated remainder is
//! discarded uncounted and unmemoized, because the serial scan would have
//! rebuilt those trials from the new, shorter candidate.
//!
//! # Memoization
//!
//! Evaluations are memoized on the candidate's canonical *byte encoding*
//! (element order tag + op bytes, see [`canonical_key`]) rather than its
//! display string — same equivalence classes, no formatting on the hot
//! path. The memo is a byte-capped LRU (the discipline of the service's
//! trace cache): capacity generous enough that a search never evicts, but
//! bounded, so a pathological run cannot grow it without limit. A memo
//! hit costs a hash lookup, not a simulation, and does not consume budget.

use std::collections::HashMap;

use mbist_march::{
    AddressOrder, CancelToken, CandidateBatchScorer, ExpandOptions, MarchElement, MarchOp,
    MarchTest,
};
use mbist_mem::subset_universe;

use crate::{canonical_elements, SearchOptions};

/// A candidate's score: faults detected plus the length penalty input.
///
/// Ordering is lexicographic — more faults detected (capped at the target,
/// so a converged candidate is not rewarded for over-covering) beats any
/// length, then fewer operations per cell wins. This is the
/// `(coverage, −length)` fitness every strategy optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fitness {
    /// Faults of the target universe the candidate detects. Memoized
    /// evaluations cap this at the oracle's detection target (the scan
    /// early-exits once the target is decided); use
    /// [`FitnessOracle::evaluate_exact`] for the uncapped count.
    pub detected: usize,
    /// The candidate's classical complexity figure (ops per cell).
    pub ops_per_cell: usize,
}

impl Fitness {
    /// Whether `self` strictly beats `other` under the
    /// `(min(detected, target), −ops_per_cell)` lexicographic order.
    #[must_use]
    pub fn beats(&self, other: &Fitness, target: usize) -> bool {
        let a = (self.detected.min(target), usize::MAX - self.ops_per_cell);
        let b = (other.detected.min(target), usize::MAX - other.ops_per_cell);
        a > b
    }
}

/// The canonical byte encoding of a candidate element sequence (which must
/// already be in canonical read-expectation form): per element one address-
/// order tag, one byte per op, and a terminator byte no op encoding uses —
/// so element boundaries can never alias and two sequences share a key iff
/// they are the same canonical sequence.
#[must_use]
pub fn canonical_key(elements: &[MarchElement]) -> Vec<u8> {
    let mut key =
        Vec::with_capacity(elements.iter().map(|e| e.ops().len() + 2).sum::<usize>());
    for e in elements {
        key.push(match e.order() {
            AddressOrder::Up => 0,
            AddressOrder::Down => 1,
            AddressOrder::Any => 2,
        });
        for op in e.ops() {
            key.push(match op {
                MarchOp::Write(false) => 0x10,
                MarchOp::Write(true) => 0x11,
                MarchOp::Read(false) => 0x12,
                MarchOp::Read(true) => 0x13,
            });
        }
        key.push(0xff);
    }
    key
}

/// Default memo byte budget: ~1 MiB holds every candidate a budgeted
/// search can evaluate many times over, so the cap exists to bound memory,
/// not to be reached.
const MEMO_CAPACITY_BYTES: usize = 1 << 20;

#[derive(Debug)]
struct MemoSlot {
    fit: Fitness,
    bytes: usize,
    last_used: u64,
}

/// Byte-capped LRU memo of canonical key → fitness, mirroring the service
/// trace cache's accounting: every entry is charged its key bytes plus
/// slot overhead against one budget, inserts evict least-recently-used
/// entries until the budget holds, and a capacity of zero disables
/// memoization entirely.
#[derive(Debug)]
struct Memo {
    slots: HashMap<Vec<u8>, MemoSlot>,
    bytes: usize,
    tick: u64,
    capacity_bytes: usize,
}

impl Memo {
    fn new(capacity_bytes: usize) -> Self {
        Self { slots: HashMap::new(), bytes: 0, tick: 0, capacity_bytes }
    }

    /// Non-refreshing membership test, for planning which candidates of a
    /// batch need simulation without perturbing the LRU order the serial
    /// commit scan will establish.
    fn contains(&self, key: &[u8]) -> bool {
        self.slots.contains_key(key)
    }

    /// Looks up a fitness, refreshing its recency.
    fn get(&mut self, key: &[u8]) -> Option<Fitness> {
        self.tick += 1;
        let tick = self.tick;
        let slot = self.slots.get_mut(key)?;
        slot.last_used = tick;
        Some(slot.fit)
    }

    fn insert(&mut self, key: Vec<u8>, fit: Fitness) {
        let bytes = key.len() + std::mem::size_of::<MemoSlot>();
        if bytes > self.capacity_bytes {
            return;
        }
        self.tick += 1;
        let tick = self.tick;
        if let Some(old) = self.slots.remove(&key) {
            self.bytes -= old.bytes;
        }
        while self.bytes + bytes > self.capacity_bytes {
            let victim = self
                .slots
                .iter()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(k, _)| k.clone())
                .expect("bytes > 0 implies a slot exists");
            let evicted = self.slots.remove(&victim).expect("victim exists");
            self.bytes -= evicted.bytes;
        }
        self.bytes += bytes;
        self.slots.insert(key, MemoSlot { fit, bytes, last_used: tick });
    }
}

/// Scores candidate element sequences against one fixed fault universe.
///
/// Evaluations are memoized (see the module docs): a candidate revisited
/// by mutation or shrinking costs a hash lookup, not a simulation, and
/// does not consume budget.
pub struct FitnessOracle {
    scorer: CandidateBatchScorer,
    target_detected: usize,
    jobs: Option<usize>,
    evaluations: usize,
    memo: Memo,
    memo_hits: usize,
}

impl FitnessOracle {
    /// Builds the oracle: materializes the class-subset universe for
    /// `options` and fixes the detection target from `target_coverage`.
    #[must_use]
    pub fn new(options: &SearchOptions) -> Self {
        Self::with_memo_capacity(options, MEMO_CAPACITY_BYTES)
    }

    /// [`FitnessOracle::new`] with an explicit memo byte budget (`0`
    /// disables memoization) — the production entry point always uses the
    /// default budget; this exists so tests can force eviction.
    #[must_use]
    pub fn with_memo_capacity(options: &SearchOptions, memo_capacity: usize) -> Self {
        let universe = subset_universe(
            &options.geometry,
            &options.classes,
            &options.spec,
            options.max_faults_per_class,
        );
        let clamped = options.target_coverage.clamp(0.0, 1.0);
        // ceil, so a 99.9% target on a small universe still demands the
        // last fault; an empty universe is trivially converged.
        let target_detected = (clamped * universe.len() as f64).ceil() as usize;
        Self {
            scorer: CandidateBatchScorer::new(
                options.geometry,
                ExpandOptions::for_geometry(&options.geometry),
                universe,
                options.engine,
            ),
            target_detected,
            jobs: options.jobs,
            evaluations: 0,
            memo: Memo::new(memo_capacity),
            memo_hits: 0,
        }
    }

    /// Size of the target fault universe.
    #[must_use]
    pub fn total(&self) -> usize {
        self.scorer.universe().len()
    }

    /// Faults a candidate must detect to count as converged.
    #[must_use]
    pub fn target_detected(&self) -> usize {
        self.target_detected
    }

    /// Candidate evaluations that actually simulated (memo hits excluded).
    #[must_use]
    pub fn evaluations(&self) -> usize {
        self.evaluations
    }

    /// Evaluations answered from the memo instead of simulation.
    #[must_use]
    pub fn memo_hits(&self) -> usize {
        self.memo_hits
    }

    /// Accumulated `(compile_ns, simulate_ns)` across every simulated
    /// evaluation — the compile-vs-simulate wall-clock split.
    #[must_use]
    pub fn timing(&self) -> (u64, u64) {
        self.scorer.timing()
    }

    /// Scores a candidate (the element sequence *after* the canonical
    /// `⇕(w0)` initialization; read expectations are canonicalized here).
    pub fn evaluate(&mut self, elements: &[MarchElement]) -> Fitness {
        let canon = canonical_elements(elements);
        let key = canonical_key(&canon);
        self.commit(&key, &canon, None)
    }

    /// Scores a whole batch of candidates, fanning the non-memoized ones
    /// across workers, and returns one fitness per candidate in order.
    ///
    /// Observable oracle state (memo contents and recency, evaluation and
    /// hit counts) afterwards is identical to calling
    /// [`FitnessOracle::evaluate`] on each candidate in order — batching
    /// changes only wall-clock time, never the trajectory.
    pub fn evaluate_batch(&mut self, candidates: &[Vec<MarchElement>]) -> Vec<Fitness> {
        let keyed: Vec<(Vec<MarchElement>, Vec<u8>)> = candidates
            .iter()
            .map(|c| {
                let canon = canonical_elements(c);
                let key = canonical_key(&canon);
                (canon, key)
            })
            .collect();
        let (index, scores) = self.speculate(&keyed, &CancelToken::none());
        keyed
            .iter()
            .map(|(canon, key)| {
                let speculated = index
                    .get(key.as_slice())
                    .and_then(|&i| scores.get(i).copied().flatten());
                self.commit(key, canon, speculated)
            })
            .collect()
    }

    /// The exact (uncapped) detection count of a candidate — the final
    /// reporting entry point. Bypasses the memo (whose values are capped
    /// at the target) and does not consume evaluation budget: the search
    /// has already paid for this candidate while finding it.
    #[must_use]
    pub fn evaluate_exact(&mut self, elements: &[MarchElement]) -> Fitness {
        let test = candidate_test("candidate", elements);
        Fitness {
            detected: self.scorer.score_one(&test, None),
            ops_per_cell: test.ops_per_cell(),
        }
    }

    /// Simulates every uncached unique key of `keyed` as one batch,
    /// committing nothing: returns the key → batch-slot map plus the
    /// speculative scores (slots are `None` past a cancellation point).
    fn speculate<'k>(
        &mut self,
        keyed: &'k [(Vec<MarchElement>, Vec<u8>)],
        cancel: &CancelToken,
    ) -> (HashMap<&'k [u8], usize>, Vec<Option<usize>>) {
        let mut index: HashMap<&'k [u8], usize> = HashMap::new();
        let mut tests: Vec<MarchTest> = Vec::new();
        for (canon, key) in keyed {
            if self.memo.contains(key) || index.contains_key(key.as_slice()) {
                continue;
            }
            index.insert(key, tests.len());
            tests.push(test_from_canonical("candidate", canon));
        }
        let scores =
            self.scorer.score_batch(&tests, self.jobs, Some(self.target_detected), cancel);
        (index, scores)
    }

    /// The serial-order commit for one candidate: a live memo lookup (so
    /// in-batch duplicates and evictions behave exactly as one-by-one
    /// evaluation would), then either the speculative score or an inline
    /// simulation, counted and memoized.
    fn commit(
        &mut self,
        key: &[u8],
        canon: &[MarchElement],
        speculated: Option<usize>,
    ) -> Fitness {
        if let Some(fit) = self.memo.get(key) {
            self.memo_hits += 1;
            return fit;
        }
        let detected = match speculated {
            Some(d) => d,
            // Not speculated (or its memo entry was evicted mid-commit by
            // a pathologically small budget): score inline — same pure
            // function, same result.
            None => {
                let test = test_from_canonical("candidate", canon);
                self.scorer.score_one(&test, Some(self.target_detected))
            }
        };
        // ops_per_cell counts the canonical ⇕(w0) initialization op the
        // full candidate test carries in front of the elements.
        let ops_per_cell = 1 + canon.iter().map(|e| e.ops().len()).sum::<usize>();
        let fit = Fitness { detected, ops_per_cell };
        self.evaluations += 1;
        self.memo.insert(key.to_vec(), fit);
        fit
    }
}

/// A full [`MarchTest`] for a candidate: the canonical `⇕(w0)`
/// initialization followed by the candidate elements.
#[must_use]
pub fn candidate_test(name: &str, elements: &[MarchElement]) -> MarchTest {
    test_from_canonical(name, &canonical_elements(elements))
}

/// [`candidate_test`] for elements already in canonical form.
fn test_from_canonical(name: &str, canon: &[MarchElement]) -> MarchTest {
    let mut all = vec![MarchElement::new(AddressOrder::Any, vec![MarchOp::Write(false)])];
    all.extend_from_slice(canon);
    MarchTest::from_elements(name, all)
}

/// How scanning one speculative removal wave ended.
enum WaveScan {
    /// Cancellation observed before a commit: stop with the current best.
    Cancelled,
    /// The trial at this wave position was accepted (it and everything
    /// before it are committed; the rest is discarded unscanned).
    Accepted(usize),
    /// Every trial committed and none was accepted.
    Exhausted,
}

/// Scans `trials` in serial order against `goal`: every trial is scored
/// speculatively as one batch, but committed (counted, memoized) only up
/// to and including the first acceptance — the exact state a one-by-one
/// scan would leave, because the serial scan stops deriving trials from
/// the old candidate at that same point. Cancellation is checked before
/// each commit, mirroring the serial scan's per-trial check.
fn scan_wave(
    oracle: &mut FitnessOracle,
    cancel: &CancelToken,
    trials: &[Vec<MarchElement>],
    goal: usize,
) -> WaveScan {
    let keyed: Vec<(Vec<MarchElement>, Vec<u8>)> = trials
        .iter()
        .map(|t| {
            let canon = canonical_elements(t);
            let key = canonical_key(&canon);
            (canon, key)
        })
        .collect();
    let (index, scores) = oracle.speculate(&keyed, cancel);
    for (pos, (canon, key)) in keyed.iter().enumerate() {
        if cancel.is_cancelled() {
            return WaveScan::Cancelled;
        }
        let speculated =
            index.get(key.as_slice()).and_then(|&i| scores.get(i).copied().flatten());
        let fit = oracle.commit(key, canon, speculated);
        if fit.detected >= goal {
            return WaveScan::Accepted(pos);
        }
    }
    WaveScan::Exhausted
}

/// The element-removal trials of one pass, in serial scan order (indices
/// `upper-1` down to `0` — late redundant sweeps go before early
/// load-bearing ones).
fn element_wave(best: &[MarchElement], upper: usize) -> Vec<(usize, Vec<MarchElement>)> {
    (0..upper)
        .rev()
        .map(|i| {
            let mut trial = best.to_vec();
            trial.remove(i);
            (i, trial)
        })
        .collect()
}

/// One op-removal trial: the candidate plus where the scan resumes if it
/// is accepted (same element, next op index down — op indices shift with
/// the removal exactly as the serial nested loop's counters do).
struct OpTrial {
    trial: Vec<MarchElement>,
    resume: (usize, usize),
}

/// The op-removal trials from a scan cursor onward, in serial order:
/// elements last to first, ops last to first within each element,
/// single-op elements skipped (removing their op is element removal,
/// already tried). `cursor = Some((i, j))` resumes inside element `i`
/// with `j` as the exclusive op upper bound.
fn op_wave(best: &[MarchElement], cursor: Option<(usize, usize)>) -> Vec<OpTrial> {
    let mut out = Vec::new();
    let mut i = cursor.map_or(best.len(), |(i, _)| i + 1);
    let mut jcap = cursor.map(|(_, j)| j);
    while i > 0 {
        i -= 1;
        let ops = best[i].ops();
        let upper = jcap.take().unwrap_or(ops.len()).min(ops.len());
        if ops.len() == 1 {
            continue;
        }
        let mut j = upper;
        while j > 0 {
            j -= 1;
            let mut trimmed = ops.to_vec();
            trimmed.remove(j);
            let mut trial = best.to_vec();
            trial[i] = MarchElement::new(best[i].order(), trimmed);
            out.push(OpTrial { trial, resume: (i, j) });
        }
    }
    out
}

/// Greedily shrinks a candidate without dropping below `goal` detected
/// faults: repeated element-removal passes (scanning last to first, so
/// late redundant sweeps go before early load-bearing ones), then
/// op-removal passes inside the surviving elements. Deterministic — no
/// randomness, fixed scan order — and cancellable between trials.
///
/// Trials are simulated in speculative waves (see [`scan_wave`]) but the
/// result, the evaluation count and the memo contents are identical to
/// the one-by-one scan for every worker count.
#[must_use]
pub fn shrink_elements(
    oracle: &mut FitnessOracle,
    cancel: &CancelToken,
    mut best: Vec<MarchElement>,
    goal: usize,
) -> Vec<MarchElement> {
    // Element-level removal, repeated to a fixed point.
    loop {
        let mut changed = false;
        let mut upper = best.len();
        loop {
            let wave = element_wave(&best, upper);
            if wave.is_empty() {
                break;
            }
            let trials: Vec<Vec<MarchElement>> =
                wave.iter().map(|(_, t)| t.clone()).collect();
            match scan_wave(oracle, cancel, &trials, goal) {
                WaveScan::Cancelled => return best,
                WaveScan::Accepted(pos) => {
                    let (i, trial) = wave.into_iter().nth(pos).expect("pos in wave");
                    best = trial;
                    upper = i;
                    changed = true;
                }
                WaveScan::Exhausted => break,
            }
        }
        if !changed {
            break;
        }
    }
    // Op-level removal inside each surviving element.
    loop {
        let mut changed = false;
        let mut cursor: Option<(usize, usize)> = None;
        loop {
            let wave = op_wave(&best, cursor);
            if wave.is_empty() {
                break;
            }
            let trials: Vec<Vec<MarchElement>> =
                wave.iter().map(|t| t.trial.clone()).collect();
            match scan_wave(oracle, cancel, &trials, goal) {
                WaveScan::Cancelled => return best,
                WaveScan::Accepted(pos) => {
                    let accepted = wave.into_iter().nth(pos).expect("pos in wave");
                    best = accepted.trial;
                    cursor = Some(accepted.resume);
                    changed = true;
                }
                WaveScan::Exhausted => break,
            }
        }
        if !changed {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbist_march::library;
    use mbist_mem::{FaultClass, MemGeometry};

    fn options() -> SearchOptions {
        SearchOptions {
            geometry: MemGeometry::bit_oriented(16),
            classes: vec![FaultClass::StuckAt, FaultClass::Transition],
            max_faults_per_class: 64,
            ..SearchOptions::default()
        }
    }

    fn elem(order: AddressOrder, ops: Vec<MarchOp>) -> Vec<MarchElement> {
        vec![MarchElement::new(order, ops)]
    }

    fn ops_of(elements: &[MarchElement]) -> usize {
        elements.iter().map(|e| e.ops().len()).sum()
    }

    #[test]
    fn memo_cap_holds_and_eviction_forces_reevaluation() {
        let opts = options();
        // Three equal-size single-op candidates, so the LRU's byte
        // accounting moves in whole-entry steps.
        let a = elem(AddressOrder::Up, vec![MarchOp::Write(true)]);
        let b = elem(AddressOrder::Down, vec![MarchOp::Write(true)]);
        let c = elem(AddressOrder::Up, vec![MarchOp::Write(false)]);
        let slot = std::mem::size_of::<MemoSlot>();
        let entry = canonical_key(&a).len() + slot;
        let cap = 2 * entry;

        let mut oracle = FitnessOracle::with_memo_capacity(&opts, cap);
        oracle.evaluate(&a);
        oracle.evaluate(&b);
        assert_eq!(oracle.evaluations(), 2);
        assert!(oracle.memo.bytes <= cap, "cap must hold after fills");
        oracle.evaluate(&a); // refresh A's recency
        assert_eq!(oracle.memo_hits(), 1);
        oracle.evaluate(&c); // evicts B (least recently used)
        assert_eq!(oracle.evaluations(), 3);
        assert!(oracle.memo.bytes <= cap, "cap must hold across eviction");
        oracle.evaluate(&b); // B was evicted: simulated again, not a hit
        assert_eq!(oracle.evaluations(), 4);
        assert_eq!(oracle.memo_hits(), 1, "an eviction must not count as a hit");
    }

    #[test]
    fn zero_capacity_disables_memoization() {
        let a = elem(AddressOrder::Up, vec![MarchOp::Write(true)]);
        let mut oracle = FitnessOracle::with_memo_capacity(&options(), 0);
        let f1 = oracle.evaluate(&a);
        let f2 = oracle.evaluate(&a);
        assert_eq!(f1, f2);
        assert_eq!(oracle.evaluations(), 2);
        assert_eq!(oracle.memo_hits(), 0);
        assert_eq!(oracle.memo.bytes, 0);
    }

    #[test]
    fn evaluations_exclude_memo_hits_across_evaluate_and_batch() {
        let mut oracle = FitnessOracle::new(&options());
        let a: Vec<MarchElement> = library::mats().elements().skip(1).cloned().collect();
        let b: Vec<MarchElement> = library::march_c().elements().skip(1).cloned().collect();
        let fa = oracle.evaluate(&a);
        assert_eq!((oracle.evaluations(), oracle.memo_hits()), (1, 0));
        let fits = oracle.evaluate_batch(&[a.clone(), b.clone(), a, b]);
        assert_eq!(oracle.evaluations(), 2, "only the unseen candidate simulates");
        assert_eq!(oracle.memo_hits(), 3, "one cross-call hit, two in-batch dups");
        assert_eq!(fits[0], fa);
        assert_eq!(fits[1], fits[3]);
    }

    #[test]
    fn batched_evaluation_leaves_identical_oracle_state_to_serial() {
        let opts = options();
        let candidates: Vec<Vec<MarchElement>> =
            library::all().iter().map(|t| t.elements().cloned().collect()).collect();
        let mut serial = FitnessOracle::new(&opts);
        let serial_fits: Vec<Fitness> =
            candidates.iter().map(|c| serial.evaluate(c)).collect();
        let mut batched = FitnessOracle::new(&opts);
        let batched_fits = batched.evaluate_batch(&candidates);
        assert_eq!(serial_fits, batched_fits);
        assert_eq!(serial.evaluations(), batched.evaluations());
        assert_eq!(serial.memo_hits(), batched.memo_hits());
    }

    #[test]
    fn pre_canonical_read_variants_share_one_memo_entry() {
        // Same candidate after read-expectation canonicalization: the keys
        // collide exactly because the memo hashes the canonical encoding,
        // not the as-written formatting.
        let mut oracle = FitnessOracle::new(&options());
        let a = elem(AddressOrder::Up, vec![MarchOp::Read(true), MarchOp::Write(true)]);
        let b = elem(AddressOrder::Up, vec![MarchOp::Read(false), MarchOp::Write(true)]);
        let fa = oracle.evaluate(&a);
        let fb = oracle.evaluate(&b);
        assert_eq!(fa, fb);
        assert_eq!(oracle.evaluations(), 1);
        assert_eq!(oracle.memo_hits(), 1);
    }

    #[test]
    fn canonical_keys_agree_exactly_with_canonical_notation() {
        let notation = |s: &[MarchElement]| {
            s.iter().map(ToString::to_string).collect::<Vec<_>>().join("; ")
        };
        let mut seqs: Vec<Vec<MarchElement>> = library::all()
            .iter()
            .map(|t| canonical_elements(&t.elements().cloned().collect::<Vec<_>>()))
            .collect();
        // Element-boundary aliasing probes: identical flat op strings,
        // different element splits — the per-element terminator byte must
        // keep their keys apart.
        seqs.push(vec![
            MarchElement::new(
                AddressOrder::Up,
                vec![MarchOp::Read(false), MarchOp::Write(true)],
            ),
            MarchElement::new(AddressOrder::Up, vec![MarchOp::Write(false)]),
        ]);
        seqs.push(vec![
            MarchElement::new(AddressOrder::Up, vec![MarchOp::Read(false)]),
            MarchElement::new(
                AddressOrder::Up,
                vec![MarchOp::Write(true), MarchOp::Write(false)],
            ),
        ]);
        for a in &seqs {
            for b in &seqs {
                assert_eq!(
                    canonical_key(a) == canonical_key(b),
                    notation(a) == notation(b),
                    "keys must collide exactly when canonical notation does:\n  {}\n  {}",
                    notation(a),
                    notation(b)
                );
            }
        }
    }

    #[test]
    fn shrink_cancellation_returns_best_so_far_at_every_budget() {
        let mut opts = options();
        opts.jobs = Some(1); // deterministic poll sequence for the sweep
                             // A redundant candidate: March C− plus junk sweeps to shed, so the
                             // shrink runs both an element pass and an op pass.
        let mut input: Vec<MarchElement> =
            library::march_c().elements().skip(1).cloned().collect();
        input.push(MarchElement::new(AddressOrder::Up, vec![MarchOp::Read(false)]));
        input.push(MarchElement::new(
            AddressOrder::Down,
            vec![MarchOp::Write(true), MarchOp::Write(false)],
        ));
        let input = canonical_elements(&input);

        let mut reference = FitnessOracle::new(&opts);
        let goal = reference.evaluate(&input).detected;
        let shrunk =
            shrink_elements(&mut reference, &CancelToken::none(), input.clone(), goal);
        let reference_evals = reference.evaluations();
        assert!(ops_of(&shrunk) < ops_of(&input), "the junk must actually shed");

        // Budgets chosen to trip inside the element pass (small), inside
        // the op pass (middle), and past the whole shrink (large).
        let mut prev_ops = usize::MAX;
        for checks in [0, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 10_000] {
            let mut oracle = FitnessOracle::new(&opts);
            assert_eq!(oracle.evaluate(&input).detected, goal);
            let cancel = CancelToken::after_checks(checks);
            let out = shrink_elements(&mut oracle, &cancel, input.clone(), goal);
            let fit = oracle.evaluate_exact(&out);
            assert!(
                fit.detected >= goal,
                "budget {checks}: best-so-far dropped below the goal"
            );
            assert!(ops_of(&out) <= ops_of(&input), "budget {checks}: grew");
            assert!(
                ops_of(&out) <= prev_ops,
                "budget {checks}: more budget must never shrink less"
            );
            assert!(
                oracle.evaluations() <= reference_evals,
                "budget {checks}: cancelled shrink simulated more than uncancelled"
            );
            prev_ops = ops_of(&out);
            if checks == 0 {
                assert_eq!(out, input, "zero budget must return the input untouched");
            }
            if checks == 10_000 {
                assert_eq!(out, shrunk, "a generous budget must finish the shrink");
                assert_eq!(oracle.evaluations(), reference_evals);
            }
        }
    }
}
