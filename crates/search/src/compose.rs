//! Primitive composition: per-fault-class test primitives concatenated
//! and greedily shrunk.
//!
//! Each fault class has a small set of march elements that the classical
//! detection arguments say suffice for it (e.g. a stuck-at fault needs
//! every cell read in both states; an idempotent coupling fault needs
//! both transition directions swept in both address orders). Composing
//! the primitives of the requested classes yields a test that is complete
//! by argument but redundant by construction — the shared shrinker then
//! removes every element and operation the sampled universe does not
//! actually require. The whole strategy is deterministic and uses no
//! randomness at all, which makes it the cheap, predictable half of the
//! search: the evolutionary loop seeds from its output and only wins
//! where stochastic rearrangement finds something composition cannot.

use mbist_march::{AddressOrder, MarchElement, MarchOp};
use mbist_mem::FaultClass;

use crate::fitness::{shrink_elements, FitnessOracle};
use crate::{canonical_elements, SearchOptions, SearchStrategy, StrategyRun};

/// The composition strategy (see the module docs).
pub struct Composition;

fn el(order: AddressOrder, ops: &[MarchOp]) -> MarchElement {
    MarchElement::new(order, ops.to_vec())
}

/// The test primitives composed for one fault class.
///
/// Data-retention faults are the one class element composition cannot
/// finish: they need idle pauses, which are outside the element search
/// space. Their primitives still read both data backgrounds so the decay
/// is observed whenever the configured retention time elapses within the
/// test; full DRF coverage requires the library's pause-bearing tests.
#[must_use]
pub fn primitives_for(class: FaultClass) -> Vec<MarchElement> {
    use AddressOrder::{Any, Down, Up};
    use MarchOp::{Read, Write};
    let (r0, r1) = (Read(false), Read(true));
    let (w0, w1) = (Write(false), Write(true));
    match class {
        FaultClass::StuckAt => vec![el(Up, &[r0, w1]), el(Up, &[r1, w0])],
        FaultClass::Transition | FaultClass::Retention => {
            vec![el(Up, &[r0, w1]), el(Up, &[r1, w0]), el(Up, &[r0])]
        }
        FaultClass::AddressDecoder => {
            vec![el(Up, &[r0, w1]), el(Down, &[r1, w0]), el(Any, &[r0])]
        }
        FaultClass::CouplingInversion
        | FaultClass::CouplingIdempotent
        | FaultClass::CouplingState
        | FaultClass::NpsfStatic
        | FaultClass::NpsfActive => vec![
            el(Up, &[r0, w1]),
            el(Up, &[r1, w0]),
            el(Down, &[r0, w1]),
            el(Down, &[r1, w0]),
            el(Any, &[r0]),
        ],
        FaultClass::StuckOpen => {
            vec![el(Up, &[r0, w1, r1]), el(Down, &[r1, w0, r0])]
        }
        // Default universe spec survives two good reads, so excite with
        // three consecutive reads before each transition.
        FaultClass::PullOpen => vec![el(Up, &[r0, r0, r0, w1]), el(Up, &[r1, r1, r1, w0])],
    }
}

/// Concatenates the primitives of `classes` (in the given order),
/// dropping consecutive duplicate elements, in canonical
/// read-expectation form.
#[must_use]
pub fn primitive_sequence(classes: &[FaultClass]) -> Vec<MarchElement> {
    let mut out: Vec<MarchElement> = Vec::new();
    for &class in classes {
        for e in primitives_for(class) {
            if out.last() != Some(&e) {
                out.push(e);
            }
        }
    }
    canonical_elements(&out)
}

impl SearchStrategy for Composition {
    fn name(&self) -> &'static str {
        "compose"
    }

    fn search(&self, oracle: &mut FitnessOracle, options: &SearchOptions) -> StrategyRun {
        let composed = primitive_sequence(&options.classes);
        let fit = oracle.evaluate(&composed);
        // Shrink preserves what was reached: the target when converged,
        // the achieved detection count otherwise.
        let goal = fit.detected.min(oracle.target_detected());
        let elements = shrink_elements(oracle, &options.cancel, composed, goal);
        StrategyRun { elements, generations: 1 }
    }
}
