//! # mbist-search — search-based march-test synthesis
//!
//! Finds short march tests hitting a target coverage of a user-specified
//! fault universe, with the lane-packed fault-simulation engine
//! ([`SimEngine::Packed`]) as the fitness oracle. Two cooperating
//! strategies live behind one [`SearchStrategy`] trait:
//!
//! - [`Evolutionary`]: a seeded evolutionary loop — tournament selection,
//!   element-level one-point crossover, op/order/background mutation —
//!   whose population starts from the composed primitive sequence, the
//!   greedy [`synthesize_march`](mbist_march::synthesize_march) result and
//!   the classical [`library`](mbist_march::library) tests,
//! - [`Composition`]: per-fault-class test primitives concatenated and
//!   greedily shrunk.
//!
//! Both optimize the same lexicographic fitness
//! `(min(detected, target), −ops_per_cell)`: reach the coverage target
//! first, then shed length. Every run is deterministic in
//! ([`SearchOptions::seed`], options): candidate scoring goes through
//! [`CandidateBatchScorer`](mbist_march::CandidateBatchScorer), which fans
//! *candidates* across workers but joins results in candidate order —
//! never first-finished-wins — and whose per-candidate counts are
//! bit-identical across worker counts and engines, so `--jobs` and
//! packed-vs-sliced cannot perturb the search trajectory.
//!
//! # Examples
//!
//! ```
//! use mbist_search::{search_march, SearchOptions, Strategy};
//! use mbist_mem::{FaultClass, MemGeometry};
//!
//! let options = SearchOptions {
//!     geometry: MemGeometry::bit_oriented(32),
//!     classes: vec![FaultClass::StuckAt, FaultClass::Transition],
//!     max_faults_per_class: 64,
//!     strategy: Strategy::Composition,
//!     ..SearchOptions::default()
//! };
//! let found = search_march("found", &options);
//! assert!(found.converged);
//! assert!(found.test.ops_per_cell() <= 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compose;
mod evolve;
mod fitness;

use mbist_march::{CancelToken, MarchElement, MarchOp, MarchTest, SimEngine};
use mbist_mem::{FaultClass, MemGeometry, UniverseSpec};

pub use compose::{primitive_sequence, primitives_for, Composition};
pub use evolve::Evolutionary;
pub use fitness::{candidate_test, canonical_key, shrink_elements, Fitness, FitnessOracle};

/// Which search strategy to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Seeded evolutionary loop (tournament selection, crossover,
    /// mutation).
    #[default]
    Evolutionary,
    /// Per-fault-class primitive composition plus greedy shrinking.
    Composition,
}

impl Strategy {
    /// Parses a CLI/service strategy name (`evolve` or `compose`).
    #[must_use]
    pub fn parse_name(name: &str) -> Option<Strategy> {
        match name {
            "evolve" => Some(Strategy::Evolutionary),
            "compose" => Some(Strategy::Composition),
            _ => None,
        }
    }

    /// The canonical strategy name (`evolve` / `compose`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Strategy::Evolutionary => "evolve",
            Strategy::Composition => "compose",
        }
    }
}

/// Options for a synthesis search.
#[derive(Debug, Clone)]
pub struct SearchOptions {
    /// Geometry the oracle simulates on.
    pub geometry: MemGeometry,
    /// The target fault universe: which classes the found test must cover.
    pub classes: Vec<FaultClass>,
    /// Universe-generation parameters (coupling window, retention time…).
    pub spec: UniverseSpec,
    /// Per-class stride-sampling cap (`0` = uncapped).
    pub max_faults_per_class: usize,
    /// Required detected fraction of the sampled universe, in `[0, 1]`.
    pub target_coverage: f64,
    /// Candidate-evaluation budget (memoized re-evaluations are free).
    pub budget: usize,
    /// Seed for every stochastic choice. Same seed ⇒ same output.
    pub seed: u64,
    /// Upper bound on march elements per candidate (excluding the `⇕(w0)`
    /// initialization).
    pub max_elements: usize,
    /// Worker threads for the detection fan-out (`None` = auto). Has no
    /// effect on the result, only on wall-clock time.
    pub jobs: Option<usize>,
    /// Simulation engine scoring candidates. Detection flags are
    /// bit-identical across engines, so this too only affects speed.
    pub engine: SimEngine,
    /// Cooperative cancellation, checked between generations / shrink
    /// steps. A cancelled search still returns its best-so-far candidate,
    /// but `converged` only reports what was actually reached.
    pub cancel: CancelToken,
    /// Which strategy runs.
    pub strategy: Strategy,
}

impl Default for SearchOptions {
    fn default() -> Self {
        Self {
            geometry: MemGeometry::bit_oriented(256),
            classes: vec![
                FaultClass::StuckAt,
                FaultClass::Transition,
                FaultClass::CouplingInversion,
                FaultClass::CouplingIdempotent,
                FaultClass::CouplingState,
            ],
            spec: UniverseSpec::default(),
            max_faults_per_class: 256,
            target_coverage: 1.0,
            budget: 2000,
            seed: 1,
            max_elements: 12,
            jobs: None,
            engine: SimEngine::Packed,
            cancel: CancelToken::none(),
            strategy: Strategy::Evolutionary,
        }
    }
}

/// Outcome of a search run.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The best test found (always fault-free clean by construction).
    pub test: MarchTest,
    /// Faults of the sampled universe the test detects.
    pub detected: usize,
    /// Size of the sampled universe.
    pub total: usize,
    /// Faults the test had to detect to satisfy `target_coverage`.
    pub target_detected: usize,
    /// Simulated candidate evaluations performed (memo hits excluded).
    pub evaluations: usize,
    /// Generations the evolutionary loop ran (`1` for composition, which
    /// is a single compose-then-shrink pass).
    pub generations: usize,
    /// Whether the coverage target was reached.
    pub converged: bool,
    /// The strategy that produced the result.
    pub strategy: Strategy,
    /// Wall-clock nanoseconds the oracle spent compiling candidates into
    /// traces (summed across workers, so it can exceed elapsed time).
    pub compile_ns: u64,
    /// Wall-clock nanoseconds the oracle spent simulating faults against
    /// compiled candidates (summed across workers).
    pub simulate_ns: u64,
    /// Evaluations answered from the fitness memo instead of simulation.
    pub memo_hits: usize,
}

impl SearchOutcome {
    /// Detected fraction of the sampled universe (`1.0` when empty).
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.detected as f64 / self.total as f64
        }
    }
}

/// What a strategy hands back to the driver: the candidate elements
/// (excluding the canonical initialization) and how many rounds it ran.
#[derive(Debug, Clone)]
pub struct StrategyRun {
    /// Best element sequence found, in canonical read-expectation form.
    pub elements: Vec<MarchElement>,
    /// Generations / passes executed.
    pub generations: usize,
}

/// A search strategy: proposes candidate element sequences and lets the
/// shared [`FitnessOracle`] judge them.
pub trait SearchStrategy {
    /// The strategy's canonical name.
    fn name(&self) -> &'static str;

    /// Runs the search to completion (or budget / cancellation).
    fn search(&self, oracle: &mut FitnessOracle, options: &SearchOptions) -> StrategyRun;
}

/// Runs the configured strategy and packages the outcome.
///
/// # Panics
///
/// Panics if `options.classes` is empty.
#[must_use]
pub fn search_march(name: &str, options: &SearchOptions) -> SearchOutcome {
    assert!(!options.classes.is_empty(), "need at least one target fault class");
    let mut oracle = FitnessOracle::new(options);
    let run = match options.strategy {
        Strategy::Evolutionary => Evolutionary.search(&mut oracle, options),
        Strategy::Composition => Composition.search(&mut oracle, options),
    };
    // Exact final count: the search's internal scores early-exit at the
    // target, but the reported coverage is the uncapped truth.
    let fit = oracle.evaluate_exact(&run.elements);
    let (compile_ns, simulate_ns) = oracle.timing();
    SearchOutcome {
        test: candidate_test(name, &run.elements),
        detected: fit.detected,
        total: oracle.total(),
        target_detected: oracle.target_detected(),
        evaluations: oracle.evaluations(),
        generations: run.generations,
        converged: fit.detected >= oracle.target_detected(),
        strategy: options.strategy,
        compile_ns,
        simulate_ns,
        memo_hits: oracle.memo_hits(),
    }
}

/// The canonical human-readable report for a search outcome — the single
/// formatter both the CLI subcommand and the service job kind print, so
/// their texts are byte-identical by construction.
#[must_use]
pub fn report_text(found: &SearchOutcome, options: &SearchOptions) -> String {
    use std::fmt::Write as _;
    let universe: Vec<&str> = options.classes.iter().map(|c| c.tag()).collect();
    let mut out = String::new();
    let _ = writeln!(out, "{}", found.test);
    let _ = writeln!(
        out,
        "strategy {}, seed {}, universe {} on {}: {} faults",
        found.strategy.label(),
        options.seed,
        universe.join(","),
        options.geometry,
        found.total
    );
    let _ = writeln!(
        out,
        "coverage {}/{} ({:.1}%), target {}: {}",
        found.detected,
        found.total,
        found.coverage() * 100.0,
        found.target_detected,
        if found.converged { "converged" } else { "target NOT reached" }
    );
    let _ = writeln!(
        out,
        "complexity {}n, {} evaluations, {} generations",
        found.test.ops_per_cell(),
        found.evaluations,
        found.generations
    );
    out
}

/// Rewrites a candidate's read expectations to the fault-free value.
///
/// March operations are uniform per cell, so after the canonical `⇕(w0)`
/// initialization the whole array holds a single tracked value; rewriting
/// every read to expect it makes any element sequence fault-free clean *by
/// construction* — mutation and crossover can never produce a candidate
/// that false-alarms on a good memory.
#[must_use]
pub fn canonical_elements(elements: &[MarchElement]) -> Vec<MarchElement> {
    let mut v = false; // value every cell holds after ⇕(w0)
    elements
        .iter()
        .map(|e| {
            let ops = e
                .ops()
                .iter()
                .map(|op| match op {
                    MarchOp::Read(_) => MarchOp::Read(v),
                    MarchOp::Write(b) => {
                        v = *b;
                        *op
                    }
                })
                .collect();
            MarchElement::new(e.order(), ops)
        })
        .collect()
}
