//! The evolutionary search loop: tournament selection, element-level
//! crossover, pool/order/background mutation.
//!
//! The population is seeded, not random: the primitive composition for
//! the requested classes, the greedy [`synthesize_march`] result on a
//! small proxy geometry, and every classical library test (stripped of
//! pauses and truncated to the element budget) all enter generation
//! zero. That guarantees the search never does *worse* than the best
//! known answer — a converged March C in the seeds is an immediate
//! `10n`/100% floor for the classic static classes — and the loop earns
//! its keep by rearranging below that floor. Everything stochastic draws
//! from one `SmallRng` seeded by [`SearchOptions::seed`], and candidate
//! scoring is engine/job-count invariant, so the whole trajectory is a
//! pure function of (seed, options).

use mbist_march::synth::candidate_elements;
use mbist_march::{
    library, synthesize_march, ComplementMask, CoverageOptions, MarchElement,
    SynthesisOptions,
};
use mbist_mem::MemGeometry;
use rand::{Rng, SmallRng};

use crate::compose::primitive_sequence;
use crate::fitness::{shrink_elements, Fitness, FitnessOracle};
use crate::{canonical_elements, SearchOptions, SearchStrategy, StrategyRun};

/// Population size.
const POP: usize = 16;
/// Individuals copied unchanged into the next generation.
const ELITE: usize = 2;
/// Tournament size for parent selection.
const TOURNAMENT: usize = 3;
/// Converged generations without improvement before stopping early.
const STAGNATION: usize = 6;

/// The evolutionary strategy (see the module docs).
pub struct Evolutionary;

type Individual = Vec<MarchElement>;

/// The library tests as seed individuals: pauses stripped, leading
/// write-only initialization dropped (the oracle adds its own), truncated
/// to the element budget.
fn library_seeds(max_elements: usize) -> Vec<Individual> {
    library::all()
        .iter()
        .map(|t| {
            let mut elements: Vec<MarchElement> = t.elements().cloned().collect();
            while elements.first().is_some_and(MarchElement::is_write_only) {
                elements.remove(0);
            }
            elements.truncate(max_elements);
            elements
        })
        .filter(|e| !e.is_empty())
        .collect()
}

/// The greedy synthesizer's answer on a small proxy geometry — cheap to
/// compute and already near-minimal for the easy classes.
fn greedy_seed(options: &SearchOptions) -> Option<Individual> {
    let synth = synthesize_march(
        "greedy-seed",
        &SynthesisOptions {
            geometry: MemGeometry::bit_oriented(16),
            classes: options.classes.clone(),
            coverage: CoverageOptions {
                classes: options.classes.clone(),
                spec: options.spec,
                max_faults_per_class: Some(64),
                jobs: options.jobs,
                engine: options.engine,
                cancel: options.cancel.clone(),
                ..CoverageOptions::default()
            },
            max_elements: options.max_elements.clamp(1, 8),
        },
    );
    let mut elements: Vec<MarchElement> = synth.test.elements().cloned().collect();
    while elements.first().is_some_and(MarchElement::is_write_only) {
        elements.remove(0);
    }
    if elements.is_empty() {
        None
    } else {
        Some(elements)
    }
}

/// A random individual drawn from the shared candidate pool.
fn random_individual(
    rng: &mut SmallRng,
    pool: &[MarchElement],
    max_elements: usize,
) -> Individual {
    let len = 1 + rng.gen_range_u64(max_elements.min(6) as u64) as usize;
    (0..len).map(|_| pool[rng.gen_range_u64(pool.len() as u64) as usize].clone()).collect()
}

/// One-point crossover: a prefix of `a` spliced onto a suffix of `b`.
fn crossover(
    rng: &mut SmallRng,
    a: &Individual,
    b: &Individual,
    max_elements: usize,
) -> Individual {
    let cut_a = rng.gen_range_u64(a.len() as u64 + 1) as usize;
    let cut_b = rng.gen_range_u64(b.len() as u64 + 1) as usize;
    let mut child: Individual =
        a[..cut_a].iter().chain(b[cut_b..].iter()).cloned().collect();
    child.truncate(max_elements);
    if child.is_empty() {
        child = a.clone();
    }
    child
}

/// Applies one random mutation in place.
fn mutate(
    rng: &mut SmallRng,
    ind: &mut Individual,
    pool: &[MarchElement],
    max_elements: usize,
) {
    let pick = |rng: &mut SmallRng, n: usize| rng.gen_range_u64(n as u64) as usize;
    match rng.gen_range_u64(6) {
        // Replace an element with a pool element.
        0 => {
            let i = pick(rng, ind.len());
            ind[i] = pool[pick(rng, pool.len())].clone();
        }
        // Insert a pool element.
        1 if ind.len() < max_elements => {
            let i = pick(rng, ind.len() + 1);
            ind.insert(i, pool[pick(rng, pool.len())].clone());
        }
        // Delete an element.
        2 if ind.len() > 1 => {
            let i = pick(rng, ind.len());
            ind.remove(i);
        }
        // Flip an element's address order.
        3 => {
            let i = pick(rng, ind.len());
            ind[i] = ind[i].complemented(ComplementMask {
                order: true,
                data: false,
                compare: false,
            });
        }
        // Complement an element's data background (compare follows data;
        // canonicalization re-derives the expectations anyway).
        4 => {
            let i = pick(rng, ind.len());
            ind[i] = ind[i].complemented(ComplementMask {
                order: false,
                data: true,
                compare: true,
            });
        }
        // Swap two elements.
        _ => {
            let i = pick(rng, ind.len());
            let j = pick(rng, ind.len());
            ind.swap(i, j);
        }
    }
}

/// Index of the tournament winner among `scores` (first-wins tie-break,
/// so selection is deterministic for a fixed RNG stream).
fn tournament(rng: &mut SmallRng, scores: &[Fitness], target: usize) -> usize {
    let mut best = rng.gen_range_u64(scores.len() as u64) as usize;
    for _ in 1..TOURNAMENT {
        let i = rng.gen_range_u64(scores.len() as u64) as usize;
        if scores[i].beats(&scores[best], target) {
            best = i;
        }
    }
    best
}

impl SearchStrategy for Evolutionary {
    fn name(&self) -> &'static str {
        "evolve"
    }

    fn search(&self, oracle: &mut FitnessOracle, options: &SearchOptions) -> StrategyRun {
        let mut rng = SmallRng::seed_from_u64(options.seed);
        let pool = candidate_elements();
        let max_elements = options.max_elements.max(1);
        let target = oracle.target_detected();

        // Seed population: composition, greedy, library, random filler —
        // all in canonical form, deduplicated by notation.
        let mut pop: Vec<Individual> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        let mut push = |pop: &mut Vec<Individual>, raw: Individual| {
            let mut ind = canonical_elements(&raw);
            ind.truncate(max_elements);
            if ind.is_empty() {
                return;
            }
            let key: Vec<String> = ind.iter().map(MarchElement::to_string).collect();
            if seen.insert(key.join(";")) && pop.len() < POP {
                pop.push(ind);
            }
        };
        push(&mut pop, primitive_sequence(&options.classes));
        if let Some(greedy) = greedy_seed(options) {
            push(&mut pop, greedy);
        }
        for seed in library_seeds(max_elements) {
            push(&mut pop, seed);
        }
        while pop.len() < POP {
            push(&mut pop, random_individual(&mut rng, &pool, max_elements));
        }

        // Whole generations go to the oracle as one batch: candidates fan
        // out across workers, results commit in candidate order, so the
        // trajectory is exactly the one-by-one evaluation's.
        let mut scores: Vec<Fitness> = oracle.evaluate_batch(&pop);
        let mut best_idx = 0;
        for i in 1..pop.len() {
            if scores[i].beats(&scores[best_idx], target) {
                best_idx = i;
            }
        }
        let mut best = pop[best_idx].clone();
        let mut best_fit = scores[best_idx];

        let mut generations = 0usize;
        let mut stagnant = 0usize;
        while oracle.evaluations() < options.budget && !options.cancel.is_cancelled() {
            if best_fit.detected >= target && stagnant >= STAGNATION {
                break;
            }
            generations += 1;

            // Elites: the best individuals carry over unchanged.
            let mut order: Vec<usize> = (0..pop.len()).collect();
            order.sort_by(|&a, &b| {
                if scores[a].beats(&scores[b], target) {
                    std::cmp::Ordering::Less
                } else if scores[b].beats(&scores[a], target) {
                    std::cmp::Ordering::Greater
                } else {
                    a.cmp(&b)
                }
            });
            let mut next: Vec<Individual> =
                order.iter().take(ELITE).map(|&i| pop[i].clone()).collect();

            while next.len() < POP {
                let a = tournament(&mut rng, &scores, target);
                let b = tournament(&mut rng, &scores, target);
                let mut child = if rng.gen_range_u64(10) < 7 {
                    crossover(&mut rng, &pop[a], &pop[b], max_elements)
                } else {
                    pop[a].clone()
                };
                mutate(&mut rng, &mut child, &pool, max_elements);
                if rng.gen_range_u64(10) < 3 {
                    mutate(&mut rng, &mut child, &pool, max_elements);
                }
                next.push(canonical_elements(&child));
            }

            pop = next;
            scores = oracle.evaluate_batch(&pop);
            let mut improved = false;
            for i in 0..pop.len() {
                if scores[i].beats(&best_fit, target) {
                    best = pop[i].clone();
                    best_fit = scores[i];
                    improved = true;
                }
            }
            stagnant = if improved { 0 } else { stagnant + 1 };
        }

        // Final greedy polish: shed every element/op the sampled universe
        // does not require (preserving whatever detection level we hold).
        let goal = best_fit.detected.min(target);
        let elements = shrink_elements(oracle, &options.cancel, best, goal);
        StrategyRun { elements, generations }
    }
}
