//! Request execution against the shared trace cache.
//!
//! Response texts for `coverage`, `synth` and `area` are produced by the
//! same formatting the CLI uses, so a service response is bit-identical to
//! the offline CLI output for the equivalent invocation (the `mbist-cli`
//! test suite asserts this) — caching, worker count and engine choice only
//! change latency, never bytes.

use std::sync::Arc;
use std::time::Instant;

use mbist_area::{table1, table2, table3, Technology};
use mbist_march::{
    canonical_trace_key, evaluate_coverage_trace, expand_with, library, routing_breakdown,
    synthesize_march, CancelToken, CompiledTrace, CoverageOptions, ExpandOptions,
    MarchTest, SimEngine, SynthesisOptions,
};
use mbist_mem::{FaultClass, FaultKind, MemGeometry};
use mbist_search::{report_text, search_march, SearchOptions, Strategy};

use crate::json::Json;
use crate::protocol::{Request, ServiceError};
use crate::server::Shared;

/// Per-job execution context: the deadline's cancellation token plus the
/// request arrival time the `timeout.elapsed_ms` figure is measured from.
pub(crate) struct ExecCtx {
    /// Trips when the job's deadline passes; threaded into the simulation
    /// inner loops.
    pub(crate) cancel: CancelToken,
    /// When the request arrived (queue wait included).
    pub(crate) arrival: Instant,
}

impl ExecCtx {
    /// Converts a tripped token into the structured timeout error. Called
    /// before starting expensive phases and after every cancellable call:
    /// a cancelled simulation returns partial data, and this is the single
    /// place that discards it.
    fn check(&self) -> Result<(), ServiceError> {
        if self.cancel.is_cancelled() {
            return Err(self.timeout(None));
        }
        Ok(())
    }

    /// The structured timeout error, optionally carrying a best-so-far
    /// partial answer (`synth_search` reports the best candidate found
    /// before the deadline hit instead of discarding the whole run).
    fn timeout(&self, partial: Option<String>) -> ServiceError {
        let elapsed_ms =
            u64::try_from(self.arrival.elapsed().as_millis()).unwrap_or(u64::MAX);
        ServiceError::Timeout { elapsed_ms, partial }
    }
}

fn usage(message: impl Into<String>) -> ServiceError {
    ServiceError::Usage(message.into())
}

pub(crate) fn resolve_test(spec: &str) -> Result<MarchTest, ServiceError> {
    if let Some(t) = library::by_name(spec) {
        return Ok(t);
    }
    if spec.contains('(') {
        return MarchTest::parse("custom", spec).map_err(|e| usage(e.to_string()));
    }
    Err(usage(format!("unknown algorithm `{spec}` (library name or march notation)")))
}

/// Derives a result-memo key from the trace key plus request parameters,
/// with the same stable FNV-1a construction as the trace key itself.
/// `jobs` is deliberately excluded: the output is bit-identical for every
/// worker count, so memo hits are valid across `jobs` settings.
fn result_key(seed: u64, tag: &str, params: &[u64]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |b: u8| h = (h ^ u64::from(b)).wrapping_mul(PRIME);
    for b in seed.to_le_bytes() {
        eat(b);
    }
    for b in tag.bytes() {
        eat(b);
    }
    eat(0xff);
    for p in params {
        for b in p.to_le_bytes() {
            eat(b);
        }
    }
    h
}

fn engine_tag(engine: SimEngine) -> u64 {
    match engine {
        SimEngine::Full => 0,
        SimEngine::Sliced => 1,
        SimEngine::Packed => 2,
    }
}

/// Hash of the request spec string plus geometry — the cheap first-level
/// cache key that avoids march expansion on exact-repeat requests.
fn spec_alias_key(spec: &str, geometry: &MemGeometry) -> u64 {
    let mut params = vec![geometry.words(), u64::from(geometry.width())];
    params.push(u64::from(geometry.ports()));
    result_key(0x7370_6563, spec, &params) // "spec" tag in the seed
}

/// Returns the cached compiled trace for `(spec, geometry)`, compiling and
/// inserting on a miss.
///
/// Two cache levels: a spec-string alias resolves exact repeats without
/// re-expanding the march test (the warm fast path), and the canonical
/// `(name, steps, geometry)` key unifies differently-spelled but equivalent
/// invocations after expansion (the correctness level).
fn cached_trace(
    shared: &Shared,
    spec: &str,
    test: &MarchTest,
    geometry: &MemGeometry,
) -> (u64, Arc<CompiledTrace>, bool) {
    let alias = spec_alias_key(spec, geometry);
    if let Some(key) = shared.cache.get_alias(alias) {
        if let Some(trace) = shared.cache.get_trace(key) {
            shared.metrics.record_trace_lookup(true);
            return (key, trace, true);
        }
    }
    let steps = expand_with(test, geometry, &ExpandOptions::for_geometry(geometry));
    let key = canonical_trace_key(test.name(), geometry, &steps);
    shared.cache.insert_alias(alias, key);
    if let Some(trace) = shared.cache.get_trace(key) {
        shared.metrics.record_trace_lookup(true);
        return (key, trace, true);
    }
    shared.metrics.record_trace_lookup(false);
    // Two racing cold requests may both compile; the trace is immutable, so
    // the second insert merely replaces an identical entry.
    let trace = Arc::new(CompiledTrace::from_steps(*geometry, &steps));
    shared.cache.insert_trace(key, &trace);
    (key, trace, false)
}

/// Executes a queued request, returning the response payload members.
///
/// The context's cancellation token is threaded into the simulation inner
/// loops; a tripped token surfaces as [`ServiceError::Timeout`], and a
/// cancelled (partial) result is never memoized.
pub(crate) fn execute(
    request: &Request,
    shared: &Shared,
    ctx: &ExecCtx,
) -> Result<Vec<(&'static str, Json)>, ServiceError> {
    match request {
        Request::Coverage { test, geometry, max_faults, jobs, engine } => {
            let t = resolve_test(test)?;
            ctx.check()?;
            let (trace_key, trace, trace_cached) = cached_trace(shared, test, &t, geometry);
            let memo_key = result_key(
                trace_key,
                "coverage",
                &[max_faults.map_or(u64::MAX, |m| m as u64), engine_tag(*engine)],
            );
            if let Some(text) = shared.cache.get_result(memo_key) {
                shared.metrics.record_result_lookup(true);
                return Ok(coverage_payload(text, true, trace_cached));
            }
            shared.metrics.record_result_lookup(false);
            shared.metrics.record_engine(*engine);
            let options = CoverageOptions {
                max_faults_per_class: *max_faults,
                jobs: *jobs,
                engine: *engine,
                cancel: ctx.cancel.clone(),
                ..CoverageOptions::default()
            };
            // Memo hits returned above: routing counters only reflect runs
            // that actually simulated.
            shared.metrics.record_routing(&routing_breakdown(geometry, &options));
            let report = evaluate_coverage_trace(&trace, t.name(), &options);
            // A blown deadline left the report partial: discard it and
            // skip the memo — a timeout must never pollute the cache.
            ctx.check()?;
            let text = report.to_string();
            shared.cache.insert_result(memo_key, &text);
            Ok(coverage_payload(text, false, trace_cached))
        }
        Request::Detects { test, geometry, fault } => {
            let t = resolve_test(test)?;
            let parsed = FaultKind::parse_spec(fault, geometry).map_err(usage)?;
            ctx.check()?;
            let (_, trace, trace_cached) = cached_trace(shared, test, &t, geometry);
            let detected = trace.detect(parsed);
            Ok(vec![
                ("test", Json::str(t.name())),
                ("geometry", Json::str(geometry.to_string())),
                ("fault", Json::str(fault.clone())),
                ("detected", Json::Bool(detected)),
                ("trace_cached", Json::Bool(trace_cached)),
            ])
        }
        Request::Synth { classes, max_elements, jobs, engine } => {
            let parsed = parse_classes(classes)?;
            ctx.check()?;
            let class_tags: Vec<u64> =
                parsed.iter().map(|c| c.label().bytes().map(u64::from).sum()).collect();
            let mut params = vec![*max_elements as u64, engine_tag(*engine)];
            params.extend(class_tags);
            let memo_key = result_key(0, "synth", &params);
            if let Some(text) = shared.cache.get_result(memo_key) {
                shared.metrics.record_result_lookup(true);
                return Ok(text_payload(text, true));
            }
            shared.metrics.record_result_lookup(false);
            shared.metrics.record_engine(*engine);
            let mut options = SynthesisOptions {
                classes: parsed,
                max_elements: *max_elements,
                ..SynthesisOptions::default()
            };
            options.coverage.jobs = *jobs;
            options.coverage.engine = *engine;
            options.coverage.cancel = ctx.cancel.clone();
            let text = synth_text(&options);
            // A cancelled search returns a non-converged test: discard,
            // never memoize.
            ctx.check()?;
            shared.cache.insert_result(memo_key, &text);
            Ok(text_payload(text, false))
        }
        Request::SynthSearch {
            universe,
            geometry,
            target_coverage,
            budget,
            seed,
            strategy,
            max_elements,
            jobs,
            engine,
        } => {
            let parsed = parse_classes(universe)?;
            ctx.check()?;
            let memo_key = synth_search_key(
                &parsed,
                geometry,
                *target_coverage,
                *budget,
                *seed,
                *strategy,
                *max_elements,
                *engine,
            );
            if let Some(text) = shared.cache.get_result(memo_key) {
                shared.metrics.record_result_lookup(true);
                return Ok(text_payload(text, true));
            }
            shared.metrics.record_result_lookup(false);
            shared.metrics.record_engine(*engine);
            let options = SearchOptions {
                geometry: *geometry,
                classes: parsed,
                target_coverage: *target_coverage / 100.0,
                budget: *budget,
                seed: *seed,
                max_elements: *max_elements,
                jobs: *jobs,
                engine: *engine,
                cancel: ctx.cancel.clone(),
                strategy: *strategy,
                ..SearchOptions::default()
            };
            let found = search_march("found", &options);
            // The oracle's throughput counters are recorded whether or not
            // the deadline held: the simulation work happened either way.
            shared.metrics.record_search(
                found.evaluations as u64,
                found.memo_hits as u64,
                found.compile_ns,
                found.simulate_ns,
            );
            // A blown deadline returns the best-so-far candidate: surface
            // it in the structured timeout, never memoize it.
            if ctx.cancel.is_cancelled() {
                return Err(ctx.timeout(Some(found.test.to_string())));
            }
            let text = report_text(&found, &options);
            shared.cache.insert_result(memo_key, &text);
            Ok(text_payload(text, false))
        }
        Request::Area { table } => {
            let tag = match table.as_deref() {
                None => 0,
                Some("1") => 1,
                Some("2") => 2,
                Some("3") => 3,
                Some(other) => {
                    return Err(usage(format!("unknown table `{other}` (1|2|3)")))
                }
            };
            let memo_key = result_key(0, "area", &[tag]);
            if let Some(text) = shared.cache.get_result(memo_key) {
                shared.metrics.record_result_lookup(true);
                return Ok(text_payload(text, true));
            }
            shared.metrics.record_result_lookup(false);
            let tech = Technology::cmos5s();
            let text = match tag {
                1 => table1(&tech).to_string(),
                2 => table2(&tech).to_string(),
                3 => table3(&tech).to_string(),
                _ => format!("{}\n{}\n{}", table1(&tech), table2(&tech), table3(&tech)),
            };
            shared.cache.insert_result(memo_key, &text);
            Ok(text_payload(text, false))
        }
        // Status and Shutdown are answered inline by the connection layer
        // and never reach the queue.
        Request::Status | Request::Shutdown => {
            Err(ServiceError::Failed("status/shutdown are served inline".into()))
        }
    }
}

/// The reactor-side fast path: answers a request only when every cache
/// probe it needs is already resident, with no compilation or simulation.
/// Returns `None` on any miss (or for kinds the fast path does not cover) —
/// the queued path then redoes the probes and records the miss metrics, so
/// each request's lookups are counted exactly once either way.
///
/// Only *hit* metrics are recorded here; a fast-path answer is
/// indistinguishable in the counters from the same warm request served by
/// a worker (minus the job dispatch/answer pair, which it never was).
pub(crate) fn try_fast(
    request: &Request,
    shared: &Shared,
) -> Option<Vec<(&'static str, Json)>> {
    match request {
        Request::Coverage { test, geometry, max_faults, engine, .. } => {
            let alias = spec_alias_key(test, geometry);
            let trace_key = shared.cache.get_alias(alias)?;
            // The trace must itself be resident: an alias pointing at an
            // evicted trace means the slow path will recompile (a miss).
            shared.cache.get_trace(trace_key)?;
            let memo_key = result_key(
                trace_key,
                "coverage",
                &[max_faults.map_or(u64::MAX, |m| m as u64), engine_tag(*engine)],
            );
            let text = shared.cache.get_result(memo_key)?;
            shared.metrics.record_trace_lookup(true);
            shared.metrics.record_result_lookup(true);
            Some(coverage_payload(text, true, true))
        }
        Request::Detects { test, geometry, fault } => {
            let t = resolve_test(test).ok()?;
            let parsed = FaultKind::parse_spec(fault, geometry).ok()?;
            let alias = spec_alias_key(test, geometry);
            let trace_key = shared.cache.get_alias(alias)?;
            let trace = shared.cache.get_trace(trace_key)?;
            shared.metrics.record_trace_lookup(true);
            let detected = trace.detect(parsed);
            Some(vec![
                ("test", Json::str(t.name())),
                ("geometry", Json::str(geometry.to_string())),
                ("fault", Json::str(fault.clone())),
                ("detected", Json::Bool(detected)),
                ("trace_cached", Json::Bool(true)),
            ])
        }
        Request::Synth { classes, max_elements, engine, .. } => {
            let parsed = parse_classes(classes).ok()?;
            let class_tags: Vec<u64> =
                parsed.iter().map(|c| c.label().bytes().map(u64::from).sum()).collect();
            let mut params = vec![*max_elements as u64, engine_tag(*engine)];
            params.extend(class_tags);
            let text = shared.cache.get_result(result_key(0, "synth", &params))?;
            shared.metrics.record_result_lookup(true);
            Some(text_payload(text, true))
        }
        Request::SynthSearch {
            universe,
            geometry,
            target_coverage,
            budget,
            seed,
            strategy,
            max_elements,
            engine,
            ..
        } => {
            let parsed = parse_classes(universe).ok()?;
            let memo_key = synth_search_key(
                &parsed,
                geometry,
                *target_coverage,
                *budget,
                *seed,
                *strategy,
                *max_elements,
                *engine,
            );
            let text = shared.cache.get_result(memo_key)?;
            shared.metrics.record_result_lookup(true);
            Some(text_payload(text, true))
        }
        Request::Area { table } => {
            let tag = match table.as_deref() {
                None => 0,
                Some("1") => 1,
                Some("2") => 2,
                Some("3") => 3,
                Some(_) => return None,
            };
            let text = shared.cache.get_result(result_key(0, "area", &[tag]))?;
            shared.metrics.record_result_lookup(true);
            Some(text_payload(text, true))
        }
        Request::Status | Request::Shutdown => None,
    }
}

fn coverage_payload(
    text: String,
    cached: bool,
    trace_cached: bool,
) -> Vec<(&'static str, Json)> {
    vec![
        ("cached", Json::Bool(cached)),
        ("trace_cached", Json::Bool(trace_cached)),
        ("text", Json::Str(text)),
    ]
}

fn text_payload(text: String, cached: bool) -> Vec<(&'static str, Json)> {
    vec![("cached", Json::Bool(cached)), ("text", Json::Str(text))]
}

fn parse_classes(spec: &str) -> Result<Vec<FaultClass>, ServiceError> {
    FaultClass::parse_list(spec).map_err(usage)
}

/// The `synth_search` result-memo key. Like every result key, `jobs` is
/// excluded — the search trajectory is bit-identical for every worker
/// count and engine, but the engine stays in the key to mirror the other
/// kinds' conservative keying (a memo hit must answer the exact request).
#[allow(clippy::too_many_arguments)]
fn synth_search_key(
    classes: &[FaultClass],
    geometry: &MemGeometry,
    target_coverage: f64,
    budget: usize,
    seed: u64,
    strategy: Strategy,
    max_elements: usize,
    engine: SimEngine,
) -> u64 {
    let strategy_tag = match strategy {
        Strategy::Evolutionary => 0,
        Strategy::Composition => 1,
    };
    let mut params = vec![
        geometry.words(),
        u64::from(geometry.width()),
        u64::from(geometry.ports()),
        target_coverage.to_bits(),
        budget as u64,
        strategy_tag,
        max_elements as u64,
        engine_tag(engine),
    ];
    params.extend(classes.iter().map(|c| c.label().bytes().map(u64::from).sum::<u64>()));
    result_key(seed, "synth_search", &params)
}

/// The CLI `synth` output, byte for byte.
fn synth_text(options: &SynthesisOptions) -> String {
    use std::fmt::Write as _;
    let result = synthesize_march("synthesized", options);
    let mut out = String::new();
    let _ = writeln!(out, "{}", result.test);
    let _ = writeln!(
        out,
        "complexity {}n, coverage {}/{} on the search geometry, {} evaluations",
        result.test.ops_per_cell(),
        result.detected,
        result.total,
        result.evaluations
    );
    if !result.is_complete() {
        let _ = writeln!(out, "warning: coverage incomplete; raise --max-elements");
    }
    out
}
