//! A bounded MPMC job queue with explicit backpressure.
//!
//! Producers never block: [`JobQueue::try_push`] either enqueues or reports
//! [`PushError::Full`] immediately, which the connection layer turns into a
//! structured `busy` response with a retry hint — a saturated daemon sheds
//! load instead of hanging clients. Consumers block in [`JobQueue::pop`]
//! until work arrives or the queue is closed *and* drained, which is
//! exactly the graceful-shutdown order: stop accepting, close, let the
//! workers finish what was admitted.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused; the job is handed back to the caller.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity — reply `busy` and shed the request.
    Full(T),
    /// The queue was closed (shutdown in progress).
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The bounded queue feeding the worker pool.
pub struct JobQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> JobQueue<T> {
    /// A queue admitting at most `capacity` pending jobs (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner { items: VecDeque::new(), closed: false }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs currently pending (not yet popped by a worker).
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock").items.len()
    }

    /// Whether no jobs are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues without blocking.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`JobQueue::close`]; both return the job to the caller.
    pub fn try_push(&self, job: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.closed {
            return Err(PushError::Closed(job));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(job));
        }
        inner.items.push_back(job);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until a job is available (FIFO) or the queue is closed and
    /// fully drained (`None` — the worker should exit).
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(job) = inner.items.pop_front() {
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).expect("queue lock");
        }
    }

    /// Closes the queue: pending jobs still drain, new pushes are refused,
    /// and blocked workers wake (receiving the remaining jobs, then
    /// `None`).
    pub fn close(&self) {
        self.inner.lock().expect("queue lock").closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn full_queue_rejects_instead_of_blocking() {
        let q = JobQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = JobQueue::new(4);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.close();
        assert_eq!(q.try_push("c"), Err(PushError::Closed("c")));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "stays closed");
    }

    #[test]
    fn blocked_consumer_wakes_on_push_and_on_close() {
        let q = Arc::new(JobQueue::new(1));
        let consumer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(job) = q.pop() {
                    got.push(job);
                }
                got
            })
        };
        thread::sleep(std::time::Duration::from_millis(20));
        q.try_push(7).unwrap();
        thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), vec![7]);
    }

    #[test]
    fn capacity_is_clamped_to_at_least_one() {
        let q = JobQueue::new(0);
        assert_eq!(q.capacity(), 1);
        q.try_push(1).unwrap();
        assert_eq!(q.try_push(2), Err(PushError::Full(2)));
        assert!(!q.is_empty());
    }

    #[test]
    fn many_producers_many_consumers_deliver_everything_once() {
        let q = Arc::new(JobQueue::new(8));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(job) = q.pop() {
                        got.push(job);
                    }
                    got
                })
            })
            .collect();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut sent = 0;
                    for i in 0..50 {
                        let job = p * 1000 + i;
                        // Spin on Full: producers in this test *want* to
                        // deliver everything; real connections shed instead.
                        loop {
                            match q.try_push(job) {
                                Ok(()) => break,
                                Err(PushError::Full(_)) => thread::yield_now(),
                                Err(PushError::Closed(_)) => return sent,
                            }
                        }
                        sent += 1;
                    }
                    sent
                })
            })
            .collect();
        let sent: usize = producers.into_iter().map(|p| p.join().unwrap()).sum();
        q.close();
        let mut all: Vec<i32> =
            consumers.into_iter().flat_map(|c| c.join().unwrap()).collect();
        all.sort_unstable();
        assert_eq!(all.len(), sent);
        all.dedup();
        assert_eq!(all.len(), sent, "no duplicates");
    }
}
