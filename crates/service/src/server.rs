//! The concurrent evaluation daemon.
//!
//! One acceptor thread hands each connection to its own thread; connection
//! threads decode line-delimited JSON requests and either answer inline
//! (`status`, `shutdown` — these must work even while the queue is
//! saturated) or submit a [`Job`] to the bounded queue. A fixed worker pool
//! pops jobs, executes them against the shared trace cache and sends the
//! response line back over a per-job channel. A full queue is answered with
//! a structured `busy` error carrying a retry hint — the daemon sheds load
//! explicitly instead of hanging clients.
//!
//! Graceful shutdown (triggered by a `shutdown` request or
//! [`Server::shutdown`]) is ordered: set the flag → the acceptor stops
//! accepting and joins the connection threads (the only producers) → the
//! queue is closed → workers drain what was admitted and exit → the final
//! metrics snapshot is flushed into the [`ServiceSummary`].

use std::io::{self, BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use crate::cache::TraceCache;
use crate::exec;
use crate::json::Json;
use crate::metrics::Metrics;
use crate::protocol::{
    error_response, ok_response, parse_request, Envelope, Request, ServiceError,
};
use crate::queue::{JobQueue, PushError};

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Worker threads (0 = one per available core).
    pub workers: usize,
    /// Trace/result cache budget in bytes (0 disables caching).
    pub cache_bytes: usize,
    /// Bounded job-queue depth; beyond it requests get `busy`.
    pub queue_depth: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self { workers: 0, cache_bytes: 64 << 20, queue_depth: 64 }
    }
}

/// A queued unit of work: the decoded request plus its reply channel.
struct Job {
    envelope: Envelope,
    reply: mpsc::Sender<String>,
    enqueued: Instant,
}

/// State shared by the acceptor, connection threads and workers.
pub(crate) struct Shared {
    pub(crate) cache: TraceCache,
    pub(crate) metrics: Metrics,
    queue: JobQueue<Job>,
    shutdown: AtomicBool,
    workers: usize,
    drained_at_close: AtomicUsize,
}

/// What the daemon reports after a graceful shutdown.
#[derive(Debug)]
pub struct ServiceSummary {
    /// Requests answered (all kinds, errors included).
    pub served: u64,
    /// Jobs still queued when shutdown began — all of them were drained.
    pub drained: usize,
    /// The final metrics snapshot (same shape as a `status` response).
    pub metrics: Json,
}

/// A running daemon; dropping it without [`Server::join`] detaches the
/// threads.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// the acceptor plus the worker pool.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(addr: &str, config: ServiceConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let workers = if config.workers == 0 {
            thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            config.workers
        };
        let shared = Arc::new(Shared {
            cache: TraceCache::new(config.cache_bytes),
            metrics: Metrics::new(),
            queue: JobQueue::new(config.queue_depth),
            shutdown: AtomicBool::new(false),
            workers,
            drained_at_close: AtomicUsize::new(0),
        });
        let worker_handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("mbist-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();
        let acceptor = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("mbist-acceptor".into())
                .spawn(move || accept_loop(&listener, &shared))
                .expect("spawn acceptor")
        };
        Ok(Server { shared, local_addr, acceptor, workers: worker_handles })
    }

    /// The bound address (resolves ephemeral ports).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Triggers the graceful-shutdown sequence (same effect as a `shutdown`
    /// request). Idempotent; returns immediately — [`Server::join`] waits.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Blocks until shutdown completes (acceptor stopped, connections
    /// closed, queue drained, workers exited) and flushes the final
    /// metrics snapshot.
    #[must_use]
    pub fn join(self) -> ServiceSummary {
        let _ = self.acceptor.join();
        for w in self.workers {
            let _ = w.join();
        }
        let shared = &self.shared;
        ServiceSummary {
            served: shared.metrics.total_requests(),
            drained: shared.drained_at_close.load(Ordering::SeqCst),
            metrics: shared.metrics.snapshot(
                shared.queue.len(),
                shared.queue.capacity(),
                shared.cache.stats(),
            ),
        }
    }
}

/// How often blocked accept/read calls re-check the shutdown flag.
const POLL: Duration = Duration::from_millis(25);

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                connections.push(
                    thread::Builder::new()
                        .name("mbist-conn".into())
                        .spawn(move || handle_connection(stream, &shared))
                        .expect("spawn connection"),
                );
                connections.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => thread::sleep(POLL),
            Err(_) => thread::sleep(POLL),
        }
    }
    // Connection threads are the only producers; once they exit the queue
    // contents are final and closing it lets the workers drain and stop.
    for h in connections {
        let _ = h.join();
    }
    shared.drained_at_close.store(shared.queue.len(), Ordering::SeqCst);
    shared.queue.close();
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        let kind = job.envelope.request.kind();
        let outcome =
            catch_unwind(AssertUnwindSafe(|| exec::execute(&job.envelope.request, shared)));
        let id = job.envelope.id.as_ref();
        let (ok, line) = match outcome {
            Ok(Ok(payload)) => (true, ok_response(id, kind, payload)),
            Ok(Err(e)) => (false, error_response(id, &e)),
            Err(_) => (
                false,
                error_response(
                    id,
                    &ServiceError::Failed("internal error (panic isolated)".into()),
                ),
            ),
        };
        let latency_us = elapsed_us(job.enqueued);
        shared.metrics.record_request(kind, ok, latency_us);
        // The connection may already be gone; dropping the reply is fine.
        let _ = job.reply.send(line);
    }
}

fn elapsed_us(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_micros()).unwrap_or(u64::MAX)
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL));
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        // `read_line` keeps partial data in `line` across timeouts, so the
        // retry below resumes mid-line; timeouts only exist so the thread
        // notices shutdown.
        match reader.read_line(&mut line) {
            Ok(0) => return, // client closed
            Ok(_) => {
                let reply = handle_line(line.trim(), shared);
                line.clear();
                if let Some(mut reply) = reply {
                    // One write per reply: a separate newline segment would
                    // trip Nagle/delayed-ACK and add ~40 ms for clients that
                    // did not disable delays.
                    reply.push('\n');
                    if writer.write_all(reply.as_bytes()).is_err() {
                        return;
                    }
                }
            }
            Err(e)
                if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Processes one request line; `None` for blank lines (no response owed).
fn handle_line(line: &str, shared: &Arc<Shared>) -> Option<String> {
    if line.is_empty() {
        return None;
    }
    let arrival = Instant::now();
    let envelope = match parse_request(line) {
        Ok(envelope) => envelope,
        Err(e) => return Some(error_response(None, &e)),
    };
    let id = envelope.id.clone();
    let kind = envelope.request.kind();
    match envelope.request {
        // Served inline: must keep working while the queue is saturated.
        Request::Status => {
            let snapshot = shared.metrics.snapshot(
                shared.queue.len(),
                shared.queue.capacity(),
                shared.cache.stats(),
            );
            shared.metrics.record_request(kind, true, elapsed_us(arrival));
            Some(ok_response(id.as_ref(), kind, vec![("status", snapshot)]))
        }
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            shared.metrics.record_request(kind, true, elapsed_us(arrival));
            Some(ok_response(
                id.as_ref(),
                kind,
                vec![
                    ("draining", Json::Bool(true)),
                    ("queued", Json::num(shared.queue.len() as f64)),
                ],
            ))
        }
        request => {
            if shared.shutdown.load(Ordering::SeqCst) {
                return Some(error_response(id.as_ref(), &ServiceError::ShuttingDown));
            }
            let (tx, rx) = mpsc::channel();
            let job = Job {
                envelope: Envelope { id: id.clone(), request },
                reply: tx,
                enqueued: arrival,
            };
            match shared.queue.try_push(job) {
                Ok(()) => match rx.recv() {
                    Ok(reply) => Some(reply),
                    Err(_) => Some(error_response(
                        id.as_ref(),
                        &ServiceError::Failed("worker pool exited before replying".into()),
                    )),
                },
                Err(PushError::Full(_)) => {
                    shared.metrics.record_rejected();
                    shared.metrics.record_request(kind, false, elapsed_us(arrival));
                    Some(error_response(
                        id.as_ref(),
                        &ServiceError::Busy { retry_after_ms: retry_hint_ms(shared, kind) },
                    ))
                }
                Err(PushError::Closed(_)) => {
                    Some(error_response(id.as_ref(), &ServiceError::ShuttingDown))
                }
            }
        }
    }
}

/// Suggested back-off when shedding: roughly the time for the pool to chew
/// through the backlog ahead of the client, floored at 25 ms.
fn retry_hint_ms(shared: &Shared, kind: &str) -> u64 {
    let p50_ms = shared.metrics.p50_us(kind) / 1000;
    let backlog = (shared.queue.len() as u64).max(1);
    let workers = shared.workers as u64;
    (p50_ms * backlog.div_ceil(workers)).max(25)
}
