//! The concurrent evaluation daemon.
//!
//! One acceptor thread hands each connection to its own thread; connection
//! threads decode line-delimited JSON requests and either answer inline
//! (`status`, `shutdown` — these must work even while the queue is
//! saturated) or submit a [`Job`] to the bounded queue. A fixed worker pool
//! pops jobs, executes them against the shared trace cache and sends the
//! response line back over a per-job channel. A full queue is answered with
//! a structured `busy` error carrying a load-derived retry hint — the
//! daemon sheds load explicitly instead of hanging clients.
//!
//! # Exactly-once accounting
//!
//! Every job carries a server-assigned `job_id` and an attempt counter. A
//! worker that panics mid-job (however it panics — chaos injection or a
//! real bug) re-dispatches the job exactly once; a second panic answers a
//! structured `internal {job_id}` error. A job is therefore never dropped
//! and never double-answered: the reply channel is consumed by exactly one
//! terminal outcome (ok, usage/failed, busy, timeout, or internal).
//!
//! # Deadlines
//!
//! Each queued request resolves a deadline (its `deadline_ms`, or the
//! server default) into a cooperative [`CancelToken`] threaded into the
//! simulation inner loops; a blown deadline cancels the run at the next
//! fault-chunk boundary and answers `timeout {elapsed_ms}`. Requests whose
//! deadline expired while still queued are answered without executing at
//! all.
//!
//! # Slow-loris defenses
//!
//! The read loop caps request lines at [`MAX_LINE_BYTES`], bounds how long
//! a partial line may dribble in ([`PARTIAL_LINE_DEADLINE`]), rejects
//! invalid UTF-8 with a structured error, and sets a write timeout so a
//! non-reading client cannot wedge a connection thread.
//!
//! Graceful shutdown (triggered by a `shutdown` request or
//! [`Server::shutdown`]) is ordered: set the flag → the acceptor stops
//! accepting and joins the connection threads (the only producers) → the
//! queue is closed → workers drain what was admitted and exit → the final
//! metrics snapshot is flushed into the [`ServiceSummary`].

use std::io::{self, BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use mbist_march::CancelToken;

use crate::cache::TraceCache;
use crate::chaos::{ChaosConfig, ChaosState};
use crate::exec::{self, ExecCtx};
use crate::json::Json;
use crate::metrics::Metrics;
use crate::protocol::{
    error_response, ok_response, parse_request, recover_id, Envelope, Request, ServiceError,
};
use crate::queue::{JobQueue, PushError};

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Worker threads (0 = one per available core).
    pub workers: usize,
    /// Trace/result cache budget in bytes (0 disables caching).
    pub cache_bytes: usize,
    /// Bounded job-queue depth; beyond it requests get `busy`.
    pub queue_depth: usize,
    /// Default per-request deadline in milliseconds when the request
    /// carries no `deadline_ms` (0 = no default deadline).
    pub default_deadline_ms: u64,
    /// Deterministic fault injection (all-off by default).
    pub chaos: ChaosConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 0,
            cache_bytes: 64 << 20,
            queue_depth: 64,
            default_deadline_ms: 30_000,
            chaos: ChaosConfig::disabled(),
        }
    }
}

/// A queued unit of work: the decoded request plus its reply channel and
/// exactly-once bookkeeping.
struct Job {
    envelope: Envelope,
    reply: mpsc::Sender<String>,
    enqueued: Instant,
    /// Server-assigned id, reported in `internal` errors and daemon logs.
    job_id: u64,
    /// 0 on first dispatch; 1 after the single post-panic re-dispatch.
    attempt: u8,
    /// Resolved absolute deadline (request `deadline_ms` or the server
    /// default); `None` = unlimited.
    deadline: Option<Instant>,
}

/// State shared by the acceptor, connection threads and workers.
pub(crate) struct Shared {
    pub(crate) cache: TraceCache,
    pub(crate) metrics: Metrics,
    queue: JobQueue<Job>,
    shutdown: AtomicBool,
    workers: usize,
    drained_at_close: AtomicUsize,
    chaos: ChaosState,
    default_deadline_ms: u64,
    next_job_id: AtomicU64,
}

/// What the daemon reports after a graceful shutdown.
#[derive(Debug)]
pub struct ServiceSummary {
    /// Requests answered (all kinds, errors included).
    pub served: u64,
    /// Jobs still queued when shutdown began — all of them were drained.
    pub drained: usize,
    /// Jobs that survived a worker panic via the single re-dispatch.
    pub recovered_jobs: u64,
    /// The final metrics snapshot (same shape as a `status` response).
    pub metrics: Json,
}

/// A running daemon; dropping it without [`Server::join`] detaches the
/// threads.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// the acceptor plus the worker pool.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(addr: &str, config: ServiceConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let workers = if config.workers == 0 {
            thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            config.workers
        };
        let shared = Arc::new(Shared {
            cache: TraceCache::new(config.cache_bytes),
            metrics: Metrics::new(),
            queue: JobQueue::new(config.queue_depth),
            shutdown: AtomicBool::new(false),
            workers,
            drained_at_close: AtomicUsize::new(0),
            chaos: ChaosState::new(config.chaos),
            default_deadline_ms: config.default_deadline_ms,
            next_job_id: AtomicU64::new(1),
        });
        let worker_handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("mbist-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();
        let acceptor = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("mbist-acceptor".into())
                .spawn(move || accept_loop(&listener, &shared))
                .expect("spawn acceptor")
        };
        Ok(Server { shared, local_addr, acceptor, workers: worker_handles })
    }

    /// The bound address (resolves ephemeral ports).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Triggers the graceful-shutdown sequence (same effect as a `shutdown`
    /// request). Idempotent; returns immediately — [`Server::join`] waits.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Blocks until shutdown completes (acceptor stopped, connections
    /// closed, queue drained, workers exited) and flushes the final
    /// metrics snapshot.
    #[must_use]
    pub fn join(self) -> ServiceSummary {
        let _ = self.acceptor.join();
        for w in self.workers {
            let _ = w.join();
        }
        let shared = &self.shared;
        ServiceSummary {
            served: shared.metrics.total_requests(),
            drained: shared.drained_at_close.load(Ordering::SeqCst),
            recovered_jobs: shared.metrics.recovered_jobs(),
            metrics: shared.metrics.snapshot(
                shared.queue.len(),
                shared.queue.capacity(),
                shared.cache.stats(),
            ),
        }
    }
}

/// How often blocked accept/read calls re-check the shutdown flag.
const POLL: Duration = Duration::from_millis(25);

/// Hard cap on one request line; longer lines get a structured `usage`
/// error and the connection closes (the framing is unrecoverable).
const MAX_LINE_BYTES: usize = 64 * 1024;

/// How long a partial line may dribble in before the connection is judged
/// a slow-loris and closed with a structured error.
const PARTIAL_LINE_DEADLINE: Duration = Duration::from_secs(10);

/// How long one reply write may block on a non-reading client.
const WRITE_TIMEOUT: Duration = Duration::from_secs(10);

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                connections.push(
                    thread::Builder::new()
                        .name("mbist-conn".into())
                        .spawn(move || handle_connection(stream, &shared))
                        .expect("spawn connection"),
                );
                connections.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => thread::sleep(POLL),
            Err(_) => thread::sleep(POLL),
        }
    }
    // Connection threads are the only producers; once they exit the queue
    // contents are final and closing it lets the workers drain and stop.
    for h in connections {
        let _ = h.join();
    }
    shared.drained_at_close.store(shared.queue.len(), Ordering::SeqCst);
    shared.queue.close();
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        if let Some(retry) = attempt_job(job, shared) {
            // First-attempt panic: re-dispatch exactly once. A full or
            // closed queue cannot be allowed to drop the job, so those
            // cases retry inline on this worker instead.
            match shared.queue.try_push(retry) {
                Ok(()) => {}
                Err(PushError::Full(retry) | PushError::Closed(retry)) => {
                    let settled = attempt_job(retry, shared);
                    debug_assert!(settled.is_none(), "attempt 1 always settles");
                }
            }
        }
    }
}

/// Runs one dispatch attempt of `job`. Returns `None` when a terminal
/// outcome was sent, or `Some(job)` (attempt bumped) when the worker
/// panicked on the first attempt and the job must be re-dispatched.
fn attempt_job(job: Job, shared: &Arc<Shared>) -> Option<Job> {
    let kind = job.envelope.request.kind();
    shared.metrics.record_job_dispatched();

    // A deadline blown while the job sat in the queue: answer the timeout
    // without burning worker time on a result nobody is owed.
    if job.deadline.is_some_and(|d| Instant::now() >= d) {
        settle(
            &job,
            shared,
            false,
            error_response(
                job.envelope.id.as_ref(),
                &ServiceError::Timeout { elapsed_ms: elapsed_us(job.enqueued) / 1000 },
            ),
        );
        shared.metrics.record_timeout();
        return None;
    }

    if let Some(delay) = shared.chaos.roll_delay() {
        shared.metrics.record_chaos("delay");
        thread::sleep(delay);
    }
    // The roll and its counter update happen outside the unwind scope so an
    // injected panic can never poison the metrics lock.
    let inject_panic = shared.chaos.roll_panic();
    if inject_panic {
        shared.metrics.record_chaos("panic");
    }

    let cancel = job.deadline.map_or_else(CancelToken::none, CancelToken::at);
    let ctx = ExecCtx { cancel: cancel.clone(), arrival: job.enqueued };
    let exec_start = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        assert!(!inject_panic, "injected chaos panic");
        exec::execute(&job.envelope.request, shared, &ctx)
    }));
    let id = job.envelope.id.as_ref();
    match outcome {
        Ok(result) => {
            shared.metrics.record_exec(kind, elapsed_us(exec_start));
            let (ok, line) = match result {
                Ok(payload) => (true, ok_response(id, kind, payload)),
                Err(e) => {
                    if matches!(e, ServiceError::Timeout { .. }) {
                        shared.metrics.record_timeout();
                    }
                    (false, error_response(id, &e))
                }
            };
            if job.attempt > 0 {
                shared.metrics.record_job_recovered();
            }
            settle(&job, shared, ok, line);
            None
        }
        Err(_) if job.attempt == 0 => Some(Job { attempt: 1, ..job }),
        Err(_) => {
            settle(
                &job,
                shared,
                false,
                error_response(id, &ServiceError::Internal { job_id: job.job_id }),
            );
            None
        }
    }
}

/// Sends the terminal outcome for a job and records its request metrics.
/// The connection may already be gone; dropping the reply is fine.
fn settle(job: &Job, shared: &Shared, ok: bool, line: String) {
    shared.metrics.record_request(
        job.envelope.request.kind(),
        ok,
        elapsed_us(job.enqueued),
    );
    shared.metrics.record_job_answered();
    let _ = job.reply.send(line);
}

fn elapsed_us(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_micros()).unwrap_or(u64::MAX)
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL));
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut buf: Vec<u8> = Vec::new();
    let mut partial_since: Option<Instant> = None;
    loop {
        // Read raw bytes up to the cap: `read_line` would error out on
        // invalid UTF-8 and buffer a newline-free flood without bound.
        // Partial data stays in `buf` across timeouts, so retries resume
        // mid-line; timeouts exist so the thread notices shutdown and
        // stalled (slow-loris) senders.
        let budget = (MAX_LINE_BYTES + 1 - buf.len()) as u64;
        match reader.by_ref().take(budget).read_until(b'\n', &mut buf) {
            Ok(0) if buf.is_empty() => return, // clean EOF between requests
            Ok(_) if buf.last() == Some(&b'\n') => {
                partial_since = None;
                let reply = match std::str::from_utf8(&buf) {
                    Ok(text) => {
                        let line = text.trim();
                        if line.is_empty() {
                            buf.clear();
                            continue; // blank line: no response owed
                        }
                        if shared.chaos.config().enabled() && shared.chaos.roll_drop() {
                            // Injected partition: the request was accepted
                            // but the connection dies without a reply.
                            shared.metrics.record_chaos("drop");
                            return;
                        }
                        handle_line(line, shared)
                    }
                    Err(_) => Some(error_response(
                        None,
                        &ServiceError::Usage("request line is not valid UTF-8".into()),
                    )),
                };
                buf.clear();
                if let Some(reply) = reply {
                    if !write_reply(&mut writer, reply) {
                        return;
                    }
                }
            }
            Ok(0) | Ok(_) => {
                // No newline: either the cap was hit or the client hit EOF
                // mid-line. Both are unrecoverable framing; answer a
                // structured error and close.
                let message = if buf.len() > MAX_LINE_BYTES {
                    format!("request line exceeds {MAX_LINE_BYTES} bytes")
                } else {
                    "connection closed mid-request (premature EOF)".to_string()
                };
                let line = error_response(None, &ServiceError::Usage(message));
                let _ = write_reply(&mut writer, line);
                return;
            }
            Err(e)
                if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if buf.is_empty() {
                    partial_since = None;
                } else {
                    let since = *partial_since.get_or_insert_with(Instant::now);
                    if since.elapsed() >= PARTIAL_LINE_DEADLINE {
                        let line = error_response(
                            None,
                            &ServiceError::Usage("request line stalled; closing".into()),
                        );
                        let _ = write_reply(&mut writer, line);
                        return;
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// One framed write per reply: a separate newline segment would trip
/// Nagle/delayed-ACK and add ~40 ms for clients that did not disable
/// delays. Returns `false` when the connection is unusable.
fn write_reply(writer: &mut TcpStream, mut reply: String) -> bool {
    reply.push('\n');
    writer.write_all(reply.as_bytes()).is_ok()
}

/// Processes one non-blank request line.
fn handle_line(line: &str, shared: &Arc<Shared>) -> Option<String> {
    let arrival = Instant::now();
    let envelope = match parse_request(line) {
        Ok(envelope) => envelope,
        // Echo the id even for malformed requests whenever the line was
        // well-formed enough to carry one.
        Err(e) => return Some(error_response(recover_id(line).as_ref(), &e)),
    };
    let id = envelope.id.clone();
    let kind = envelope.request.kind();
    match envelope.request {
        // Served inline: must keep working while the queue is saturated.
        Request::Status => {
            let snapshot = shared.metrics.snapshot(
                shared.queue.len(),
                shared.queue.capacity(),
                shared.cache.stats(),
            );
            shared.metrics.record_request(kind, true, elapsed_us(arrival));
            Some(ok_response(id.as_ref(), kind, vec![("status", snapshot)]))
        }
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            shared.metrics.record_request(kind, true, elapsed_us(arrival));
            Some(ok_response(
                id.as_ref(),
                kind,
                vec![
                    ("draining", Json::Bool(true)),
                    ("queued", Json::num(shared.queue.len() as f64)),
                ],
            ))
        }
        request => {
            if shared.shutdown.load(Ordering::SeqCst) {
                return Some(error_response(id.as_ref(), &ServiceError::ShuttingDown));
            }
            let deadline_ms = envelope.deadline_ms.unwrap_or(shared.default_deadline_ms);
            let deadline =
                (deadline_ms > 0).then(|| arrival + Duration::from_millis(deadline_ms));
            let (tx, rx) = mpsc::channel();
            let job = Job {
                envelope: Envelope {
                    id: id.clone(),
                    deadline_ms: envelope.deadline_ms,
                    request,
                },
                reply: tx,
                enqueued: arrival,
                job_id: shared.next_job_id.fetch_add(1, Ordering::Relaxed),
                attempt: 0,
                deadline,
            };
            match shared.queue.try_push(job) {
                Ok(()) => match rx.recv() {
                    Ok(reply) => Some(reply),
                    Err(_) => Some(error_response(
                        id.as_ref(),
                        &ServiceError::Failed("worker pool exited before replying".into()),
                    )),
                },
                Err(PushError::Full(_)) => {
                    shared.metrics.record_rejected();
                    shared.metrics.record_request(kind, false, elapsed_us(arrival));
                    Some(error_response(
                        id.as_ref(),
                        &ServiceError::Busy { retry_after_ms: retry_hint_ms(shared, kind) },
                    ))
                }
                Err(PushError::Closed(_)) => {
                    Some(error_response(id.as_ref(), &ServiceError::ShuttingDown))
                }
            }
        }
    }
}

/// Suggested back-off when shedding load, derived from the current drain
/// rate: the median execution time of this kind times the queue slots
/// ahead of the client, spread over the worker pool.
fn retry_hint_ms(shared: &Shared, kind: &str) -> u64 {
    retry_hint_from(shared.metrics.exec_p50_us(kind), shared.queue.len(), shared.workers)
}

/// The pure hint formula, unit-testable without a server: with no
/// execution data yet a nominal 25 ms per job applies; the result is
/// (weakly) monotone in the backlog and clamped to [1 ms, 30 s].
fn retry_hint_from(exec_p50_us: u64, backlog: usize, workers: usize) -> u64 {
    const NOMINAL_JOB_US: u64 = 25_000;
    let per_job_us = if exec_p50_us == 0 { NOMINAL_JOB_US } else { exec_p50_us };
    let slots_ahead = (backlog as u64).saturating_add(1).div_ceil(workers.max(1) as u64);
    per_job_us.saturating_mul(slots_ahead).div_ceil(1000).clamp(1, 30_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_hint_is_monotone_in_queue_occupancy() {
        for workers in [1usize, 2, 4, 7] {
            for p50 in [0u64, 500, 25_000, 2_000_000] {
                let mut last = 0;
                for backlog in 0..200 {
                    let hint = retry_hint_from(p50, backlog, workers);
                    assert!(
                        hint >= last,
                        "hint regressed: p50={p50} workers={workers} backlog={backlog}: \
                         {hint} < {last}"
                    );
                    last = hint;
                }
            }
        }
    }

    #[test]
    fn retry_hint_scales_with_drain_rate_and_stays_clamped() {
        // No data yet: the nominal per-job cost keeps the old 25 ms floor.
        assert_eq!(retry_hint_from(0, 0, 4), 25);
        // Fast jobs, shallow queue: the hint drops well below 25 ms but
        // never to zero.
        assert_eq!(retry_hint_from(200, 0, 4), 1);
        // Slow jobs and a deep backlog saturate at the 30 s ceiling.
        assert_eq!(retry_hint_from(2_000_000, 1000, 2), 30_000);
        // More workers drain faster: the hint must not increase.
        assert!(retry_hint_from(50_000, 64, 8) <= retry_hint_from(50_000, 64, 2));
    }
}
