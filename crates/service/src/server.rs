//! The event-driven evaluation daemon.
//!
//! One reactor thread owns every socket: it accepts connections, reads and
//! frames requests (line-JSON or length-prefixed binary, auto-detected per
//! message by the [`crate::binary::MAGIC`] byte), answers `status` /
//! `shutdown` inline, serves cache-hit requests on the spot (the inline
//! fast path) and submits everything else as a [`Job`] to the bounded
//! queue. A fixed worker pool pops jobs, executes them against the shared
//! trace cache and posts the serialized reply back to the reactor through
//! a completion list plus a self-pipe wakeup. A full queue is answered
//! with a structured `busy` error carrying a load-derived retry hint — the
//! daemon sheds load explicitly instead of hanging clients.
//!
//! # Pipelining and reply order
//!
//! Connections are pipelined: the reactor keeps parsing frames while
//! earlier jobs are still executing. Every message is assigned a
//! per-connection sequence number at parse time and replies are released
//! strictly in that order, so a client that writes N requests back to back
//! reads N replies in request order — exactly what the lock-step clients
//! of the thread-per-connection era observed, minus the head-of-line
//! thread handoffs.
//!
//! # Exactly-once accounting
//!
//! Every job carries a server-assigned `job_id` and an attempt counter. A
//! worker that panics mid-job (however it panics — chaos injection or a
//! real bug) re-dispatches the job exactly once; a second panic answers a
//! structured `internal {job_id}` error. A job is therefore never dropped
//! and never double-answered: the completion slot is consumed by exactly
//! one terminal outcome (ok, usage/failed, busy, timeout, or internal).
//!
//! # Deadlines
//!
//! Each queued request resolves a deadline (its `deadline_ms`, or the
//! server default) into a cooperative [`CancelToken`] threaded into the
//! simulation inner loops; a blown deadline cancels the run at the next
//! fault-chunk boundary and answers `timeout {elapsed_ms}`. Requests whose
//! deadline expired while still queued are answered without executing at
//! all.
//!
//! # Slow-loris defenses
//!
//! The framing layer caps request lines at [`MAX_LINE_BYTES`], bounds how
//! long a partial message may dribble in ([`PARTIAL_LINE_DEADLINE`]),
//! rejects invalid UTF-8 with a structured error, and bounds how long a
//! reply may sit unflushed against a non-reading client
//! ([`WRITE_TIMEOUT`]) — all enforced by reactor timers, not blocked
//! threads.
//!
//! Graceful shutdown (triggered by a `shutdown` request or
//! [`Server::shutdown`]) is ordered: set the flag → the reactor stops
//! accepting and stops reading, but keeps every connection open until its
//! owed replies are flushed → the reactor exits and closes the queue →
//! workers drain what was admitted and exit → the final metrics snapshot
//! is flushed into the [`ServiceSummary`].

use std::collections::BTreeMap;
use std::io::{self, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use mbist_march::CancelToken;

use crate::binary;
use crate::cache::TraceCache;
use crate::chaos::{ChaosConfig, ChaosState};
use crate::exec::{self, ExecCtx};
use crate::json::Json;
use crate::metrics::Metrics;
use crate::protocol::{
    error_response_value, ok_response_value, parse_request_value, Envelope, Request,
    ServiceError,
};
use crate::queue::{JobQueue, PushError};
use crate::reactor::{poll_fds, PollFd, WakeHandle, WakePipe, POLLIN, POLLOUT};

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Worker threads (0 = one per available core).
    pub workers: usize,
    /// Trace/result cache budget in bytes (0 disables caching).
    pub cache_bytes: usize,
    /// Bounded job-queue depth; beyond it requests get `busy`.
    pub queue_depth: usize,
    /// Default per-request deadline in milliseconds when the request
    /// carries no `deadline_ms` (0 = no default deadline).
    pub default_deadline_ms: u64,
    /// Deterministic fault injection (all-off by default).
    pub chaos: ChaosConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 0,
            cache_bytes: 64 << 20,
            queue_depth: 64,
            default_deadline_ms: 30_000,
            chaos: ChaosConfig::disabled(),
        }
    }
}

/// Which framing a message arrived in; the reply uses the same framing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Wire {
    /// Newline-delimited JSON text (the compatibility default).
    Json,
    /// Length-prefixed tagged binary ([`crate::binary`]).
    Binary,
}

/// Serializes one response value in the requested framing, ready to append
/// to a connection's write buffer.
pub(crate) fn serialize_reply(wire: Wire, value: &Json) -> Vec<u8> {
    match wire {
        Wire::Json => {
            let mut text = value.to_string();
            text.push('\n');
            text.into_bytes()
        }
        Wire::Binary => binary::encode_frame(value),
    }
}

/// Where a finished job's reply goes: a connection slot (validated by
/// generation so a recycled slot never receives a stale reply) and the
/// per-connection sequence number that fixes its position in the reply
/// order.
#[derive(Debug, Clone, Copy)]
struct ReplyTo {
    slot: usize,
    gen: u64,
    seq: u64,
    wire: Wire,
}

/// A queued unit of work: the decoded request plus its reply slot and
/// exactly-once bookkeeping.
struct Job {
    envelope: Envelope,
    reply: ReplyTo,
    enqueued: Instant,
    /// Server-assigned id, reported in `internal` errors and daemon logs.
    job_id: u64,
    /// 0 on first dispatch; 1 after the single post-panic re-dispatch.
    attempt: u8,
    /// Resolved absolute deadline (request `deadline_ms` or the server
    /// default); `None` = unlimited.
    deadline: Option<Instant>,
}

/// A serialized reply travelling from a worker back to the reactor.
struct Completion {
    slot: usize,
    gen: u64,
    seq: u64,
    bytes: Vec<u8>,
}

/// State shared by the reactor and the workers.
pub(crate) struct Shared {
    pub(crate) cache: TraceCache,
    pub(crate) metrics: Metrics,
    queue: JobQueue<Job>,
    shutdown: AtomicBool,
    workers: usize,
    drained_at_close: AtomicUsize,
    chaos: ChaosState,
    default_deadline_ms: u64,
    next_job_id: AtomicU64,
    /// Finished replies awaiting delivery; the reactor swaps this empty on
    /// every wakeup.
    completions: Mutex<Vec<Completion>>,
    /// Interrupts the reactor's poll when a completion lands.
    wake: Arc<WakeHandle>,
}

impl Shared {
    fn push_completion(&self, completion: Completion) {
        self.completions.lock().expect("completions lock").push(completion);
        self.wake.wake();
    }

    fn take_completions(&self) -> Vec<Completion> {
        std::mem::take(&mut *self.completions.lock().expect("completions lock"))
    }
}

/// What the daemon reports after a graceful shutdown.
#[derive(Debug)]
pub struct ServiceSummary {
    /// Requests answered (all kinds, errors included).
    pub served: u64,
    /// Jobs still queued when shutdown began — all of them were drained.
    pub drained: usize,
    /// Jobs that survived a worker panic via the single re-dispatch.
    pub recovered_jobs: u64,
    /// The final metrics snapshot (same shape as a `status` response).
    pub metrics: Json,
}

/// A running daemon; dropping it without [`Server::join`] detaches the
/// threads.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    reactor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// the reactor plus the worker pool.
    ///
    /// # Errors
    ///
    /// Propagates the bind or self-pipe failure.
    pub fn start(addr: &str, config: ServiceConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let wake_pipe = WakePipe::new()?;
        let workers = if config.workers == 0 {
            thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            config.workers
        };
        let shared = Arc::new(Shared {
            cache: TraceCache::new(config.cache_bytes),
            metrics: Metrics::new(),
            queue: JobQueue::new(config.queue_depth),
            shutdown: AtomicBool::new(false),
            workers,
            drained_at_close: AtomicUsize::new(0),
            chaos: ChaosState::new(config.chaos),
            default_deadline_ms: config.default_deadline_ms,
            next_job_id: AtomicU64::new(1),
            completions: Mutex::new(Vec::new()),
            wake: wake_pipe.handle(),
        });
        let worker_handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("mbist-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();
        let reactor = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("mbist-reactor".into())
                .spawn(move || reactor_loop(&listener, &shared, wake_pipe))
                .expect("spawn reactor")
        };
        Ok(Server { shared, local_addr, reactor, workers: worker_handles })
    }

    /// The bound address (resolves ephemeral ports).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Triggers the graceful-shutdown sequence (same effect as a `shutdown`
    /// request). Idempotent; returns immediately — [`Server::join`] waits.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.wake.wake();
    }

    /// Blocks until shutdown completes (reactor stopped, connections
    /// flushed and closed, queue drained, workers exited) and flushes the
    /// final metrics snapshot.
    #[must_use]
    pub fn join(self) -> ServiceSummary {
        let _ = self.reactor.join();
        for w in self.workers {
            let _ = w.join();
        }
        let shared = &self.shared;
        ServiceSummary {
            served: shared.metrics.total_requests(),
            drained: shared.drained_at_close.load(Ordering::SeqCst),
            recovered_jobs: shared.metrics.recovered_jobs(),
            metrics: shared.metrics.snapshot(
                shared.queue.len(),
                shared.queue.capacity(),
                shared.cache.stats(),
            ),
        }
    }
}

/// Reactor poll timeout — the granularity of the shutdown check and the
/// slow-loris / stalled-write timers.
const POLL: Duration = Duration::from_millis(25);

/// Hard cap on one request message; longer lines (or binary frames) get a
/// structured `usage` error and the connection closes (the framing is
/// unrecoverable).
const MAX_LINE_BYTES: usize = 64 * 1024;

/// How long a partial message may dribble in before the connection is
/// judged a slow-loris and closed with a structured error.
const PARTIAL_LINE_DEADLINE: Duration = Duration::from_secs(10);

/// How long a reply may sit unflushed against a non-reading client before
/// the connection is closed.
const WRITE_TIMEOUT: Duration = Duration::from_secs(10);

/// Bytes per `read` call on a readable socket.
const READ_CHUNK: usize = 16 * 1024;

/// Per-connection state machine: framing in, ordered replies out.
struct Conn {
    stream: TcpStream,
    /// Generation stamp distinguishing this tenancy of the slot from any
    /// earlier connection that used it.
    gen: u64,
    /// Bytes read but not yet framed into messages.
    rbuf: Vec<u8>,
    /// Serialized replies queued for the socket; `wpos` marks how much of
    /// it is already written.
    wbuf: Vec<u8>,
    wpos: usize,
    /// Next sequence number to assign to an incoming message.
    next_seq: u64,
    /// Next sequence number the write stream is waiting on.
    next_write: u64,
    /// Replies that finished out of order, keyed by sequence number.
    done: BTreeMap<u64, Vec<u8>>,
    /// When the current partial message started dribbling in.
    partial_since: Option<Instant>,
    /// When the current unflushed write started stalling.
    write_stalled_since: Option<Instant>,
    /// The client half-closed (EOF on read).
    read_closed: bool,
    /// A fatal framing error was answered; close once flushed.
    closing: bool,
}

impl Conn {
    fn new(stream: TcpStream, gen: u64) -> Conn {
        Conn {
            stream,
            gen,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            next_seq: 0,
            next_write: 0,
            done: BTreeMap::new(),
            partial_since: None,
            write_stalled_since: None,
            read_closed: false,
            closing: false,
        }
    }

    /// Replies still owed (allocated but not yet released into `wbuf`).
    fn owed(&self) -> u64 {
        self.next_seq - self.next_write
    }

    /// Nothing owed and nothing buffered: the connection is quiescent.
    fn flushed(&self) -> bool {
        self.owed() == 0 && self.wpos == self.wbuf.len()
    }

    fn wants_read(&self, shutting: bool) -> bool {
        !self.closing && !self.read_closed && !shutting
    }

    fn alloc_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// Lands the reply for `seq`, releasing it (and any now-unblocked
    /// successors) into the write buffer in sequence order.
    fn finish(&mut self, seq: u64, bytes: Vec<u8>) {
        self.done.insert(seq, bytes);
        while let Some(bytes) = self.done.remove(&self.next_write) {
            self.wbuf.extend_from_slice(&bytes);
            self.next_write += 1;
        }
    }

    /// Serializes and lands a reply value produced on the reactor thread.
    fn reply_value(&mut self, seq: u64, wire: Wire, value: &Json) {
        self.finish(seq, serialize_reply(wire, value));
    }

    /// Answers a fatal framing error and marks the connection for close
    /// once the reply is flushed.
    fn fatal(&mut self, wire: Wire, message: String) {
        let seq = self.alloc_seq();
        let value = error_response_value(None, &ServiceError::Usage(message));
        self.reply_value(seq, wire, &value);
        self.closing = true;
    }

    /// Writes as much buffered reply data as the socket accepts. Returns
    /// `false` when the connection is unusable.
    fn try_write(&mut self) -> bool {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => return false,
                Ok(n) => {
                    self.wpos += n;
                    self.write_stalled_since = None;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    self.write_stalled_since.get_or_insert_with(Instant::now);
                    break;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return false,
            }
        }
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
            self.write_stalled_since = None;
        } else if self.wpos > 32 * 1024 {
            self.wbuf.drain(..self.wpos);
            self.wpos = 0;
        }
        true
    }
}

/// One framed message pulled out of a connection's read buffer.
enum Step {
    /// Not enough bytes yet.
    Incomplete,
    /// An empty line: no response owed.
    Blank,
    /// A complete JSON request line (trimmed, non-empty).
    Line(String),
    /// A complete, decoded binary frame.
    BinaryValue(Json),
    /// A newline-terminated line that is not valid UTF-8.
    BadUtf8,
    /// Unrecoverable framing: answer `message` in `wire` framing, close.
    Fatal(Wire, String),
    /// A line exceeded [`MAX_LINE_BYTES`] without a newline.
    Oversize,
}

/// Frames the next message at the start of `buf`, returning the step and
/// how many bytes it consumed.
fn next_message(buf: &[u8]) -> (Step, usize) {
    if buf.is_empty() {
        return (Step::Incomplete, 0);
    }
    if buf[0] == binary::MAGIC {
        return match binary::decode_frame(buf) {
            Ok(Some((value, used))) => (Step::BinaryValue(value), used),
            Ok(None) => {
                if buf.len() > binary::MAX_FRAME_BYTES + binary::HEADER_BYTES {
                    (Step::Oversize, 0)
                } else {
                    (Step::Incomplete, 0)
                }
            }
            Err(m) => (Step::Fatal(Wire::Binary, format!("invalid binary frame: {m}")), 0),
        };
    }
    match buf.iter().position(|&b| b == b'\n') {
        Some(i) => match std::str::from_utf8(&buf[..i]) {
            Ok(text) => {
                let line = text.trim();
                if line.is_empty() {
                    (Step::Blank, i + 1)
                } else {
                    (Step::Line(line.to_string()), i + 1)
                }
            }
            Err(_) => (Step::BadUtf8, i + 1),
        },
        None => {
            if buf.len() > MAX_LINE_BYTES {
                (Step::Oversize, 0)
            } else {
                (Step::Incomplete, 0)
            }
        }
    }
}

/// Reads everything currently available on the socket into `conn.rbuf`.
/// Returns `false` on a hard error (close now).
fn read_into(conn: &mut Conn) -> bool {
    loop {
        let start = conn.rbuf.len();
        conn.rbuf.resize(start + READ_CHUNK, 0);
        match conn.stream.read(&mut conn.rbuf[start..]) {
            Ok(0) => {
                conn.rbuf.truncate(start);
                conn.read_closed = true;
                return true;
            }
            Ok(n) => {
                conn.rbuf.truncate(start + n);
                if n < READ_CHUNK {
                    return true;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                conn.rbuf.truncate(start);
                return true;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {
                conn.rbuf.truncate(start);
            }
            Err(_) => {
                conn.rbuf.truncate(start);
                return false;
            }
        }
    }
}

/// Frames and dispatches every complete message in `conn.rbuf`. Returns
/// `false` when the connection must be dropped immediately (chaos drop).
fn parse_messages(conn: &mut Conn, slot: usize, shared: &Arc<Shared>) -> bool {
    let mut pos = 0;
    while !conn.closing {
        let (step, used) = next_message(&conn.rbuf[pos..]);
        pos += used;
        match step {
            Step::Incomplete => break,
            Step::Blank => {}
            Step::BadUtf8 => {
                let seq = conn.alloc_seq();
                let value = error_response_value(
                    None,
                    &ServiceError::Usage("request line is not valid UTF-8".into()),
                );
                conn.reply_value(seq, Wire::Json, &value);
            }
            Step::Line(line) => {
                if shared.chaos.config().enabled() && shared.chaos.roll_drop() {
                    // Injected partition: the request was accepted but the
                    // connection dies without a reply.
                    shared.metrics.record_chaos("drop");
                    return false;
                }
                match Json::parse(&line) {
                    Ok(value) => handle_value(conn, slot, shared, Wire::Json, value),
                    Err(e) => {
                        let seq = conn.alloc_seq();
                        let id = crate::protocol::recover_id(&line);
                        let value = error_response_value(
                            id.as_ref(),
                            &ServiceError::Usage(format!("invalid JSON: {e}")),
                        );
                        conn.reply_value(seq, Wire::Json, &value);
                    }
                }
            }
            Step::BinaryValue(value) => {
                if shared.chaos.config().enabled() && shared.chaos.roll_drop() {
                    shared.metrics.record_chaos("drop");
                    return false;
                }
                handle_value(conn, slot, shared, Wire::Binary, value);
            }
            Step::Fatal(wire, message) => conn.fatal(wire, message),
            Step::Oversize => conn
                .fatal(Wire::Json, format!("request line exceeds {MAX_LINE_BYTES} bytes")),
        }
    }
    conn.rbuf.drain(..pos);
    if !conn.closing {
        if conn.rbuf.is_empty() {
            conn.partial_since = None;
        } else if conn.read_closed {
            // EOF mid-message is unrecoverable framing; answer a structured
            // error and close.
            conn.fatal(
                Wire::Json,
                "connection closed mid-request (premature EOF)".to_string(),
            );
        } else {
            conn.partial_since.get_or_insert_with(Instant::now);
        }
    }
    true
}

/// Dispatches one decoded request value: inline for `status` / `shutdown`
/// and cache hits, queued otherwise.
fn handle_value(
    conn: &mut Conn,
    slot: usize,
    shared: &Arc<Shared>,
    wire: Wire,
    value: Json,
) {
    let arrival = Instant::now();
    let seq = conn.alloc_seq();
    let envelope = match parse_request_value(&value) {
        Ok(envelope) => envelope,
        // Echo the id even for malformed requests whenever the message was
        // well-formed enough to carry one.
        Err(e) => {
            let reply = error_response_value(value.get("id"), &e);
            conn.reply_value(seq, wire, &reply);
            return;
        }
    };
    let Envelope { id, deadline_ms, request } = envelope;
    let kind = request.kind();
    match request {
        // Served inline: must keep working while the queue is saturated.
        Request::Status => {
            let snapshot = shared.metrics.snapshot(
                shared.queue.len(),
                shared.queue.capacity(),
                shared.cache.stats(),
            );
            shared.metrics.record_request(kind, true, elapsed_us(arrival));
            let reply = ok_response_value(id.as_ref(), kind, vec![("status", snapshot)]);
            conn.reply_value(seq, wire, &reply);
        }
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            shared.metrics.record_request(kind, true, elapsed_us(arrival));
            let reply = ok_response_value(
                id.as_ref(),
                kind,
                vec![
                    ("draining", Json::Bool(true)),
                    ("queued", Json::num(shared.queue.len() as f64)),
                ],
            );
            conn.reply_value(seq, wire, &reply);
        }
        request => {
            if shared.shutdown.load(Ordering::SeqCst) {
                let reply = error_response_value(id.as_ref(), &ServiceError::ShuttingDown);
                conn.reply_value(seq, wire, &reply);
                return;
            }
            // The inline fast path: a fully-warm request (trace and result
            // memo both resident) is answered on the reactor thread with no
            // queue round trip. Chaos mode disables it so every request
            // stays exposed to worker-side panic/delay injection.
            if !shared.chaos.config().enabled() {
                if let Some(payload) = exec::try_fast(&request, shared) {
                    shared.metrics.record_request(kind, true, elapsed_us(arrival));
                    let reply = ok_response_value(id.as_ref(), kind, payload);
                    conn.reply_value(seq, wire, &reply);
                    return;
                }
            }
            let deadline_budget = deadline_ms.unwrap_or(shared.default_deadline_ms);
            let deadline = (deadline_budget > 0)
                .then(|| arrival + Duration::from_millis(deadline_budget));
            let job = Job {
                envelope: Envelope { id: id.clone(), deadline_ms, request },
                reply: ReplyTo { slot, gen: conn.gen, seq, wire },
                enqueued: arrival,
                job_id: shared.next_job_id.fetch_add(1, Ordering::Relaxed),
                attempt: 0,
                deadline,
            };
            match shared.queue.try_push(job) {
                Ok(()) => {}
                Err(PushError::Full(_)) => {
                    shared.metrics.record_rejected();
                    shared.metrics.record_request(kind, false, elapsed_us(arrival));
                    let reply = error_response_value(
                        id.as_ref(),
                        &ServiceError::Busy { retry_after_ms: retry_hint_ms(shared, kind) },
                    );
                    conn.reply_value(seq, wire, &reply);
                }
                Err(PushError::Closed(_)) => {
                    let reply =
                        error_response_value(id.as_ref(), &ServiceError::ShuttingDown);
                    conn.reply_value(seq, wire, &reply);
                }
            }
        }
    }
}

/// The reactor: accepts, reads, frames, dispatches, writes and sweeps
/// timers — one thread, every socket.
fn reactor_loop(listener: &TcpListener, shared: &Arc<Shared>, mut wake: WakePipe) {
    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut next_gen: u64 = 0;
    let mut listening = true;
    loop {
        let shutting = shared.shutdown.load(Ordering::SeqCst);
        if shutting {
            listening = false;
        }

        // Rebuild the pollfd array: [wake][listener?][one per live conn].
        let mut fds: Vec<PollFd> = Vec::with_capacity(conns.len() + 2);
        let mut slots: Vec<usize> = Vec::with_capacity(conns.len());
        fds.push(PollFd::new(wake.fd(), POLLIN));
        if listening {
            fds.push(PollFd::new(std::os::unix::io::AsRawFd::as_raw_fd(listener), POLLIN));
        }
        let base = fds.len();
        for (slot, entry) in conns.iter().enumerate() {
            if let Some(conn) = entry {
                let mut events = 0i16;
                if conn.wants_read(shutting) {
                    events |= POLLIN;
                }
                if conn.wpos < conn.wbuf.len() {
                    events |= POLLOUT;
                }
                fds.push(PollFd::new(
                    std::os::unix::io::AsRawFd::as_raw_fd(&conn.stream),
                    events,
                ));
                slots.push(slot);
            }
        }

        let timeout = i32::try_from(POLL.as_millis()).unwrap_or(25);
        if poll_fds(&mut fds, timeout).is_err() {
            // A broken poll means the loop cannot make progress; treat it
            // as shutdown so the daemon still drains cleanly.
            shared.shutdown.store(true, Ordering::SeqCst);
        }
        wake.drain();

        // 1. Deliver finished jobs into their connections.
        for completion in shared.take_completions() {
            if let Some(Some(conn)) = conns.get_mut(completion.slot) {
                if conn.gen == completion.gen {
                    conn.finish(completion.seq, completion.bytes);
                }
            }
        }

        // 2. Accept new connections (up to WouldBlock).
        if listening && fds.get(1).is_some_and(PollFd::readable) {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let _ = stream.set_nonblocking(true);
                        let _ = stream.set_nodelay(true);
                        let gen = next_gen;
                        next_gen += 1;
                        let conn = Conn::new(stream, gen);
                        match conns.iter().position(Option::is_none) {
                            Some(slot) => conns[slot] = Some(conn),
                            None => conns.push(Some(conn)),
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(_) => break,
                }
            }
        }

        // 3. Service readable/writable connections.
        for (i, &slot) in slots.iter().enumerate() {
            let ready = fds[base + i];
            let Some(conn) = conns[slot].as_mut() else { continue };
            let mut drop_now = false;
            if ready.readable() && conn.wants_read(shutting) {
                if read_into(conn) {
                    drop_now = !parse_messages(conn, slot, shared);
                } else {
                    drop_now = true;
                }
            }
            if !drop_now && !conn.try_write() {
                drop_now = true;
            }
            if drop_now {
                conns[slot] = None;
            }
        }

        // 4. Timer sweep and deferred closes.
        let now = Instant::now();
        for entry in &mut conns {
            let Some(conn) = entry.as_mut() else { continue };
            if conn
                .write_stalled_since
                .is_some_and(|since| now.duration_since(since) >= WRITE_TIMEOUT)
            {
                *entry = None;
                continue;
            }
            if !conn.closing
                && conn
                    .partial_since
                    .is_some_and(|since| now.duration_since(since) >= PARTIAL_LINE_DEADLINE)
            {
                conn.fatal(Wire::Json, "request line stalled; closing".to_string());
                conn.partial_since = None;
                let _ = conn.try_write();
            }
            // New replies may have landed via completions this iteration;
            // push them out before judging quiescence.
            if conn.wpos < conn.wbuf.len() && !conn.try_write() {
                *entry = None;
                continue;
            }
            if conn.flushed() && (conn.closing || conn.read_closed || shutting) {
                *entry = None;
            }
        }

        if shutting && conns.iter().all(Option::is_none) {
            break;
        }
    }
    // The reactor is the only producer; once it exits the queue contents
    // are final and closing it lets the workers drain and stop.
    shared.drained_at_close.store(shared.queue.len(), Ordering::SeqCst);
    shared.queue.close();
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        if let Some(retry) = attempt_job(job, shared) {
            // First-attempt panic: re-dispatch exactly once. A full or
            // closed queue cannot be allowed to drop the job, so those
            // cases retry inline on this worker instead.
            match shared.queue.try_push(retry) {
                Ok(()) => {}
                Err(PushError::Full(retry) | PushError::Closed(retry)) => {
                    let settled = attempt_job(retry, shared);
                    debug_assert!(settled.is_none(), "attempt 1 always settles");
                }
            }
        }
    }
}

/// Runs one dispatch attempt of `job`. Returns `None` when a terminal
/// outcome was sent, or `Some(job)` (attempt bumped) when the worker
/// panicked on the first attempt and the job must be re-dispatched.
fn attempt_job(job: Job, shared: &Arc<Shared>) -> Option<Job> {
    let kind = job.envelope.request.kind();
    shared.metrics.record_job_dispatched();

    // A deadline blown while the job sat in the queue: answer the timeout
    // without burning worker time on a result nobody is owed.
    if job.deadline.is_some_and(|d| Instant::now() >= d) {
        settle(
            &job,
            shared,
            false,
            &error_response_value(
                job.envelope.id.as_ref(),
                &ServiceError::Timeout {
                    elapsed_ms: elapsed_us(job.enqueued) / 1000,
                    partial: None,
                },
            ),
        );
        shared.metrics.record_timeout();
        return None;
    }

    if let Some(delay) = shared.chaos.roll_delay() {
        shared.metrics.record_chaos("delay");
        thread::sleep(delay);
    }
    // The roll and its counter update happen outside the unwind scope so an
    // injected panic can never poison the metrics lock.
    let inject_panic = shared.chaos.roll_panic();
    if inject_panic {
        shared.metrics.record_chaos("panic");
    }

    let cancel = job.deadline.map_or_else(CancelToken::none, CancelToken::at);
    let ctx = ExecCtx { cancel: cancel.clone(), arrival: job.enqueued };
    let exec_start = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        assert!(!inject_panic, "injected chaos panic");
        exec::execute(&job.envelope.request, shared, &ctx)
    }));
    let id = job.envelope.id.as_ref();
    match outcome {
        Ok(result) => {
            shared.metrics.record_exec(kind, elapsed_us(exec_start));
            let (ok, value) = match result {
                Ok(payload) => (true, ok_response_value(id, kind, payload)),
                Err(e) => {
                    if matches!(e, ServiceError::Timeout { .. }) {
                        shared.metrics.record_timeout();
                    }
                    (false, error_response_value(id, &e))
                }
            };
            if job.attempt > 0 {
                shared.metrics.record_job_recovered();
            }
            settle(&job, shared, ok, &value);
            None
        }
        Err(_) if job.attempt == 0 => Some(Job { attempt: 1, ..job }),
        Err(_) => {
            settle(
                &job,
                shared,
                false,
                &error_response_value(id, &ServiceError::Internal { job_id: job.job_id }),
            );
            None
        }
    }
}

/// Sends the terminal outcome for a job and records its request metrics.
/// The connection may already be gone; the generation check on delivery
/// makes dropping the reply safe.
fn settle(job: &Job, shared: &Shared, ok: bool, value: &Json) {
    shared.metrics.record_request(
        job.envelope.request.kind(),
        ok,
        elapsed_us(job.enqueued),
    );
    shared.metrics.record_job_answered();
    shared.push_completion(Completion {
        slot: job.reply.slot,
        gen: job.reply.gen,
        seq: job.reply.seq,
        bytes: serialize_reply(job.reply.wire, value),
    });
}

fn elapsed_us(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Suggested back-off when shedding load, derived from the current drain
/// rate: the median execution time of this kind times the queue slots
/// ahead of the client, spread over the worker pool.
fn retry_hint_ms(shared: &Shared, kind: &str) -> u64 {
    retry_hint_from(shared.metrics.exec_p50_us(kind), shared.queue.len(), shared.workers)
}

/// The pure hint formula, unit-testable without a server: with no
/// execution data yet a nominal 25 ms per job applies; the result is
/// (weakly) monotone in the backlog and clamped to [1 ms, 30 s]. The shard
/// router reuses this with the *target shard's* queue occupancy so a hot
/// shard does not inflate hints for requests bound elsewhere.
pub(crate) fn retry_hint_from(exec_p50_us: u64, backlog: usize, workers: usize) -> u64 {
    const NOMINAL_JOB_US: u64 = 25_000;
    let per_job_us = if exec_p50_us == 0 { NOMINAL_JOB_US } else { exec_p50_us };
    let slots_ahead = (backlog as u64).saturating_add(1).div_ceil(workers.max(1) as u64);
    per_job_us.saturating_mul(slots_ahead).div_ceil(1000).clamp(1, 30_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_hint_is_monotone_in_queue_occupancy() {
        for workers in [1usize, 2, 4, 7] {
            for p50 in [0u64, 500, 25_000, 2_000_000] {
                let mut last = 0;
                for backlog in 0..200 {
                    let hint = retry_hint_from(p50, backlog, workers);
                    assert!(
                        hint >= last,
                        "hint regressed: p50={p50} workers={workers} backlog={backlog}: \
                         {hint} < {last}"
                    );
                    last = hint;
                }
            }
        }
    }

    #[test]
    fn retry_hint_scales_with_drain_rate_and_stays_clamped() {
        // No data yet: the nominal per-job cost keeps the old 25 ms floor.
        assert_eq!(retry_hint_from(0, 0, 4), 25);
        // Fast jobs, shallow queue: the hint drops well below 25 ms but
        // never to zero.
        assert_eq!(retry_hint_from(200, 0, 4), 1);
        // Slow jobs and a deep backlog saturate at the 30 s ceiling.
        assert_eq!(retry_hint_from(2_000_000, 1000, 2), 30_000);
        // More workers drain faster: the hint must not increase.
        assert!(retry_hint_from(50_000, 64, 8) <= retry_hint_from(50_000, 64, 2));
    }

    #[test]
    fn reply_order_is_release_order_not_completion_order() {
        let (a, _b) = std::os::unix::net::UnixStream::pair().unwrap();
        // A TcpStream is required by the struct; fabricate one from a
        // loopback listener purely to hold the fd.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        drop((a, client));
        let mut conn = Conn::new(server_side, 0);
        let s0 = conn.alloc_seq();
        let s1 = conn.alloc_seq();
        let s2 = conn.alloc_seq();
        conn.finish(s2, b"C".to_vec());
        conn.finish(s0, b"A".to_vec());
        assert_eq!(conn.wbuf, b"A");
        assert_eq!(conn.owed(), 2);
        conn.finish(s1, b"B".to_vec());
        assert_eq!(conn.wbuf, b"ABC");
        assert_eq!(conn.owed(), 0);
    }

    #[test]
    fn next_message_frames_lines_blanks_and_partial_tails() {
        let buf = b"{\"op\":\"x\"}\n\n  \ntail";
        let (step, used) = next_message(buf);
        assert!(matches!(step, Step::Line(ref l) if l == "{\"op\":\"x\"}"));
        assert_eq!(used, 11);
        let (step, used) = next_message(&buf[11..]);
        assert!(matches!(step, Step::Blank));
        assert_eq!(used, 1);
        let (step, used) = next_message(&buf[12..]);
        assert!(matches!(step, Step::Blank));
        assert_eq!(used, 3);
        let (step, used) = next_message(&buf[15..]);
        assert!(matches!(step, Step::Incomplete));
        assert_eq!(used, 0);
    }

    #[test]
    fn next_message_detects_binary_frames_and_oversize_lines() {
        let frame = binary::encode_frame(&Json::obj(vec![("op", Json::str("status"))]));
        let (step, used) = next_message(&frame);
        assert!(matches!(step, Step::BinaryValue(_)));
        assert_eq!(used, frame.len());
        let (step, _) = next_message(&frame[..3]);
        assert!(matches!(step, Step::Incomplete));
        let big = vec![b'x'; MAX_LINE_BYTES + 1];
        assert!(matches!(next_message(&big).0, Step::Oversize));
    }
}
