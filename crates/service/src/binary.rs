//! The compact length-prefixed binary variant of the wire protocol.
//!
//! Line-JSON stays the compatibility default; a client opts into the
//! binary framing per message, and the server answers each message in the
//! framing it arrived in. Detection is a single magic byte: a JSON request
//! line always begins with `{` or insignificant whitespace, while a binary
//! frame begins with [`MAGIC`] (`0xB1` — not valid UTF-8 as a leading
//! byte, so the two framings cannot be confused).
//!
//! Frame layout:
//!
//! ```text
//! [ MAGIC 0xB1 ][ VERSION 0x01 ][ payload len: u32 LE ][ payload ]
//! ```
//!
//! The payload is a tagged binary serialization of the *same* JSON value
//! tree both framings share — requests and responses carry identical
//! members in either framing, and the `text` payloads remain byte-identical
//! to the offline CLI. What the binary framing removes is the per-request
//! text cost: escaping-aware string scans on parse and `fmt`-driven float
//! and escape formatting on serialize. Strings are length-prefixed
//! `memcpy`s, numbers are raw little-endian `f64` bits.
//!
//! Value encoding, one tag byte each:
//!
//! | tag  | value                                            |
//! |------|--------------------------------------------------|
//! | 0x00 | `null`                                           |
//! | 0x01 | `false`                                          |
//! | 0x02 | `true`                                           |
//! | 0x03 | number — 8 bytes, `f64` little-endian            |
//! | 0x04 | string — `u32` LE byte length, then UTF-8 bytes  |
//! | 0x05 | array — `u32` LE element count, then elements    |
//! | 0x06 | object — `u32` LE member count, then `(key, value)` pairs (keys as tag-less strings) |
//!
//! The payload is capped at [`MAX_FRAME_BYTES`] — the same 64 KiB the
//! line framing enforces — and nesting at [`MAX_DEPTH`], so a malicious
//! frame can neither balloon memory nor overflow the decoder stack.

use crate::json::Json;

/// First byte of every binary frame. `0xB1` can never begin a UTF-8 JSON
/// line (it is a continuation byte), so framing detection is unambiguous.
pub const MAGIC: u8 = 0xB1;

/// Wire-format version; bumped on any incompatible layout change.
pub const VERSION: u8 = 1;

/// Fixed frame header size: magic, version, payload length.
pub const HEADER_BYTES: usize = 6;

/// Hard cap on one frame's payload — mirrors the line protocol's 64 KiB
/// request-line cap, so neither framing admits larger messages.
pub const MAX_FRAME_BYTES: usize = 64 * 1024;

/// Maximum value-tree nesting the decoder accepts.
pub const MAX_DEPTH: usize = 64;

const TAG_NULL: u8 = 0x00;
const TAG_FALSE: u8 = 0x01;
const TAG_TRUE: u8 = 0x02;
const TAG_NUM: u8 = 0x03;
const TAG_STR: u8 = 0x04;
const TAG_ARR: u8 = 0x05;
const TAG_OBJ: u8 = 0x06;

/// Serializes `value` into one complete frame (header included).
#[must_use]
pub fn encode_frame(value: &Json) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(&[MAGIC, VERSION, 0, 0, 0, 0]);
    encode_value(value, &mut out);
    let len = u32::try_from(out.len() - HEADER_BYTES).expect("frame fits u32");
    out[2..HEADER_BYTES].copy_from_slice(&len.to_le_bytes());
    out
}

/// Appends the tagged encoding of `value` to `out`.
pub fn encode_value(value: &Json, out: &mut Vec<u8>) {
    match value {
        Json::Null => out.push(TAG_NULL),
        Json::Bool(false) => out.push(TAG_FALSE),
        Json::Bool(true) => out.push(TAG_TRUE),
        Json::Num(n) => {
            out.push(TAG_NUM);
            out.extend_from_slice(&n.to_le_bytes());
        }
        Json::Str(s) => {
            out.push(TAG_STR);
            encode_str(s, out);
        }
        Json::Arr(items) => {
            out.push(TAG_ARR);
            out.extend_from_slice(&(items.len() as u32).to_le_bytes());
            for item in items {
                encode_value(item, out);
            }
        }
        Json::Obj(members) => {
            out.push(TAG_OBJ);
            out.extend_from_slice(&(members.len() as u32).to_le_bytes());
            for (key, member) in members {
                encode_str(key, out);
                encode_value(member, out);
            }
        }
    }
}

fn encode_str(s: &str, out: &mut Vec<u8>) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Attempts to decode one frame from the front of `buf`.
///
/// Returns `Ok(None)` when the buffer holds only a frame prefix (read more
/// bytes and retry), or `Ok(Some((value, consumed)))` on success.
///
/// # Errors
///
/// A wrong magic or version byte, an oversized declared length, or a
/// malformed payload is unrecoverable for the connection: the caller
/// cannot know where the next frame boundary is.
pub fn decode_frame(buf: &[u8]) -> Result<Option<(Json, usize)>, String> {
    if buf.is_empty() {
        return Ok(None);
    }
    if buf[0] != MAGIC {
        return Err(format!("bad frame magic 0x{:02x}", buf[0]));
    }
    if buf.len() < HEADER_BYTES {
        return Ok(None);
    }
    if buf[1] != VERSION {
        return Err(format!("unsupported binary protocol version {}", buf[1]));
    }
    let len = u32::from_le_bytes([buf[2], buf[3], buf[4], buf[5]]) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(format!("frame payload {len} bytes exceeds {MAX_FRAME_BYTES}"));
    }
    let total = HEADER_BYTES + len;
    if buf.len() < total {
        return Ok(None);
    }
    let value = decode_value(&buf[HEADER_BYTES..total])?;
    Ok(Some((value, total)))
}

/// Decodes one complete payload, rejecting trailing garbage.
///
/// # Errors
///
/// Returns a message describing the first malformed byte.
pub fn decode_value(payload: &[u8]) -> Result<Json, String> {
    let mut pos = 0;
    let value = decode_at(payload, &mut pos, 0)?;
    if pos != payload.len() {
        return Err(format!("trailing bytes after value at offset {pos}"));
    }
    Ok(value)
}

fn take<'a>(payload: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8], String> {
    let end = pos.checked_add(n).filter(|&e| e <= payload.len());
    let end = end.ok_or_else(|| format!("truncated value at offset {pos}"))?;
    let slice = &payload[*pos..end];
    *pos = end;
    Ok(slice)
}

fn take_u32(payload: &[u8], pos: &mut usize) -> Result<u32, String> {
    let b = take(payload, pos, 4)?;
    Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

fn take_str(payload: &[u8], pos: &mut usize) -> Result<String, String> {
    let len = take_u32(payload, pos)? as usize;
    let bytes = take(payload, pos, len)?;
    std::str::from_utf8(bytes)
        .map(ToString::to_string)
        .map_err(|_| format!("string at offset {} is not valid UTF-8", *pos - len))
}

fn decode_at(payload: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err(format!("value nesting exceeds {MAX_DEPTH}"));
    }
    let tag = take(payload, pos, 1)?[0];
    match tag {
        TAG_NULL => Ok(Json::Null),
        TAG_FALSE => Ok(Json::Bool(false)),
        TAG_TRUE => Ok(Json::Bool(true)),
        TAG_NUM => {
            let b = take(payload, pos, 8)?;
            let bits = u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]);
            Ok(Json::Num(f64::from_bits(bits)))
        }
        TAG_STR => Ok(Json::Str(take_str(payload, pos)?)),
        TAG_ARR => {
            let count = take_u32(payload, pos)? as usize;
            // Each element needs at least its tag byte: bounds the
            // preallocation against a lying count.
            if count > payload.len() - *pos {
                return Err(format!("array count {count} exceeds payload"));
            }
            let mut items = Vec::with_capacity(count);
            for _ in 0..count {
                items.push(decode_at(payload, pos, depth + 1)?);
            }
            Ok(Json::Arr(items))
        }
        TAG_OBJ => {
            let count = take_u32(payload, pos)? as usize;
            if count > payload.len() - *pos {
                return Err(format!("object count {count} exceeds payload"));
            }
            let mut members = Vec::with_capacity(count);
            for _ in 0..count {
                let key = take_str(payload, pos)?;
                let value = decode_at(payload, pos, depth + 1)?;
                members.push((key, value));
            }
            Ok(Json::Obj(members))
        }
        other => Err(format!("unknown value tag 0x{other:02x} at offset {}", *pos - 1)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_roundtrip(value: &Json) -> Json {
        let frame = encode_frame(value);
        let (decoded, consumed) = decode_frame(&frame).unwrap().expect("complete");
        assert_eq!(consumed, frame.len());
        decoded
    }

    #[test]
    fn roundtrips_every_value_shape() {
        let value = Json::obj(vec![
            ("id", Json::Num(42.0)),
            ("kind", Json::str("coverage")),
            ("text", Json::str("line one\nline \"two\" \\ three\t⇕")),
            ("flag", Json::Bool(true)),
            ("off", Json::Bool(false)),
            ("nil", Json::Null),
            ("frac", Json::Num(2.5)),
            ("neg", Json::Num(-17.0)),
            ("arr", Json::Arr(vec![Json::Num(1.0), Json::str("x"), Json::Null])),
            ("nested", Json::obj(vec![("inner", Json::Arr(vec![]))])),
        ]);
        assert_eq!(frame_roundtrip(&value), value);
    }

    #[test]
    fn empty_containers_and_strings_survive() {
        for v in
            [Json::Obj(vec![]), Json::Arr(vec![]), Json::Str(String::new()), Json::Null]
        {
            assert_eq!(frame_roundtrip(&v), v);
        }
    }

    #[test]
    fn every_truncation_point_reports_incomplete_not_garbage() {
        let frame = encode_frame(&Json::obj(vec![
            ("kind", Json::str("detects")),
            ("words", Json::Num(1024.0)),
        ]));
        for cut in 0..frame.len() {
            assert_eq!(
                decode_frame(&frame[..cut]).unwrap(),
                None,
                "prefix of {cut} bytes must read as incomplete"
            );
        }
        assert!(decode_frame(&frame).unwrap().is_some());
    }

    #[test]
    fn rejects_bad_magic_version_and_oversize() {
        assert!(decode_frame(b"{\"kind\":\"status\"}").is_err(), "JSON is not a frame");
        let mut frame = encode_frame(&Json::Null);
        frame[1] = 9;
        assert!(decode_frame(&frame).unwrap_err().contains("version"));
        let mut huge = vec![MAGIC, VERSION];
        huge.extend_from_slice(
            &(u32::try_from(MAX_FRAME_BYTES + 1).unwrap()).to_le_bytes(),
        );
        assert!(decode_frame(&huge).unwrap_err().contains("exceeds"));
    }

    #[test]
    fn rejects_malformed_payloads() {
        // Unknown tag.
        let mut frame = vec![MAGIC, VERSION];
        frame.extend_from_slice(&1u32.to_le_bytes());
        frame.push(0x77);
        assert!(decode_frame(&frame).unwrap_err().contains("tag"));
        // Lying container count.
        let mut frame = vec![MAGIC, VERSION];
        frame.extend_from_slice(&5u32.to_le_bytes());
        frame.push(TAG_ARR);
        frame.extend_from_slice(&1_000_000u32.to_le_bytes());
        assert!(decode_frame(&frame).unwrap_err().contains("count"));
        // Trailing garbage after a complete value.
        let mut frame = vec![MAGIC, VERSION];
        frame.extend_from_slice(&2u32.to_le_bytes());
        frame.extend_from_slice(&[TAG_NULL, TAG_NULL]);
        assert!(decode_frame(&frame).unwrap_err().contains("trailing"));
        // Invalid UTF-8 in a string.
        let mut frame = vec![MAGIC, VERSION];
        frame.extend_from_slice(&7u32.to_le_bytes());
        frame.push(TAG_STR);
        frame.extend_from_slice(&2u32.to_le_bytes());
        frame.extend_from_slice(&[0xff, 0xfe]);
        assert!(decode_frame(&frame).unwrap_err().contains("UTF-8"));
    }

    #[test]
    fn magic_byte_cannot_collide_with_json_or_utf8() {
        assert_eq!(MAGIC & 0xc0, 0x80, "0xb1 is a UTF-8 continuation byte");
        assert_ne!(MAGIC, b'{');
        assert_ne!(MAGIC, b' ');
    }

    #[test]
    fn two_frames_back_to_back_decode_in_sequence() {
        let a = Json::obj(vec![("kind", Json::str("status"))]);
        let b = Json::obj(vec![("kind", Json::str("shutdown"))]);
        let mut buf = encode_frame(&a);
        buf.extend_from_slice(&encode_frame(&b));
        let (va, used) = decode_frame(&buf).unwrap().unwrap();
        assert_eq!(va, a);
        let (vb, used_b) = decode_frame(&buf[used..]).unwrap().unwrap();
        assert_eq!(vb, b);
        assert_eq!(used + used_b, buf.len());
    }
}
