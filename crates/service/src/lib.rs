//! `mbist-service` — a concurrent BIST evaluation daemon.
//!
//! The offline tools in this workspace answer one question per process:
//! compile a march test to a [`mbist_march::CompiledTrace`], simulate,
//! print, exit. This crate keeps those engines resident behind a TCP
//! endpoint speaking line-delimited JSON, so repeated queries amortize
//! trace compilation instead of paying it per process:
//!
//! - [`protocol`] — the request/response wire format (`coverage`,
//!   `detects`, `synth`, `area`, `status`, `shutdown`).
//! - [`queue`] — the bounded job queue whose `busy` rejections are the
//!   backpressure contract: a saturated daemon sheds load, never hangs.
//! - [`cache`] — the byte-capped LRU over compiled traces and memoized
//!   result texts, keyed by [`mbist_march::canonical_trace_key`].
//! - [`metrics`] — per-kind counters and log₂ latency histograms served by
//!   `status` and flushed on shutdown.
//! - [`server`] — the acceptor / connection / worker-pool wiring and the
//!   graceful-shutdown ordering.
//!
//! Responses reuse the exact CLI code paths and formatting, so a service
//! answer is bit-identical to the offline tool's output for the equivalent
//! invocation — concurrency and caching change latency, never bytes.
//! Std-only, like the rest of the workspace.

pub mod cache;
pub mod chaos;
pub mod json;
pub mod metrics;
pub mod protocol;
pub mod queue;

mod exec;
mod server;

pub use chaos::ChaosConfig;
pub use server::{Server, ServiceConfig, ServiceSummary};
