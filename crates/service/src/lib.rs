//! `mbist-service` — an event-driven BIST evaluation daemon.
//!
//! The offline tools in this workspace answer one question per process:
//! compile a march test to a [`mbist_march::CompiledTrace`], simulate,
//! print, exit. This crate keeps those engines resident behind a TCP
//! endpoint, so repeated queries amortize trace compilation instead of
//! paying it per process:
//!
//! - [`protocol`] — the request/response envelope (`coverage`, `detects`,
//!   `synth`, `area`, `status`, `shutdown`), independent of framing.
//! - [`binary`] — the length-prefixed binary framing, auto-detected per
//!   message by its magic byte; line-delimited JSON remains the
//!   compatibility default.
//! - [`reactor`] — the `poll(2)` wrapper and self-pipe the event loop is
//!   built on.
//! - [`queue`] — the bounded job queue whose `busy` rejections are the
//!   backpressure contract: a saturated daemon sheds load, never hangs.
//! - [`cache`] — the byte-capped LRU over compiled traces and memoized
//!   result texts, keyed by [`mbist_march::canonical_trace_key`].
//! - [`metrics`] — per-kind counters and log₂ latency histograms served by
//!   `status` and flushed on shutdown.
//! - [`server`] — the single-threaded reactor, the worker pool behind it
//!   and the graceful-shutdown ordering.
//! - [`router`] — the consistent-hash front end for `serve --shards N`:
//!   one process per shard, requests placed by
//!   [`mbist_march::canonical_request_key`], with per-tenant quotas and
//!   priority load-shedding.
//!
//! Responses reuse the exact CLI code paths and formatting, so a service
//! answer is bit-identical to the offline tool's output for the equivalent
//! invocation — concurrency, caching, framing and sharding change latency,
//! never bytes. Std-only, like the rest of the workspace.

pub mod binary;
pub mod cache;
pub mod chaos;
pub mod json;
pub mod metrics;
pub mod protocol;
pub mod queue;
pub mod reactor;
pub mod router;

mod exec;
mod server;

pub use chaos::ChaosConfig;
pub use router::{Router, RouterConfig, RouterSummary};
pub use server::{Server, ServiceConfig, ServiceSummary};
