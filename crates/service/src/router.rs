//! The consistent-hash front end for multi-process scale-out.
//!
//! `serve --shards N` starts N independent daemon processes, each owning a
//! slice of the trace-cache key space, and one [`Router`] in front. The
//! router frames each client message (line-JSON or binary, same
//! auto-detection as the daemon), decodes it just enough to place it, and
//! forwards the *original bytes* verbatim to the owning shard — replies
//! stream back equally untouched, so sharding can never change response
//! bytes.
//!
//! # Placement
//!
//! Cacheable requests (`coverage`, `detects`) are placed on a [`HashRing`]
//! by [`mbist_march::canonical_request_key`] — the canonical trace key of
//! the expanded `(test, geometry)` pair — so every request for one
//! compiled trace lands on the shard that owns (or will own) it, and the
//! fleet's aggregate cache stores each trace exactly once. Expansion is
//! too expensive per message, so the router memoizes spec → key; repeat
//! placements are one hash-map probe. `synth`/`area` have no trace
//! identity and are placed by a cheap parameter hash, which still keeps
//! their result memos shard-affine.
//!
//! # Admission control
//!
//! The flat `busy` of a single daemon becomes two-level shedding here:
//!
//! - **per-tenant quotas** — an optional cap on one tenant's in-flight
//!   requests (`tenant` field, default tenant `""`), so one chatty client
//!   cannot monopolize the fleet;
//! - **priority shedding** — when the *target shard's* in-flight depth
//!   crosses the shed threshold, priority 0/1 requests (field `priority`,
//!   default 1) are shed with `busy` while priority 2 still passes.
//!
//! Both rejections carry a `retry_after_ms` derived from the target
//! shard's own occupancy (via the daemon's hint formula), never from the
//! router-wide aggregate — a hot shard must not inflate hints for
//! requests bound elsewhere.

use std::collections::HashMap;
use std::io::{self, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use mbist_march::canonical_request_key;

use crate::binary;
use crate::exec::resolve_test;
use crate::json::Json;
use crate::protocol::{
    error_response_value, ok_response_value, parse_request_value, Request, ServiceError,
};
use crate::server::retry_hint_from;

/// Tuning knobs for [`Router::start`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// The shard daemons to front, in ring order.
    pub shards: Vec<SocketAddr>,
    /// Max in-flight requests per tenant (`None` disables quotas).
    pub tenant_quota: Option<usize>,
    /// Per-shard in-flight depth beyond which priority 0/1 requests are
    /// shed with `busy` (priority 2 always passes).
    pub shed_depth: usize,
    /// Virtual nodes per shard on the hash ring.
    pub vnodes: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self { shards: Vec::new(), tenant_quota: None, shed_depth: 64, vnodes: 64 }
    }
}

/// What the router reports after a graceful shutdown.
#[derive(Debug)]
pub struct RouterSummary {
    /// Requests answered (forwarded replies and router-local answers).
    pub served: u64,
    /// Requests forwarded to a shard.
    pub forwarded: u64,
    /// Requests shed router-side (quota or priority `busy`).
    pub shed: u64,
}

/// A stable FNV-1a over the router's placement inputs.
fn fnv(parts: &[&[u8]]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for part in parts {
        for &b in *part {
            h = (h ^ u64::from(b)).wrapping_mul(PRIME);
        }
        h = (h ^ 0xff).wrapping_mul(PRIME);
    }
    h
}

/// The splitmix64 finalizer: full-avalanche mixing for ring points, whose
/// raw FNV hashes of two small integers cluster badly.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// A consistent-hash ring: each shard contributes `vnodes` points, a key
/// maps to the first point at or clockwise of its hash. Adding or removing
/// one shard only moves the keys adjacent to its points.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Sorted `(point, shard)` pairs.
    points: Vec<(u64, usize)>,
    shards: usize,
}

impl HashRing {
    /// Builds the ring for `shards` shards with `vnodes` points each.
    #[must_use]
    pub fn new(shards: usize, vnodes: usize) -> HashRing {
        let mut points = Vec::with_capacity(shards * vnodes.max(1));
        for shard in 0..shards {
            for replica in 0..vnodes.max(1) {
                let point = mix64(fnv(&[
                    &(shard as u64).to_le_bytes(),
                    &(replica as u64).to_le_bytes(),
                ]));
                points.push((point, shard));
            }
        }
        points.sort_unstable();
        HashRing { points, shards }
    }

    /// Number of shards on the ring.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `key`.
    #[must_use]
    pub fn place(&self, key: u64) -> usize {
        if self.points.is_empty() {
            return 0;
        }
        let i = self.points.partition_point(|&(p, _)| p < key);
        self.points[if i == self.points.len() { 0 } else { i }].1
    }
}

/// Router-wide shared state.
struct RouterShared {
    ring: HashRing,
    shards: Vec<SocketAddr>,
    tenant_quota: Option<usize>,
    shed_depth: usize,
    shutdown: AtomicBool,
    served: AtomicU64,
    forwarded: AtomicU64,
    shed: AtomicU64,
    /// Requests currently forwarded to each shard and not yet answered —
    /// the router's view of that shard's queue occupancy.
    inflight: Vec<AtomicUsize>,
    /// In-flight requests per tenant (only tracked when quotas are on).
    tenants: Mutex<HashMap<String, usize>>,
    /// Memoized `(test, geometry)` spec hash → canonical request key.
    placements: Mutex<HashMap<u64, u64>>,
}

/// A running router; dropping it without [`Router::join`] detaches the
/// threads.
pub struct Router {
    shared: Arc<RouterShared>,
    local_addr: SocketAddr,
    acceptor: JoinHandle<()>,
}

/// Acceptor/read poll granularity (shutdown-flag check interval).
const POLL: Duration = Duration::from_millis(25);
/// Same line cap as the daemon: the router must never buffer more than a
/// shard would accept.
const MAX_LINE_BYTES: usize = 64 * 1024;
/// Slow-loris bound on a partial client message.
const PARTIAL_DEADLINE: Duration = Duration::from_secs(10);
/// How long the router waits for one shard reply before failing the
/// request (generous: a cold `synth` can run for tens of seconds).
const UPSTREAM_TIMEOUT: Duration = Duration::from_secs(120);

impl Router {
    /// Binds `addr` and starts routing to `config.shards`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure, or rejects an empty shard list.
    pub fn start(addr: &str, config: RouterConfig) -> io::Result<Router> {
        if config.shards.is_empty() {
            return Err(io::Error::new(ErrorKind::InvalidInput, "no shards configured"));
        }
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(RouterShared {
            ring: HashRing::new(config.shards.len(), config.vnodes),
            inflight: config.shards.iter().map(|_| AtomicUsize::new(0)).collect(),
            shards: config.shards,
            tenant_quota: config.tenant_quota,
            shed_depth: config.shed_depth.max(1),
            shutdown: AtomicBool::new(false),
            served: AtomicU64::new(0),
            forwarded: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            tenants: Mutex::new(HashMap::new()),
            placements: Mutex::new(HashMap::new()),
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("mbist-router".into())
                .spawn(move || accept_loop(&listener, &shared))
                .expect("spawn router acceptor")
        };
        Ok(Router { shared, local_addr, acceptor })
    }

    /// The bound address (resolves ephemeral ports).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Triggers the graceful-shutdown sequence: stop accepting, finish
    /// in-flight requests, tell every shard to drain.
    pub fn shutdown(&self) {
        begin_shutdown(&self.shared);
    }

    /// Blocks until the acceptor and every connection thread exit.
    #[must_use]
    pub fn join(self) -> RouterSummary {
        let _ = self.acceptor.join();
        RouterSummary {
            served: self.shared.served.load(Ordering::SeqCst),
            forwarded: self.shared.forwarded.load(Ordering::SeqCst),
            shed: self.shared.shed.load(Ordering::SeqCst),
        }
    }
}

/// Sets the shutdown flag and (once) broadcasts `shutdown` to every shard
/// on short-lived control connections.
fn begin_shutdown(shared: &RouterShared) {
    if shared.shutdown.swap(true, Ordering::SeqCst) {
        return;
    }
    for &addr in &shared.shards {
        if let Ok(mut stream) = TcpStream::connect(addr) {
            let _ = stream.set_nodelay(true);
            let _ = stream.write_all(b"{\"kind\":\"shutdown\"}\n");
            let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
            let mut sink = [0u8; 512];
            let _ = stream.read(&mut sink);
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<RouterShared>) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                connections.push(
                    thread::Builder::new()
                        .name("mbist-router-conn".into())
                        .spawn(move || handle_connection(stream, &shared))
                        .expect("spawn router connection"),
                );
                connections.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => thread::sleep(POLL),
            Err(_) => thread::sleep(POLL),
        }
    }
    for h in connections {
        let _ = h.join();
    }
}

/// One framed message: its raw bytes (forwarded verbatim) plus the framing
/// it arrived in.
enum Framed {
    /// A complete message: raw bytes and whether it was binary.
    Message { raw_len: usize, is_binary: bool },
    /// A blank line (consumed, no response owed).
    Blank(usize),
    /// Not enough bytes yet.
    Incomplete,
    /// Unrecoverable framing with a structured message.
    Fatal(String),
}

/// Frames the next client message at the start of `buf` without copying.
fn frame_message(buf: &[u8]) -> Framed {
    if buf.is_empty() {
        return Framed::Incomplete;
    }
    if buf[0] == binary::MAGIC {
        return match binary::decode_frame(buf) {
            Ok(Some((_, used))) => Framed::Message { raw_len: used, is_binary: true },
            Ok(None) => Framed::Incomplete,
            Err(m) => Framed::Fatal(format!("invalid binary frame: {m}")),
        };
    }
    match buf.iter().position(|&b| b == b'\n') {
        Some(i) => {
            if buf[..i].iter().all(|b| b.is_ascii_whitespace()) {
                Framed::Blank(i + 1)
            } else {
                Framed::Message { raw_len: i + 1, is_binary: false }
            }
        }
        None if buf.len() > MAX_LINE_BYTES => {
            Framed::Fatal(format!("request line exceeds {MAX_LINE_BYTES} bytes"))
        }
        None => Framed::Incomplete,
    }
}

/// A lazily-connected upstream socket per shard, with its reply buffer.
struct Upstream {
    stream: TcpStream,
    rbuf: Vec<u8>,
}

fn connect_upstream(addr: SocketAddr) -> io::Result<Upstream> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(UPSTREAM_TIMEOUT))?;
    stream.set_write_timeout(Some(UPSTREAM_TIMEOUT))?;
    Ok(Upstream { stream, rbuf: Vec::new() })
}

/// Forwards `raw` to the shard and reads exactly one reply message (same
/// framing rules as the client side), returning its raw bytes.
fn exchange(upstream: &mut Upstream, raw: &[u8]) -> io::Result<Vec<u8>> {
    upstream.stream.write_all(raw)?;
    loop {
        match frame_message(&upstream.rbuf) {
            Framed::Message { raw_len, .. } => {
                let reply: Vec<u8> = upstream.rbuf.drain(..raw_len).collect();
                return Ok(reply);
            }
            Framed::Blank(used) => {
                upstream.rbuf.drain(..used);
            }
            Framed::Fatal(m) => {
                return Err(io::Error::new(ErrorKind::InvalidData, m));
            }
            Framed::Incomplete => {
                let start = upstream.rbuf.len();
                upstream.rbuf.resize(start + 16 * 1024, 0);
                let n = match upstream.stream.read(&mut upstream.rbuf[start..]) {
                    Ok(n) => n,
                    Err(e) => {
                        upstream.rbuf.truncate(start);
                        if e.kind() == ErrorKind::Interrupted {
                            continue;
                        }
                        return Err(e);
                    }
                };
                upstream.rbuf.truncate(start + n);
                if n == 0 {
                    return Err(io::Error::new(
                        ErrorKind::UnexpectedEof,
                        "shard closed mid-reply",
                    ));
                }
            }
        }
    }
}

/// Decrements a tenant's in-flight count on drop.
struct TenantSlot<'a> {
    shared: &'a RouterShared,
    tenant: Option<String>,
}

impl Drop for TenantSlot<'_> {
    fn drop(&mut self) {
        if let Some(tenant) = self.tenant.take() {
            let mut tenants = self.shared.tenants.lock().expect("tenants lock");
            if let Some(n) = tenants.get_mut(&tenant) {
                *n -= 1;
                if *n == 0 {
                    tenants.remove(&tenant);
                }
            }
        }
    }
}

/// Tries to claim a quota slot for `tenant`; `None` means over quota.
fn claim_tenant<'a>(shared: &'a RouterShared, tenant: &str) -> Option<TenantSlot<'a>> {
    let Some(quota) = shared.tenant_quota else {
        return Some(TenantSlot { shared, tenant: None });
    };
    let mut tenants = shared.tenants.lock().expect("tenants lock");
    let n = tenants.entry(tenant.to_string()).or_insert(0);
    if *n >= quota {
        return None;
    }
    *n += 1;
    Some(TenantSlot { shared, tenant: Some(tenant.to_string()) })
}

/// The stateless placement key for a parsed request: the canonical trace
/// identity when it has one, a stable parameter hash otherwise. This is
/// the router's placement function without its memo — public so
/// placement-aware clients (the load generator's sharded benchmark, smart
/// SDK clients) can compute shard affinity with exactly the router's
/// logic.
#[must_use]
pub fn placement_key_of(request: &Request) -> u64 {
    match request {
        Request::Coverage { test, geometry, .. }
        | Request::Detects { test, geometry, .. } => {
            // An unresolvable test still needs a deterministic home (the
            // shard will answer the usage error): fall back to the spec
            // hash itself.
            resolve_test(test).map_or_else(
                |_| spec_hash(test, geometry),
                |t| canonical_request_key(&t, geometry),
            )
        }
        Request::Synth { classes, max_elements, .. } => {
            fnv(&[b"synth", classes.as_bytes(), &(*max_elements as u64).to_le_bytes()])
        }
        Request::SynthSearch {
            universe,
            geometry,
            target_coverage,
            budget,
            seed,
            strategy,
            max_elements,
            ..
        } => fnv(&[
            b"synth_search",
            universe.as_bytes(),
            &geometry.words().to_le_bytes(),
            &u64::from(geometry.width()).to_le_bytes(),
            &u64::from(geometry.ports()).to_le_bytes(),
            &target_coverage.to_bits().to_le_bytes(),
            &(*budget as u64).to_le_bytes(),
            &seed.to_le_bytes(),
            strategy.label().as_bytes(),
            &(*max_elements as u64).to_le_bytes(),
        ]),
        Request::Area { table } => {
            fnv(&[b"area", table.as_deref().unwrap_or("all").as_bytes()])
        }
        Request::Status | Request::Shutdown => 0,
    }
}

/// A cheap hash over the un-expanded `(test, geometry)` spec — the memo
/// key, and the placement fallback for unresolvable tests.
fn spec_hash(test: &str, geometry: &mbist_mem::MemGeometry) -> u64 {
    fnv(&[
        test.as_bytes(),
        &geometry.words().to_le_bytes(),
        &u64::from(geometry.width()).to_le_bytes(),
        &u64::from(geometry.ports()).to_le_bytes(),
    ])
}

/// [`placement_key_of`] behind the router's spec → key memo: march
/// expansion is too expensive per message.
fn placement_key(shared: &RouterShared, request: &Request) -> u64 {
    match request {
        Request::Coverage { test, geometry, .. }
        | Request::Detects { test, geometry, .. } => {
            let spec = spec_hash(test, geometry);
            if let Some(&key) = shared.placements.lock().expect("placements").get(&spec) {
                return key;
            }
            let key = placement_key_of(request);
            shared.placements.lock().expect("placements").insert(spec, key);
            key
        }
        other => placement_key_of(other),
    }
}

/// Serializes a router-local reply in the client's framing.
fn local_reply(is_binary: bool, value: &Json) -> Vec<u8> {
    if is_binary {
        binary::encode_frame(value)
    } else {
        let mut text = value.to_string();
        text.push('\n');
        text.into_bytes()
    }
}

fn handle_connection(stream: TcpStream, shared: &Arc<RouterShared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL));
    let mut client = stream;
    let mut rbuf: Vec<u8> = Vec::new();
    let mut upstreams: Vec<Option<Upstream>> = shared.shards.iter().map(|_| None).collect();
    let mut partial_since: Option<Instant> = None;
    loop {
        // Frame everything already buffered before reading more.
        match frame_message(&rbuf) {
            Framed::Blank(used) => {
                rbuf.drain(..used);
                continue;
            }
            Framed::Message { raw_len, is_binary } => {
                partial_since = None;
                let raw: Vec<u8> = rbuf.drain(..raw_len).collect();
                let keep_going =
                    route_one(&mut client, shared, &mut upstreams, &raw, is_binary);
                if !keep_going {
                    return;
                }
                continue;
            }
            Framed::Fatal(message) => {
                let value = error_response_value(None, &ServiceError::Usage(message));
                let _ = client.write_all(&local_reply(false, &value));
                return;
            }
            Framed::Incomplete => {}
        }
        if rbuf.is_empty() {
            partial_since = None;
        } else if partial_since.get_or_insert_with(Instant::now).elapsed()
            >= PARTIAL_DEADLINE
        {
            let value = error_response_value(
                None,
                &ServiceError::Usage("request line stalled; closing".into()),
            );
            let _ = client.write_all(&local_reply(false, &value));
            return;
        }
        let start = rbuf.len();
        rbuf.resize(start + 16 * 1024, 0);
        match client.read(&mut rbuf[start..]) {
            Ok(0) => {
                rbuf.truncate(start);
                if !rbuf.is_empty() {
                    let value = error_response_value(
                        None,
                        &ServiceError::Usage(
                            "connection closed mid-request (premature EOF)".into(),
                        ),
                    );
                    let _ = client.write_all(&local_reply(false, &value));
                }
                return;
            }
            Ok(n) => rbuf.truncate(start + n),
            Err(e)
                if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut =>
            {
                rbuf.truncate(start);
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => rbuf.truncate(start),
            Err(_) => {
                rbuf.truncate(start);
                return;
            }
        }
    }
}

/// Routes one framed client message. Returns `false` when the connection
/// must close.
fn route_one(
    client: &mut TcpStream,
    shared: &Arc<RouterShared>,
    upstreams: &mut [Option<Upstream>],
    raw: &[u8],
    is_binary: bool,
) -> bool {
    let reply = |client: &mut TcpStream, shared: &RouterShared, value: &Json| -> bool {
        shared.served.fetch_add(1, Ordering::Relaxed);
        client.write_all(&local_reply(is_binary, value)).is_ok()
    };

    // Decode just enough to place and admit; the raw bytes are what gets
    // forwarded.
    let value = if is_binary {
        match binary::decode_frame(raw) {
            Ok(Some((value, _))) => value,
            _ => return false, // frame_message already validated this
        }
    } else {
        let Ok(text) = std::str::from_utf8(raw) else {
            let v = error_response_value(
                None,
                &ServiceError::Usage("request line is not valid UTF-8".into()),
            );
            return reply(client, shared, &v);
        };
        match Json::parse(text.trim()) {
            Ok(value) => value,
            Err(e) => {
                let id = crate::protocol::recover_id(text.trim());
                let v = error_response_value(
                    id.as_ref(),
                    &ServiceError::Usage(format!("invalid JSON: {e}")),
                );
                return reply(client, shared, &v);
            }
        }
    };
    let envelope = match parse_request_value(&value) {
        Ok(envelope) => envelope,
        Err(e) => {
            let v = error_response_value(value.get("id"), &e);
            return reply(client, shared, &v);
        }
    };
    let id = envelope.id.clone();

    match &envelope.request {
        Request::Status => {
            let shards: Vec<Json> = shared
                .inflight
                .iter()
                .enumerate()
                .map(|(i, inflight)| {
                    Json::obj(vec![
                        ("shard", Json::num(i as f64)),
                        ("addr", Json::str(shared.shards[i].to_string())),
                        ("inflight", Json::num(inflight.load(Ordering::Relaxed) as f64)),
                    ])
                })
                .collect();
            let status = Json::obj(vec![(
                "router",
                Json::obj(vec![
                    ("shards", Json::Arr(shards)),
                    (
                        "forwarded",
                        Json::num(shared.forwarded.load(Ordering::Relaxed) as f64),
                    ),
                    ("shed", Json::num(shared.shed.load(Ordering::Relaxed) as f64)),
                ]),
            )]);
            let v = ok_response_value(id.as_ref(), "status", vec![("status", status)]);
            reply(client, shared, &v)
        }
        Request::Shutdown => {
            begin_shutdown(shared);
            let v = ok_response_value(
                id.as_ref(),
                "shutdown",
                vec![("draining", Json::Bool(true)), ("queued", Json::num(0.0))],
            );
            reply(client, shared, &v);
            false
        }
        request => {
            if shared.shutdown.load(Ordering::SeqCst) {
                let v = error_response_value(id.as_ref(), &ServiceError::ShuttingDown);
                return reply(client, shared, &v);
            }
            let shard = shared.ring.place(placement_key(shared, request));
            let backlog = shared.inflight[shard].load(Ordering::Relaxed);

            // Priority shedding: the *target shard's* depth decides, and
            // the hint is computed from that same depth (satellite: never
            // the router-wide aggregate).
            let priority = value.get("priority").and_then(Json::as_u64).unwrap_or(1);
            if backlog >= shared.shed_depth && priority < 2 {
                shared.shed.fetch_add(1, Ordering::Relaxed);
                let v = error_response_value(
                    id.as_ref(),
                    &ServiceError::Busy { retry_after_ms: retry_hint_from(0, backlog, 1) },
                );
                return reply(client, shared, &v);
            }
            let tenant = value.get("tenant").and_then(Json::as_str).unwrap_or("");
            let Some(_slot) = claim_tenant(shared, tenant) else {
                shared.shed.fetch_add(1, Ordering::Relaxed);
                let v = error_response_value(
                    id.as_ref(),
                    &ServiceError::Busy { retry_after_ms: retry_hint_from(0, backlog, 1) },
                );
                return reply(client, shared, &v);
            };

            if upstreams[shard].is_none() {
                match connect_upstream(shared.shards[shard]) {
                    Ok(up) => upstreams[shard] = Some(up),
                    Err(e) => {
                        let v = error_response_value(
                            id.as_ref(),
                            &ServiceError::Failed(format!(
                                "shard {shard} unreachable: {e}"
                            )),
                        );
                        return reply(client, shared, &v);
                    }
                }
            }
            shared.inflight[shard].fetch_add(1, Ordering::Relaxed);
            shared.forwarded.fetch_add(1, Ordering::Relaxed);
            let outcome = exchange(upstreams[shard].as_mut().expect("connected"), raw);
            shared.inflight[shard].fetch_sub(1, Ordering::Relaxed);
            match outcome {
                Ok(bytes) => {
                    shared.served.fetch_add(1, Ordering::Relaxed);
                    client.write_all(&bytes).is_ok()
                }
                Err(e) => {
                    // The upstream is desynced; drop it and reconnect on
                    // the next request to this shard.
                    upstreams[shard] = None;
                    let v = error_response_value(
                        id.as_ref(),
                        &ServiceError::Failed(format!("shard {shard} failed: {e}")),
                    );
                    reply(client, shared, &v)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_placement_is_deterministic_and_in_range() {
        let ring = HashRing::new(4, 64);
        for key in (0..10_000u64).map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15)) {
            let shard = ring.place(key);
            assert!(shard < 4);
            assert_eq!(shard, ring.place(key), "placement must be stable");
        }
    }

    #[test]
    fn ring_spreads_keys_roughly_evenly() {
        let ring = HashRing::new(4, 64);
        let mut counts = [0usize; 4];
        for i in 0..40_000u64 {
            counts[ring.place(fnv(&[&i.to_le_bytes()]))] += 1;
        }
        for (shard, &n) in counts.iter().enumerate() {
            assert!(
                (4_000..=22_000).contains(&n),
                "shard {shard} owns {n} of 40000 keys — ring badly unbalanced: {counts:?}"
            );
        }
    }

    #[test]
    fn removing_a_shard_only_moves_its_own_keys() {
        let four = HashRing::new(4, 64);
        let three = HashRing::new(3, 64);
        let mut moved_from_survivor = 0;
        let total = 20_000u64;
        for i in 0..total {
            let key = fnv(&[&i.to_le_bytes()]);
            let before = four.place(key);
            let after = three.place(key);
            if before < 3 && before != after {
                moved_from_survivor += 1;
            }
        }
        // Consistent hashing: keys on surviving shards overwhelmingly stay
        // put; only shard 3's keys redistribute.
        assert!(
            moved_from_survivor < (total as usize) / 10,
            "{moved_from_survivor} keys moved between surviving shards"
        );
    }

    #[test]
    fn frame_message_matches_daemon_framing() {
        assert!(matches!(frame_message(b""), Framed::Incomplete));
        assert!(matches!(frame_message(b"  \n"), Framed::Blank(3)));
        assert!(matches!(
            frame_message(b"{\"kind\":\"status\"}\n tail"),
            Framed::Message { raw_len: 18, is_binary: false }
        ));
        let frame = binary::encode_frame(&Json::obj(vec![("kind", Json::str("status"))]));
        match frame_message(&frame) {
            Framed::Message { raw_len, is_binary } => {
                assert_eq!(raw_len, frame.len());
                assert!(is_binary);
            }
            _ => panic!("binary frame not recognized"),
        }
        assert!(matches!(frame_message(&frame[..4]), Framed::Incomplete));
        let big = vec![b'x'; MAX_LINE_BYTES + 1];
        assert!(matches!(frame_message(&big), Framed::Fatal(_)));
    }

    #[test]
    fn placement_keys_separate_geometries_and_collapse_aliases() {
        let shared = RouterShared {
            ring: HashRing::new(2, 16),
            shards: vec!["127.0.0.1:1".parse().unwrap(), "127.0.0.1:2".parse().unwrap()],
            tenant_quota: None,
            shed_depth: 64,
            shutdown: AtomicBool::new(false),
            served: AtomicU64::new(0),
            forwarded: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            inflight: vec![AtomicUsize::new(0), AtomicUsize::new(0)],
            tenants: Mutex::new(HashMap::new()),
            placements: Mutex::new(HashMap::new()),
        };
        let geometry = mbist_mem::MemGeometry::bit_oriented(64);
        let other = mbist_mem::MemGeometry::bit_oriented(65);
        let cov = |test: &str, geometry| Request::Coverage {
            test: test.into(),
            geometry,
            max_faults: Some(256),
            jobs: Some(1),
            engine: mbist_march::SimEngine::Sliced,
        };
        let k1 = placement_key(&shared, &cov("march-c", geometry));
        let k2 = placement_key(&shared, &cov("march-c", geometry));
        assert_eq!(k1, k2, "memoized placement must be stable");
        assert_ne!(
            k1,
            placement_key(&shared, &cov("march-c", other)),
            "distinct geometries must not share a placement key"
        );
        // A detects request for the same (test, geometry) shares the
        // coverage placement: same trace, same shard, one compilation
        // fleet-wide.
        let det =
            Request::Detects { test: "march-c".into(), geometry, fault: "sa0@3".into() };
        assert_eq!(k1, placement_key(&shared, &det));
    }

    #[test]
    fn tenant_quota_claims_and_releases() {
        let shared = RouterShared {
            ring: HashRing::new(1, 8),
            shards: vec!["127.0.0.1:1".parse().unwrap()],
            tenant_quota: Some(2),
            shed_depth: 64,
            shutdown: AtomicBool::new(false),
            served: AtomicU64::new(0),
            forwarded: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            inflight: vec![AtomicUsize::new(0)],
            tenants: Mutex::new(HashMap::new()),
            placements: Mutex::new(HashMap::new()),
        };
        let a = claim_tenant(&shared, "acme").expect("first slot");
        let _b = claim_tenant(&shared, "acme").expect("second slot");
        assert!(claim_tenant(&shared, "acme").is_none(), "third must be over quota");
        assert!(claim_tenant(&shared, "other").is_some(), "quotas are per tenant");
        drop(a);
        assert!(claim_tenant(&shared, "acme").is_some(), "release frees the slot");
    }
}
