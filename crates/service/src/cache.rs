//! Byte-capped LRU cache of compiled traces and memoized result texts.
//!
//! Two payload kinds share one byte budget and one recency order:
//!
//! - **Traces** — immutable [`CompiledTrace`]s behind [`Arc`], keyed by the
//!   canonical `(test, stream, geometry)` hash
//!   ([`mbist_march::canonical_trace_key`]). In-flight requests hold their
//!   `Arc` clone, so evicting an entry never invalidates a running job.
//! - **Results** — full response texts for exact-repeat queries, keyed by a
//!   derived hash that also covers the request kind and parameters.
//!
//! Capacity 0 disables caching entirely (every lookup misses, nothing is
//! stored) — the "cold" configuration the load generator measures against.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use mbist_march::CompiledTrace;

/// What one cache slot holds.
#[derive(Debug, Clone)]
enum Payload {
    Trace(Arc<CompiledTrace>),
    Result(String),
    /// Spec-level alias: maps a cheap request-spec hash to the canonical
    /// trace key, so exact-repeat requests skip march expansion entirely.
    /// Self-healing: if the target trace was evicted, the alias lookup
    /// succeeds but the trace lookup misses and the caller recompiles.
    Alias(u64),
}

#[derive(Debug)]
struct Slot {
    payload: Payload,
    bytes: usize,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Inner {
    slots: HashMap<u64, Slot>,
    bytes: usize,
    tick: u64,
}

/// Aggregate cache occupancy, for the `status` surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Cached compiled traces.
    pub traces: usize,
    /// Memoized result texts.
    pub results: usize,
    /// Accounted payload bytes currently held.
    pub bytes: usize,
    /// The configured byte cap.
    pub capacity_bytes: usize,
}

/// The shared, thread-safe cache (one per server).
#[derive(Debug)]
pub struct TraceCache {
    inner: Mutex<Inner>,
    capacity_bytes: usize,
}

impl TraceCache {
    /// A cache holding at most `capacity_bytes` of accounted payload
    /// (0 disables caching).
    #[must_use]
    pub fn new(capacity_bytes: usize) -> Self {
        Self { inner: Mutex::new(Inner::default()), capacity_bytes }
    }

    /// Looks up a compiled trace, refreshing its recency.
    #[must_use]
    pub fn get_trace(&self, key: u64) -> Option<Arc<CompiledTrace>> {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        let slot = inner.slots.get_mut(&key)?;
        slot.last_used = tick;
        match &slot.payload {
            Payload::Trace(trace) => Some(Arc::clone(trace)),
            _ => None,
        }
    }

    /// Looks up a spec-level alias, returning the canonical trace key it
    /// points at.
    #[must_use]
    pub fn get_alias(&self, key: u64) -> Option<u64> {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        let slot = inner.slots.get_mut(&key)?;
        slot.last_used = tick;
        match slot.payload {
            Payload::Alias(target) => Some(target),
            _ => None,
        }
    }

    /// Records that request-spec hash `key` resolves to canonical trace key
    /// `target` (same budget and LRU order; accounted at slot overhead).
    pub fn insert_alias(&self, key: u64, target: u64) {
        self.insert(key, Payload::Alias(target), std::mem::size_of::<Slot>());
    }

    /// Inserts a compiled trace under `key`, evicting least-recently-used
    /// entries until the byte budget holds. Oversized single entries are
    /// simply not cached.
    pub fn insert_trace(&self, key: u64, trace: &Arc<CompiledTrace>) {
        self.insert(key, Payload::Trace(Arc::clone(trace)), trace.approx_bytes());
    }

    /// Looks up a memoized result text, refreshing its recency.
    #[must_use]
    pub fn get_result(&self, key: u64) -> Option<String> {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        let slot = inner.slots.get_mut(&key)?;
        slot.last_used = tick;
        match &slot.payload {
            Payload::Result(text) => Some(text.clone()),
            _ => None,
        }
    }

    /// Memoizes a result text under `key` (same budget and LRU order as the
    /// traces).
    pub fn insert_result(&self, key: u64, text: &str) {
        self.insert(key, Payload::Result(text.to_string()), text.len());
    }

    fn insert(&self, key: u64, payload: Payload, bytes: usize) {
        if bytes > self.capacity_bytes {
            return; // cache disabled, or the entry alone exceeds the budget
        }
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner.slots.remove(&key) {
            inner.bytes -= old.bytes;
        }
        while inner.bytes + bytes > self.capacity_bytes {
            let victim = inner
                .slots
                .iter()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(k, _)| *k)
                .expect("bytes > 0 implies a slot exists");
            let evicted = inner.slots.remove(&victim).expect("victim exists");
            inner.bytes -= evicted.bytes;
        }
        inner.bytes += bytes;
        inner.slots.insert(key, Slot { payload, bytes, last_used: tick });
    }

    /// Occupancy snapshot.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("cache lock");
        let (mut traces, mut results) = (0, 0);
        for s in inner.slots.values() {
            match s.payload {
                Payload::Trace(_) => traces += 1,
                Payload::Result(_) => results += 1,
                Payload::Alias(_) => {}
            }
        }
        CacheStats {
            traces,
            results,
            bytes: inner.bytes,
            capacity_bytes: self.capacity_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbist_march::{expand, library};
    use mbist_mem::MemGeometry;

    fn trace(words: u64) -> Arc<CompiledTrace> {
        let g = MemGeometry::bit_oriented(words);
        Arc::new(CompiledTrace::from_steps(g, &expand(&library::march_c(), &g)))
    }

    #[test]
    fn hit_returns_the_same_trace() {
        let cache = TraceCache::new(1 << 20);
        let t = trace(8);
        cache.insert_trace(1, &t);
        let hit = cache.get_trace(1).expect("hit");
        assert!(Arc::ptr_eq(&hit, &t));
        assert!(cache.get_trace(2).is_none());
    }

    #[test]
    fn byte_cap_evicts_least_recently_used() {
        let t = trace(8);
        let unit = t.approx_bytes();
        let cache = TraceCache::new(unit * 2 + unit / 2); // room for two
        cache.insert_trace(1, &t);
        cache.insert_trace(2, &trace(8));
        assert_eq!(cache.stats().traces, 2);
        let _ = cache.get_trace(1); // refresh 1 → victim is 2
        cache.insert_trace(3, &trace(8));
        assert!(cache.get_trace(1).is_some(), "recently used survives");
        assert!(cache.get_trace(2).is_none(), "LRU entry evicted");
        assert!(cache.get_trace(3).is_some());
        assert!(cache.stats().bytes <= cache.stats().capacity_bytes);
    }

    #[test]
    fn capacity_zero_disables_caching() {
        let cache = TraceCache::new(0);
        cache.insert_trace(1, &trace(8));
        cache.insert_result(2, "memo");
        assert!(cache.get_trace(1).is_none());
        assert!(cache.get_result(2).is_none());
        assert_eq!(cache.stats().bytes, 0);
    }

    #[test]
    fn results_share_the_budget_and_reinsert_replaces() {
        let cache = TraceCache::new(64);
        cache.insert_result(7, "0123456789");
        assert_eq!(cache.get_result(7).as_deref(), Some("0123456789"));
        cache.insert_result(7, "replaced");
        assert_eq!(cache.get_result(7).as_deref(), Some("replaced"));
        assert_eq!(cache.stats().results, 1);
        assert_eq!(cache.stats().bytes, "replaced".len());
        // An entry larger than the whole budget is skipped, not forced in.
        cache.insert_result(8, &"x".repeat(100));
        assert!(cache.get_result(8).is_none());
    }

    #[test]
    fn aliases_resolve_but_are_neither_traces_nor_results() {
        let cache = TraceCache::new(1 << 20);
        cache.insert_alias(9, 1234);
        assert_eq!(cache.get_alias(9), Some(1234));
        assert!(cache.get_trace(9).is_none());
        assert!(cache.get_result(9).is_none());
        assert_eq!(cache.stats().traces, 0);
        assert_eq!(cache.stats().results, 0);
        assert!(cache.stats().bytes > 0, "aliases are budget-accounted");
        assert_eq!(cache.get_alias(8), None);
    }

    #[test]
    fn kind_mismatch_on_a_key_is_a_miss_not_a_panic() {
        let cache = TraceCache::new(1 << 20);
        cache.insert_result(1, "text");
        assert!(cache.get_trace(1).is_none());
        cache.insert_trace(2, &trace(8));
        assert!(cache.get_result(2).is_none());
    }
}
