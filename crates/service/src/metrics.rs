//! The daemon's observability surface.
//!
//! Per-request-kind counters and latency histograms, cache hit/miss
//! counters, and backpressure rejections — everything the `status` request
//! serves. Latencies are measured arrival→reply (queue wait included: the
//! figure a client experiences) and recorded into power-of-two microsecond
//! buckets, from which p50/p95/p99 are reported as bucket upper bounds.

use std::sync::Mutex;
use std::time::Instant;

use mbist_march::{RoutingBreakdown, SimEngine};
use mbist_mem::FaultClass;

use crate::cache::CacheStats;
use crate::json::Json;

/// Request kinds with dedicated counter/histogram rows, in wire order.
pub const KINDS: [&str; 7] =
    ["coverage", "detects", "synth", "synth_search", "area", "status", "shutdown"];

/// Simulation engines with dedicated job counters, in wire order (index =
/// [`engine_index`] of the corresponding [`SimEngine`]).
pub const ENGINES: [&str; 3] = ["full", "sliced", "packed"];

/// The `ENGINES` row an engine's jobs are counted under.
fn engine_index(engine: SimEngine) -> usize {
    match engine {
        SimEngine::Full => 0,
        SimEngine::Sliced => 1,
        SimEngine::Packed => 2,
    }
}

/// Power-of-two microsecond buckets: bucket `i` covers `[2^i, 2^(i+1))` µs,
/// the last bucket is open-ended (≈ 34 s and beyond).
const BUCKETS: usize = 36;

/// A log₂-bucketed latency histogram.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum_us: u64,
    max_us: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self { buckets: [0; BUCKETS], count: 0, sum_us: 0, max_us: 0 }
    }
}

impl Histogram {
    /// Records one latency observation.
    pub fn record(&mut self, micros: u64) {
        let bucket = (63 - micros.max(1).leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum_us += micros;
        self.max_us = self.max_us.max(micros);
    }

    /// Observations recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The latency quantile `q` (0..=1) as the upper bound of the first
    /// bucket whose cumulative count reaches it, in microseconds. 0 when
    /// empty. The estimate is exact to within a factor of two — plenty to
    /// read p50/p95/p99 trends from.
    #[must_use]
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return 1u64 << (i + 1).min(63);
            }
        }
        self.max_us
    }

    /// Mean latency in microseconds (0 when empty).
    #[must_use]
    pub fn mean_us(&self) -> u64 {
        self.sum_us.checked_div(self.count).unwrap_or(0)
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("count", Json::num(self.count as f64)),
            ("mean_us", Json::num(self.mean_us() as f64)),
            ("p50_us", Json::num(self.quantile_us(0.50) as f64)),
            ("p95_us", Json::num(self.quantile_us(0.95) as f64)),
            ("p99_us", Json::num(self.quantile_us(0.99) as f64)),
            ("max_us", Json::num(self.max_us as f64)),
        ])
    }
}

#[derive(Debug, Clone, Default)]
struct KindStats {
    requests: u64,
    errors: u64,
    latency: Histogram,
    /// Pure execution time (dequeue→result, no queue wait) — the drain-rate
    /// basis of the load-derived `busy.retry_after_ms` hint.
    exec: Histogram,
}

/// Worker-ledger counters: every dispatched job must end up answered
/// (`dispatched == answered` once idle — the exactly-once invariant), and
/// `recovered` counts the panicked jobs saved by the single re-dispatch.
#[derive(Debug, Default)]
struct JobCounters {
    dispatched: u64,
    answered: u64,
    recovered: u64,
}

/// Chaos-injection counters (always present; all zero when chaos is off).
#[derive(Debug, Default)]
struct ChaosCounters {
    panics: u64,
    delays: u64,
    drops: u64,
}

/// Search-oracle throughput counters, accumulated over every `synth_search`
/// run that actually searched (memo hits answer from the result cache and
/// record nothing). `evaluations` counts candidates that really simulated;
/// answers served by the fitness memo are in `memo_hits`, never both.
#[derive(Debug, Default)]
struct SearchCounters {
    runs: u64,
    evaluations: u64,
    memo_hits: u64,
    compile_ns: u64,
    simulate_ns: u64,
}

/// Per-class `[packed, sliced, full]` routing counters, rows in
/// [`FaultClass::ALL`] order.
#[derive(Debug)]
struct RoutingCounters([[u64; 3]; FaultClass::ALL.len()]);

impl Default for RoutingCounters {
    fn default() -> Self {
        Self([[0; 3]; FaultClass::ALL.len()])
    }
}

#[derive(Debug, Default)]
struct Inner {
    per_kind: [KindStats; KINDS.len()],
    per_engine: [u64; ENGINES.len()],
    routing: RoutingCounters,
    rejected_busy: u64,
    trace_hits: u64,
    trace_misses: u64,
    result_hits: u64,
    result_misses: u64,
    jobs: JobCounters,
    chaos: ChaosCounters,
    timeouts: u64,
    search: SearchCounters,
}

/// Shared metrics registry (one per server).
#[derive(Debug)]
pub struct Metrics {
    started: Instant,
    inner: Mutex<Inner>,
}

impl Metrics {
    /// A fresh registry; uptime counts from here.
    #[must_use]
    pub fn new() -> Self {
        Self { started: Instant::now(), inner: Mutex::new(Inner::default()) }
    }

    fn kind_index(kind: &str) -> usize {
        KINDS.iter().position(|k| *k == kind).expect("known request kind")
    }

    /// Records a completed request of `kind`: outcome plus arrival→reply
    /// latency.
    pub fn record_request(&self, kind: &str, ok: bool, latency_us: u64) {
        let mut inner = self.inner.lock().expect("metrics lock");
        let row = &mut inner.per_kind[Self::kind_index(kind)];
        row.requests += 1;
        if !ok {
            row.errors += 1;
        }
        row.latency.record(latency_us);
    }

    /// Records a backpressure rejection (the request was never queued).
    pub fn record_rejected(&self) {
        self.inner.lock().expect("metrics lock").rejected_busy += 1;
    }

    /// Records pure execution time for `kind` (dequeue→result, excluding
    /// queue wait) — the drain-rate signal behind the retry hint.
    pub fn record_exec(&self, kind: &str, exec_us: u64) {
        let mut inner = self.inner.lock().expect("metrics lock");
        inner.per_kind[Self::kind_index(kind)].exec.record(exec_us);
    }

    /// The p50 *execution* time of `kind` in microseconds (0 when
    /// unobserved).
    #[must_use]
    pub fn exec_p50_us(&self, kind: &str) -> u64 {
        let inner = self.inner.lock().expect("metrics lock");
        inner.per_kind[Self::kind_index(kind)].exec.quantile_us(0.5)
    }

    /// Records one job handed to a worker (re-dispatches count again — the
    /// ledger tracks dispatch attempts).
    pub fn record_job_dispatched(&self) {
        self.inner.lock().expect("metrics lock").jobs.dispatched += 1;
    }

    /// Records one job whose terminal outcome was sent to its client.
    pub fn record_job_answered(&self) {
        self.inner.lock().expect("metrics lock").jobs.answered += 1;
    }

    /// Records a job that survived a worker panic via the single
    /// re-dispatch and still answered.
    pub fn record_job_recovered(&self) {
        self.inner.lock().expect("metrics lock").jobs.recovered += 1;
    }

    /// Records a request that ended in a deadline timeout.
    pub fn record_timeout(&self) {
        self.inner.lock().expect("metrics lock").timeouts += 1;
    }

    /// Records one injected chaos event (`"panic"`, `"delay"` or
    /// `"drop"`).
    pub fn record_chaos(&self, kind: &str) {
        let mut inner = self.inner.lock().expect("metrics lock");
        match kind {
            "panic" => inner.chaos.panics += 1,
            "delay" => inner.chaos.delays += 1,
            "drop" => inner.chaos.drops += 1,
            other => unreachable!("unknown chaos event `{other}`"),
        }
    }

    /// Jobs recovered after a worker panic (for shutdown summaries).
    #[must_use]
    pub fn recovered_jobs(&self) -> u64 {
        self.inner.lock().expect("metrics lock").jobs.recovered
    }

    /// Records one simulation job executed with `engine` (coverage and
    /// synth requests that actually ran — memo hits don't simulate and are
    /// not counted).
    pub fn record_engine(&self, engine: SimEngine) {
        let mut inner = self.inner.lock().expect("metrics lock");
        inner.per_engine[engine_index(engine)] += 1;
    }

    /// Records the per-class engine routing of one coverage run that
    /// actually simulated (memo hits route nothing and are not counted).
    pub fn record_routing(&self, breakdown: &RoutingBreakdown) {
        let mut inner = self.inner.lock().expect("metrics lock");
        for row in &breakdown.rows {
            let i = FaultClass::ALL
                .iter()
                .position(|c| *c == row.class)
                .expect("known fault class");
            inner.routing.0[i][0] += row.packed as u64;
            inner.routing.0[i][1] += row.sliced as u64;
            inner.routing.0[i][2] += row.full as u64;
        }
    }

    /// Records one `synth_search` run that actually searched: candidates
    /// simulated, fitness-memo hits, and the oracle's compile/simulate
    /// wall-clock split. Cancelled (partial) runs record too — the work
    /// happened; only the *result* is kept out of the memo.
    pub fn record_search(
        &self,
        evaluations: u64,
        memo_hits: u64,
        compile_ns: u64,
        simulate_ns: u64,
    ) {
        let mut inner = self.inner.lock().expect("metrics lock");
        inner.search.runs += 1;
        inner.search.evaluations += evaluations;
        inner.search.memo_hits += memo_hits;
        inner.search.compile_ns += compile_ns;
        inner.search.simulate_ns += simulate_ns;
    }

    /// Records a trace-cache lookup outcome.
    pub fn record_trace_lookup(&self, hit: bool) {
        let mut inner = self.inner.lock().expect("metrics lock");
        if hit {
            inner.trace_hits += 1;
        } else {
            inner.trace_misses += 1;
        }
    }

    /// Records a result-memo lookup outcome.
    pub fn record_result_lookup(&self, hit: bool) {
        let mut inner = self.inner.lock().expect("metrics lock");
        if hit {
            inner.result_hits += 1;
        } else {
            inner.result_misses += 1;
        }
    }

    /// Total requests served (all kinds, including errors).
    #[must_use]
    pub fn total_requests(&self) -> u64 {
        let inner = self.inner.lock().expect("metrics lock");
        inner.per_kind.iter().map(|k| k.requests).sum()
    }

    /// The p50 latency of `kind` in microseconds (0 when unobserved) — the
    /// basis of the backpressure retry hint.
    #[must_use]
    pub fn p50_us(&self, kind: &str) -> u64 {
        let inner = self.inner.lock().expect("metrics lock");
        inner.per_kind[Self::kind_index(kind)].latency.quantile_us(0.5)
    }

    /// The full snapshot served by `status` (and flushed on shutdown).
    #[must_use]
    pub fn snapshot(
        &self,
        queue_depth: usize,
        queue_capacity: usize,
        cache: CacheStats,
    ) -> Json {
        let inner = self.inner.lock().expect("metrics lock");
        let ratio = |hits: u64, misses: u64| {
            let total = hits + misses;
            if total == 0 {
                Json::Null
            } else {
                Json::Num(hits as f64 / total as f64)
            }
        };
        let kinds = KINDS
            .iter()
            .zip(inner.per_kind.iter())
            .map(|(name, row)| {
                (
                    name.to_string(),
                    Json::obj(vec![
                        ("requests", Json::num(row.requests as f64)),
                        ("errors", Json::num(row.errors as f64)),
                        ("latency", row.latency.to_json()),
                        ("exec", row.exec.to_json()),
                    ]),
                )
            })
            .collect();
        Json::obj(vec![
            ("uptime_ms", Json::num(self.started.elapsed().as_millis() as f64)),
            (
                "queue",
                Json::obj(vec![
                    ("depth", Json::num(queue_depth as f64)),
                    ("capacity", Json::num(queue_capacity as f64)),
                    ("rejected_busy", Json::num(inner.rejected_busy as f64)),
                ]),
            ),
            (
                "cache",
                Json::obj(vec![
                    ("traces", Json::num(cache.traces as f64)),
                    ("results", Json::num(cache.results as f64)),
                    ("bytes", Json::num(cache.bytes as f64)),
                    ("capacity_bytes", Json::num(cache.capacity_bytes as f64)),
                    ("trace_hits", Json::num(inner.trace_hits as f64)),
                    ("trace_misses", Json::num(inner.trace_misses as f64)),
                    ("trace_hit_ratio", ratio(inner.trace_hits, inner.trace_misses)),
                    ("result_hits", Json::num(inner.result_hits as f64)),
                    ("result_misses", Json::num(inner.result_misses as f64)),
                    ("result_hit_ratio", ratio(inner.result_hits, inner.result_misses)),
                ]),
            ),
            (
                "jobs",
                Json::obj(vec![
                    ("dispatched", Json::num(inner.jobs.dispatched as f64)),
                    ("answered", Json::num(inner.jobs.answered as f64)),
                    ("recovered_jobs", Json::num(inner.jobs.recovered as f64)),
                    ("timeouts", Json::num(inner.timeouts as f64)),
                ]),
            ),
            (
                "chaos",
                Json::obj(vec![
                    ("injected_panics", Json::num(inner.chaos.panics as f64)),
                    ("injected_delays", Json::num(inner.chaos.delays as f64)),
                    ("injected_drops", Json::num(inner.chaos.drops as f64)),
                ]),
            ),
            ("search", search_json(&inner.search)),
            ("kinds", Json::Obj(kinds)),
            (
                "engines",
                Json::Obj(
                    ENGINES
                        .iter()
                        .zip(inner.per_engine.iter())
                        .map(|(name, &jobs)| (name.to_string(), Json::num(jobs as f64)))
                        .collect(),
                ),
            ),
            ("routing", routing_json(&inner.routing)),
        ])
    }
}

/// The `status` view of the search-oracle counters. The derived figures
/// (`oracle_ns_per_candidate`, `memo_hit_ratio`) are `null` until a search
/// actually ran — never fabricated. `oracle_ns_per_candidate` divides only
/// the oracle's own compile+simulate time, so it measures the batched hot
/// path, not queue wait or strategy orchestration.
fn search_json(search: &SearchCounters) -> Json {
    let lookups = search.evaluations + search.memo_hits;
    Json::obj(vec![
        ("runs", Json::num(search.runs as f64)),
        ("candidates_evaluated", Json::num(search.evaluations as f64)),
        ("memo_hits", Json::num(search.memo_hits as f64)),
        ("compile_ns", Json::num(search.compile_ns as f64)),
        ("simulate_ns", Json::num(search.simulate_ns as f64)),
        (
            "oracle_ns_per_candidate",
            if search.evaluations == 0 {
                Json::Null
            } else {
                Json::Num(
                    (search.compile_ns + search.simulate_ns) as f64
                        / search.evaluations as f64,
                )
            },
        ),
        (
            "memo_hit_ratio",
            if lookups == 0 {
                Json::Null
            } else {
                Json::Num(search.memo_hits as f64 / lookups as f64)
            },
        ),
    ])
}

/// The `status` view of the routing counters: per-class
/// `{packed, sliced, full}` plus the batchable-faults ratio. The ratio is
/// `null` until a coverage run records routing — never fabricated.
fn routing_json(routing: &RoutingCounters) -> Json {
    let total: u64 = routing.0.iter().flatten().sum();
    let batchable: u64 = routing.0.iter().map(|row| row[0]).sum();
    let classes = FaultClass::ALL
        .iter()
        .zip(routing.0.iter())
        .map(|(class, row)| {
            (
                class.label().to_string(),
                Json::obj(vec![
                    ("packed", Json::num(row[0] as f64)),
                    ("sliced", Json::num(row[1] as f64)),
                    ("full", Json::num(row[2] as f64)),
                ]),
            )
        })
        .collect();
    Json::obj(vec![
        ("total", Json::num(total as f64)),
        ("batchable", Json::num(batchable as f64)),
        (
            "batchable_ratio",
            if total == 0 {
                Json::Null
            } else {
                Json::Num(batchable as f64 / total as f64)
            },
        ),
        ("classes", Json::Obj(classes)),
    ])
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_are_ordered_and_bracketing() {
        let mut h = Histogram::default();
        for us in [1u64, 2, 3, 10, 100, 1000, 10_000] {
            h.record(us);
        }
        let (p50, p95, p99) =
            (h.quantile_us(0.5), h.quantile_us(0.95), h.quantile_us(0.99));
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert!(p50 >= 10, "median observation is 10µs, upper bound ≥ 10");
        assert_eq!(h.count(), 7);
        assert!(h.mean_us() > 0);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::default();
        assert_eq!(h.quantile_us(0.5), 0);
        assert_eq!(h.mean_us(), 0);
    }

    #[test]
    fn huge_latencies_saturate_the_last_bucket() {
        let mut h = Histogram::default();
        h.record(u64::MAX);
        assert!(h.quantile_us(0.5) > 0);
    }

    #[test]
    fn snapshot_reports_counters_and_ratios() {
        let m = Metrics::new();
        m.record_request("coverage", true, 1500);
        m.record_request("coverage", false, 300);
        m.record_request("status", true, 5);
        m.record_rejected();
        m.record_trace_lookup(true);
        m.record_trace_lookup(false);
        m.record_result_lookup(false);
        m.record_engine(SimEngine::Sliced);
        m.record_engine(SimEngine::Packed);
        m.record_engine(SimEngine::Packed);
        let cache = CacheStats { traces: 1, results: 0, bytes: 1024, capacity_bytes: 4096 };
        let snap = m.snapshot(3, 64, cache);
        let queue = snap.get("queue").unwrap();
        assert_eq!(queue.get("depth").unwrap().as_u64(), Some(3));
        assert_eq!(queue.get("rejected_busy").unwrap().as_u64(), Some(1));
        let cache = snap.get("cache").unwrap();
        assert_eq!(cache.get("trace_hits").unwrap().as_u64(), Some(1));
        assert_eq!(cache.get("trace_hit_ratio").unwrap().as_f64(), Some(0.5));
        let cov = snap.get("kinds").unwrap().get("coverage").unwrap();
        assert_eq!(cov.get("requests").unwrap().as_u64(), Some(2));
        assert_eq!(cov.get("errors").unwrap().as_u64(), Some(1));
        assert!(cov.get("latency").unwrap().get("p95_us").unwrap().as_u64().unwrap() > 0);
        assert_eq!(m.total_requests(), 3);
        let engines = snap.get("engines").unwrap();
        assert_eq!(engines.get("full").unwrap().as_u64(), Some(0));
        assert_eq!(engines.get("sliced").unwrap().as_u64(), Some(1));
        assert_eq!(engines.get("packed").unwrap().as_u64(), Some(2));
        // No coverage run recorded routing yet: ratio is null, not 0/0.
        let routing = snap.get("routing").unwrap();
        assert_eq!(routing.get("total").unwrap().as_u64(), Some(0));
        assert!(matches!(routing.get("batchable_ratio"), Some(Json::Null)));
    }

    #[test]
    fn job_ledger_and_chaos_counters_surface_in_the_snapshot() {
        let m = Metrics::new();
        m.record_job_dispatched();
        m.record_job_dispatched();
        m.record_job_answered();
        m.record_job_recovered();
        m.record_timeout();
        m.record_chaos("panic");
        m.record_chaos("panic");
        m.record_chaos("delay");
        m.record_chaos("drop");
        m.record_exec("coverage", 2000);
        let cache = CacheStats { traces: 0, results: 0, bytes: 0, capacity_bytes: 0 };
        let snap = m.snapshot(0, 64, cache);
        let jobs = snap.get("jobs").unwrap();
        assert_eq!(jobs.get("dispatched").unwrap().as_u64(), Some(2));
        assert_eq!(jobs.get("answered").unwrap().as_u64(), Some(1));
        assert_eq!(jobs.get("recovered_jobs").unwrap().as_u64(), Some(1));
        assert_eq!(jobs.get("timeouts").unwrap().as_u64(), Some(1));
        let chaos = snap.get("chaos").unwrap();
        assert_eq!(chaos.get("injected_panics").unwrap().as_u64(), Some(2));
        assert_eq!(chaos.get("injected_delays").unwrap().as_u64(), Some(1));
        assert_eq!(chaos.get("injected_drops").unwrap().as_u64(), Some(1));
        assert_eq!(m.recovered_jobs(), 1);
        assert!(m.exec_p50_us("coverage") >= 2000);
        assert_eq!(m.exec_p50_us("synth"), 0, "unobserved kinds report 0");
        let cov = snap.get("kinds").unwrap().get("coverage").unwrap();
        assert_eq!(cov.get("exec").unwrap().get("count").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn search_counters_accumulate_and_derive_honestly() {
        let m = Metrics::new();
        let cache = CacheStats { traces: 0, results: 0, bytes: 0, capacity_bytes: 0 };
        // Before any search ran the derived figures are null, not zero.
        let snap = m.snapshot(0, 64, cache);
        let search = snap.get("search").unwrap();
        assert_eq!(search.get("runs").unwrap().as_u64(), Some(0));
        assert!(matches!(search.get("oracle_ns_per_candidate"), Some(Json::Null)));
        assert!(matches!(search.get("memo_hit_ratio"), Some(Json::Null)));

        m.record_search(100, 20, 1_000_000, 500_000);
        m.record_search(50, 40, 500_000, 250_000);
        let snap = m.snapshot(0, 64, cache);
        let search = snap.get("search").unwrap();
        assert_eq!(search.get("runs").unwrap().as_u64(), Some(2));
        assert_eq!(search.get("candidates_evaluated").unwrap().as_u64(), Some(150));
        assert_eq!(search.get("memo_hits").unwrap().as_u64(), Some(60));
        assert_eq!(search.get("compile_ns").unwrap().as_u64(), Some(1_500_000));
        assert_eq!(search.get("simulate_ns").unwrap().as_u64(), Some(750_000));
        let per = search.get("oracle_ns_per_candidate").unwrap().as_f64().unwrap();
        assert!((per - 2_250_000.0 / 150.0).abs() < 1e-9);
        let ratio = search.get("memo_hit_ratio").unwrap().as_f64().unwrap();
        assert!((ratio - 60.0 / 210.0).abs() < 1e-12);
    }

    #[test]
    fn snapshot_accumulates_recorded_routing() {
        use mbist_march::RoutingRow;
        let m = Metrics::new();
        let breakdown = RoutingBreakdown {
            engine: SimEngine::Packed,
            rows: vec![
                RoutingRow { class: FaultClass::StuckAt, packed: 32, sliced: 0, full: 0 },
                RoutingRow {
                    class: FaultClass::AddressDecoder,
                    packed: 0,
                    sliced: 16,
                    full: 0,
                },
            ],
        };
        m.record_routing(&breakdown);
        m.record_routing(&breakdown);
        let cache = CacheStats { traces: 0, results: 0, bytes: 0, capacity_bytes: 0 };
        let snap = m.snapshot(0, 64, cache);
        let routing = snap.get("routing").unwrap();
        assert_eq!(routing.get("total").unwrap().as_u64(), Some(96));
        assert_eq!(routing.get("batchable").unwrap().as_u64(), Some(64));
        let ratio = routing.get("batchable_ratio").unwrap().as_f64().unwrap();
        assert!((ratio - 64.0 / 96.0).abs() < 1e-12);
        let saf = routing.get("classes").unwrap().get("SAF").unwrap();
        assert_eq!(saf.get("packed").unwrap().as_u64(), Some(64));
        let af = routing.get("classes").unwrap().get("AF").unwrap();
        assert_eq!(af.get("sliced").unwrap().as_u64(), Some(32));
        assert_eq!(af.get("packed").unwrap().as_u64(), Some(0));
    }
}
