//! The line-delimited JSON request/response protocol.
//!
//! Each request is one JSON object on one line; the server answers with
//! exactly one JSON object line per request, in order. Request kinds:
//!
//! | kind       | fields                                                        |
//! |------------|---------------------------------------------------------------|
//! | `coverage` | `test`, `words` [, `width`, `ports`, `max_faults`, `jobs`, `engine`] |
//! | `detects`  | `test`, `words`, `fault` [, `width`, `ports`]                 |
//! | `synth`    | `classes` [, `max_elements`, `jobs`, `engine`]                |
//! | `synth_search` | `universe` [, `words`, `width`, `ports`, `target_coverage`, `budget`, `seed`, `strategy`, `max_elements`, `jobs`, `engine`] |
//! | `area`     | [`table`]                                                     |
//! | `status`   | —                                                             |
//! | `shutdown` | —                                                             |
//!
//! The optional `engine` field selects the fault-simulation engine:
//! `"full"`, `"sliced"` (default) or `"packed"` — responses are
//! byte-identical for every choice, only latency differs.
//!
//! An optional `id` member is echoed back verbatim in the response so
//! clients may correlate — on errors too, whenever the id was parseable
//! from the offending line. An optional `deadline_ms` member caps how long
//! the server may spend on the request (absent → the server default, `0` →
//! no deadline); a blown deadline cancels the simulation cooperatively and
//! answers with a `timeout` error.
//!
//! Success responses carry `"ok":true` plus kind-specific payload;
//! failures carry `"ok":false` and an `error` object with a `class`
//! (`usage`, `failed`, `busy`, `shutdown`, `timeout`, `internal`) and
//! `message`; `busy` adds `retry_after_ms` (explicit backpressure — the
//! server never blocks a client on a full queue), `timeout` adds
//! `elapsed_ms` (plus `partial` — the best-so-far test — when a cancelled
//! `synth_search` had one), and `internal` adds the `job_id` whose worker died twice
//! (a job is re-dispatched once after a worker panic, then failed — never
//! dropped, never double-answered).

use mbist_march::SimEngine;
use mbist_mem::MemGeometry;

use crate::json::Json;

/// A decoded request body.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Per-fault-class coverage of a march test — the CLI's `coverage`.
    Coverage {
        /// Library name or inline march notation.
        test: String,
        /// Memory organization under evaluation.
        geometry: MemGeometry,
        /// Per-class stride-sampling cap (`None` = uncapped).
        max_faults: Option<usize>,
        /// Fan-out threads *within* this request (`None` = host auto).
        /// Defaults to 1: the worker pool is the concurrency source.
        jobs: Option<usize>,
        /// Fault-simulation engine.
        engine: SimEngine,
    },
    /// Single-fault detection against the cached trace.
    Detects {
        /// Library name or inline march notation.
        test: String,
        /// Memory organization under evaluation.
        geometry: MemGeometry,
        /// Fault spec, `KIND@ADDR[.BIT]` (the CLI `--fault` syntax).
        fault: String,
    },
    /// March-test synthesis for a fault mix — the CLI's `synth`.
    Synth {
        /// Comma-separated class names (`saf,tf,af,cfin,cfid,cfst`).
        classes: String,
        /// Upper bound on march elements.
        max_elements: usize,
        /// Fan-out threads within the request (see [`Request::Coverage`]).
        jobs: Option<usize>,
        /// Fault-simulation engine.
        engine: SimEngine,
    },
    /// Search-based march-test synthesis — the CLI's `synth-search`.
    SynthSearch {
        /// Comma-separated class names (the CLI's `--universe` list).
        universe: String,
        /// Memory organization the fitness oracle simulates on
        /// (`words` defaults to 256, bit-oriented single-port).
        geometry: MemGeometry,
        /// Required coverage, in percent (0–100; default 100).
        target_coverage: f64,
        /// Candidate-evaluation budget.
        budget: usize,
        /// Search seed — same seed, same response bytes.
        seed: u64,
        /// Search strategy (`evolve` or `compose`).
        strategy: mbist_search::Strategy,
        /// Upper bound on march elements per candidate.
        max_elements: usize,
        /// Fan-out threads within the request (see [`Request::Coverage`]).
        jobs: Option<usize>,
        /// Fault-simulation engine scoring candidates (packed by default —
        /// this kind exists to exercise the packed oracle).
        engine: SimEngine,
    },
    /// The paper's area tables — the CLI's `area`.
    Area {
        /// `"1"`, `"2"`, `"3"`, or `None` for all three.
        table: Option<String>,
    },
    /// Metrics snapshot (served inline, never queued — it works even while
    /// the job queue is saturated).
    Status,
    /// Graceful shutdown: stop accepting, drain the queue, flush metrics.
    Shutdown,
}

impl Request {
    /// The request-kind label used in metrics and responses.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Coverage { .. } => "coverage",
            Request::Detects { .. } => "detects",
            Request::Synth { .. } => "synth",
            Request::SynthSearch { .. } => "synth_search",
            Request::Area { .. } => "area",
            Request::Status => "status",
            Request::Shutdown => "shutdown",
        }
    }
}

/// A request plus its correlation id and deadline.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Echoed back verbatim in the response, if the client sent one.
    pub id: Option<Json>,
    /// Per-request deadline in milliseconds: `None` = absent (the server
    /// default applies), `Some(0)` = explicitly unlimited.
    pub deadline_ms: Option<u64>,
    /// The decoded request.
    pub request: Request,
}

/// Why a request failed, mapped onto the wire `error.class`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// Malformed request (parse error, unknown kind/field value). Mirrors
    /// the CLI's usage class.
    Usage(String),
    /// Well-formed but could not be carried out.
    Failed(String),
    /// The job queue is full; retry after the embedded hint (ms).
    Busy {
        /// Suggested client back-off in milliseconds.
        retry_after_ms: u64,
    },
    /// The server is draining and no longer accepts work.
    ShuttingDown,
    /// The request's deadline elapsed before the result was ready; the
    /// simulation was cancelled cooperatively.
    Timeout {
        /// Milliseconds actually spent before the cancellation took hold.
        elapsed_ms: u64,
        /// Best-so-far answer a cancelled search could still report
        /// (`synth_search` only): the march test found before the deadline
        /// hit, as notation text. Never a complete result — partial
        /// answers are not memoized and not `ok`.
        partial: Option<String>,
    },
    /// The job's worker panicked twice (once on dispatch, once on the
    /// single re-dispatch); the request is failed, not dropped.
    Internal {
        /// Server-side job id, for correlating with daemon logs.
        job_id: u64,
    },
}

impl ServiceError {
    /// The wire `error.class` label.
    #[must_use]
    pub fn class(&self) -> &'static str {
        match self {
            ServiceError::Usage(_) => "usage",
            ServiceError::Failed(_) => "failed",
            ServiceError::Busy { .. } => "busy",
            ServiceError::ShuttingDown => "shutdown",
            ServiceError::Timeout { .. } => "timeout",
            ServiceError::Internal { .. } => "internal",
        }
    }
}

fn usage(message: impl Into<String>) -> ServiceError {
    ServiceError::Usage(message.into())
}

/// Decodes one request line.
///
/// # Errors
///
/// Returns [`ServiceError::Usage`] on malformed JSON, an unknown `kind`,
/// missing required fields or out-of-range values.
pub fn parse_request(line: &str) -> Result<Envelope, ServiceError> {
    let value = Json::parse(line).map_err(|e| usage(format!("invalid JSON: {e}")))?;
    parse_request_value(&value)
}

/// Decodes one request from an already-parsed value tree — the entry point
/// the binary framing uses (its frames decode straight to [`Json`] without
/// any text parse).
///
/// # Errors
///
/// Same contract as [`parse_request`], minus the JSON syntax errors.
pub fn parse_request_value(value: &Json) -> Result<Envelope, ServiceError> {
    if !matches!(value, Json::Obj(_)) {
        return Err(usage("request must be a JSON object"));
    }
    let id = value.get("id").cloned();
    let deadline_ms = opt_u64(value, "deadline_ms")?;
    let kind = value
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| usage("missing string field `kind`"))?;
    let request = match kind {
        "coverage" => Request::Coverage {
            test: required_str(value, "test")?,
            geometry: geometry_from(value)?,
            max_faults: match opt_u64(value, "max_faults")? {
                None => Some(256),
                Some(0) => None,
                Some(n) => Some(usize::try_from(n).expect("u64 fits usize")),
            },
            jobs: jobs_from(value)?,
            engine: engine_from(value)?,
        },
        "detects" => Request::Detects {
            test: required_str(value, "test")?,
            geometry: geometry_from(value)?,
            fault: required_str(value, "fault")?,
        },
        "synth" => Request::Synth {
            classes: required_str(value, "classes")?,
            max_elements: usize::try_from(opt_u64(value, "max_elements")?.unwrap_or(8))
                .expect("u64 fits usize"),
            jobs: jobs_from(value)?,
            engine: engine_from(value)?,
        },
        "synth_search" => {
            let target_coverage = opt_f64(value, "target_coverage")?.unwrap_or(100.0);
            if !(0.0..=100.0).contains(&target_coverage) {
                return Err(usage("`target_coverage` must be 0–100"));
            }
            Request::SynthSearch {
                universe: required_str(value, "universe")?,
                geometry: geometry_with_words(
                    value,
                    opt_u64(value, "words")?.unwrap_or(256),
                )?,
                target_coverage,
                budget: usize::try_from(opt_u64(value, "budget")?.unwrap_or(2000))
                    .expect("u64 fits usize"),
                seed: opt_u64(value, "seed")?.unwrap_or(1),
                strategy: match value.get("strategy") {
                    None | Some(Json::Null) => mbist_search::Strategy::Evolutionary,
                    Some(v) => {
                        v.as_str().and_then(mbist_search::Strategy::parse_name).ok_or_else(
                            || usage("`strategy` must be \"evolve\" or \"compose\""),
                        )?
                    }
                },
                max_elements: usize::try_from(
                    opt_u64(value, "max_elements")?.unwrap_or(12),
                )
                .expect("u64 fits usize"),
                jobs: jobs_from(value)?,
                engine: match value.get("engine") {
                    None | Some(Json::Null) => SimEngine::Packed,
                    Some(_) => engine_from(value)?,
                },
            }
        }
        "area" => Request::Area {
            table: match value.get("table") {
                None | Some(Json::Null) => None,
                Some(v) => Some(
                    v.as_str()
                        .map(ToString::to_string)
                        .or_else(|| v.as_u64().map(|n| n.to_string()))
                        .ok_or_else(|| usage("`table` must be \"1\", \"2\" or \"3\""))?,
                ),
            },
        },
        "status" => Request::Status,
        "shutdown" => Request::Shutdown,
        other => {
            return Err(usage(format!(
                "unknown kind `{other}` \
                 (coverage|detects|synth|synth_search|area|status|shutdown)"
            )))
        }
    };
    Ok(Envelope { id, deadline_ms, request })
}

/// Best-effort recovery of the `id` member from a line that failed
/// [`parse_request`], so even malformed-request errors echo the
/// correlation id whenever one was readable.
#[must_use]
pub fn recover_id(line: &str) -> Option<Json> {
    Json::parse(line).ok()?.get("id").cloned()
}

fn required_str(value: &Json, field: &str) -> Result<String, ServiceError> {
    value
        .get(field)
        .and_then(Json::as_str)
        .map(ToString::to_string)
        .ok_or_else(|| usage(format!("missing string field `{field}`")))
}

fn opt_f64(value: &Json, field: &str) -> Result<Option<f64>, ServiceError> {
    match value.get(field) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Num(n)) => Ok(Some(*n)),
        Some(_) => Err(usage(format!("`{field}` must be a number"))),
    }
}

fn opt_u64(value: &Json, field: &str) -> Result<Option<u64>, ServiceError> {
    match value.get(field) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| usage(format!("`{field}` must be a non-negative integer"))),
    }
}

/// `jobs` within one request: absent → 1 (the worker pool is the
/// concurrency source), 0 → host auto, n → n. The response is bit-identical
/// for every setting.
fn jobs_from(value: &Json) -> Result<Option<usize>, ServiceError> {
    Ok(match opt_u64(value, "jobs")? {
        None => Some(1),
        Some(0) => None,
        Some(n) => Some(usize::try_from(n).expect("u64 fits usize")),
    })
}

fn engine_from(value: &Json) -> Result<SimEngine, ServiceError> {
    match value.get("engine") {
        None | Some(Json::Null) => Ok(SimEngine::default()),
        Some(v) => match v.as_str() {
            Some("full") => Ok(SimEngine::Full),
            Some("sliced") => Ok(SimEngine::Sliced),
            Some("packed") => Ok(SimEngine::Packed),
            _ => Err(usage("`engine` must be \"full\", \"sliced\" or \"packed\"")),
        },
    }
}

fn geometry_from(value: &Json) -> Result<MemGeometry, ServiceError> {
    let words =
        opt_u64(value, "words")?.ok_or_else(|| usage("missing integer field `words`"))?;
    geometry_with_words(value, words)
}

/// Geometry whose word count is already resolved (required for most kinds,
/// defaulted for `synth_search`).
fn geometry_with_words(value: &Json, words: u64) -> Result<MemGeometry, ServiceError> {
    let width = opt_u64(value, "width")?.unwrap_or(1);
    let ports = opt_u64(value, "ports")?.unwrap_or(1);
    if words == 0 || width == 0 || width > 64 || ports == 0 || ports > u64::from(u8::MAX) {
        return Err(usage("geometry out of range (words ≥ 1, 1 ≤ width ≤ 64, ports ≥ 1)"));
    }
    Ok(MemGeometry::new(words, u8::try_from(width).expect("≤64"), ports as u8))
}

/// Builds a success response line (without the trailing newline).
#[must_use]
pub fn ok_response(id: Option<&Json>, kind: &str, payload: Vec<(&str, Json)>) -> String {
    ok_response_value(id, kind, payload).to_string()
}

/// The success response as a value tree; both framings serialize this —
/// line-JSON via `Display`, binary via `binary::encode_frame` — so the
/// member set and order are identical on either wire.
#[must_use]
pub fn ok_response_value(
    id: Option<&Json>,
    kind: &str,
    payload: Vec<(&str, Json)>,
) -> Json {
    let mut members = Vec::with_capacity(payload.len() + 3);
    if let Some(id) = id {
        members.push(("id".to_string(), id.clone()));
    }
    members.push(("ok".to_string(), Json::Bool(true)));
    members.push(("kind".to_string(), Json::str(kind)));
    members.extend(payload.into_iter().map(|(k, v)| (k.to_string(), v)));
    Json::Obj(members)
}

/// Builds a failure response line (without the trailing newline).
#[must_use]
pub fn error_response(id: Option<&Json>, error: &ServiceError) -> String {
    error_response_value(id, error).to_string()
}

/// The failure response as a value tree (see [`ok_response_value`]).
#[must_use]
pub fn error_response_value(id: Option<&Json>, error: &ServiceError) -> Json {
    let mut error_members = vec![("class".to_string(), Json::str(error.class()))];
    let message = match error {
        ServiceError::Usage(m) | ServiceError::Failed(m) => m.clone(),
        ServiceError::Busy { retry_after_ms } => {
            error_members
                .push(("retry_after_ms".to_string(), Json::num(*retry_after_ms as f64)));
            "job queue full; retry after the hinted back-off".to_string()
        }
        ServiceError::ShuttingDown => "server is draining; no new work accepted".into(),
        ServiceError::Timeout { elapsed_ms, partial } => {
            error_members.push(("elapsed_ms".to_string(), Json::num(*elapsed_ms as f64)));
            if let Some(best) = partial {
                error_members.push(("partial".to_string(), Json::str(best.clone())));
            }
            "deadline exceeded; simulation cancelled".to_string()
        }
        ServiceError::Internal { job_id } => {
            error_members.push(("job_id".to_string(), Json::num(*job_id as f64)));
            "worker failed twice on this job; giving up".to_string()
        }
    };
    error_members.insert(1, ("message".to_string(), Json::str(message)));
    let mut members = Vec::new();
    if let Some(id) = id {
        members.push(("id".to_string(), id.clone()));
    }
    members.push(("ok".to_string(), Json::Bool(false)));
    members.push(("error".to_string(), Json::Obj(error_members)));
    Json::Obj(members)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_coverage_with_defaults() {
        let e =
            parse_request(r#"{"kind":"coverage","test":"march-c","words":64}"#).unwrap();
        assert_eq!(e.id, None);
        match e.request {
            Request::Coverage { test, geometry, max_faults, jobs, engine } => {
                assert_eq!(test, "march-c");
                assert_eq!(geometry, MemGeometry::bit_oriented(64));
                assert_eq!(max_faults, Some(256));
                assert_eq!(jobs, Some(1));
                assert_eq!(engine, SimEngine::Sliced);
            }
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn parses_every_engine_name() {
        for (name, want) in [
            ("full", SimEngine::Full),
            ("sliced", SimEngine::Sliced),
            ("packed", SimEngine::Packed),
        ] {
            let line = format!(
                r#"{{"kind":"coverage","test":"march-c","words":8,"engine":"{name}"}}"#
            );
            match parse_request(&line).unwrap().request {
                Request::Coverage { engine, .. } => assert_eq!(engine, want, "{name}"),
                other => panic!("wrong request: {other:?}"),
            }
        }
        assert!(matches!(
            parse_request(r#"{"kind":"coverage","test":"mats","words":8,"engine":"turbo"}"#),
            Err(ServiceError::Usage(m)) if m.contains("packed")
        ));
    }

    #[test]
    fn field_order_is_irrelevant() {
        let a =
            parse_request(r#"{"kind":"coverage","test":"march-c","words":64,"width":8}"#)
                .unwrap();
        let b =
            parse_request(r#"{"width":8,"words":64,"test":"march-c","kind":"coverage"}"#)
                .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn explicit_defaults_parse_identically_to_omitted() {
        let a = parse_request(
            r#"{"kind":"detects","test":"mats+","words":16,"fault":"sa1@3"}"#,
        )
        .unwrap();
        let b = parse_request(
            r#"{"kind":"detects","test":"mats+","words":16,"width":1,"ports":1,"fault":"sa1@3"}"#,
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn jobs_and_max_faults_zero_mean_auto_and_uncapped() {
        let e = parse_request(
            r#"{"kind":"coverage","test":"mats","words":8,"jobs":0,"max_faults":0}"#,
        )
        .unwrap();
        match e.request {
            Request::Coverage { jobs, max_faults, .. } => {
                assert_eq!(jobs, None);
                assert_eq!(max_faults, None);
            }
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn id_is_preserved() {
        let e = parse_request(r#"{"id":42,"kind":"status"}"#).unwrap();
        assert_eq!(e.id, Some(Json::Num(42.0)));
        assert_eq!(e.request, Request::Status);
        let line = ok_response(e.id.as_ref(), "status", vec![]);
        assert!(line.starts_with(r#"{"id":42,"ok":true"#), "{line}");
    }

    #[test]
    fn rejects_unknown_kind_and_bad_geometry() {
        assert!(matches!(
            parse_request(r#"{"kind":"frob"}"#),
            Err(ServiceError::Usage(m)) if m.contains("unknown kind")
        ));
        assert!(matches!(
            parse_request(r#"{"kind":"coverage","test":"mats","words":0}"#),
            Err(ServiceError::Usage(m)) if m.contains("geometry out of range")
        ));
        assert!(matches!(
            parse_request(r#"{"kind":"coverage","test":"mats"}"#),
            Err(ServiceError::Usage(m)) if m.contains("words")
        ));
        assert!(matches!(
            parse_request("not json"),
            Err(ServiceError::Usage(m)) if m.contains("invalid JSON")
        ));
    }

    #[test]
    fn error_responses_carry_class_and_retry_hint() {
        let busy = error_response(None, &ServiceError::Busy { retry_after_ms: 40 });
        let v = Json::parse(&busy).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
        let err = v.get("error").unwrap();
        assert_eq!(err.get("class").unwrap().as_str(), Some("busy"));
        assert_eq!(err.get("retry_after_ms").unwrap().as_u64(), Some(40));
        let usage = error_response(None, &ServiceError::Usage("bad".into()));
        let v = Json::parse(&usage).unwrap();
        assert_eq!(v.get("error").unwrap().get("class").unwrap().as_str(), Some("usage"));
    }

    #[test]
    fn deadline_is_parsed_and_optional() {
        let absent = parse_request(r#"{"kind":"status"}"#).unwrap();
        assert_eq!(absent.deadline_ms, None);
        let capped = parse_request(
            r#"{"kind":"coverage","test":"mats","words":8,"deadline_ms":250}"#,
        )
        .unwrap();
        assert_eq!(capped.deadline_ms, Some(250));
        let unlimited = parse_request(r#"{"kind":"status","deadline_ms":0}"#).unwrap();
        assert_eq!(unlimited.deadline_ms, Some(0));
        assert!(matches!(
            parse_request(r#"{"kind":"status","deadline_ms":"soon"}"#),
            Err(ServiceError::Usage(m)) if m.contains("deadline_ms")
        ));
    }

    #[test]
    fn timeout_and_internal_errors_carry_their_members() {
        let timeout = error_response(
            Some(&Json::Num(7.0)),
            &ServiceError::Timeout { elapsed_ms: 512, partial: None },
        );
        let v = Json::parse(&timeout).unwrap();
        assert_eq!(v.get("id").unwrap().as_u64(), Some(7));
        let err = v.get("error").unwrap();
        assert_eq!(err.get("class").unwrap().as_str(), Some("timeout"));
        assert_eq!(err.get("elapsed_ms").unwrap().as_u64(), Some(512));
        assert!(err.get("partial").is_none(), "no member when there is no partial");

        let with_partial = error_response(
            None,
            &ServiceError::Timeout {
                elapsed_ms: 90,
                partial: Some("best: ⇕(w0); ⇑(r0,w1)".into()),
            },
        );
        let v = Json::parse(&with_partial).unwrap();
        let err = v.get("error").unwrap();
        assert_eq!(err.get("partial").unwrap().as_str(), Some("best: ⇕(w0); ⇑(r0,w1)"));

        let internal = error_response(None, &ServiceError::Internal { job_id: 41 });
        let v = Json::parse(&internal).unwrap();
        let err = v.get("error").unwrap();
        assert_eq!(err.get("class").unwrap().as_str(), Some("internal"));
        assert_eq!(err.get("job_id").unwrap().as_u64(), Some(41));
    }

    #[test]
    fn recover_id_salvages_ids_from_malformed_requests() {
        // Valid JSON, invalid request: the id is recoverable.
        assert_eq!(recover_id(r#"{"id":9,"kind":"frob"}"#), Some(Json::Num(9.0)));
        assert_eq!(
            recover_id(r#"{"id":"abc","words":"x"}"#),
            Some(Json::Str("abc".into()))
        );
        // Unparseable line or no id: nothing to echo.
        assert_eq!(recover_id("not json"), None);
        assert_eq!(recover_id(r#"{"kind":"frob"}"#), None);
    }

    #[test]
    fn parses_synth_search_with_defaults_and_rejects_bad_values() {
        let e = parse_request(r#"{"kind":"synth_search","universe":"saf,tf"}"#).unwrap();
        match e.request {
            Request::SynthSearch {
                universe,
                geometry,
                target_coverage,
                budget,
                seed,
                strategy,
                max_elements,
                jobs,
                engine,
            } => {
                assert_eq!(universe, "saf,tf");
                assert_eq!(geometry, MemGeometry::bit_oriented(256));
                assert!((target_coverage - 100.0).abs() < f64::EPSILON);
                assert_eq!(budget, 2000);
                assert_eq!(seed, 1);
                assert_eq!(strategy, mbist_search::Strategy::Evolutionary);
                assert_eq!(max_elements, 12);
                assert_eq!(jobs, Some(1));
                // synth_search defaults to the packed fitness oracle, not
                // the coverage default of sliced.
                assert_eq!(engine, SimEngine::Packed);
            }
            other => panic!("wrong request: {other:?}"),
        }
        let e = parse_request(
            r#"{"kind":"synth_search","universe":"saf","strategy":"compose","target_coverage":95.5,"seed":9,"engine":"sliced"}"#,
        )
        .unwrap();
        match e.request {
            Request::SynthSearch { strategy, target_coverage, seed, engine, .. } => {
                assert_eq!(strategy, mbist_search::Strategy::Composition);
                assert!((target_coverage - 95.5).abs() < f64::EPSILON);
                assert_eq!(seed, 9);
                assert_eq!(engine, SimEngine::Sliced);
            }
            other => panic!("wrong request: {other:?}"),
        }
        assert!(matches!(
            parse_request(r#"{"kind":"synth_search"}"#),
            Err(ServiceError::Usage(m)) if m.contains("universe")
        ));
        assert!(matches!(
            parse_request(r#"{"kind":"synth_search","universe":"saf","strategy":"anneal"}"#),
            Err(ServiceError::Usage(m)) if m.contains("evolve")
        ));
        assert!(matches!(
            parse_request(
                r#"{"kind":"synth_search","universe":"saf","target_coverage":101}"#
            ),
            Err(ServiceError::Usage(m)) if m.contains("0–100")
        ));
        assert!(matches!(
            parse_request(r#"{"kind":"synth_search","universe":"saf","target_coverage":"high"}"#),
            Err(ServiceError::Usage(m)) if m.contains("number")
        ));
    }

    #[test]
    fn area_table_accepts_string_or_number() {
        for line in [r#"{"kind":"area","table":"2"}"#, r#"{"kind":"area","table":2}"#] {
            match parse_request(line).unwrap().request {
                Request::Area { table } => assert_eq!(table.as_deref(), Some("2")),
                other => panic!("wrong request: {other:?}"),
            }
        }
    }
}
