//! A thin readiness-notification layer over `poll(2)`.
//!
//! The event-driven server and the shard router both run a single loop
//! thread that owns every socket; this module gives that loop its two
//! primitives, std-only:
//!
//! - [`poll_fds`] — a direct FFI binding to the C library's `poll(2)`
//!   (declared here rather than pulled from a crate: the workspace builds
//!   fully offline and already links libc through std). The loop rebuilds
//!   its small pollfd array every iteration, so there is no registration
//!   state to keep in sync.
//! - [`WakePipe`] — a nonblocking self-pipe built from a
//!   [`UnixStream`] pair. Worker threads finish jobs off-loop and call
//!   [`WakeHandle::wake`]; the loop polls the read end like any other fd
//!   and drains it with [`WakePipe::drain`].
//!
//! This is the only module in the workspace that uses `unsafe`: one
//! foreign call whose contract (`fds` points at `nfds` contiguous structs)
//! is guaranteed by passing a live `&mut [PollFd]`.

use std::io::{self, ErrorKind, Read, Write};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::Arc;

/// Readable-data event bit (`POLLIN`).
pub const POLLIN: i16 = 0x001;
/// Writable-space event bit (`POLLOUT`).
pub const POLLOUT: i16 = 0x004;
/// Error-condition result bit (`POLLERR`; output only).
pub const POLLERR: i16 = 0x008;
/// Hangup result bit (`POLLHUP`; output only).
pub const POLLHUP: i16 = 0x010;

/// One entry of the `poll(2)` fd array — layout-compatible with the C
/// `struct pollfd` on every platform std supports Unix sockets on.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    fd: RawFd,
    events: i16,
    revents: i16,
}

impl PollFd {
    /// Watches `fd` for the interest mask `events` ([`POLLIN`] |
    /// [`POLLOUT`]).
    #[must_use]
    pub fn new(fd: RawFd, events: i16) -> PollFd {
        PollFd { fd, events, revents: 0 }
    }

    /// Result bits from the last [`poll_fds`] call.
    #[must_use]
    pub fn revents(&self) -> i16 {
        self.revents
    }

    /// Whether the fd is readable (or has an error/hangup to report, which
    /// a read will surface).
    #[must_use]
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLERR | POLLHUP) != 0
    }

    /// Whether the fd has writable space (or a pending error).
    #[must_use]
    pub fn writable(&self) -> bool {
        self.revents & (POLLOUT | POLLERR | POLLHUP) != 0
    }
}

extern "C" {
    fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
}

/// Blocks until at least one fd in `fds` is ready, `timeout_ms` elapses
/// (`-1` = forever), or a signal interrupts. Returns the number of ready
/// entries; `revents` is updated in place.
///
/// # Errors
///
/// Propagates the OS error, except `EINTR` which is mapped to `Ok(0)` so
/// callers simply re-loop.
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    // SAFETY: `fds` is a live, exclusive slice of repr(C) structs matching
    // the C `struct pollfd` layout; `poll` writes only within its bounds.
    let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
    if rc < 0 {
        let e = io::Error::last_os_error();
        if e.kind() == ErrorKind::Interrupted {
            return Ok(0);
        }
        return Err(e);
    }
    Ok(usize::try_from(rc).unwrap_or(0))
}

/// The loop-side read end of a self-pipe, plus a cloneable [`WakeHandle`]
/// for the threads that need to interrupt a blocked poll.
#[derive(Debug)]
pub struct WakePipe {
    reader: UnixStream,
    handle: Arc<WakeHandle>,
}

/// The writer side of a [`WakePipe`]; any thread may call
/// [`WakeHandle::wake`] at any time.
#[derive(Debug)]
pub struct WakeHandle {
    writer: UnixStream,
}

impl WakeHandle {
    /// Makes the owning loop's next (or current) poll return immediately.
    /// Best-effort: a full pipe already guarantees a pending wakeup.
    pub fn wake(&self) {
        let _ = (&self.writer).write(&[1u8]);
    }
}

impl WakePipe {
    /// Builds the pair; both ends are nonblocking.
    ///
    /// # Errors
    ///
    /// Propagates socketpair/configuration failures.
    pub fn new() -> io::Result<WakePipe> {
        let (reader, writer) = UnixStream::pair()?;
        reader.set_nonblocking(true)?;
        writer.set_nonblocking(true)?;
        Ok(WakePipe { reader, handle: Arc::new(WakeHandle { writer }) })
    }

    /// The fd to include in the poll set with [`POLLIN`] interest.
    #[must_use]
    pub fn fd(&self) -> RawFd {
        self.reader.as_raw_fd()
    }

    /// A cloneable handle for waker threads.
    #[must_use]
    pub fn handle(&self) -> Arc<WakeHandle> {
        Arc::clone(&self.handle)
    }

    /// Consumes every pending wakeup byte so the next poll blocks again.
    pub fn drain(&mut self) {
        let mut sink = [0u8; 64];
        while matches!(self.reader.read(&mut sink), Ok(n) if n > 0) {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    #[test]
    fn poll_times_out_on_a_quiet_pipe() {
        let pipe = WakePipe::new().unwrap();
        let mut fds = [PollFd::new(pipe.fd(), POLLIN)];
        let start = Instant::now();
        let n = poll_fds(&mut fds, 50).unwrap();
        assert_eq!(n, 0);
        assert!(!fds[0].readable());
        assert!(start.elapsed() >= Duration::from_millis(40), "timed out early");
    }

    #[test]
    fn wake_makes_poll_return_and_drain_resets() {
        let mut pipe = WakePipe::new().unwrap();
        let handle = pipe.handle();
        let waker = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            handle.wake();
        });
        let mut fds = [PollFd::new(pipe.fd(), POLLIN)];
        let n = poll_fds(&mut fds, 5_000).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].readable());
        waker.join().unwrap();
        pipe.drain();
        let mut fds = [PollFd::new(pipe.fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, 0).unwrap(), 0, "drained pipe is quiet");
    }

    #[test]
    fn wake_from_many_threads_coalesces() {
        let mut pipe = WakePipe::new().unwrap();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let h = pipe.handle();
                std::thread::spawn(move || h.wake())
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let mut fds = [PollFd::new(pipe.fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, 1_000).unwrap(), 1);
        pipe.drain();
    }
}
