//! Minimal JSON value, parser and writer.
//!
//! The service speaks line-delimited JSON; this module is the std-only
//! implementation backing it (the workspace builds fully offline, so no
//! serde). The subset is complete for the protocol's needs: objects,
//! arrays, strings with escapes, numbers, booleans and null.
//!
//! Numbers are carried as `f64`, so integers are exact up to 2⁵³ — far
//! beyond any word count, fault count or latency this service reports.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on output.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON value from `text`, rejecting trailing garbage.
    ///
    /// # Errors
    ///
    /// Returns a position-annotated message on malformed input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }

    /// Member lookup on an object (`None` for other variants).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Builds an object from `(key, value)` pairs.
    #[must_use]
    pub fn obj(members: Vec<(&str, Json)>) -> Json {
        Json::Obj(members.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A string value.
    #[must_use]
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An integer value.
    #[must_use]
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if !n.is_finite() {
                    // Cannot occur for the values this service emits; emit
                    // the nearest representable JSON rather than invalid text.
                    f.write_str("null")
                } else if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    escape_into(f, s)?;
    f.write_str("\"")
}

/// Appends `s` to `out` with JSON string escaping applied (surrounding
/// quotes are the caller's job).
fn escape_into<W: fmt::Write>(out: &mut W, s: &str) -> fmt::Result {
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => out.write_char(c)?,
        }
    }
    Ok(())
}

/// Escapes `s` for embedding inside a JSON string literal (without the
/// surrounding quotes). This is the single escaping implementation in the
/// workspace — the writer above and the bench load generator's hand-built
/// reports both use it, so the two can never drift.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_into(&mut out, s).expect("writing to a String cannot fail");
    out
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => parse_str(bytes, pos).map(Json::Str),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_num(bytes, pos),
    }
}

fn parse_lit(
    bytes: &[u8],
    pos: &mut usize,
    lit: &str,
    value: Json,
) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii digits");
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))
}

fn parse_str(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("invalid \\u escape `{hex}`"))?;
                        // Surrogate pairs are not needed by the protocol;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so the
                // bytes are valid UTF-8).
                let rest = std::str::from_utf8(&bytes[*pos..]).expect("valid utf-8");
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_str(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_the_protocol_shapes() {
        let text = r#"{"kind":"coverage","test":"march-c","words":1024,"jobs":0,
                       "flag":true,"note":null,"arr":[1,2.5,-3]}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("kind").unwrap().as_str(), Some("coverage"));
        assert_eq!(v.get("words").unwrap().as_u64(), Some(1024));
        assert_eq!(v.get("jobs").unwrap().as_u64(), Some(0));
        assert_eq!(v.get("flag").unwrap().as_bool(), Some(true));
        assert_eq!(*v.get("note").unwrap(), Json::Null);
        let reparsed = Json::parse(&v.to_string()).unwrap();
        assert_eq!(v, reparsed);
    }

    #[test]
    fn escapes_survive_a_roundtrip() {
        let v = Json::obj(vec![("text", Json::str("a\"b\\c\nd\te\u{1}"))]);
        let reparsed = Json::parse(&v.to_string()).unwrap();
        assert_eq!(v, reparsed);
        assert!(Json::parse(r#""A""#).unwrap().as_str() == Some("A"));
    }

    #[test]
    fn numbers_format_as_integers_when_integral() {
        assert_eq!(Json::Num(1024.0).to_string(), "1024");
        assert_eq!(Json::Num(-3.0).to_string(), "-3");
        assert_eq!(Json::Num(2.5).to_string(), "2.5");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "{\"a\":}", "[1,", "\"abc", "{\"a\" 1}", "1 2", "nul"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn as_u64_rejects_negatives_and_fractions() {
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(7.0).as_u64(), Some(7));
        assert_eq!(Json::Str("7".into()).as_u64(), None);
    }

    #[test]
    fn escape_matches_the_writer() {
        let tricky = "a\"b\\c\nd\te\u{1}⇕";
        let via_writer = Json::str(tricky).to_string();
        assert_eq!(format!("\"{}\"", escape(tricky)), via_writer);
    }

    #[test]
    fn unicode_passthrough() {
        let v = Json::parse("{\"s\":\"⇕(w0)\"}").unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("⇕(w0)"));
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
    }
}
