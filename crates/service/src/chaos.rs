//! Deterministic chaos injection for resilience testing.
//!
//! A [`ChaosConfig`] describes three failure modes the daemon can inject
//! into itself — worker panics, artificial execution delays, and
//! post-accept connection drops — each at a configurable probability. The
//! decision stream is a pure function of the seed and a global event
//! counter (splitmix64 over `seed ^ counter`), so a chaos run is exactly
//! reproducible: same seed, same accept/dispatch order, same injected
//! faults. With chaos disabled (the default) every roll is a compile-time
//! visible early return on `p == 0.0`, so the production path pays one
//! predictable branch per site.
//!
//! The CLI syntax is `--chaos seed=S,panic=P,delay=D,drop=C` with optional
//! `delay_ms=M` (injected delay length, default 20) and `burst=B` (the
//! first `B` panic rolls fire unconditionally — a panic storm for
//! measuring recovery time).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Probabilities and shape of the injected faults. Zero everywhere (the
/// default) means chaos is off.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Seed for the deterministic decision stream.
    pub seed: u64,
    /// Probability a dispatched job's worker panics mid-execution.
    pub panic_p: f64,
    /// Probability a dispatched job is delayed by [`ChaosConfig::delay_ms`]
    /// before executing.
    pub delay_p: f64,
    /// Probability an accepted request line is dropped: the connection
    /// closes without a reply, as if the process was partitioned.
    pub drop_p: f64,
    /// Length of one injected delay, in milliseconds.
    pub delay_ms: u64,
    /// The first `burst` panic rolls fire unconditionally — a determinate
    /// panic storm at startup for recovery-time measurement.
    pub burst: u32,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self { seed: 0, panic_p: 0.0, delay_p: 0.0, drop_p: 0.0, delay_ms: 20, burst: 0 }
    }
}

impl ChaosConfig {
    /// The all-off configuration (same as `Default`).
    #[must_use]
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Whether any injection can ever fire.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.panic_p > 0.0 || self.delay_p > 0.0 || self.drop_p > 0.0 || self.burst > 0
    }

    /// Parses the CLI spec `seed=S,panic=P,delay=D,drop=C[,delay_ms=M][,burst=B]`.
    /// Every key is optional; unknown keys and out-of-range probabilities
    /// are errors.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on an unknown key, a malformed
    /// number, or a probability outside `[0, 1]`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut config = Self::default();
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("chaos spec `{part}` is not key=value"))?;
            let key = key.trim();
            let value = value.trim();
            match key {
                "seed" => {
                    config.seed = value
                        .parse()
                        .map_err(|_| format!("chaos seed `{value}` is not a u64"))?;
                }
                "delay_ms" => {
                    config.delay_ms = value
                        .parse()
                        .map_err(|_| format!("chaos delay_ms `{value}` is not a u64"))?;
                }
                "burst" => {
                    config.burst = value
                        .parse()
                        .map_err(|_| format!("chaos burst `{value}` is not a u32"))?;
                }
                "panic" | "delay" | "drop" => {
                    let p: f64 = value
                        .parse()
                        .map_err(|_| format!("chaos {key} `{value}` is not a number"))?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(format!("chaos {key} {p} outside [0, 1]"));
                    }
                    match key {
                        "panic" => config.panic_p = p,
                        "delay" => config.delay_p = p,
                        _ => config.drop_p = p,
                    }
                }
                other => {
                    return Err(format!(
                        "unknown chaos key `{other}` (seed|panic|delay|drop|delay_ms|burst)"
                    ))
                }
            }
        }
        Ok(config)
    }

    /// One-line human summary for the startup banner and logs.
    #[must_use]
    pub fn describe(&self) -> String {
        format!(
            "seed={} panic={} delay={} drop={} delay_ms={} burst={}",
            self.seed, self.panic_p, self.delay_p, self.drop_p, self.delay_ms, self.burst
        )
    }
}

/// The runtime decision stream: a shared event counter over the seeded
/// hash. Each query consumes one event, so the stream depends only on the
/// seed and the order of queries — not on wall-clock time.
#[derive(Debug)]
pub struct ChaosState {
    config: ChaosConfig,
    events: AtomicU64,
    burst_left: AtomicU64,
}

/// splitmix64 — a full-period mix of a 64-bit counter, the standard
/// std-only way to turn (seed, index) into independent uniform bits.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl ChaosState {
    /// Wraps a configuration into a live decision stream.
    #[must_use]
    pub fn new(config: ChaosConfig) -> Self {
        Self {
            config,
            events: AtomicU64::new(0),
            burst_left: AtomicU64::new(u64::from(config.burst)),
        }
    }

    /// The wrapped configuration.
    #[must_use]
    pub fn config(&self) -> &ChaosConfig {
        &self.config
    }

    /// Draws the next uniform sample in `[0, 1)` and tests it against `p`.
    fn roll(&self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        let n = self.events.fetch_add(1, Ordering::Relaxed);
        let bits = splitmix64(self.config.seed ^ n.wrapping_mul(0x2545_f491_4f6c_dd1d));
        let sample = (bits >> 11) as f64 / (1u64 << 53) as f64;
        sample < p
    }

    /// Whether the next dispatched job should panic. The first
    /// [`ChaosConfig::burst`] calls fire unconditionally.
    #[must_use]
    pub fn roll_panic(&self) -> bool {
        if self.config.burst > 0 {
            let stormed = self
                .burst_left
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1))
                .is_ok();
            if stormed {
                return true;
            }
        }
        self.roll(self.config.panic_p)
    }

    /// The artificial delay to apply before executing the next job, if any.
    #[must_use]
    pub fn roll_delay(&self) -> Option<Duration> {
        self.roll(self.config.delay_p).then(|| Duration::from_millis(self.config.delay_ms))
    }

    /// Whether the next accepted request line should be dropped on the
    /// floor (connection closed without a reply).
    #[must_use]
    pub fn roll_drop(&self) -> bool {
        self.roll(self.config.drop_p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_the_issue_syntax() {
        let c = ChaosConfig::parse("seed=7,panic=0.05,delay=0.05,drop=0.02").unwrap();
        assert_eq!(c.seed, 7);
        assert!((c.panic_p - 0.05).abs() < 1e-12);
        assert!((c.delay_p - 0.05).abs() < 1e-12);
        assert!((c.drop_p - 0.02).abs() < 1e-12);
        assert_eq!(c.delay_ms, 20, "default delay length");
        assert!(c.enabled());
    }

    #[test]
    fn parse_rejects_junk() {
        assert!(ChaosConfig::parse("panic=2.0").is_err(), "p > 1");
        assert!(ChaosConfig::parse("panic=-0.1").is_err(), "p < 0");
        assert!(ChaosConfig::parse("frob=1").is_err(), "unknown key");
        assert!(ChaosConfig::parse("panic").is_err(), "no value");
        assert!(ChaosConfig::parse("seed=x").is_err(), "bad number");
    }

    #[test]
    fn empty_spec_is_disabled() {
        let c = ChaosConfig::parse("").unwrap();
        assert_eq!(c, ChaosConfig::disabled());
        assert!(!c.enabled());
    }

    #[test]
    fn disabled_state_never_fires() {
        let state = ChaosState::new(ChaosConfig::disabled());
        for _ in 0..10_000 {
            assert!(!state.roll_panic());
            assert!(state.roll_delay().is_none());
            assert!(!state.roll_drop());
        }
    }

    #[test]
    fn decision_stream_is_reproducible_from_the_seed() {
        let config = ChaosConfig::parse("seed=42,panic=0.3").unwrap();
        let a = ChaosState::new(config);
        let b = ChaosState::new(config);
        let draws_a: Vec<bool> = (0..1000).map(|_| a.roll_panic()).collect();
        let draws_b: Vec<bool> = (0..1000).map(|_| b.roll_panic()).collect();
        assert_eq!(draws_a, draws_b);
        assert!(draws_a.iter().any(|&x| x), "p=0.3 over 1000 draws must fire");
        assert!(!draws_a.iter().all(|&x| x), "and must not always fire");
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let a = ChaosState::new(ChaosConfig::parse("seed=1,panic=0.5").unwrap());
        let b = ChaosState::new(ChaosConfig::parse("seed=2,panic=0.5").unwrap());
        let draws_a: Vec<bool> = (0..256).map(|_| a.roll_panic()).collect();
        let draws_b: Vec<bool> = (0..256).map(|_| b.roll_panic()).collect();
        assert_ne!(draws_a, draws_b);
    }

    #[test]
    fn injection_rate_tracks_the_probability() {
        let state = ChaosState::new(ChaosConfig::parse("seed=9,drop=0.1").unwrap());
        let fired = (0..20_000).filter(|_| state.roll_drop()).count();
        let rate = fired as f64 / 20_000.0;
        assert!((0.07..=0.13).contains(&rate), "rate {rate} far from 0.1");
    }

    #[test]
    fn burst_fires_the_first_n_panics_unconditionally() {
        let state = ChaosState::new(ChaosConfig::parse("seed=3,burst=5").unwrap());
        for i in 0..5 {
            assert!(state.roll_panic(), "storm roll {i}");
        }
        // panic_p is 0, so after the storm nothing fires.
        for _ in 0..100 {
            assert!(!state.roll_panic());
        }
    }
}
