//! Binary-protocol coverage: round-trip fuzz over the value encoding and
//! live binary-vs-JSON response equivalence per job kind.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

use mbist_service::binary;
use mbist_service::json::Json;
use mbist_service::{Server, ServiceConfig};

/// Deterministic splitmix64 — the workspace's stock test RNG.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// A random value tree with randomized member orders at every level.
fn random_value(rng: &mut Rng, depth: usize) -> Json {
    match if depth == 0 { rng.below(5) } else { rng.below(7) } {
        0 => Json::Null,
        1 => Json::Bool(rng.below(2) == 0),
        2 => {
            // Integral f64s round-trip exactly; fractional ones use halves
            // so text formatting is not part of this test.
            let n = rng.below(1 << 40) as f64;
            Json::Num(if rng.below(2) == 0 { n } else { n / 2.0 })
        }
        3 => Json::Num(-(rng.below(1 << 20) as f64)),
        4 => {
            let len = rng.below(24) as usize;
            let s: String = (0..len)
                .map(|_| {
                    // Escapes, multi-byte UTF-8 and ASCII all mixed in.
                    const POOL: &[char] =
                        &['a', 'Z', '"', '\\', '\n', '\t', 'µ', '→', '🧪', ' ', '{', '}'];
                    POOL[rng.below(POOL.len() as u64) as usize]
                })
                .collect();
            Json::Str(s)
        }
        5 => {
            let len = rng.below(5) as usize;
            Json::Arr((0..len).map(|_| random_value(rng, depth - 1)).collect())
        }
        _ => {
            let len = rng.below(5) as usize;
            Json::Obj(
                (0..len)
                    .map(|i| {
                        // Shuffled, occasionally duplicated-looking keys.
                        (
                            format!("k{}", rng.below(16).wrapping_add(i as u64)),
                            random_value(rng, depth - 1),
                        )
                    })
                    .collect(),
            )
        }
    }
}

#[test]
fn fuzz_round_trip_through_frame_encode_decode() {
    let mut rng = Rng(0x0b1_f00d);
    for i in 0..500 {
        let value = random_value(&mut rng, 4);
        let frame = binary::encode_frame(&value);
        let (decoded, used) = binary::decode_frame(&frame)
            .unwrap_or_else(|e| panic!("iteration {i}: decode failed: {e}"))
            .unwrap_or_else(|| panic!("iteration {i}: complete frame read as partial"));
        assert_eq!(used, frame.len(), "iteration {i}: frame length mismatch");
        // Equality via the canonical JSON text: order-preserving, exact.
        assert_eq!(decoded.to_string(), value.to_string(), "iteration {i}");
    }
}

#[test]
fn fuzz_truncations_never_decode_to_garbage() {
    let mut rng = Rng(0x7u64 ^ 0xdead);
    for _ in 0..50 {
        let value = random_value(&mut rng, 3);
        let frame = binary::encode_frame(&value);
        for cut in 0..frame.len() {
            match binary::decode_frame(&frame[..cut]) {
                Ok(None) => {}
                Ok(Some(_)) => panic!("truncated frame decoded as complete at {cut}"),
                Err(_) => panic!("truncated frame judged unrecoverable at {cut}"),
            }
        }
    }
}

#[test]
fn max_size_payload_round_trips_and_one_byte_more_is_rejected() {
    // Build a string payload that lands the frame exactly at the cap:
    // payload = tag(1) + len(4) + bytes.
    let max_str = binary::MAX_FRAME_BYTES - 5;
    let value = Json::Str("x".repeat(max_str));
    let frame = binary::encode_frame(&value);
    assert_eq!(frame.len(), binary::MAX_FRAME_BYTES + binary::HEADER_BYTES);
    let (decoded, _) = binary::decode_frame(&frame).expect("valid").expect("complete");
    assert_eq!(decoded.to_string(), value.to_string());

    let over = Json::Str("x".repeat(max_str + 1));
    let frame = binary::encode_frame(&over);
    assert!(
        binary::decode_frame(&frame).is_err(),
        "an oversize frame must be rejected, not buffered"
    );
}

#[test]
fn magic_byte_cannot_be_confused_with_partial_json() {
    // 0xB1 is a UTF-8 continuation byte: no JSON text can start with it,
    // so a buffer beginning with a partial JSON line is never mis-framed
    // as binary, and vice versa.
    let partials = ["{\"kind\":\"stat", "  {\"a\": [1, 2", "tru", "\"→🧪"];
    for p in partials {
        assert_ne!(p.as_bytes()[0], binary::MAGIC);
    }
    let frame = binary::encode_frame(&Json::obj(vec![("kind", Json::str("status"))]));
    assert_eq!(frame[0], binary::MAGIC);
    assert!(
        std::str::from_utf8(&frame[..1]).is_err(),
        "magic must not be valid UTF-8 on its own"
    );
}

// ---------------------------------------------------------------------------
// Live-server equivalence
// ---------------------------------------------------------------------------

fn send_json(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    line: &str,
) -> String {
    stream.write_all(format!("{line}\n").as_bytes()).expect("send json");
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("json reply");
    reply.trim_end_matches('\n').to_string()
}

fn send_binary(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    value: &Json,
) -> Json {
    stream.write_all(&binary::encode_frame(value)).expect("send binary");
    let mut header = [0u8; binary::HEADER_BYTES];
    reader.read_exact(&mut header).expect("binary header");
    assert_eq!(header[0], binary::MAGIC, "reply must be framed binary");
    let len = u32::from_le_bytes([header[2], header[3], header[4], header[5]]) as usize;
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload).expect("binary payload");
    let mut frame = header.to_vec();
    frame.extend_from_slice(&payload);
    let (decoded, used) =
        binary::decode_frame(&frame).expect("valid reply").expect("complete");
    assert_eq!(used, frame.len());
    decoded
}

/// For every job kind: warm the caches, then ask the same request over
/// both framings and require the decoded binary reply to serialize to the
/// exact bytes of the JSON reply.
#[test]
fn binary_and_json_replies_are_byte_identical_per_job_kind() {
    let server =
        Server::start("127.0.0.1:0", ServiceConfig::default()).expect("bind server");
    let addr = server.local_addr();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    let requests = [
        r#"{"id":"c","kind":"coverage","test":"march-c","words":48}"#,
        r#"{"id":"d","kind":"detects","test":"march-c","words":48,"fault":"sa0@7"}"#,
        r#"{"id":"s","kind":"synth","classes":"saf,tf","max_elements":4}"#,
        r#"{"id":"a","kind":"area","table":"2"}"#,
    ];
    for line in requests {
        // Warm-up: both protocol answers below come from the result memo,
        // so their `cached` flags (and therefore bytes) agree.
        let _ = send_json(&mut stream, &mut reader, line);
        let json_reply = send_json(&mut stream, &mut reader, line);
        let value = Json::parse(line).expect("request parses");
        let binary_reply = send_binary(&mut stream, &mut reader, &value);
        assert_eq!(binary_reply.to_string(), json_reply, "framings disagree for {line}");
    }

    // Mixed framing on one connection: replies already interleaved above;
    // finish with a JSON shutdown to prove the line path still works.
    let bye = send_json(&mut stream, &mut reader, r#"{"id":"bye","kind":"shutdown"}"#);
    assert!(bye.contains("\"draining\":true"), "{bye}");
    let _ = server.join();
}

/// Errors speak the request's framing too: a binary usage error decodes to
/// the same value a JSON request would get as text.
#[test]
fn binary_errors_match_json_errors() {
    let server =
        Server::start("127.0.0.1:0", ServiceConfig::default()).expect("bind server");
    let addr = server.local_addr();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    let bad = r#"{"id":7,"kind":"frob"}"#;
    let json_reply = send_json(&mut stream, &mut reader, bad);
    let binary_reply =
        send_binary(&mut stream, &mut reader, &Json::parse(bad).expect("parses"));
    assert_eq!(binary_reply.to_string(), json_reply);
    assert!(json_reply.contains("unknown kind"), "{json_reply}");

    server.shutdown();
    let _ = server.join();
}
