//! Resilience tests against a live daemon: deterministic chaos injection,
//! deadlines, exactly-once accounting, shutdown under load, and
//! fuzz-style abuse of the line protocol.

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

use mbist_service::chaos::ChaosConfig;
use mbist_service::json::Json;
use mbist_service::{Server, ServiceConfig};

fn start(config: ServiceConfig) -> Server {
    Server::start("127.0.0.1:0", config).expect("bind ephemeral port")
}

fn connect(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream.set_read_timeout(Some(Duration::from_secs(60))).expect("read timeout");
    let reader = BufReader::new(stream.try_clone().expect("clone"));
    (stream, reader)
}

/// Sends one line and reads one reply line.
fn ask(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> Json {
    stream.write_all(format!("{line}\n").as_bytes()).expect("send");
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("reply");
    Json::parse(reply.trim()).expect("reply is JSON")
}

fn error_class(reply: &Json) -> &str {
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false), "{reply}");
    reply.get("error").unwrap().get("class").and_then(Json::as_str).expect("class")
}

#[test]
fn blown_deadline_times_out_mid_simulation_within_twice_the_budget() {
    let server = start(ServiceConfig { workers: 1, ..ServiceConfig::default() });
    let addr = server.local_addr();
    let (mut stream, mut reader) = connect(addr);

    // Big enough that the full-replay run takes far longer than the
    // deadline in a debug build; the cooperative token must cut it off
    // inside the engine loops, not after the request completes.
    let deadline_ms = 800u64;
    let line = format!(
        r#"{{"id":"t1","kind":"coverage","test":"march-c","words":2048,"engine":"full","max_faults":5000,"jobs":1,"deadline_ms":{deadline_ms}}}"#
    );
    let started = Instant::now();
    let reply = ask(&mut stream, &mut reader, &line);
    let elapsed = started.elapsed();

    assert_eq!(error_class(&reply), "timeout", "{reply}");
    assert_eq!(reply.get("id").and_then(Json::as_str), Some("t1"), "id echoed");
    let reported = reply.get("error").unwrap().get("elapsed_ms").unwrap().as_u64().unwrap();
    assert!(reported >= deadline_ms, "elapsed_ms {reported} below the deadline");
    assert!(
        elapsed <= Duration::from_millis(2 * deadline_ms),
        "timeout took {elapsed:?}, over 2x the {deadline_ms} ms deadline"
    );

    // The worker is free again: a small request still completes.
    let ok = ask(&mut stream, &mut reader, r#"{"kind":"area","table":"2"}"#);
    assert_eq!(ok.get("ok").and_then(Json::as_bool), Some(true));

    server.shutdown();
    let summary = server.join();
    let jobs = summary.metrics.get("jobs").unwrap();
    assert_eq!(jobs.get("timeouts").unwrap().as_u64(), Some(1));
}

#[test]
fn synth_search_deadline_returns_the_best_so_far_and_never_memoizes_it() {
    let server = start(ServiceConfig { workers: 1, ..ServiceConfig::default() });
    let addr = server.local_addr();
    let (mut stream, mut reader) = connect(addr);

    // A geometry big enough that the search takes far longer than the
    // deadline in a debug build even with the batched oracle: the search
    // must stop at a batch boundary and surface its best-so-far candidate.
    let line = r#"{"id":"s1","kind":"synth_search","universe":"saf,tf,cfin,cfid,cfst","words":262144,"budget":100000,"seed":1,"deadline_ms":300}"#;
    let reply = ask(&mut stream, &mut reader, line);
    assert_eq!(error_class(&reply), "timeout", "{reply}");
    assert_eq!(reply.get("id").and_then(Json::as_str), Some("s1"), "id echoed");
    let err = reply.get("error").unwrap();
    assert!(err.get("elapsed_ms").unwrap().as_u64().unwrap() >= 300);
    // The structured timeout carries the best candidate found so far — a
    // parseable march test, not a fragment.
    let partial = err.get("partial").and_then(Json::as_str).expect("partial candidate");
    let (name, notation) = partial.split_once(": ").expect("march notation");
    mbist_march::MarchTest::parse(name, notation).expect("partial parses");

    // Nothing partial was memoized: the result cache is still empty.
    let status = ask(&mut stream, &mut reader, r#"{"kind":"status"}"#);
    let cache = status.get("status").unwrap().get("cache").unwrap();
    assert_eq!(cache.get("results").unwrap().as_u64(), Some(0), "partial memoized");

    server.shutdown();
    let summary = server.join();
    let jobs = summary.metrics.get("jobs").unwrap();
    assert_eq!(jobs.get("timeouts").unwrap().as_u64(), Some(1));
    let row = summary.metrics.get("kinds").unwrap().get("synth_search").unwrap();
    assert_eq!(row.get("errors").unwrap().as_u64(), Some(1));
}

#[test]
fn always_panicking_worker_fails_the_job_with_internal_after_one_retry() {
    let config = ServiceConfig {
        workers: 1,
        chaos: ChaosConfig::parse("seed=1,panic=1.0").unwrap(),
        ..ServiceConfig::default()
    };
    let server = start(config);
    let addr = server.local_addr();
    let (mut stream, mut reader) = connect(addr);

    let reply = ask(
        &mut stream,
        &mut reader,
        r#"{"id":77,"kind":"coverage","test":"mats","words":8}"#,
    );
    assert_eq!(error_class(&reply), "internal", "{reply}");
    assert_eq!(reply.get("id").and_then(Json::as_u64), Some(77), "id echoed");
    assert!(
        reply.get("error").unwrap().get("job_id").unwrap().as_u64().is_some(),
        "internal carries the job id"
    );

    server.shutdown();
    let summary = server.join();
    assert_eq!(summary.recovered_jobs, 0, "both attempts died; nothing recovered");
    let jobs = summary.metrics.get("jobs").unwrap();
    // Exactly-once: two dispatch attempts, one terminal answer, no drops.
    assert_eq!(jobs.get("dispatched").unwrap().as_u64(), Some(2));
    assert_eq!(jobs.get("answered").unwrap().as_u64(), Some(1));
    let chaos = summary.metrics.get("chaos").unwrap();
    assert_eq!(chaos.get("injected_panics").unwrap().as_u64(), Some(2));
}

#[test]
fn single_panic_storm_recovers_via_redispatch() {
    // burst=1: exactly the first dispatch panics; the re-dispatch runs
    // clean, so the client still gets its real answer.
    let config = ServiceConfig {
        workers: 1,
        chaos: ChaosConfig::parse("seed=5,burst=1").unwrap(),
        ..ServiceConfig::default()
    };
    let server = start(config);
    let addr = server.local_addr();
    let (mut stream, mut reader) = connect(addr);

    let reply = ask(
        &mut stream,
        &mut reader,
        r#"{"id":"r","kind":"coverage","test":"mats","words":8}"#,
    );
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true), "{reply}");
    assert_eq!(reply.get("id").and_then(Json::as_str), Some("r"));

    server.shutdown();
    let summary = server.join();
    assert_eq!(summary.recovered_jobs, 1, "the panicked job was saved");
    let jobs = summary.metrics.get("jobs").unwrap();
    assert_eq!(jobs.get("dispatched").unwrap().as_u64(), Some(2));
    assert_eq!(jobs.get("answered").unwrap().as_u64(), Some(1));
}

#[test]
fn injected_drops_close_the_connection_but_not_the_server() {
    let config = ServiceConfig {
        workers: 1,
        chaos: ChaosConfig::parse("seed=2,drop=1.0").unwrap(),
        ..ServiceConfig::default()
    };
    let server = start(config);
    let addr = server.local_addr();

    for round in 0..2 {
        let (mut stream, mut reader) = connect(addr);
        stream.write_all(b"{\"kind\":\"status\"}\n").expect("send");
        let mut reply = String::new();
        let n = reader.read_line(&mut reply).expect("read");
        assert_eq!(n, 0, "round {round}: dropped request must yield EOF, got {reply:?}");
    }

    server.shutdown();
    let summary = server.join();
    let chaos = summary.metrics.get("chaos").unwrap();
    assert_eq!(chaos.get("injected_drops").unwrap().as_u64(), Some(2));
}

#[test]
fn shutdown_under_load_answers_every_accepted_request_exactly_once() {
    let server = start(ServiceConfig { workers: 2, ..ServiceConfig::default() });
    let addr = server.local_addr();

    // N clients race a shutdown. Every client must read exactly one
    // well-formed terminal reply: a result, or a structured shutdown
    // error — never silence, never a second line.
    let (sent_tx, sent_rx) = mpsc::channel();
    let clients: Vec<_> = (0..8)
        .map(|i| {
            let sent = sent_tx.clone();
            thread::spawn(move || {
                let (mut stream, mut reader) = connect(addr);
                let line = format!(
                    r#"{{"id":{i},"kind":"coverage","test":"march-c","words":{},"engine":"full"}}"#,
                    200 + i
                );
                stream.write_all(format!("{line}\n").as_bytes()).expect("send");
                sent.send(()).expect("signal");
                let mut raw = String::new();
                reader.read_line(&mut raw).expect("reply");
                let reply = Json::parse(raw.trim()).expect("reply is JSON");
                assert_eq!(reply.get("id").and_then(Json::as_u64), Some(i), "{reply}");
                match reply.get("ok").and_then(Json::as_bool) {
                    Some(true) => {}
                    Some(false) => {
                        let class =
                            reply.get("error").unwrap().get("class").unwrap().as_str();
                        assert!(
                            matches!(class, Some("shutdown" | "busy")),
                            "unexpected terminal error {reply}"
                        );
                    }
                    None => panic!("malformed reply {reply}"),
                }
                // No second reply may arrive for this request.
                let mut extra = String::new();
                match reader.read_line(&mut extra) {
                    Ok(0) => {}
                    Ok(_) => panic!("duplicate reply {extra:?}"),
                    Err(e) => assert!(
                        matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut),
                        "{e}"
                    ),
                }
            })
        })
        .collect();

    // Only pull the trigger once every request is in flight.
    for _ in 0..8 {
        sent_rx.recv().expect("client sent");
    }
    let (mut stream, mut reader) = connect(addr);
    let bye = ask(&mut stream, &mut reader, r#"{"kind":"shutdown"}"#);
    assert_eq!(bye.get("draining").and_then(Json::as_bool), Some(true));

    for c in clients {
        c.join().expect("client thread");
    }
    let summary = server.join();
    let jobs = summary.metrics.get("jobs").unwrap();
    // The drain invariant: every dispatched job was answered (no chaos, so
    // attempts == jobs), and nothing was left queued or dropped.
    assert_eq!(
        jobs.get("dispatched").unwrap().as_u64(),
        jobs.get("answered").unwrap().as_u64(),
        "{summary:?}"
    );
}

#[test]
fn oversized_line_gets_a_structured_error_then_the_connection_closes() {
    let server = start(ServiceConfig { workers: 1, ..ServiceConfig::default() });
    let addr = server.local_addr();
    let (mut stream, mut reader) = connect(addr);

    // 80 KiB without a newline: past the 64 KiB frame cap.
    let flood = vec![b'a'; 80 * 1024];
    stream.write_all(&flood).expect("send flood");
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("read");
    let v = Json::parse(reply.trim()).expect("structured error");
    assert_eq!(error_class(&v), "usage");
    assert!(
        v.get("error")
            .unwrap()
            .get("message")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("exceeds"),
        "{v}"
    );
    let mut rest = String::new();
    match reader.read_line(&mut rest) {
        Ok(0) => {}  // clean close
        Err(_) => {} // RST: the server closed with flood bytes still unread
        Ok(_) => panic!("connection must close, got {rest:?}"),
    }

    server.shutdown();
    let _ = server.join();
}

#[test]
fn invalid_utf8_and_nul_bytes_get_usage_errors_and_the_connection_survives() {
    let server = start(ServiceConfig { workers: 1, ..ServiceConfig::default() });
    let addr = server.local_addr();
    let (mut stream, mut reader) = connect(addr);

    // Invalid UTF-8 in the line: structured error, connection stays up.
    stream.write_all(b"{\"kind\":\xff\xfe\"status\"}\n").expect("send");
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("read");
    let v = Json::parse(reply.trim()).expect("structured error");
    assert_eq!(error_class(&v), "usage");
    assert!(v.to_string().contains("UTF-8"), "{v}");

    // NUL bytes are valid UTF-8 but invalid JSON: still a usage error.
    stream.write_all(b"\x00\x00\x00\n").expect("send");
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("read");
    let v = Json::parse(reply.trim()).expect("structured error");
    assert_eq!(error_class(&v), "usage");

    // The same connection still serves real requests.
    let ok = ask(&mut stream, &mut reader, r#"{"kind":"status"}"#);
    assert_eq!(ok.get("ok").and_then(Json::as_bool), Some(true));

    server.shutdown();
    let _ = server.join();
}

#[test]
fn interleaved_partial_writes_reassemble_into_one_request() {
    let server = start(ServiceConfig { workers: 1, ..ServiceConfig::default() });
    let addr = server.local_addr();
    let (mut stream, mut reader) = connect(addr);

    // Dribble one request across several writes with pauses longer than
    // the server's read-poll interval: the reader must reassemble.
    for chunk in [r#"{"id":"p","#, r#""kind":"#, r#""status""#, "}\n"] {
        stream.write_all(chunk.as_bytes()).expect("send chunk");
        stream.flush().expect("flush");
        thread::sleep(Duration::from_millis(60));
    }
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("reply");
    let v = Json::parse(reply.trim()).expect("reply is JSON");
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v}");
    assert_eq!(v.get("id").and_then(Json::as_str), Some("p"));

    server.shutdown();
    let _ = server.join();
}

#[test]
fn premature_eof_mid_line_yields_a_structured_error() {
    let server = start(ServiceConfig { workers: 1, ..ServiceConfig::default() });
    let addr = server.local_addr();
    let (mut stream, mut reader) = connect(addr);

    stream.write_all(br#"{"kind":"status""#).expect("send partial");
    stream.shutdown(Shutdown::Write).expect("half-close");
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("read");
    let v = Json::parse(reply.trim()).expect("structured error");
    assert_eq!(error_class(&v), "usage");
    assert!(v.to_string().contains("EOF"), "{v}");

    server.shutdown();
    let _ = server.join();
}

#[test]
fn every_error_path_echoes_the_request_id() {
    // workers=1, depth=1: one job on the worker, one in the queue, the
    // third is shed with `busy` — all three carry ids.
    let server =
        start(ServiceConfig { workers: 1, queue_depth: 1, ..ServiceConfig::default() });
    let addr = server.local_addr();

    // Malformed-but-JSON line: the id must be recovered and echoed.
    let (mut stream, mut reader) = connect(addr);
    let bad = ask(&mut stream, &mut reader, r#"{"id":"m1","kind":"frob"}"#);
    assert_eq!(error_class(&bad), "usage");
    assert_eq!(bad.get("id").and_then(Json::as_str), Some("m1"), "{bad}");

    // Occupy the worker and the queue slot with slow jobs on their own
    // connections (each blocks reading its reply). Their own deadlines
    // bound the test: both resolve as timeouts in ~a second.
    let slow = r#"{"id":"s","kind":"coverage","test":"march-c","words":1024,"engine":"full","max_faults":4000,"jobs":1,"deadline_ms":1200}"#;
    let mut holders: Vec<_> = (0..2)
        .map(|_| {
            let (mut s, r) = connect(addr);
            s.write_all(format!("{slow}\n").as_bytes()).expect("send slow");
            thread::sleep(Duration::from_millis(150));
            (s, r)
        })
        .collect();

    let busy = ask(&mut stream, &mut reader, r#"{"id":"b1","kind":"area"}"#);
    assert_eq!(error_class(&busy), "busy");
    assert_eq!(busy.get("id").and_then(Json::as_str), Some("b1"), "{busy}");
    assert!(busy.get("error").unwrap().get("retry_after_ms").unwrap().as_u64().is_some());

    // Drain the holders so shutdown is quick.
    for (_, reader) in &mut holders {
        let mut line = String::new();
        let _ = reader.read_line(&mut line);
    }
    server.shutdown();
    let _ = server.join();
}
