//! End-to-end tests against a live daemon on an ephemeral port.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::thread;
use std::time::Duration;

use mbist_march::{evaluate_coverage, CoverageOptions};
use mbist_mem::MemGeometry;
use mbist_service::json::Json;
use mbist_service::{Server, ServiceConfig};

fn start(config: ServiceConfig) -> Server {
    Server::start("127.0.0.1:0", config).expect("bind ephemeral port")
}

/// One connection; sends each line, reads one reply line per request.
fn roundtrip(addr: std::net::SocketAddr, lines: &[&str]) -> Vec<Json> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut replies = Vec::new();
    for line in lines {
        // Single write per request: a separate newline segment would trip
        // Nagle/delayed-ACK and slow every roundtrip by ~40 ms.
        stream.write_all(format!("{line}\n").as_bytes()).expect("send");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("reply");
        replies.push(Json::parse(reply.trim()).expect("reply is JSON"));
    }
    replies
}

fn text_of(reply: &Json) -> &str {
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true), "{reply}");
    reply.get("text").and_then(Json::as_str).expect("text payload")
}

#[test]
fn concurrent_identical_and_distinct_requests_match_the_offline_oracle() {
    let server = start(ServiceConfig { workers: 4, ..ServiceConfig::default() });
    let addr = server.local_addr();

    // The offline answers the service responses must match byte for byte.
    let oracle = |test: &str, words: u64| {
        let t = mbist_march::library::by_name(test).expect("library test");
        evaluate_coverage(
            &t,
            &MemGeometry::bit_oriented(words),
            &CoverageOptions {
                max_faults_per_class: Some(256),
                jobs: Some(1),
                ..CoverageOptions::default()
            },
        )
        .to_string()
    };
    let expect_c64 = oracle("march-c", 64);
    let expect_mats16 = oracle("mats+", 16);

    // N identical + M distinct requests, all in flight simultaneously.
    let mut clients = Vec::new();
    for i in 0..8 {
        let (line, expected) = if i % 2 == 0 {
            (r#"{"kind":"coverage","test":"march-c","words":64}"#, expect_c64.clone())
        } else {
            (r#"{"kind":"coverage","test":"mats+","words":16}"#, expect_mats16.clone())
        };
        clients.push(thread::spawn(move || {
            let reply = roundtrip(addr, &[line]).pop().expect("one reply");
            assert_eq!(text_of(&reply), expected, "client {i} diverged");
        }));
    }
    for c in clients {
        c.join().expect("client thread");
    }

    server.shutdown();
    let summary = server.join();
    assert_eq!(summary.served, 8);
}

#[test]
fn exact_repeats_hit_the_result_memo_and_orderings_unify() {
    let server = start(ServiceConfig { workers: 1, ..ServiceConfig::default() });
    let addr = server.local_addr();
    let replies = roundtrip(
        addr,
        &[
            // Cold: compiles the trace and computes the report.
            r#"{"kind":"coverage","test":"march-c","words":32}"#,
            // Same request, differently spelled: explicit defaults, shuffled
            // field order. Must be a full memo hit.
            r#"{"jobs":1,"width":1,"words":32,"kind":"coverage","test":"march-c","max_faults":256,"engine":"sliced"}"#,
            // Different jobs setting: output is identical, so the memo key
            // deliberately ignores it — still a hit.
            r#"{"kind":"coverage","test":"march-c","words":32,"jobs":3}"#,
            // Different geometry: must not collide.
            r#"{"kind":"coverage","test":"march-c","words":33}"#,
            r#"{"kind":"status"}"#,
        ],
    );
    assert_eq!(replies[0].get("cached").and_then(Json::as_bool), Some(false));
    assert_eq!(replies[1].get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(replies[2].get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(replies[3].get("cached").and_then(Json::as_bool), Some(false));
    assert_eq!(text_of(&replies[0]), text_of(&replies[1]));
    assert_eq!(text_of(&replies[1]), text_of(&replies[2]));
    assert_ne!(text_of(&replies[0]), text_of(&replies[3]));

    let cache = replies[4].get("status").unwrap().get("cache").unwrap();
    assert_eq!(cache.get("result_hits").unwrap().as_u64(), Some(2));
    assert_eq!(cache.get("result_misses").unwrap().as_u64(), Some(2));
    assert_eq!(cache.get("trace_hits").unwrap().as_u64(), Some(2));
    assert_eq!(cache.get("trace_misses").unwrap().as_u64(), Some(2));

    server.shutdown();
    let _ = server.join();
}

#[test]
fn synth_search_matches_the_offline_report_and_memoizes_across_jobs() {
    let server = start(ServiceConfig { workers: 2, ..ServiceConfig::default() });
    let addr = server.local_addr();

    // The offline report the service response must match byte for byte.
    let options = mbist_search::SearchOptions {
        geometry: MemGeometry::bit_oriented(64),
        classes: vec![mbist_mem::FaultClass::StuckAt, mbist_mem::FaultClass::Transition],
        budget: 400,
        seed: 3,
        jobs: Some(1),
        ..mbist_search::SearchOptions::default()
    };
    let expected =
        mbist_search::report_text(&mbist_search::search_march("found", &options), &options);

    let replies = roundtrip(
        addr,
        &[
            // Cold: runs the search.
            r#"{"kind":"synth_search","universe":"saf,tf","words":64,"budget":400,"seed":3}"#,
            // Exact repeat: full memo hit.
            r#"{"kind":"synth_search","universe":"saf,tf","words":64,"budget":400,"seed":3}"#,
            // Different jobs setting: bit-identical output, so the memo key
            // deliberately ignores it — still a hit.
            r#"{"kind":"synth_search","universe":"saf,tf","words":64,"budget":400,"seed":3,"jobs":3}"#,
            // Different seed: a different search; must not collide.
            r#"{"kind":"synth_search","universe":"saf,tf","words":64,"budget":400,"seed":4}"#,
        ],
    );
    assert_eq!(replies[0].get("cached").and_then(Json::as_bool), Some(false));
    assert_eq!(replies[1].get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(replies[2].get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(replies[3].get("cached").and_then(Json::as_bool), Some(false));
    assert_eq!(text_of(&replies[0]), expected, "service diverged from offline");
    assert_eq!(text_of(&replies[1]), expected);
    assert_eq!(text_of(&replies[2]), expected);
    assert!(text_of(&replies[0]).contains("converged"), "easy universe converges");

    server.shutdown();
    let summary = server.join();
    let kinds = summary.metrics.get("kinds").expect("kinds");
    let row = kinds.get("synth_search").expect("synth_search counters");
    assert_eq!(row.get("requests").unwrap().as_u64(), Some(4));
    assert_eq!(row.get("errors").unwrap().as_u64(), Some(0));
}

#[test]
fn saturated_queue_returns_busy_instead_of_hanging() {
    // One worker, queue depth 1: with six slow full-replay requests in
    // flight at once, at least one must be shed with a `busy` error.
    let server =
        start(ServiceConfig { workers: 1, queue_depth: 1, ..ServiceConfig::default() });
    let addr = server.local_addr();
    let clients: Vec<_> = (0..6)
        .map(|_| {
            thread::spawn(move || {
                let reply = roundtrip(
                    addr,
                    &[r#"{"kind":"coverage","test":"march-c","words":512,"engine":"full"}"#],
                )
                .pop()
                .expect("one reply");
                match reply.get("ok").and_then(Json::as_bool) {
                    Some(true) => None,
                    Some(false) => {
                        let err = reply.get("error").expect("error object");
                        assert_eq!(err.get("class").and_then(Json::as_str), Some("busy"));
                        let hint =
                            err.get("retry_after_ms").and_then(Json::as_u64).expect("hint");
                        // Load-derived: no fixed floor beyond the 1 ms
                        // clamp, but it must always be a usable back-off.
                        assert!((1..=30_000).contains(&hint), "retry hint {hint}");
                        Some(())
                    }
                    None => panic!("malformed reply {reply}"),
                }
            })
        })
        .collect();
    let rejected = clients.into_iter().filter_map(|c| c.join().expect("client")).count();
    assert!(rejected >= 1, "expected at least one busy rejection");

    // status keeps answering even though the pool was saturated, and it
    // accounts the rejections.
    let status = roundtrip(addr, &[r#"{"kind":"status"}"#]).pop().unwrap();
    let queue = status.get("status").unwrap().get("queue").unwrap();
    assert_eq!(queue.get("rejected_busy").unwrap().as_u64(), Some(rejected as u64));

    server.shutdown();
    let _ = server.join();
}

#[test]
fn shutdown_request_drains_and_joins_cleanly() {
    let server = start(ServiceConfig { workers: 2, ..ServiceConfig::default() });
    let addr = server.local_addr();
    let replies = roundtrip(
        addr,
        &[
            r#"{"id":"warm","kind":"detects","test":"march-c","words":64,"fault":"sa0@5"}"#,
            r#"{"id":"bye","kind":"shutdown"}"#,
        ],
    );
    assert_eq!(replies[0].get("detected").and_then(Json::as_bool), Some(true));
    assert_eq!(replies[1].get("id").and_then(Json::as_str), Some("bye"));
    assert_eq!(replies[1].get("draining").and_then(Json::as_bool), Some(true));

    let summary = server.join();
    assert_eq!(summary.served, 2);
    let kinds = summary.metrics.get("kinds").expect("kinds");
    assert_eq!(kinds.get("detects").unwrap().get("requests").unwrap().as_u64(), Some(1));
    assert_eq!(kinds.get("shutdown").unwrap().get("requests").unwrap().as_u64(), Some(1));

    // New connections are refused once the acceptor has stopped.
    thread::sleep(Duration::from_millis(50));
    assert!(TcpStream::connect(addr).is_err(), "listener should be gone");
}

#[test]
fn malformed_lines_get_usage_errors_and_the_connection_survives() {
    let server = start(ServiceConfig::default());
    let addr = server.local_addr();
    let replies = roundtrip(
        addr,
        &[
            "this is not json",
            r#"{"kind":"frob"}"#,
            r#"{"kind":"coverage","test":"no-such-test","words":8}"#,
            r#"{"kind":"detects","test":"mats","words":8,"fault":"sa9@0"}"#,
            r#"{"kind":"area","table":"2"}"#, // still works after the errors
        ],
    );
    for bad in &replies[..4] {
        assert_eq!(bad.get("ok").and_then(Json::as_bool), Some(false), "{bad}");
        assert_eq!(
            bad.get("error").unwrap().get("class").and_then(Json::as_str),
            Some("usage"),
            "{bad}"
        );
    }
    assert!(text_of(&replies[4]).contains("Table 2"), "area table text");

    server.shutdown();
    let _ = server.join();
}

#[test]
fn cold_cache_config_disables_memoization() {
    let server = start(ServiceConfig { cache_bytes: 0, ..ServiceConfig::default() });
    let addr = server.local_addr();
    let line = r#"{"kind":"coverage","test":"mats","words":16}"#;
    let replies = roundtrip(addr, &[line, line]);
    assert_eq!(replies[0].get("cached").and_then(Json::as_bool), Some(false));
    assert_eq!(replies[1].get("cached").and_then(Json::as_bool), Some(false));
    assert_eq!(text_of(&replies[0]), text_of(&replies[1]), "still deterministic");
    server.shutdown();
    let _ = server.join();
}
