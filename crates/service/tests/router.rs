//! End-to-end tests for the consistent-hash router fronting live shard
//! daemons on ephemeral ports.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};

use mbist_service::binary;
use mbist_service::json::Json;
use mbist_service::{Router, RouterConfig, Server, ServiceConfig};

fn start_fleet(shards: usize, config: RouterConfig) -> (Vec<Server>, Router) {
    let servers: Vec<Server> = (0..shards)
        .map(|_| Server::start("127.0.0.1:0", ServiceConfig::default()).expect("shard"))
        .collect();
    let addrs: Vec<SocketAddr> = servers.iter().map(Server::local_addr).collect();
    let router = Router::start("127.0.0.1:0", RouterConfig { shards: addrs, ..config })
        .expect("router");
    (servers, router)
}

fn roundtrip(addr: SocketAddr, lines: &[&str]) -> Vec<Json> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut replies = Vec::new();
    for line in lines {
        stream.write_all(format!("{line}\n").as_bytes()).expect("send");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("reply");
        replies.push(Json::parse(reply.trim()).expect("reply is JSON"));
    }
    replies
}

#[test]
fn routed_replies_match_a_direct_shard_byte_for_byte() {
    let (servers, router) = start_fleet(2, RouterConfig::default());
    let requests = [
        r#"{"id":1,"kind":"coverage","test":"march-c","words":40}"#,
        r#"{"id":2,"kind":"detects","test":"march-c","words":40,"fault":"sa1@3"}"#,
        r#"{"id":3,"kind":"area","table":"1"}"#,
        r#"{"id":4,"kind":"synth","classes":"saf","max_elements":3}"#,
    ];
    // An identical single-shard fleet serves as the oracle: the router must
    // not change a single reply byte.
    let oracle = Server::start("127.0.0.1:0", ServiceConfig::default()).expect("oracle");
    for line in requests {
        let via_router = roundtrip(router.local_addr(), &[line]).pop().unwrap();
        let direct = roundtrip(oracle.local_addr(), &[line]).pop().unwrap();
        assert_eq!(via_router.to_string(), direct.to_string(), "diverged on {line}");
    }
    oracle.shutdown();
    let _ = oracle.join();
    router.shutdown();
    let _ = router.join();
    for s in servers {
        let _ = s.join();
    }
}

#[test]
fn placement_is_sticky_and_spreads_distinct_traces() {
    let (servers, router) = start_fleet(2, RouterConfig::default());
    let addr = router.local_addr();

    // The same (test, geometry) repeated: second answer must be a memo hit,
    // which can only happen if both landed on the same shard.
    let line = r#"{"kind":"coverage","test":"march-c","words":24}"#;
    let replies = roundtrip(addr, &[line, line]);
    assert_eq!(replies[0].get("cached").and_then(Json::as_bool), Some(false));
    assert_eq!(replies[1].get("cached").and_then(Json::as_bool), Some(true));

    // Many distinct geometries: the ring must not pin everything to one
    // shard. Check via each shard's own served counter after shutdown.
    let lines: Vec<String> = (0..16)
        .map(|i| format!(r#"{{"kind":"coverage","test":"mats","words":{}}}"#, 16 + i))
        .collect();
    let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
    let _ = roundtrip(addr, &refs);

    router.shutdown();
    let _ = router.join();
    let mut served = Vec::new();
    for s in servers {
        served.push(s.join().served);
    }
    assert!(
        served.iter().all(|&n| n > 0),
        "every shard should have seen traffic: {served:?}"
    );
}

#[test]
fn tenant_quota_zero_sheds_with_a_structured_busy() {
    let (servers, router) =
        start_fleet(1, RouterConfig { tenant_quota: Some(0), ..RouterConfig::default() });
    let reply = roundtrip(
        router.local_addr(),
        &[r#"{"id":"q","kind":"coverage","test":"mats","words":8,"tenant":"acme"}"#],
    )
    .pop()
    .unwrap();
    assert_eq!(reply.get("id").and_then(Json::as_str), Some("q"));
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));
    let err = reply.get("error").expect("error object");
    assert_eq!(err.get("class").and_then(Json::as_str), Some("busy"));
    let hint = err.get("retry_after_ms").and_then(Json::as_u64).expect("hint");
    assert!((1..=30_000).contains(&hint), "retry hint {hint}");

    // status is answered router-locally and reports the shed.
    let status = roundtrip(router.local_addr(), &[r#"{"kind":"status"}"#]).pop().unwrap();
    let r = status.get("status").unwrap().get("router").expect("router status");
    assert_eq!(r.get("shed").and_then(Json::as_u64), Some(1));
    assert_eq!(r.get("forwarded").and_then(Json::as_u64), Some(0));

    router.shutdown();
    let _ = router.join();
    for s in servers {
        let _ = s.join();
    }
}

#[test]
fn binary_framing_passes_through_the_router_unchanged() {
    let (servers, router) = start_fleet(2, RouterConfig::default());
    let addr = router.local_addr();
    let line = r#"{"id":"b","kind":"coverage","test":"march-c","words":32}"#;
    // Warm both paths so `cached` flags agree.
    let _ = roundtrip(addr, &[line]);
    let json_reply = roundtrip(addr, &[line]).pop().unwrap();

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let value = Json::parse(line).expect("request parses");
    stream.write_all(&binary::encode_frame(&value)).expect("send frame");
    let mut header = [0u8; binary::HEADER_BYTES];
    stream.read_exact(&mut header).expect("reply header");
    assert_eq!(header[0], binary::MAGIC);
    let len = u32::from_le_bytes([header[2], header[3], header[4], header[5]]) as usize;
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload).expect("reply payload");
    let mut frame = header.to_vec();
    frame.extend_from_slice(&payload);
    let (decoded, _) = binary::decode_frame(&frame).expect("valid").expect("complete");
    assert_eq!(decoded.to_string(), json_reply.to_string());

    router.shutdown();
    let _ = router.join();
    for s in servers {
        let _ = s.join();
    }
}

#[test]
fn shutdown_through_the_router_drains_the_whole_fleet() {
    let (servers, router) = start_fleet(2, RouterConfig::default());
    let addr = router.local_addr();
    let replies = roundtrip(
        addr,
        &[
            r#"{"kind":"detects","test":"mats","words":16,"fault":"sa0@1"}"#,
            r#"{"id":"bye","kind":"shutdown"}"#,
        ],
    );
    assert_eq!(replies[0].get("detected").and_then(Json::as_bool), Some(true));
    assert_eq!(replies[1].get("draining").and_then(Json::as_bool), Some(true));

    let summary = router.join();
    assert!(summary.served >= 2, "router served {}", summary.served);
    // Every shard received the broadcast shutdown and joins cleanly.
    for s in servers {
        let _ = s.join();
    }
    // The router listener is gone.
    std::thread::sleep(std::time::Duration::from_millis(50));
    assert!(TcpStream::connect(addr).is_err(), "router should refuse connections");
}

#[test]
fn router_errors_echo_ids_and_match_daemon_wording() {
    let (servers, router) = start_fleet(1, RouterConfig::default());
    let replies =
        roundtrip(router.local_addr(), &["this is not json", r#"{"id":9,"kind":"frob"}"#]);
    for r in &replies {
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(false), "{r}");
        assert_eq!(
            r.get("error").unwrap().get("class").and_then(Json::as_str),
            Some("usage"),
            "{r}"
        );
    }
    assert_eq!(replies[1].get("id").and_then(Json::as_u64), Some(9), "id echoed");

    router.shutdown();
    let _ = router.join();
    for s in servers {
        let _ = s.join();
    }
}
