//! # mbist-logic — two-level logic minimization and gate estimation
//!
//! A small, deterministic logic-synthesis substrate used by the MBIST area
//! model. Hardwired march-test controllers are elaborated into state
//! transition tables; every next-state/output bit becomes a [`TruthTable`],
//! is minimized by [`minimize`] (Quine–McCluskey primes + greedy covering),
//! and the resulting [`Cover`]s are costed in 2-input-NAND equivalents by
//! [`estimate_gates`] / [`estimate_multi_output`] — the same unit the paper
//! uses for "internal area".
//!
//! # Examples
//!
//! ```
//! use mbist_logic::{estimate_gates, minimize, TruthTable};
//!
//! // Next-state bit of a tiny FSM: on = Σm(2,3,6), 3 inputs.
//! let tt = TruthTable::from_fn(3, |m| matches!(m, 2 | 3 | 6).into());
//! let cover = minimize(&tt)?;
//! assert!(tt.is_implemented_by(&cover));
//! let gates = estimate_gates(&cover);
//! assert!(gates.nand2_equivalents() > 0.0);
//! # Ok::<(), mbist_logic::LogicError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod count;
mod cover;
mod cube;
mod error;
mod minimize;
mod truth;

pub use count::{estimate_gates, estimate_multi_output, GateEstimate, MultiOutputEstimate};
pub use cover::Cover;
pub use cube::Cube;
pub use error::LogicError;
pub use minimize::{minimize, prime_implicants, MAX_MINIMIZE_INPUTS};
pub use truth::{Spec, TruthTable};
