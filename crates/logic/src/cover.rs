//! Sum-of-products covers.

use std::fmt;

use crate::cube::Cube;

/// A sum-of-products cover: the OR of a set of [`Cube`]s over a fixed
/// number of inputs.
///
/// # Examples
///
/// ```
/// use mbist_logic::{Cover, Cube};
///
/// let mut f = Cover::new(3);
/// f.push(Cube::parse("1--").unwrap());
/// f.push(Cube::parse("-11").unwrap());
/// assert!(f.evaluate(0b100));
/// assert!(f.evaluate(0b011));
/// assert!(!f.evaluate(0b010));
/// assert_eq!(f.cube_count(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Cover {
    inputs: u8,
    cubes: Vec<Cube>,
}

impl Cover {
    /// Creates an empty cover (constant false) over `inputs`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is 0 or greater than 64.
    #[must_use]
    pub fn new(inputs: u8) -> Self {
        assert!((1..=64).contains(&inputs), "cover inputs must be 1..=64");
        Self { inputs, cubes: Vec::new() }
    }

    /// Builds a cover from cubes.
    ///
    /// # Panics
    ///
    /// Panics if any cube has a different input count.
    #[must_use]
    pub fn from_cubes(inputs: u8, cubes: Vec<Cube>) -> Self {
        for c in &cubes {
            assert_eq!(c.inputs(), inputs, "cube input count mismatch");
        }
        Self { inputs, cubes }
    }

    /// Number of inputs.
    #[must_use]
    pub fn inputs(&self) -> u8 {
        self.inputs
    }

    /// Adds a cube.
    ///
    /// # Panics
    ///
    /// Panics if the cube's input count differs.
    pub fn push(&mut self, cube: Cube) {
        assert_eq!(cube.inputs(), self.inputs, "cube input count mismatch");
        self.cubes.push(cube);
    }

    /// The cubes of the cover.
    #[must_use]
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Number of product terms.
    #[must_use]
    pub fn cube_count(&self) -> usize {
        self.cubes.len()
    }

    /// Total literal count over all product terms — the classic two-level
    /// cost function.
    #[must_use]
    pub fn literal_count(&self) -> u32 {
        self.cubes.iter().map(Cube::literals).sum()
    }

    /// Evaluates the cover on a minterm.
    #[must_use]
    pub fn evaluate(&self, minterm: u64) -> bool {
        self.cubes.iter().any(|c| c.contains(minterm))
    }

    /// Whether the cover contains no cubes (constant false).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cubes.is_empty()
    }

    /// Removes cubes that are single-cube-covered by another cube in the
    /// cover (simple containment sweep, not full irredundancy).
    pub fn remove_contained(&mut self) {
        let cubes = std::mem::take(&mut self.cubes);
        let mut kept: Vec<Cube> = Vec::with_capacity(cubes.len());
        // Larger cubes first so containment checks see the big ones early.
        let mut sorted = cubes;
        sorted.sort_by_key(|c| c.literals());
        for c in sorted {
            if !kept.iter().any(|k| k.covers(&c)) {
                kept.push(c);
            }
        }
        self.cubes = kept;
    }

    /// Checks functional equivalence against another cover by exhaustive
    /// simulation. Intended for verification of small functions
    /// (cost `2^inputs`).
    ///
    /// # Panics
    ///
    /// Panics if the input counts differ or exceed 24.
    #[must_use]
    pub fn equivalent(&self, other: &Cover) -> bool {
        assert_eq!(self.inputs, other.inputs, "input count mismatch");
        assert!(self.inputs <= 24, "exhaustive equivalence limited to 24 inputs");
        (0..(1u64 << self.inputs)).all(|m| self.evaluate(m) == other.evaluate(m))
    }
}

impl fmt::Debug for Cover {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cover<{}>[{}]", self.inputs, self)
    }
}

impl fmt::Display for Cover {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.cubes.is_empty() {
            return f.write_str("0");
        }
        let parts: Vec<String> = self.cubes.iter().map(Cube::to_string).collect();
        f.write_str(&parts.join(" + "))
    }
}

impl FromIterator<Cube> for Cover {
    /// Collects cubes into a cover.
    ///
    /// # Panics
    ///
    /// Panics if the iterator is empty (the input count would be unknown)
    /// or the cubes disagree on input count.
    fn from_iter<I: IntoIterator<Item = Cube>>(iter: I) -> Self {
        let cubes: Vec<Cube> = iter.into_iter().collect();
        let inputs = cubes
            .first()
            .map(Cube::inputs)
            .expect("cannot collect an empty iterator into a Cover: input count unknown");
        Cover::from_cubes(inputs, cubes)
    }
}

impl Extend<Cube> for Cover {
    fn extend<I: IntoIterator<Item = Cube>>(&mut self, iter: I) {
        for c in iter {
            self.push(c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cover(inputs: u8, cubes: &[&str]) -> Cover {
        Cover::from_cubes(inputs, cubes.iter().map(|s| Cube::parse(s).unwrap()).collect())
    }

    #[test]
    fn empty_cover_is_false() {
        let f = Cover::new(3);
        for m in 0..8 {
            assert!(!f.evaluate(m));
        }
        assert!(f.is_empty());
        assert_eq!(f.to_string(), "0");
    }

    #[test]
    fn literal_count_sums_terms() {
        let f = cover(4, &["1--0", "01--"]);
        assert_eq!(f.literal_count(), 4);
        assert_eq!(f.cube_count(), 2);
    }

    #[test]
    fn remove_contained_drops_redundant_cubes() {
        let mut f = cover(3, &["1--", "110", "10-"]);
        f.remove_contained();
        assert_eq!(f.cube_count(), 1);
        assert_eq!(f.cubes()[0].to_string(), "1--");
    }

    #[test]
    fn remove_contained_preserves_function() {
        let mut f = cover(4, &["1--0", "1100", "-01-", "0010"]);
        let orig = f.clone();
        f.remove_contained();
        assert!(f.equivalent(&orig));
    }

    #[test]
    fn equivalence_detects_difference() {
        let a = cover(3, &["1--"]);
        let b = cover(3, &["1--", "-11"]);
        assert!(!a.equivalent(&b));
        assert!(a.equivalent(&a));
    }

    #[test]
    fn collect_from_iterator() {
        let f: Cover = ["10-", "01-"].iter().map(|s| Cube::parse(s).unwrap()).collect();
        assert_eq!(f.inputs(), 3);
        assert_eq!(f.cube_count(), 2);
    }

    #[test]
    #[should_panic(expected = "input count mismatch")]
    fn mixed_width_push_panics() {
        let mut f = Cover::new(3);
        f.push(Cube::parse("10").unwrap());
    }
}
