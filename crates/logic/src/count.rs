//! Gate-count estimation for two-level covers.
//!
//! The paper reports "internal area" in units of 2-input NAND gates. This
//! module maps a minimized sum-of-products onto a NAND-NAND implementation
//! and counts 2-input gates, using the standard decompositions:
//!
//! - a `k`-input AND tree costs `k - 1` two-input gates,
//! - an `m`-term OR tree costs `m - 1` two-input gates,
//! - complemented literals need one inverter per *distinct* complemented
//!   input (input inverters are shared across product terms, as a
//!   synthesizer would),
//! - in NAND-NAND form the AND/OR gates are NAND2s; the tree decomposition
//!   adds one inverter per internal tree level joint, which we fold into a
//!   conservative `inv ≈ nand2 / 2` term.
//!
//! Multi-output blocks (a PLA-style decoder, FSM next-state logic) share
//! identical product terms across outputs via [`MultiOutputEstimate`].

use std::collections::BTreeSet;

use crate::cover::Cover;
use crate::cube::Cube;

/// Two-input-gate estimate for a logic block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GateEstimate {
    /// 2-input NAND gates.
    pub nand2: u32,
    /// Inverters.
    pub inv: u32,
}

impl GateEstimate {
    /// Combines two estimates.
    #[must_use]
    pub fn plus(self, other: GateEstimate) -> GateEstimate {
        GateEstimate { nand2: self.nand2 + other.nand2, inv: self.inv + other.inv }
    }

    /// Expresses the estimate in NAND2-gate equivalents (an inverter is
    /// counted as half a NAND2, matching typical standard-cell areas).
    #[must_use]
    pub fn nand2_equivalents(self) -> f64 {
        f64::from(self.nand2) + f64::from(self.inv) * 0.5
    }
}

/// Estimates the NAND-NAND gate cost of a single-output cover.
///
/// # Examples
///
/// ```
/// use mbist_logic::{estimate_gates, Cover, Cube};
///
/// // f = a·b + c̄  (3 inputs)
/// let f = Cover::from_cubes(3, vec![
///     Cube::parse("-11").unwrap(),
///     Cube::parse("0--").unwrap(),
/// ]);
/// let g = estimate_gates(&f);
/// assert!(g.nand2 >= 2); // one AND2 + one OR2
/// assert!(g.inv >= 1);   // at least the c̄ input inverter
/// ```
#[must_use]
pub fn estimate_gates(cover: &Cover) -> GateEstimate {
    estimate_shared(std::slice::from_ref(cover))
}

/// PLA-style multi-output estimate: identical product terms are built once
/// and fanned out to every output OR plane.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MultiOutputEstimate {
    /// Distinct product terms across all outputs.
    pub distinct_terms: usize,
    /// Total gate estimate.
    pub gates: GateEstimate,
}

/// Estimates the shared NAND-NAND gate cost of a multi-output block.
#[must_use]
pub fn estimate_multi_output(outputs: &[Cover]) -> MultiOutputEstimate {
    let gates = estimate_shared(outputs);
    let mut terms: BTreeSet<Cube> = BTreeSet::new();
    for c in outputs {
        terms.extend(c.cubes().iter().copied());
    }
    MultiOutputEstimate { distinct_terms: terms.len(), gates }
}

fn estimate_shared(outputs: &[Cover]) -> GateEstimate {
    let mut terms: BTreeSet<Cube> = BTreeSet::new();
    let mut complemented: BTreeSet<(u8, u8)> = BTreeSet::new(); // (space id, input)
    let mut nand2 = 0u32;

    for (space, cover) in outputs.iter().enumerate() {
        for cube in cover.cubes() {
            terms.insert(*cube);
            for i in 0..cube.inputs() {
                if cube.literal(i) == Some(false) {
                    complemented.insert((space as u8, i));
                }
            }
        }
        // OR plane per output.
        let m = cover.cube_count() as u32;
        if m > 1 {
            nand2 += m - 1;
        }
    }

    // AND plane: shared across outputs.
    for t in &terms {
        let k = t.literals();
        if k > 1 {
            nand2 += k - 1;
        }
    }

    // Input inverters plus tree-joint inverters (~half the tree gates).
    let inv = complemented.len() as u32 + nand2 / 2;
    GateEstimate { nand2, inv }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cover(inputs: u8, cubes: &[&str]) -> Cover {
        Cover::from_cubes(inputs, cubes.iter().map(|s| Cube::parse(s).unwrap()).collect())
    }

    #[test]
    fn empty_cover_costs_nothing() {
        let g = estimate_gates(&Cover::new(4));
        assert_eq!(g, GateEstimate::default());
        assert_eq!(g.nand2_equivalents(), 0.0);
    }

    #[test]
    fn single_positive_literal_is_free_wiring() {
        let g = estimate_gates(&cover(3, &["--1"]));
        assert_eq!(g.nand2, 0);
        assert_eq!(g.inv, 0);
    }

    #[test]
    fn and_tree_grows_with_literals() {
        let two = estimate_gates(&cover(4, &["--11"]));
        let four = estimate_gates(&cover(4, &["1111"]));
        assert_eq!(two.nand2, 1);
        assert_eq!(four.nand2, 3);
    }

    #[test]
    fn or_plane_grows_with_terms() {
        let one = estimate_gates(&cover(4, &["--11"]));
        let three = estimate_gates(&cover(4, &["--11", "11--", "1--1"]));
        assert!(three.nand2 > one.nand2);
        // 3 AND2s + 2 OR-tree gates
        assert_eq!(three.nand2, 5);
    }

    #[test]
    fn complemented_inputs_need_inverters() {
        let g = estimate_gates(&cover(3, &["00-"]));
        assert_eq!(g.inv, 2 + g.nand2 / 2);
    }

    #[test]
    fn shared_terms_counted_once() {
        let a = cover(4, &["11--", "--11"]);
        let b = cover(4, &["11--", "1--1"]);
        let multi = estimate_multi_output(&[a.clone(), b.clone()]);
        assert_eq!(multi.distinct_terms, 3, "11-- shared between outputs");
        let separate = estimate_gates(&a).plus(estimate_gates(&b));
        assert!(
            multi.gates.nand2 < separate.nand2,
            "sharing must save gates: {} vs {}",
            multi.gates.nand2,
            separate.nand2
        );
    }

    #[test]
    fn nand2_equivalents_weighting() {
        let g = GateEstimate { nand2: 4, inv: 2 };
        assert_eq!(g.nand2_equivalents(), 5.0);
    }
}
