//! Two-level minimization: Quine–McCluskey prime generation followed by a
//! greedy (essential-first) cover selection.
//!
//! This is the workhorse behind the area model's FSM next-state logic
//! estimates: each hardwired march controller is elaborated into a state
//! transition table, every next-state/output bit is minimized here, and the
//! resulting covers are costed in NAND2 equivalents.
//!
//! The implementation is exact in prime generation and heuristic (greedy)
//! in covering — like espresso, it does not guarantee a minimum cover, but
//! it is deterministic and produces irredundant covers that are more than
//! adequate for relative area comparisons.

use std::collections::{HashMap, HashSet};

use crate::cover::Cover;
use crate::cube::Cube;
use crate::error::LogicError;
use crate::truth::{Spec, TruthTable};

/// Maximum inputs accepted by [`minimize`] (dense Quine–McCluskey).
pub const MAX_MINIMIZE_INPUTS: u8 = 16;

/// Minimizes an incompletely-specified function into an irredundant
/// sum-of-products cover.
///
/// Don't-cares are used to enlarge primes but never need to be covered.
///
/// # Errors
///
/// Returns [`LogicError::TooManyInputs`] if the table has more than
/// [`MAX_MINIMIZE_INPUTS`] inputs.
///
/// # Examples
///
/// ```
/// use mbist_logic::{minimize, Spec, TruthTable};
///
/// // f = majority of 3 inputs
/// let tt = TruthTable::from_fn(3, |m| (m.count_ones() >= 2).into());
/// let f = minimize(&tt)?;
/// assert_eq!(f.cube_count(), 3);       // ab + bc + ac
/// assert_eq!(f.literal_count(), 6);
/// assert!(tt.is_implemented_by(&f));
/// # Ok::<(), mbist_logic::LogicError>(())
/// ```
pub fn minimize(tt: &TruthTable) -> Result<Cover, LogicError> {
    if tt.inputs() > MAX_MINIMIZE_INPUTS {
        return Err(LogicError::TooManyInputs {
            inputs: tt.inputs(),
            max: MAX_MINIMIZE_INPUTS,
        });
    }
    let primes = prime_implicants(tt);
    Ok(select_cover(tt, &primes))
}

/// Generates all prime implicants of `on ∪ dc` by iterated adjacency
/// merging (Quine–McCluskey).
#[must_use]
pub fn prime_implicants(tt: &TruthTable) -> Vec<Cube> {
    let n = tt.inputs();
    let mut current: HashSet<Cube> = (0..(1u64 << n))
        .filter(|&m| tt.spec(m) != Spec::Off)
        .map(|m| Cube::minterm(n, m))
        .collect();
    let mut primes: Vec<Cube> = Vec::new();

    while !current.is_empty() {
        // Group by (care set, ones count) — only cubes in adjacent ones-count
        // groups with identical care sets can merge.
        let mut groups: HashMap<(u64, u32), Vec<Cube>> = HashMap::new();
        for &c in &current {
            let ones = ones_of(&c);
            groups.entry((care_of(&c), ones)).or_default().push(c);
        }
        let mut merged: HashSet<Cube> = HashSet::new();
        let mut next: HashSet<Cube> = HashSet::new();
        for (&(care, ones), cubes) in &groups {
            if let Some(uppers) = groups.get(&(care, ones + 1)) {
                for a in cubes {
                    for b in uppers {
                        if let Some(m) = a.merge_adjacent(b) {
                            merged.insert(*a);
                            merged.insert(*b);
                            next.insert(m);
                        }
                    }
                }
            }
        }
        for c in &current {
            if !merged.contains(c) {
                primes.push(*c);
            }
        }
        current = next;
    }
    primes.sort_unstable();
    primes
}

/// Selects an irredundant cover of the on-set from a set of primes:
/// essential primes first, then greedy largest-coverage selection, then a
/// redundancy-removal sweep.
#[must_use]
fn select_cover(tt: &TruthTable, primes: &[Cube]) -> Cover {
    let n = tt.inputs();
    let on: Vec<u64> = tt.on_set().collect();
    if on.is_empty() {
        return Cover::new(n);
    }

    // Which primes cover each on-set minterm.
    let mut covering: HashMap<u64, Vec<usize>> = HashMap::new();
    for (pi, p) in primes.iter().enumerate() {
        for &m in &on {
            if p.contains(m) {
                covering.entry(m).or_default().push(pi);
            }
        }
    }

    let mut chosen: Vec<usize> = Vec::new();
    let mut uncovered: HashSet<u64> = on.iter().copied().collect();

    // Essential primes.
    for &m in &on {
        let cands = &covering[&m];
        if cands.len() == 1 {
            let pi = cands[0];
            if !chosen.contains(&pi) {
                chosen.push(pi);
                uncovered.retain(|&u| !primes[pi].contains(u));
            }
        }
    }

    // Greedy completion: most uncovered minterms, then fewest literals,
    // then cube order (deterministic).
    while !uncovered.is_empty() {
        let best = (0..primes.len())
            .filter(|pi| !chosen.contains(pi))
            .max_by_key(|&pi| {
                let gain = uncovered.iter().filter(|&&m| primes[pi].contains(m)).count();
                (gain, std::cmp::Reverse(primes[pi].literals()), std::cmp::Reverse(pi))
            })
            .expect("primes cover the on-set by construction");
        let gain = uncovered.iter().filter(|&&m| primes[best].contains(m)).count();
        assert!(gain > 0, "greedy step must make progress");
        chosen.push(best);
        uncovered.retain(|&u| !primes[best].contains(u));
    }

    // Redundancy sweep: drop any chosen prime whose on-set minterms are all
    // covered by the other chosen primes.
    let mut keep: Vec<usize> = chosen.clone();
    let mut i = 0;
    while i < keep.len() {
        let candidate = keep[i];
        let others: Vec<usize> = keep.iter().copied().filter(|&k| k != candidate).collect();
        let redundant = on
            .iter()
            .filter(|&&m| primes[candidate].contains(m))
            .all(|&m| others.iter().any(|&o| primes[o].contains(m)));
        if redundant {
            keep.remove(i);
        } else {
            i += 1;
        }
    }

    Cover::from_cubes(n, keep.into_iter().map(|pi| primes[pi]).collect())
}

fn care_of(c: &Cube) -> u64 {
    let mut care = 0u64;
    for i in 0..c.inputs() {
        if c.literal(i).is_some() {
            care |= 1 << i;
        }
    }
    care
}

fn ones_of(c: &Cube) -> u32 {
    (0..c.inputs()).filter(|&i| c.literal(i) == Some(true)).count() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_false_minimizes_to_empty() {
        let tt = TruthTable::new(4).unwrap();
        let f = minimize(&tt).unwrap();
        assert!(f.is_empty());
    }

    #[test]
    fn constant_true_minimizes_to_universe() {
        let tt = TruthTable::from_fn(4, |_| Spec::On);
        let f = minimize(&tt).unwrap();
        assert_eq!(f.cube_count(), 1);
        assert_eq!(f.literal_count(), 0);
        assert!(tt.is_implemented_by(&f));
    }

    #[test]
    fn classic_qm_example() {
        // f(a,b,c,d) = Σm(4,8,10,11,12,15) + d(9,14) — the textbook example,
        // minimum cover has 4 terms.
        let on = [4u64, 8, 10, 11, 12, 15];
        let dc = [9u64, 14];
        let mut tt = TruthTable::new(4).unwrap();
        for &m in &on {
            tt.set(m, Spec::On);
        }
        for &m in &dc {
            tt.set(m, Spec::Dc);
        }
        let f = minimize(&tt).unwrap();
        assert!(tt.is_implemented_by(&f));
        assert!(f.cube_count() <= 4, "got {} cubes: {f}", f.cube_count());
    }

    #[test]
    fn xor_has_no_merging() {
        let tt = TruthTable::from_fn(3, |m| (m.count_ones() % 2 == 1).into());
        let f = minimize(&tt).unwrap();
        assert_eq!(f.cube_count(), 4, "3-input parity needs all 4 minterm cubes");
        assert!(tt.is_implemented_by(&f));
    }

    #[test]
    fn dont_cares_shrink_the_cover() {
        // BCD "greater than 4" with 10..15 as don't-cares: collapses to
        // a + b·(c + d) style small cover.
        let mut tt = TruthTable::new(4).unwrap();
        for m in 0..16u64 {
            if m > 9 {
                tt.set(m, Spec::Dc);
            } else if m > 4 {
                tt.set(m, Spec::On);
            }
        }
        let f = minimize(&tt).unwrap();
        assert!(tt.is_implemented_by(&f));
        let strict = TruthTable::from_fn(4, |m| (m > 4 && m <= 9).into());
        let g = minimize(&strict).unwrap();
        assert!(
            f.literal_count() < g.literal_count(),
            "dc version {} should beat strict {}",
            f.literal_count(),
            g.literal_count()
        );
    }

    #[test]
    fn primes_cover_all_on_minterms() {
        let tt = TruthTable::from_fn(5, |m| (m % 7 == 0).into());
        let primes = prime_implicants(&tt);
        for m in tt.on_set() {
            assert!(primes.iter().any(|p| p.contains(m)));
        }
    }

    #[test]
    fn minimized_cover_is_irredundant() {
        let tt = TruthTable::from_fn(5, |m| (m % 3 == 0 || m > 27).into());
        let f = minimize(&tt).unwrap();
        assert!(tt.is_implemented_by(&f));
        // Removing any cube must break the implementation.
        for skip in 0..f.cube_count() {
            let reduced = Cover::from_cubes(
                f.inputs(),
                f.cubes()
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != skip)
                    .map(|(_, c)| *c)
                    .collect(),
            );
            assert!(!tt.is_implemented_by(&reduced), "cube {skip} of {f} is redundant");
        }
    }

    #[test]
    fn too_many_inputs_errors() {
        let tt = TruthTable::from_fn(17, |_| Spec::Off);
        assert!(matches!(minimize(&tt), Err(LogicError::TooManyInputs { .. })));
    }

    #[test]
    fn deterministic_output() {
        let tt = TruthTable::from_fn(6, |m| ((m * 37) % 5 < 2).into());
        let a = minimize(&tt).unwrap();
        let b = minimize(&tt).unwrap();
        assert_eq!(a.cubes(), b.cubes());
    }
}
