//! Cubes (product terms) over up to 64 binary inputs.

use std::fmt;

/// A product term over `n` inputs, where each input is `0`, `1` or don't-care.
///
/// Representation: `care` has a 1 for every specified input; `value` holds
/// the required polarity of the specified inputs (bits outside `care` are 0).
///
/// # Examples
///
/// ```
/// use mbist_logic::Cube;
///
/// // x1·x̄0 over 3 inputs  (input 2 is don't-care)
/// let c = Cube::parse("-10").unwrap();
/// assert!(c.contains(0b010));
/// assert!(c.contains(0b110));
/// assert!(!c.contains(0b011));
/// assert_eq!(c.literals(), 2);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cube {
    inputs: u8,
    care: u64,
    value: u64,
}

impl Cube {
    /// The universal cube (tautology: no literal specified) over `inputs`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is 0 or greater than 64.
    #[must_use]
    pub fn universe(inputs: u8) -> Self {
        assert!((1..=64).contains(&inputs), "cube inputs must be 1..=64");
        Self { inputs, care: 0, value: 0 }
    }

    /// A fully-specified cube (a single minterm).
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is 0 or greater than 64.
    #[must_use]
    pub fn minterm(inputs: u8, minterm: u64) -> Self {
        let mut c = Self::universe(inputs);
        c.care = mask(inputs);
        c.value = minterm & c.care;
        c
    }

    /// Parses the PLA-style notation, MSB (highest input index) first:
    /// `'0'`, `'1'` or `'-'` per input.
    ///
    /// Returns `None` on invalid characters or unsupported lengths.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        let n = s.len();
        if n == 0 || n > 64 {
            return None;
        }
        let mut care = 0u64;
        let mut value = 0u64;
        for (i, ch) in s.chars().enumerate() {
            let bit = n - 1 - i; // MSB first
            match ch {
                '0' => care |= 1 << bit,
                '1' => {
                    care |= 1 << bit;
                    value |= 1 << bit;
                }
                '-' => {}
                _ => return None,
            }
        }
        Some(Self { inputs: n as u8, care, value })
    }

    /// Number of inputs of the space this cube lives in.
    #[must_use]
    pub fn inputs(&self) -> u8 {
        self.inputs
    }

    /// Number of specified literals.
    #[must_use]
    pub fn literals(&self) -> u32 {
        self.care.count_ones()
    }

    /// Whether the cube contains the given minterm.
    #[must_use]
    pub fn contains(&self, minterm: u64) -> bool {
        (minterm & self.care) == self.value
    }

    /// Whether `self` covers every minterm of `other` (i.e. `other ⊆ self`).
    #[must_use]
    pub fn covers(&self, other: &Cube) -> bool {
        debug_assert_eq!(self.inputs, other.inputs);
        // self's specified literals must be specified identically in other
        (self.care & !other.care) == 0 && (other.value & self.care) == self.value
    }

    /// Whether the two cubes share at least one minterm.
    #[must_use]
    pub fn intersects(&self, other: &Cube) -> bool {
        debug_assert_eq!(self.inputs, other.inputs);
        let common = self.care & other.care;
        (self.value & common) == (other.value & common)
    }

    /// Attempts the Quine–McCluskey adjacency merge: if the cubes specify
    /// the same literals and differ in exactly one of them, returns the
    /// merged cube with that literal removed.
    #[must_use]
    pub fn merge_adjacent(&self, other: &Cube) -> Option<Cube> {
        debug_assert_eq!(self.inputs, other.inputs);
        if self.care != other.care {
            return None;
        }
        let diff = self.value ^ other.value;
        if diff.count_ones() != 1 {
            return None;
        }
        Some(Cube {
            inputs: self.inputs,
            care: self.care & !diff,
            value: self.value & !diff,
        })
    }

    /// Returns a copy with input `index` made don't-care.
    ///
    /// # Panics
    ///
    /// Panics if `index >= inputs`.
    #[must_use]
    pub fn without_literal(&self, index: u8) -> Cube {
        assert!(index < self.inputs, "literal index out of range");
        let m = !(1u64 << index);
        Cube { inputs: self.inputs, care: self.care & m, value: self.value & m }
    }

    /// The state of input `index`: `Some(true)` = positive literal,
    /// `Some(false)` = negative literal, `None` = don't-care.
    ///
    /// # Panics
    ///
    /// Panics if `index >= inputs`.
    #[must_use]
    pub fn literal(&self, index: u8) -> Option<bool> {
        assert!(index < self.inputs, "literal index out of range");
        if self.care & (1 << index) == 0 {
            None
        } else {
            Some(self.value & (1 << index) != 0)
        }
    }

    /// Number of minterms the cube contains.
    #[must_use]
    pub fn size(&self) -> u128 {
        1u128 << (u32::from(self.inputs) - self.literals())
    }

    /// Iterates over all minterms of this cube. Intended for small cubes in
    /// tests; cost is `2^(inputs - literals)`.
    pub fn minterms(&self) -> impl Iterator<Item = u64> + '_ {
        let free: Vec<u8> =
            (0..self.inputs).filter(|&i| self.care & (1 << i) == 0).collect();
        let count = 1u64 << free.len();
        let base = self.value;
        (0..count).map(move |combo| {
            let mut m = base;
            for (j, &bit) in free.iter().enumerate() {
                if combo & (1 << j) != 0 {
                    m |= 1 << bit;
                }
            }
            m
        })
    }
}

fn mask(inputs: u8) -> u64 {
    if inputs >= 64 {
        u64::MAX
    } else {
        (1u64 << inputs) - 1
    }
}

impl fmt::Debug for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cube({self})")
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in (0..self.inputs).rev() {
            let ch = match self.literal(i) {
                None => '-',
                Some(true) => '1',
                Some(false) => '0',
            };
            write!(f, "{ch}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_display_roundtrip() {
        for s in ["-10", "111", "0-0", "----", "1"] {
            let c = Cube::parse(s).unwrap();
            assert_eq!(c.to_string(), s);
        }
        assert!(Cube::parse("21-").is_none());
        assert!(Cube::parse("").is_none());
    }

    #[test]
    fn minterm_is_fully_specified() {
        let c = Cube::minterm(4, 0b1010);
        assert_eq!(c.literals(), 4);
        assert!(c.contains(0b1010));
        assert!(!c.contains(0b1011));
        assert_eq!(c.size(), 1);
    }

    #[test]
    fn universe_contains_everything() {
        let u = Cube::universe(5);
        for m in 0..32 {
            assert!(u.contains(m));
        }
        assert_eq!(u.size(), 32);
    }

    #[test]
    fn covers_is_subset_relation() {
        let big = Cube::parse("1--").unwrap();
        let small = Cube::parse("1-0").unwrap();
        assert!(big.covers(&small));
        assert!(!small.covers(&big));
        assert!(big.covers(&big));
    }

    #[test]
    fn intersects_detects_shared_minterms() {
        let a = Cube::parse("1-0").unwrap();
        let b = Cube::parse("-10").unwrap();
        assert!(a.intersects(&b)); // 110
        let c = Cube::parse("0--").unwrap();
        assert!(!a.intersects(&c));
    }

    #[test]
    fn merge_requires_distance_one_same_care() {
        let a = Cube::parse("101").unwrap();
        let b = Cube::parse("100").unwrap();
        let m = a.merge_adjacent(&b).unwrap();
        assert_eq!(m.to_string(), "10-");
        // different care sets: no merge
        let c = Cube::parse("10-").unwrap();
        assert!(a.merge_adjacent(&c).is_none());
        // distance 2: no merge
        let d = Cube::parse("110").unwrap();
        assert!(a.merge_adjacent(&d).is_none());
    }

    #[test]
    fn merged_cube_covers_both_parents() {
        let a = Cube::parse("0110").unwrap();
        let b = Cube::parse("0100").unwrap();
        let m = a.merge_adjacent(&b).unwrap();
        assert!(m.covers(&a));
        assert!(m.covers(&b));
        assert_eq!(m.size(), 2);
    }

    #[test]
    fn minterms_enumerates_cube() {
        let c = Cube::parse("1-0-").unwrap();
        let mut ms: Vec<u64> = c.minterms().collect();
        ms.sort_unstable();
        assert_eq!(ms, vec![0b1000, 0b1001, 0b1100, 0b1101]);
    }

    #[test]
    fn without_literal_widens() {
        let c = Cube::parse("110").unwrap();
        let w = c.without_literal(2);
        assert_eq!(w.to_string(), "-10");
        assert!(w.covers(&c));
    }
}
