//! Incompletely-specified single-output truth tables.

use crate::cover::Cover;
use crate::cube::Cube;
use crate::error::LogicError;

/// The specification of one minterm in an incompletely-specified function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Spec {
    /// Output must be 0.
    #[default]
    Off,
    /// Output must be 1.
    On,
    /// Output is unspecified (don't-care).
    Dc,
}

/// A single-output truth table with don't-cares, dense over `2^inputs`
/// minterms.
///
/// # Examples
///
/// ```
/// use mbist_logic::{Spec, TruthTable};
///
/// // XOR of two inputs
/// let tt = TruthTable::from_fn(2, |m| (m.count_ones() % 2 == 1).into());
/// assert_eq!(tt.spec(0b01), Spec::On);
/// assert_eq!(tt.spec(0b11), Spec::Off);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TruthTable {
    inputs: u8,
    spec: Vec<Spec>,
}

impl From<bool> for Spec {
    fn from(b: bool) -> Self {
        if b {
            Spec::On
        } else {
            Spec::Off
        }
    }
}

impl TruthTable {
    /// Maximum supported input count (dense table of `2^20` entries).
    pub const MAX_INPUTS: u8 = 20;

    /// Creates an all-`Off` table.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::TooManyInputs`] when `inputs` is 0 or exceeds
    /// [`TruthTable::MAX_INPUTS`].
    pub fn new(inputs: u8) -> Result<Self, LogicError> {
        if inputs == 0 || inputs > Self::MAX_INPUTS {
            return Err(LogicError::TooManyInputs { inputs, max: Self::MAX_INPUTS });
        }
        Ok(Self { inputs, spec: vec![Spec::Off; 1 << inputs] })
    }

    /// Builds a table by evaluating `f` on every minterm.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is out of the supported range (use
    /// [`TruthTable::new`] + [`TruthTable::set`] for a fallible path).
    #[must_use]
    pub fn from_fn<F: FnMut(u64) -> Spec>(inputs: u8, mut f: F) -> Self {
        let mut tt = Self::new(inputs).expect("inputs within supported range");
        for m in 0..(1u64 << inputs) {
            tt.spec[m as usize] = f(m);
        }
        tt
    }

    /// Number of inputs.
    #[must_use]
    pub fn inputs(&self) -> u8 {
        self.inputs
    }

    /// Specification of a minterm.
    ///
    /// # Panics
    ///
    /// Panics if `minterm >= 2^inputs`.
    #[must_use]
    pub fn spec(&self, minterm: u64) -> Spec {
        self.spec[usize::try_from(minterm).expect("minterm fits usize")]
    }

    /// Sets the specification of a minterm.
    ///
    /// # Panics
    ///
    /// Panics if `minterm >= 2^inputs`.
    pub fn set(&mut self, minterm: u64, spec: Spec) {
        self.spec[usize::try_from(minterm).expect("minterm fits usize")] = spec;
    }

    /// Minterms whose output must be 1.
    pub fn on_set(&self) -> impl Iterator<Item = u64> + '_ {
        self.spec.iter().enumerate().filter(|(_, &s)| s == Spec::On).map(|(m, _)| m as u64)
    }

    /// Minterms whose output is unspecified.
    pub fn dc_set(&self) -> impl Iterator<Item = u64> + '_ {
        self.spec.iter().enumerate().filter(|(_, &s)| s == Spec::Dc).map(|(m, _)| m as u64)
    }

    /// Number of `On` minterms.
    #[must_use]
    pub fn on_count(&self) -> usize {
        self.spec.iter().filter(|&&s| s == Spec::On).count()
    }

    /// Whether `cover` is a correct implementation: true on every `On`
    /// minterm, false on every `Off` minterm (don't-cares are free).
    #[must_use]
    pub fn is_implemented_by(&self, cover: &Cover) -> bool {
        assert_eq!(cover.inputs(), self.inputs, "input count mismatch");
        (0..(1u64 << self.inputs)).all(|m| match self.spec(m) {
            Spec::On => cover.evaluate(m),
            Spec::Off => !cover.evaluate(m),
            Spec::Dc => true,
        })
    }

    /// The trivial canonical cover: one minterm cube per `On` entry.
    #[must_use]
    pub fn canonical_cover(&self) -> Cover {
        Cover::from_cubes(
            self.inputs,
            self.on_set().map(|m| Cube::minterm(self.inputs, m)).collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_evaluates_all_minterms() {
        let tt = TruthTable::from_fn(3, |m| (m >= 4).into());
        assert_eq!(tt.on_count(), 4);
        assert_eq!(tt.spec(0), Spec::Off);
        assert_eq!(tt.spec(7), Spec::On);
    }

    #[test]
    fn dc_entries_are_free() {
        let mut tt = TruthTable::new(2).unwrap();
        tt.set(0, Spec::On);
        tt.set(3, Spec::Dc);
        let just_zero = Cover::from_cubes(2, vec![Cube::minterm(2, 0)]);
        assert!(tt.is_implemented_by(&just_zero));
        let with_three =
            Cover::from_cubes(2, vec![Cube::minterm(2, 0), Cube::minterm(2, 3)]);
        assert!(tt.is_implemented_by(&with_three));
        let wrong = Cover::from_cubes(2, vec![Cube::minterm(2, 1)]);
        assert!(!tt.is_implemented_by(&wrong));
    }

    #[test]
    fn canonical_cover_implements_table() {
        let tt = TruthTable::from_fn(4, |m| (m % 3 == 0).into());
        assert!(tt.is_implemented_by(&tt.canonical_cover()));
    }

    #[test]
    fn too_many_inputs_is_an_error() {
        assert!(TruthTable::new(21).is_err());
        assert!(TruthTable::new(0).is_err());
        assert!(TruthTable::new(20).is_ok());
    }

    #[test]
    fn on_and_dc_sets_enumerate() {
        let mut tt = TruthTable::new(2).unwrap();
        tt.set(1, Spec::On);
        tt.set(2, Spec::Dc);
        assert_eq!(tt.on_set().collect::<Vec<_>>(), vec![1]);
        assert_eq!(tt.dc_set().collect::<Vec<_>>(), vec![2]);
    }
}
