//! Error types for the logic crate.

use std::error::Error;
use std::fmt;

/// Errors produced by logic-minimization entry points.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LogicError {
    /// The function has too many inputs for the requested algorithm.
    TooManyInputs {
        /// Requested input count.
        inputs: u8,
        /// Maximum supported by the algorithm.
        max: u8,
    },
}

impl fmt::Display for LogicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogicError::TooManyInputs { inputs, max } => {
                write!(f, "function has {inputs} inputs, supported range is 1..={max}")
            }
        }
    }
}

impl Error for LogicError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_specific() {
        let e = LogicError::TooManyInputs { inputs: 30, max: 20 };
        let s = e.to_string();
        assert!(s.contains("30"));
        assert!(s.contains("20"));
        assert_eq!(s, s.trim());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<LogicError>();
    }
}
