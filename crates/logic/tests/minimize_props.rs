//! Property tests for the two-level minimizer.

use proptest::prelude::*;

use mbist_logic::{estimate_gates, minimize, prime_implicants, Cover, Spec, TruthTable};

fn arb_table(inputs: u8) -> impl Strategy<Value = TruthTable> {
    prop::collection::vec(0u8..3, 1usize << inputs).prop_map(move |cells| {
        let mut tt = TruthTable::new(inputs).unwrap();
        for (m, &c) in cells.iter().enumerate() {
            tt.set(
                m as u64,
                match c {
                    0 => Spec::Off,
                    1 => Spec::On,
                    _ => Spec::Dc,
                },
            );
        }
        tt
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn minimized_cover_implements_the_table(tt in arb_table(6)) {
        let cover = minimize(&tt).unwrap();
        prop_assert!(tt.is_implemented_by(&cover));
    }

    #[test]
    fn minimized_cover_never_beats_nothing_but_never_exceeds_canonical(tt in arb_table(5)) {
        let cover = minimize(&tt).unwrap();
        let canonical = tt.canonical_cover();
        prop_assert!(cover.cube_count() <= canonical.cube_count().max(1));
        prop_assert!(cover.literal_count() <= canonical.literal_count());
    }

    #[test]
    fn primes_cover_every_on_minterm_and_are_maximal(tt in arb_table(5)) {
        let primes = prime_implicants(&tt);
        for m in tt.on_set() {
            prop_assert!(primes.iter().any(|p| p.contains(m)), "minterm {} uncovered", m);
        }
        // maximality: enlarging any prime by dropping a literal must leave
        // the on∪dc set
        for p in &primes {
            for i in 0..p.inputs() {
                if p.literal(i).is_none() {
                    continue;
                }
                let widened = p.without_literal(i);
                let escapes = widened
                    .minterms()
                    .any(|m| tt.spec(m) == Spec::Off);
                prop_assert!(escapes, "prime {} not maximal at literal {}", p, i);
            }
        }
    }

    #[test]
    fn gate_estimate_is_monotone_in_cover_size(tt in arb_table(5)) {
        let cover = minimize(&tt).unwrap();
        let est = estimate_gates(&cover);
        let canonical_est = estimate_gates(&tt.canonical_cover());
        prop_assert!(est.nand2_equivalents() <= canonical_est.nand2_equivalents() + 0.001);
    }

    #[test]
    fn equivalence_check_agrees_with_pointwise_evaluation(tt in arb_table(4)) {
        let a = minimize(&tt).unwrap();
        let b = tt.canonical_cover();
        // both implement tt, but equivalence as *functions* holds only when
        // there are no don't-cares; check the definition directly instead
        let pointwise_equal =
            (0..16u64).all(|m| a.evaluate(m) == b.evaluate(m));
        prop_assert_eq!(a.equivalent(&b), pointwise_equal);
    }

    #[test]
    fn remove_contained_preserves_semantics(tt in arb_table(5)) {
        let mut cover: Cover = tt.canonical_cover();
        let before = cover.clone();
        cover.remove_contained();
        prop_assert!(cover.equivalent(&before));
    }
}
