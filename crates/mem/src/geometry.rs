//! Memory organization descriptors.

use std::fmt;

/// Identifier of one access port of a (possibly multiport) memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PortId(pub u8);

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Identifier of a single storage cell: word address plus bit position.
///
/// For a bit-oriented memory, `bit` is always 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CellId {
    /// Word address of the cell.
    pub word: u64,
    /// Bit position within the word (0 = LSB).
    pub bit: u8,
}

impl CellId {
    /// Convenience constructor.
    #[must_use]
    pub fn new(word: u64, bit: u8) -> Self {
        Self { word, bit }
    }

    /// Cell of a bit-oriented memory (bit 0).
    #[must_use]
    pub fn bit_oriented(word: u64) -> Self {
        Self { word, bit: 0 }
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c[{}.{}]", self.word, self.bit)
    }
}

/// The organization of a memory under test.
///
/// # Examples
///
/// ```
/// use mbist_mem::MemGeometry;
///
/// let g = MemGeometry::word_oriented(1024, 8);
/// assert_eq!(g.words(), 1024);
/// assert_eq!(g.width(), 8);
/// assert_eq!(g.addr_bits(), 10);
/// assert_eq!(g.cell_count(), 8192);
/// assert!(!g.is_bit_oriented());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemGeometry {
    words: u64,
    width: u8,
    ports: u8,
}

impl MemGeometry {
    /// A bit-oriented (1 bit per word), single-port memory of `words` cells.
    ///
    /// # Panics
    ///
    /// Panics if `words` is zero.
    #[must_use]
    pub fn bit_oriented(words: u64) -> Self {
        Self::new(words, 1, 1)
    }

    /// A word-oriented, single-port memory.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `width > 64`.
    #[must_use]
    pub fn word_oriented(words: u64, width: u8) -> Self {
        Self::new(words, width, 1)
    }

    /// Fully general constructor.
    ///
    /// # Panics
    ///
    /// Panics if `words == 0`, `width == 0`, `width > 64` or `ports == 0`.
    #[must_use]
    pub fn new(words: u64, width: u8, ports: u8) -> Self {
        assert!(words > 0, "memory must have at least one word");
        assert!((1..=64).contains(&width), "word width must be 1..=64 bits");
        assert!(ports >= 1, "memory must have at least one port");
        Self { words, width, ports }
    }

    /// Returns a copy with a different port count.
    ///
    /// # Panics
    ///
    /// Panics if `ports` is zero.
    #[must_use]
    pub fn with_ports(self, ports: u8) -> Self {
        Self::new(self.words, self.width, ports)
    }

    /// Number of word addresses.
    #[must_use]
    pub fn words(&self) -> u64 {
        self.words
    }

    /// Bits per word.
    #[must_use]
    pub fn width(&self) -> u8 {
        self.width
    }

    /// Number of access ports.
    #[must_use]
    pub fn ports(&self) -> u8 {
        self.ports
    }

    /// Whether the memory is bit-oriented (1-bit words).
    #[must_use]
    pub fn is_bit_oriented(&self) -> bool {
        self.width == 1
    }

    /// Total number of storage cells (`words × width`).
    #[must_use]
    pub fn cell_count(&self) -> u64 {
        self.words * u64::from(self.width)
    }

    /// Number of address bits (`⌈log2(words)⌉`, at least 1).
    #[must_use]
    pub fn addr_bits(&self) -> u8 {
        let mut bits = 64 - (self.words - 1).leading_zeros() as u8;
        if bits == 0 {
            bits = 1;
        }
        bits
    }

    /// The highest valid word address.
    #[must_use]
    pub fn last_addr(&self) -> u64 {
        self.words - 1
    }

    /// Whether `addr` is a valid word address.
    #[must_use]
    pub fn contains_addr(&self, addr: u64) -> bool {
        addr < self.words
    }

    /// Whether `cell` names a real cell in this geometry.
    #[must_use]
    pub fn contains_cell(&self, cell: CellId) -> bool {
        cell.word < self.words && cell.bit < self.width
    }

    /// Iterates over all cells, word-major then bit.
    pub fn cells(&self) -> impl Iterator<Item = CellId> + '_ {
        let width = self.width;
        (0..self.words).flat_map(move |w| (0..width).map(move |b| CellId::new(w, b)))
    }

    /// Iterates over the ports.
    pub fn port_ids(&self) -> impl Iterator<Item = PortId> {
        (0..self.ports).map(PortId)
    }
}

impl fmt::Display for MemGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.words, self.width)?;
        if self.ports > 1 {
            write!(f, " ({}-port)", self.ports)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_bits_rounds_up() {
        assert_eq!(MemGeometry::bit_oriented(1).addr_bits(), 1);
        assert_eq!(MemGeometry::bit_oriented(2).addr_bits(), 1);
        assert_eq!(MemGeometry::bit_oriented(3).addr_bits(), 2);
        assert_eq!(MemGeometry::bit_oriented(1024).addr_bits(), 10);
        assert_eq!(MemGeometry::bit_oriented(1025).addr_bits(), 11);
    }

    #[test]
    fn cell_count_multiplies_dimensions() {
        let g = MemGeometry::new(256, 16, 2);
        assert_eq!(g.cell_count(), 4096);
        assert_eq!(g.ports(), 2);
    }

    #[test]
    fn cells_iterator_is_exhaustive_and_valid() {
        let g = MemGeometry::word_oriented(4, 3);
        let cells: Vec<CellId> = g.cells().collect();
        assert_eq!(cells.len(), 12);
        assert!(cells.iter().all(|&c| g.contains_cell(c)));
        assert_eq!(cells[0], CellId::new(0, 0));
        assert_eq!(*cells.last().unwrap(), CellId::new(3, 2));
    }

    #[test]
    fn contains_checks() {
        let g = MemGeometry::word_oriented(8, 4);
        assert!(g.contains_addr(7));
        assert!(!g.contains_addr(8));
        assert!(g.contains_cell(CellId::new(7, 3)));
        assert!(!g.contains_cell(CellId::new(7, 4)));
    }

    #[test]
    #[should_panic(expected = "at least one word")]
    fn zero_words_panics() {
        let _ = MemGeometry::bit_oriented(0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(MemGeometry::bit_oriented(1024).to_string(), "1024x1");
        assert_eq!(MemGeometry::new(64, 8, 2).to_string(), "64x8 (2-port)");
        assert_eq!(CellId::new(3, 1).to_string(), "c[3.1]");
        assert_eq!(PortId(2).to_string(), "p2");
    }
}
